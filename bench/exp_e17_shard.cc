// E17 — shard-pipeline speedup and fidelity.
//
// Claim: the plan/solve/merge shard pipeline turns one superlinear
// inner solve into S independent solves of n/S rows each, so even run
// serially it wins wall-clock on superlinear inners (MDAV is ~O(n^2)),
// and with intra-job parallelism the shard solves overlap on top of
// that. The price is a bounded suppression-cost gap from cutting the
// table before solving. We time the unsharded inner and the sharded
// wrapper on the same table and report speedup = direct/sharded
// seconds plus gap = sharded/direct cost; an optional big leg proves
// the pipeline at n far beyond the direct solver's reach.
//
// The JSON written to --out is the CI gate input: sharded must beat
// direct on wall-clock and `gap` must stay under the quality threshold
// at n = 65536.

#include <fstream>
#include <iostream>
#include <memory>
#include <string>

#include "algo/registry.h"
#include "algo/shard_plan.h"
#include "algo/sharded_anonymizer.h"
#include "core/cost.h"
#include "core/partition.h"
#include "data/generators/synthetic.h"
#include "util/cli.h"
#include "util/parallel.h"
#include "util/report.h"
#include "util/run_context.h"

namespace kanon {
namespace {

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const size_t n = static_cast<size_t>(cl.GetInt("n", 65536));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 5));
  const uint64_t seed = static_cast<uint64_t>(cl.GetInt("seed", 42));
  const std::string inner = cl.GetString("inner", "mdav");
  const size_t shards = static_cast<size_t>(cl.GetInt("shards", 8));
  const size_t parallelism =
      static_cast<size_t>(cl.GetInt("parallelism", 0));
  const std::string out = cl.GetString("out", "");
  const size_t big_rows = static_cast<size_t>(cl.GetInt("big_rows", 0));

  bench::PrintBanner(
      "E17 (shard pipeline): plan/solve/merge vs direct solve",
      "sharded wall-clock beats the unsharded inner at superlinear n "
      "while the suppression-cost gap stays bounded",
      "synthetic tables, inner = " + inner + ", n = " + std::to_string(n) +
          ", k = " + std::to_string(k) + ", shards = " +
          std::to_string(shards));

  SyntheticTableOptions gen;
  gen.num_rows = n;
  gen.seed = seed;
  const Table table = SyntheticTable(gen);

  ShardOptions shard_options;
  shard_options.shards = shards;
  shard_options.shard_parallelism = parallelism;

  // Direct baseline: the inner solver on the full table.
  std::unique_ptr<Anonymizer> direct = MakeAnonymizer(inner);
  if (direct == nullptr) {
    std::cerr << "unknown inner: " << inner << "\n";
    return 1;
  }
  const AnonymizationResult base = direct->Run(table, k);
  if (!base.completed() || base.partition.groups.empty()) {
    std::cerr << "direct " << inner << " did not complete at n=" << n
              << "\n";
    return 1;
  }
  std::cout << "direct  " << inner << ": cost " << base.cost << " in "
            << bench::ReportTable::Num(base.seconds, 2) << " s\n";

  // Sharded run on the same table.
  ShardedAnonymizer sharded(
      [&inner] { return MakeAnonymizer(inner); }, shard_options);
  RunContext ctx;
  const AnonymizationResult run = sharded.Run(table, k, &ctx);
  const bool valid =
      run.completed() &&
      IsValidPartition(run.partition, static_cast<RowId>(n), k, n);
  std::cout << "sharded " << inner << ": cost " << run.cost << " in "
            << bench::ReportTable::Num(run.seconds, 2) << " s ("
            << run.notes << ")\n";

  const double speedup =
      run.seconds > 0.0 ? base.seconds / run.seconds : 0.0;
  const double gap = base.cost == 0
                         ? (run.cost == 0 ? 1.0 : 2.0)
                         : static_cast<double>(run.cost) / base.cost;
  std::cout << "\nspeedup " << bench::ReportTable::Num(speedup, 2)
            << "x, cost gap " << bench::ReportTable::Num(gap, 3)
            << " (hardware parallelism " << GetParallelism() << ")\n";

  // Optional feasibility leg: sharded-only at n beyond direct reach.
  size_t big_cost = 0;
  double big_seconds = 0.0;
  bool big_valid = false;
  if (big_rows > 0) {
    SyntheticTableOptions big_gen;
    big_gen.num_rows = big_rows;
    big_gen.seed = seed + 1;
    const Table big = SyntheticTable(big_gen);
    ShardedAnonymizer big_algo(
        [&inner] { return MakeAnonymizer(inner); }, shard_options);
    RunContext big_ctx;
    const AnonymizationResult big_run = big_algo.Run(big, k, &big_ctx);
    big_valid = big_run.completed() &&
                IsValidPartition(big_run.partition,
                                 static_cast<RowId>(big_rows), k,
                                 big_rows);
    big_cost = big_run.cost;
    big_seconds = big_run.seconds;
    std::cout << "\nbig run: n=" << big_rows << " -> "
              << (big_valid ? "valid" : "INVALID") << " partition, cost "
              << big_cost << " in "
              << bench::ReportTable::Num(big_seconds, 2) << " s ("
              << big_run.notes << ")\n";
  }

  if (!out.empty()) {
    std::ofstream json(out);
    json << "{\n  \"n\": " << n << ",\n  \"k\": " << k
         << ",\n  \"inner\": \"" << inner
         << "\",\n  \"shards\": " << shards
         << ",\n  \"parallelism\": " << parallelism
         << ",\n  \"hardware_parallelism\": " << GetParallelism()
         << ",\n  \"direct_cost\": " << base.cost
         << ",\n  \"direct_seconds\": " << base.seconds
         << ",\n  \"sharded_cost\": " << run.cost
         << ",\n  \"sharded_seconds\": " << run.seconds
         << ",\n  \"speedup\": " << speedup << ",\n  \"gap\": " << gap
         << ",\n  \"valid\": " << (valid ? "true" : "false");
    if (big_rows > 0) {
      json << ",\n  \"big\": {\"rows\": " << big_rows
           << ", \"valid\": " << (big_valid ? "true" : "false")
           << ", \"cost\": " << big_cost
           << ", \"seconds\": " << big_seconds << "}";
    }
    json << "\n}\n";
    if (!json) {
      std::cerr << "failed to write " << out << "\n";
      return 1;
    }
  }

  const bool big_ok = big_rows == 0 || big_valid;
  const bool ok = valid && big_ok;
  bench::PrintVerdict(
      ok, "sharded partition valid; speedup and cost gap reported "
          "(CI gates on both at n = 65536)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
