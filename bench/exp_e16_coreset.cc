// E16 — coreset fidelity and million-row feasibility.
//
// Claim: since optimal k-anonymity is NP-hard (Theorem 3.2) and even
// the strongly-polynomial heuristics are superlinear, solving a small
// weighted coreset and assigning the remaining rows to the solved
// groups trades a bounded cost gap for orders-of-magnitude less solver
// work. We sweep the sample rate at a direct-solvable n, report the
// suppression-cost gap coreset/direct per rate, and (optionally) prove
// the pipeline end-to-end at n in the millions under a fixed transient
// memory budget — a scale where the direct solver is not even attempted.
//
// The JSON written to --out is the CI gate input: `default_gap` must
// stay under the quality threshold at n = 2048.

#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "core/cost.h"
#include "core/partition.h"
#include "coreset/coreset_anonymizer.h"
#include "coreset/sampler.h"
#include "data/generators/adversarial.h"
#include "data/generators/clustered.h"
#include "data/generators/synthetic.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/report.h"
#include "util/run_context.h"

namespace kanon {
namespace {

struct SweepPoint {
  double rate = 0.0;
  size_t cost = 0;
  double gap = 0.0;  // cost / direct_cost
  double seconds = 0.0;
  std::string notes;
};

struct ShapePoint {
  std::string shape;
  size_t rows = 0;
  size_t direct_cost = 0;
  size_t cost = 0;
  double gap = 0.0;
  bool valid = false;
};

/// Table-shape sweep workloads at roughly `n` rows: the favourable
/// planted-cluster instance, a Zipf-skewed value distribution, and the
/// decoy-cluster adversary that misleads greedy ball growth.
Table ShapeTable(const std::string& shape, size_t n, uint64_t seed) {
  if (shape == "clustered") {
    ClusteredTableOptions options;
    options.num_rows = static_cast<uint32_t>(n);
    options.num_columns = 6;
    options.alphabet = 8;
    options.num_clusters = static_cast<uint32_t>(std::max<size_t>(n / 32, 2));
    options.noise_flips = 1;
    Rng rng(seed);
    return ClusteredTable(options, &rng);
  }
  if (shape == "zipf") {
    SyntheticTableOptions options;
    options.num_rows = n;
    options.seed = seed;
    options.zipf_s = 1.2;
    return SyntheticTable(options);
  }
  if (shape == "adversarial") {
    DecoyClusterOptions options;
    // num_clusters * (cluster_size + decoys_per_cluster) ~= n rows.
    options.cluster_size = 8;
    options.decoys_per_cluster = 4;
    options.num_clusters =
        static_cast<uint32_t>(std::max<size_t>(n / 12, 2));
    Rng rng(seed);
    return DecoyClusterTable(options, &rng);
  }
  SyntheticTableOptions options;
  options.num_rows = n;
  options.seed = seed;
  return SyntheticTable(options);
}

AnonymizationResult RunCoreset(const Table& table, size_t k,
                               const std::string& inner, double rate,
                               uint64_t seed, size_t memory_limit) {
  CoresetOptions options;
  options.sample_rate = rate;
  options.seed = seed;
  CoresetAnonymizer algo(MakeAnonymizer(inner), options);
  RunContext ctx;
  if (memory_limit > 0) ctx.set_memory_limit_bytes(memory_limit);
  return algo.Run(table, k, &ctx);
}

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const size_t n = static_cast<size_t>(cl.GetInt("n", 2048));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 5));
  const uint64_t seed = static_cast<uint64_t>(cl.GetInt("seed", 42));
  const std::string inner = cl.GetString("inner", "mdav");
  const std::string out = cl.GetString("out", "");
  const size_t big_rows = static_cast<size_t>(cl.GetInt("big_rows", 0));
  const size_t big_mem_mb =
      static_cast<size_t>(cl.GetInt("big_mem_mb", 256));

  bench::PrintBanner(
      "E16 (coreset fidelity): weighted coreset vs direct solve",
      "suppression-cost gap coreset/direct stays bounded as the sample "
      "rate shrinks; the pipeline stays feasible at n >> direct reach",
      "synthetic tables, inner = " + inner + ", n = " + std::to_string(n) +
          ", k = " + std::to_string(k));

  SyntheticTableOptions gen;
  gen.num_rows = n;
  gen.seed = seed;
  const Table table = SyntheticTable(gen);

  // Direct baseline: the inner solver on the full table.
  std::unique_ptr<Anonymizer> direct = MakeAnonymizer(inner);
  const AnonymizationResult base = direct->Run(table, k);
  if (!base.completed() || base.partition.groups.empty()) {
    std::cerr << "direct " << inner << " did not complete at n=" << n
              << "\n";
    return 1;
  }
  std::cout << "direct " << inner << ": cost " << base.cost << " in "
            << bench::ReportTable::Num(base.seconds * 1e3, 1) << " ms\n\n";

  bench::ReportTable sweep_table(
      {"rate", "sample", "cost", "gap", "time (ms)"});
  std::vector<SweepPoint> sweep;
  bool all_valid = true;
  for (const double rate :
       {0.05, 0.10, kDefaultCoresetRate, 0.25, 0.50}) {
    const AnonymizationResult run =
        RunCoreset(table, k, inner, rate, seed, 0);
    const bool valid =
        run.completed() &&
        IsValidPartition(run.partition, static_cast<RowId>(n), k, n);
    all_valid = all_valid && valid;
    SweepPoint point;
    point.rate = rate;
    point.cost = run.cost;
    point.gap = base.cost == 0
                    ? (run.cost == 0 ? 1.0 : 2.0)
                    : static_cast<double>(run.cost) / base.cost;
    point.seconds = run.seconds;
    point.notes = run.notes;
    sweep.push_back(point);
    CoresetOptions probe;
    probe.sample_rate = rate;
    sweep_table.AddRow(
        {bench::ReportTable::Num(rate, 3),
         bench::ReportTable::Int(static_cast<long long>(
             ResolveSampleSize(n, k, probe))),
         bench::ReportTable::Int(static_cast<long long>(run.cost)),
         bench::ReportTable::Num(point.gap, 3),
         bench::ReportTable::Num(run.seconds * 1e3, 1)});
  }
  sweep_table.Print();

  double default_gap = 0.0;
  for (const SweepPoint& point : sweep) {
    if (point.rate == kDefaultCoresetRate) default_gap = point.gap;
  }
  std::cout << "\ndefault rate " << kDefaultCoresetRate << " gap: "
            << bench::ReportTable::Num(default_gap, 3) << "\n";

  // Table-shape sweep at the default rate: the gap must stay finite and
  // the partition valid on favourable, skewed, and adversarial shapes
  // alike (the decoy instance is allowed a worse gap — it is built to
  // mislead sampling — but never an invalid answer).
  std::cout << "\nshape sweep (default rate):\n";
  bench::ReportTable shape_report(
      {"shape", "rows", "direct", "coreset", "gap", "valid"});
  std::vector<ShapePoint> shapes;
  bool shapes_valid = true;
  for (const std::string shape : {"clustered", "zipf", "adversarial"}) {
    const Table shaped = ShapeTable(shape, n, seed + 2);
    const size_t rows = shaped.num_rows();
    const AnonymizationResult shape_base = direct->Run(shaped, k);
    const AnonymizationResult shape_run =
        RunCoreset(shaped, k, inner, /*rate=*/0.0, seed, 0);
    ShapePoint point;
    point.shape = shape;
    point.rows = rows;
    point.direct_cost = shape_base.cost;
    point.cost = shape_run.cost;
    point.gap = shape_base.cost == 0
                    ? (shape_run.cost == 0 ? 1.0 : 2.0)
                    : static_cast<double>(shape_run.cost) /
                          shape_base.cost;
    point.valid =
        shape_base.completed() && shape_run.completed() &&
        IsValidPartition(shape_run.partition, static_cast<RowId>(rows),
                         k, rows);
    shapes_valid = shapes_valid && point.valid;
    shapes.push_back(point);
    shape_report.AddRow(
        {shape, bench::ReportTable::Int(static_cast<long long>(rows)),
         bench::ReportTable::Int(static_cast<long long>(shape_base.cost)),
         bench::ReportTable::Int(static_cast<long long>(shape_run.cost)),
         bench::ReportTable::Num(point.gap, 3),
         point.valid ? "yes" : "NO"});
  }
  shape_report.Print();

  // Optional feasibility leg: n in the millions, fixed transient-memory
  // budget, validity asserted on the full-table partition.
  size_t big_cost = 0;
  double big_seconds = 0.0;
  bool big_valid = false;
  size_t big_groups = 0;
  if (big_rows > 0) {
    SyntheticTableOptions big_gen;
    big_gen.num_rows = big_rows;
    big_gen.seed = seed + 1;
    const Table big = SyntheticTable(big_gen);
    const AnonymizationResult run = RunCoreset(
        big, k, inner, /*rate=*/0.0, seed, big_mem_mb << 20);
    big_valid = run.completed() &&
                IsValidPartition(run.partition,
                                 static_cast<RowId>(big_rows), k,
                                 big_rows);
    big_cost = run.cost;
    big_seconds = run.seconds;
    big_groups = run.partition.num_groups();
    std::cout << "\nbig run: n=" << big_rows << " -> "
              << (big_valid ? "valid" : "INVALID") << " partition, "
              << big_groups << " groups, cost " << big_cost << " in "
              << bench::ReportTable::Num(big_seconds, 2) << " s ("
              << run.notes << ")\n";
  }

  if (!out.empty()) {
    std::ofstream json(out);
    json << "{\n  \"n\": " << n << ",\n  \"k\": " << k
         << ",\n  \"inner\": \"" << inner
         << "\",\n  \"direct_cost\": " << base.cost
         << ",\n  \"direct_seconds\": " << base.seconds
         << ",\n  \"default_rate\": " << kDefaultCoresetRate
         << ",\n  \"default_gap\": " << default_gap
         << ",\n  \"all_valid\": " << (all_valid ? "true" : "false")
         << ",\n  \"shapes_valid\": " << (shapes_valid ? "true" : "false")
         << ",\n  \"sweep\": [";
    for (size_t i = 0; i < sweep.size(); ++i) {
      json << (i == 0 ? "" : ",") << "\n    {\"rate\": " << sweep[i].rate
           << ", \"cost\": " << sweep[i].cost
           << ", \"gap\": " << sweep[i].gap
           << ", \"seconds\": " << sweep[i].seconds << "}";
    }
    json << "\n  ],\n  \"shapes\": [";
    for (size_t i = 0; i < shapes.size(); ++i) {
      json << (i == 0 ? "" : ",") << "\n    {\"shape\": \""
           << shapes[i].shape << "\", \"rows\": " << shapes[i].rows
           << ", \"direct_cost\": " << shapes[i].direct_cost
           << ", \"cost\": " << shapes[i].cost
           << ", \"gap\": " << shapes[i].gap
           << ", \"valid\": " << (shapes[i].valid ? "true" : "false")
           << "}";
    }
    json << "\n  ]";
    if (big_rows > 0) {
      json << ",\n  \"big\": {\"rows\": " << big_rows
           << ", \"valid\": " << (big_valid ? "true" : "false")
           << ", \"groups\": " << big_groups
           << ", \"cost\": " << big_cost
           << ", \"seconds\": " << big_seconds << "}";
    }
    json << "\n}\n";
    if (!json) {
      std::cerr << "failed to write " << out << "\n";
      return 1;
    }
  }

  const bool big_ok = big_rows == 0 || big_valid;
  const bool ok = all_valid && shapes_valid && big_ok && default_gap > 0.0;
  bench::PrintVerdict(
      ok, "coreset partitions valid at every rate and table shape; cost "
          "gap reported per rate (CI gates on default_gap)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
