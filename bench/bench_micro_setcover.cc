// M2 — micro benchmarks for the greedy set-cover engine (the Phase-1
// workhorse of both approximation algorithms).

#include "benchmark/benchmark.h"
#include "setcover/set_cover.h"
#include "util/random.h"

namespace kanon {
namespace {

VectorSetFamily RandomFamily(size_t n, size_t num_sets, uint32_t max_size,
                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<uint32_t>> sets;
  std::vector<double> weights;
  sets.reserve(num_sets + n);
  for (size_t s = 0; s < num_sets; ++s) {
    const uint32_t size = 1 + rng.Uniform(max_size);
    sets.push_back(rng.SampleWithoutReplacement(
        static_cast<uint32_t>(n), std::min<uint32_t>(size, n)));
    weights.push_back(rng.UniformDouble() * 10.0);
  }
  // Guarantee coverage with singleton fallbacks.
  for (uint32_t e = 0; e < n; ++e) {
    sets.push_back({e});
    weights.push_back(50.0);
  }
  return VectorSetFamily(n, std::move(sets), std::move(weights));
}

void BM_GreedySetCover(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t num_sets = static_cast<size_t>(state.range(1));
  const VectorSetFamily family = RandomFamily(n, num_sets, 8, 7);
  for (auto _ : state) {
    const SetCoverResult result = GreedySetCover(family);
    benchmark::DoNotOptimize(result.total_weight);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(num_sets));
}
BENCHMARK(BM_GreedySetCover)
    ->Args({64, 256})
    ->Args({256, 1024})
    ->Args({1024, 4096})
    ->Args({1024, 16384});

void BM_GreedySetCoverLargeSets(benchmark::State& state) {
  // Large member lists stress the lazy-evaluation heap differently from
  // many small sets.
  const VectorSetFamily family =
      RandomFamily(512, static_cast<size_t>(state.range(0)), 128, 11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedySetCover(family).iterations);
  }
}
BENCHMARK(BM_GreedySetCoverLargeSets)->Arg(512)->Arg(2048);

}  // namespace
}  // namespace kanon
