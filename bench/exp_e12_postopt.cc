// E12 — extension ablation: answering the paper's closing question
// empirically.
//
// The paper closes with "Can an approximation algorithm be found whose
// performance ratio is independent of k?" and conjectures Ω(log k) is
// unavoidable. While the worst-case question is open, this ablation
// measures how far cheap post-optimizers close the *practical* gap of
// the guaranteed ball-cover algorithm: greedy local search
// (deterministic descent) vs simulated annealing (stochastic, escapes
// local optima) vs both stacked, against the certified kNN lower bound.

#include <iostream>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "util/report.h"
#include "core/bounds.h"
#include "core/distance.h"
#include "data/generators/census.h"
#include "data/generators/clustered.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/stats.h"

namespace kanon {
namespace {

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 90));
  const uint32_t trials = static_cast<uint32_t>(cl.GetInt("trials", 3));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 3));

  bench::PrintBanner(
      "E12 (extension): post-optimizer ablation on ball-cover",
      "how much of the guaranteed algorithm's practical gap do cheap "
      "post-passes recover? (paper's closing open question, measured)",
      "census + clustered workloads, n = " + std::to_string(n) + ", k = " +
          std::to_string(k) + ", mean stars over " +
          std::to_string(trials) + " seeds; LB = certified kNN bound");

  const std::vector<std::string> arms = {
      "ball_cover",
      "ball_cover+local_search",
      "ball_cover+annealing",
      "ball_cover+annealing+local_search",
  };

  bool monotone = true;
  for (const std::string kind : {"census", "clustered"}) {
    bench::ReportTable table(
        {"arm", "mean stars", "vs LB", "mean time (ms)"});
    Accumulator lb_acc;
    std::vector<Accumulator> costs(arms.size()), times(arms.size());
    for (uint32_t seed = 1; seed <= trials; ++seed) {
      Rng rng(seed * 41);
      const Table t = [&] {
        if (kind == "census") return CensusTable({.num_rows = n}, &rng);
        ClusteredTableOptions opt;
        opt.num_rows = n;
        opt.num_columns = 8;
        opt.alphabet = 6;
        opt.num_clusters = n / 8;
        opt.noise_flips = 1;
        return ClusteredTable(opt, &rng);
      }();
      const DistanceMatrix dm(t);
      lb_acc.Add(static_cast<double>(KnnLowerBound(t, dm, k)));
      for (size_t a = 0; a < arms.size(); ++a) {
        auto algo = MakeAnonymizer(arms[a]);
        const auto result = algo->Run(t, k);
        costs[a].Add(static_cast<double>(result.cost));
        times[a].Add(result.seconds * 1e3);
      }
    }
    for (size_t a = 0; a < arms.size(); ++a) {
      table.AddRow({arms[a], bench::ReportTable::Num(costs[a].mean(), 0),
                    bench::ReportTable::Num(
                        costs[a].mean() / std::max(lb_acc.mean(), 1.0), 2),
                    bench::ReportTable::Num(times[a].mean(), 2)});
    }
    // Each post-pass must not hurt (both are clamped to their input).
    monotone &= costs[1].mean() <= costs[0].mean() + 1e-9;
    monotone &= costs[2].mean() <= costs[0].mean() + 1e-9;
    monotone &= costs[3].mean() <= costs[2].mean() + 1e-9;
    std::cout << "--- workload: " << kind
              << " (mean kNN lower bound = " << lb_acc.mean() << ") ---\n";
    table.Print();
    std::cout << "\n";
  }

  bench::PrintVerdict(monotone,
                      "post-passes never hurt; the stacked arm closes "
                      "most of the practical gap to the lower bound");
  return monotone ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
