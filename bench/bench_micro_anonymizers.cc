// M3 — end-to-end micro benchmarks: one Run() per algorithm on fixed
// workloads, so regressions in any phase (family build, cover, reduce,
// suppression) show up in a single number.

#include <algorithm>

#include "algo/ball_cover.h"
#include "algo/cluster_greedy.h"
#include "algo/exact_dp.h"
#include "algo/greedy_cover.h"
#include "algo/mondrian.h"
#include "benchmark/benchmark.h"
#include "data/generators/census.h"
#include "data/generators/clustered.h"
#include "util/random.h"

namespace kanon {
namespace {

Table ClusteredWorkload(uint32_t n, uint32_t m) {
  Rng rng(5);
  ClusteredTableOptions opt;
  opt.num_rows = n;
  opt.num_columns = m;
  opt.alphabet = 6;
  opt.num_clusters = std::max<uint32_t>(2, n / 8);
  opt.noise_flips = 1;
  return ClusteredTable(opt, &rng);
}

void BM_BallCover(benchmark::State& state) {
  const Table t = ClusteredWorkload(static_cast<uint32_t>(state.range(0)),
                                    8);
  for (auto _ : state) {
    BallCoverAnonymizer algo;
    benchmark::DoNotOptimize(algo.Run(t, 3).cost);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BallCover)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Complexity();

void BM_GreedyCoverK2(benchmark::State& state) {
  const Table t = ClusteredWorkload(static_cast<uint32_t>(state.range(0)),
                                    8);
  for (auto _ : state) {
    GreedyCoverAnonymizer algo;
    benchmark::DoNotOptimize(algo.Run(t, 2).cost);
  }
}
BENCHMARK(BM_GreedyCoverK2)->Arg(12)->Arg(20)->Arg(28);

void BM_ExactDp(benchmark::State& state) {
  const Table t = ClusteredWorkload(static_cast<uint32_t>(state.range(0)),
                                    6);
  for (auto _ : state) {
    ExactDpAnonymizer algo;
    benchmark::DoNotOptimize(algo.Run(t, 2).cost);
  }
}
BENCHMARK(BM_ExactDp)->Arg(10)->Arg(14)->Arg(16);

void BM_Mondrian(benchmark::State& state) {
  Rng rng(9);
  const Table t = CensusTable(
      {.num_rows = static_cast<uint32_t>(state.range(0))}, &rng);
  for (auto _ : state) {
    MondrianAnonymizer algo;
    benchmark::DoNotOptimize(algo.Run(t, 5).cost);
  }
}
BENCHMARK(BM_Mondrian)->Arg(128)->Arg(512)->Arg(2048);

void BM_ClusterGreedy(benchmark::State& state) {
  const Table t = ClusteredWorkload(static_cast<uint32_t>(state.range(0)),
                                    8);
  for (auto _ : state) {
    ClusterGreedyAnonymizer algo;
    benchmark::DoNotOptimize(algo.Run(t, 4).cost);
  }
}
BENCHMARK(BM_ClusterGreedy)->Arg(32)->Arg(128);

}  // namespace
}  // namespace kanon
