// E14 — extension: deployment scaling of the Theorem 4.2 algorithm.
//
// The paper's O(m n^2 + n^3) is fine for one-shot batch jobs but a
// production deployment of the algorithm bounds memory and latency by
// anonymizing in batches (groups never span batches, so the privacy
// guarantee is preserved by construction). This experiment quantifies
// the deployment trade-off on the paper's algorithm: suppression cost
// and wall-clock vs batch size, from tiny batches to the whole table.

#include <iostream>
#include <memory>
#include <string>

#include "algo/ball_cover.h"
#include "algo/local_search.h"
#include "algo/streaming.h"
#include "util/report.h"
#include "data/generators/clustered.h"
#include "util/cli.h"
#include "util/random.h"

namespace kanon {
namespace {

std::unique_ptr<Anonymizer> MakeBase() {
  return std::make_unique<LocalSearchAnonymizer>(
      std::make_unique<BallCoverAnonymizer>());
}

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 600));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 4));

  bench::PrintBanner(
      "E14 (extension): batched deployment of the Theorem 4.2 algorithm",
      "groups never span batches -> guarantee preserved; cost rises "
      "and time falls as batches shrink (superlinear base)",
      "clustered data, n = " + std::to_string(n) + ", k = " +
          std::to_string(k) + ", base = ball_cover+local_search");

  Rng rng(1);
  ClusteredTableOptions copt;
  copt.num_rows = n;
  copt.num_columns = 8;
  copt.alphabet = 6;
  copt.num_clusters = n / 8;
  copt.noise_flips = 1;
  const Table t = ClusteredTable(copt, &rng);

  bench::ReportTable table(
      {"batch size", "batches", "stars", "stars vs whole", "time (ms)"});
  size_t whole_cost = 0;
  bool monotone_cost = true;
  size_t prev_cost = 0;
  bool first = true;
  for (const size_t batch : {n, n / 2, n / 4, n / 8, n / 16}) {
    StreamingOptions opt;
    opt.batch_size = batch;
    StreamingAnonymizer algo(MakeBase(), opt);
    const auto result = algo.Run(t, k);
    if (first) whole_cost = result.cost;
    const double rel = static_cast<double>(result.cost) /
                       static_cast<double>(whole_cost);
    const size_t batches = (n + batch - 1) / batch;
    table.AddRow({bench::ReportTable::Int(static_cast<long long>(batch)),
                  bench::ReportTable::Int(static_cast<long long>(batches)),
                  bench::ReportTable::Int(static_cast<long long>(result.cost)),
                  bench::ReportTable::Num(rel, 3),
                  bench::ReportTable::Num(result.seconds * 1e3, 1)});
    if (!first && result.cost + n / 10 < prev_cost) {
      // Shrinking batches should not *improve* cost beyond noise.
      monotone_cost = false;
    }
    prev_cost = result.cost;
    first = false;
  }
  table.Print();

  std::cout << "\n(cost overhead of batching is the price of bounded "
            << "memory; the k-anonymity guarantee itself is unaffected)\n";
  bench::PrintVerdict(monotone_cost,
                      "batching trades bounded overhead in stars for "
                      "large wall-clock/memory savings");
  return 0;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
