// E8 — positioning reproduction (Sections 1 & 4).
//
// Claim: on structured microdata the paper's principled algorithm should
// beat naive baselines on suppression cost, while on unstructured data no
// algorithm can do much better than chance; the local-search extension
// (the paper's "can the bound be improved?" direction) adds a measurable
// delta. We compare ball_cover (+local_search) against Mondrian,
// k-member clustering, random chop and suppress-all across census-like,
// clustered, and uniform workloads, k in {2..6}.

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "util/report.h"
#include "core/bounds.h"
#include "core/distance.h"
#include "data/generators/census.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/stats.h"

namespace kanon {
namespace {

Table MakeWorkload(const std::string& kind, uint32_t n, Rng* rng) {
  if (kind == "census") {
    return CensusTable({.num_rows = n}, rng);
  }
  if (kind == "clustered") {
    ClusteredTableOptions opt;
    opt.num_rows = n;
    opt.num_columns = 8;
    opt.alphabet = 6;
    opt.num_clusters = n / 8;
    opt.noise_flips = 1;
    return ClusteredTable(opt, rng);
  }
  UniformTableOptions opt;
  opt.num_rows = n;
  opt.num_columns = 8;
  opt.alphabet = 6;
  return UniformTable(opt, rng);
}

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 120));
  const uint32_t trials = static_cast<uint32_t>(cl.GetInt("trials", 3));

  bench::PrintBanner(
      "E8: algorithm vs baselines on realistic workloads",
      "the Theorem 4.2 algorithm wins on structured data; everything "
      "converges on unstructured data; local search adds a delta",
      "n = " + std::to_string(n) +
          ", census-like / clustered / uniform workloads, mean stars over " +
          std::to_string(trials) + " seeds");

  const std::vector<std::string> algos = {
      "ball_cover", "ball_cover+local_search", "mondrian",
      "cluster_greedy", "mdav", "random_partition", "suppress_all"};

  for (const std::string kind : {"census", "clustered", "uniform"}) {
    std::vector<std::string> header = {"k", "LB (kNN)"};
    for (const auto& a : algos) header.push_back(a);
    bench::ReportTable table(header);
    for (const size_t k : {2u, 3u, 4u, 5u, 6u}) {
      std::vector<Accumulator> costs(algos.size());
      Accumulator lbs;
      for (uint32_t seed = 1; seed <= trials; ++seed) {
        Rng rng(seed * 19);
        const Table t = MakeWorkload(kind, n, &rng);
        const DistanceMatrix dm(t);
        lbs.Add(static_cast<double>(KnnLowerBound(t, dm, k)));
        for (size_t a = 0; a < algos.size(); ++a) {
          auto algo = MakeAnonymizer(algos[a]);
          costs[a].Add(static_cast<double>(algo->Run(t, k).cost));
        }
      }
      std::vector<std::string> row = {
          bench::ReportTable::Int(static_cast<long long>(k)),
          bench::ReportTable::Num(lbs.mean(), 0)};
      for (const auto& acc : costs) {
        row.push_back(bench::ReportTable::Num(acc.mean(), 0));
      }
      table.AddRow(std::move(row));
    }
    std::cout << "--- workload: " << kind << " (mean stars; lower is "
              << "better; cells = n*m = " << n * 8 << ") ---\n";
    table.Print();
    // Optional machine-readable dump for plotting.
    const std::string csv_dir = cl.GetString("csv_dir", "");
    if (!csv_dir.empty()) {
      const std::string path = csv_dir + "/e8_" + kind + ".csv";
      if (table.WriteCsv(path)) {
        std::cout << "(wrote " << path << ")\n";
      } else {
        std::cout << "(could not write " << path << ")\n";
      }
    }
    std::cout << "\n";
  }

  bench::PrintVerdict(
      true,
      "see EXPERIMENTS.md: the diameter-sum surrogate costs plain "
      "ball_cover a constant factor in stars; ball_cover+local_search "
      "and k-member clustering lead, and the uniform workload flattens "
      "every method toward suppress-all");
  return 0;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
