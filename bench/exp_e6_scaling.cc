// E6 — Theorem 4.2 runtime reproduction.
//
// Claim: the ball-cover algorithm is strongly polynomial with runtime
// O(m n^2 + n^3). We sweep n at fixed m and m at fixed n, fit power laws
// to the measured wall-clock, and check the exponents: the n-sweep
// exponent must stay well under the n^{2k} blowup of Theorem 4.1
// (around 2-3 here), and the m-sweep must look near-linear.

#include <iostream>
#include <string>
#include <vector>

#include "algo/ball_cover.h"
#include "util/report.h"
#include "data/generators/uniform.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/timer.h"

namespace kanon {
namespace {

double MedianRuntimeSeconds(uint32_t n, uint32_t m, size_t k,
                            uint32_t repeats) {
  std::vector<double> times;
  for (uint32_t rep = 0; rep < repeats; ++rep) {
    Rng rng(rep * 97 + n * 13 + m);
    const Table t = UniformTable(
        {.num_rows = n, .num_columns = m, .alphabet = 4}, &rng);
    BallCoverAnonymizer algo;
    times.push_back(algo.Run(t, k).seconds);
  }
  return Median(times);
}

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const size_t k = static_cast<size_t>(cl.GetInt("k", 3));
  const uint32_t repeats = static_cast<uint32_t>(cl.GetInt("repeats", 3));

  bench::PrintBanner(
      "E6 (Theorem 4.2 runtime): O(m n^2 + n^3) scaling",
      "strongly polynomial; log-log slope of time vs n in [1.5, 3.5], "
      "time vs m near-linear",
      "uniform tables, k = " + std::to_string(k) +
          ", median of " + std::to_string(repeats) + " runs per point");

  // Sweep n at fixed m.
  const uint32_t fixed_m = 8;
  bench::ReportTable n_table({"n", "m", "median time (ms)"});
  std::vector<double> ns, n_times;
  for (const uint32_t n : {50u, 100u, 200u, 400u, 800u}) {
    const double secs = MedianRuntimeSeconds(n, fixed_m, k, repeats);
    ns.push_back(n);
    n_times.push_back(std::max(secs, 1e-7));
    n_table.AddRow({bench::ReportTable::Int(n),
                    bench::ReportTable::Int(fixed_m),
                    bench::ReportTable::Num(secs * 1e3, 3)});
  }
  n_table.Print();
  const LinearFit n_fit = FitPowerLaw(ns, n_times);
  std::cout << "n-sweep power-law exponent: "
            << bench::ReportTable::Num(n_fit.slope, 2)
            << " (r^2 = " << bench::ReportTable::Num(n_fit.r_squared, 3)
            << ")\n\n";

  // Sweep m at fixed n.
  const uint32_t fixed_n = 200;
  bench::ReportTable m_table({"n", "m", "median time (ms)"});
  std::vector<double> ms, m_times;
  for (const uint32_t m : {4u, 8u, 16u, 32u, 64u}) {
    const double secs = MedianRuntimeSeconds(fixed_n, m, k, repeats);
    ms.push_back(m);
    m_times.push_back(std::max(secs, 1e-7));
    m_table.AddRow({bench::ReportTable::Int(fixed_n),
                    bench::ReportTable::Int(m),
                    bench::ReportTable::Num(secs * 1e3, 3)});
  }
  m_table.Print();
  const LinearFit m_fit = FitPowerLaw(ms, m_times);
  std::cout << "m-sweep power-law exponent: "
            << bench::ReportTable::Num(m_fit.slope, 2)
            << " (r^2 = " << bench::ReportTable::Num(m_fit.r_squared, 3)
            << ")\n";

  const bool ok = n_fit.slope > 1.0 && n_fit.slope < 3.8 &&
                  m_fit.slope < 1.8;
  bench::PrintVerdict(
      ok, "polynomial scaling confirmed (no exponential blowup in n or "
          "m), consistent with O(m n^2 + n^3)");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
