// M1 — micro benchmarks for the distance/diameter kernels that dominate
// the cover algorithms' inner loops (Definition 4.1 machinery).

#include "benchmark/benchmark.h"
#include "core/cost.h"
#include "core/distance.h"
#include "data/generators/uniform.h"
#include "util/random.h"

namespace kanon {
namespace {

Table MakeTable(int64_t n, int64_t m) {
  Rng rng(42);
  return UniformTable({.num_rows = static_cast<uint32_t>(n),
                       .num_columns = static_cast<uint32_t>(m),
                       .alphabet = 8},
                      &rng);
}

void BM_RowDistance(benchmark::State& state) {
  const Table t = MakeTable(64, state.range(0));
  RowId a = 0, b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RowDistance(t, a, b));
    a = (a + 1) % t.num_rows();
    b = (b + 3) % t.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowDistance)->Arg(8)->Arg(32)->Arg(128);

void BM_DistanceMatrixBuild(benchmark::State& state) {
  const Table t = MakeTable(state.range(0), 16);
  for (auto _ : state) {
    DistanceMatrix dm(t);
    benchmark::DoNotOptimize(dm.at(0, t.num_rows() - 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DistanceMatrixBuild)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->Complexity(benchmark::oNSquared);

void BM_SetDiameter(benchmark::State& state) {
  const Table t = MakeTable(64, 16);
  Group g;
  for (RowId r = 0; r < static_cast<RowId>(state.range(0)); ++r) {
    g.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetDiameter(t, g));
  }
}
BENCHMARK(BM_SetDiameter)->Arg(3)->Arg(5)->Arg(9)->Arg(17);

void BM_AnonCost(benchmark::State& state) {
  const Table t = MakeTable(64, 16);
  Group g;
  for (RowId r = 0; r < static_cast<RowId>(state.range(0)); ++r) {
    g.push_back(r * 2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnonCost(t, g));
  }
}
BENCHMARK(BM_AnonCost)->Arg(3)->Arg(5)->Arg(9)->Arg(17);

void BM_KthNearest(benchmark::State& state) {
  const Table t = MakeTable(state.range(0), 16);
  const DistanceMatrix dm(t);
  RowId r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dm.KthNearestDistance(r, 3));
    r = (r + 1) % t.num_rows();
  }
}
BENCHMARK(BM_KthNearest)->Arg(64)->Arg(256);

}  // namespace
}  // namespace kanon
