// M1 — micro benchmarks for the distance/diameter kernels that dominate
// the cover algorithms' inner loops (Definition 4.1 machinery).

#include <vector>

#include "benchmark/benchmark.h"
#include "core/cost.h"
#include "core/distance.h"
#include "core/distance_oracle.h"
#include "data/generators/uniform.h"
#include "util/random.h"
#include "util/run_context.h"

namespace kanon {
namespace {

Table MakeTable(int64_t n, int64_t m) {
  Rng rng(42);
  return UniformTable({.num_rows = static_cast<uint32_t>(n),
                       .num_columns = static_cast<uint32_t>(m),
                       .alphabet = 8},
                      &rng);
}

void BM_RowDistance(benchmark::State& state) {
  const Table t = MakeTable(64, state.range(0));
  RowId a = 0, b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RowDistance(t, a, b));
    a = (a + 1) % t.num_rows();
    b = (b + 3) % t.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RowDistance)->Arg(8)->Arg(32)->Arg(128);

// The seed implementation before the data-plane refactor: a serial
// row-major double loop. Kept inline as the baseline the tiled parallel
// fill is measured against (ci.sh asserts tiled < scalar at n = 2048).
void BM_DistanceMatrixBuildScalarSeed(benchmark::State& state) {
  const Table t = MakeTable(state.range(0), 16);
  const RowId n = t.num_rows();
  std::vector<ColId> dist(static_cast<size_t>(n) * n);
  for (auto _ : state) {
    for (RowId a = 0; a < n; ++a) {
      dist[static_cast<size_t>(a) * n + a] = 0;
      for (RowId b = a + 1; b < n; ++b) {
        const ColId d = RowDistance(t, a, b);
        dist[static_cast<size_t>(a) * n + b] = d;
        dist[static_cast<size_t>(b) * n + a] = d;
      }
    }
    benchmark::DoNotOptimize(dist[static_cast<size_t>(n) * n - 1]);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DistanceMatrixBuildScalarSeed)
    ->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNSquared);

// The production path: cache-blocked tile fill distributed over the
// worker pool (core/distance.cc).
void BM_DistanceMatrixBuildTiled(benchmark::State& state) {
  const Table t = MakeTable(state.range(0), 16);
  for (auto _ : state) {
    DistanceMatrix dm(t);
    benchmark::DoNotOptimize(dm.at(0, t.num_rows() - 1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DistanceMatrixBuildTiled)
    ->Arg(256)->Arg(512)->Arg(1024)->Arg(2048)
    ->Unit(benchmark::kMillisecond)
    ->Complexity(benchmark::oNSquared);

void BM_OracleLookupDense(benchmark::State& state) {
  const Table t = MakeTable(state.range(0), 16);
  RunContext ctx;
  const auto oracle =
      DistanceOracle::Create(t, DistanceOracleOptions{}, &ctx);
  RowId a = 0, b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*oracle)->at(a, b));
    a = (a + 1) % t.num_rows();
    b = (b + 3) % t.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OracleLookupDense)->Arg(256)->Arg(1024);

// On-demand path with a warm strip cache: the access pattern sweeps b
// while a stays in a small working set, which is how the cover loops
// actually probe distances.
void BM_OracleLookupOnDemand(benchmark::State& state) {
  const Table t = MakeTable(state.range(0), 16);
  RunContext ctx;
  const auto oracle = DistanceOracle::Create(
      t, DistanceOracleOptions{.dense_threshold = 0, .max_cached_strips = 16},
      &ctx);
  RowId a = 0, b = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*oracle)->at(a % 8, b));
    a = (a + 1) % t.num_rows();
    b = (b + 3) % t.num_rows();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OracleLookupOnDemand)->Arg(256)->Arg(1024);

void BM_SetDiameter(benchmark::State& state) {
  const Table t = MakeTable(64, 16);
  Group g;
  for (RowId r = 0; r < static_cast<RowId>(state.range(0)); ++r) {
    g.push_back(r);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetDiameter(t, g));
  }
}
BENCHMARK(BM_SetDiameter)->Arg(3)->Arg(5)->Arg(9)->Arg(17);

void BM_AnonCost(benchmark::State& state) {
  const Table t = MakeTable(64, 16);
  Group g;
  for (RowId r = 0; r < static_cast<RowId>(state.range(0)); ++r) {
    g.push_back(r * 2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(AnonCost(t, g));
  }
}
BENCHMARK(BM_AnonCost)->Arg(3)->Arg(5)->Arg(9)->Arg(17);

void BM_KthNearest(benchmark::State& state) {
  const Table t = MakeTable(state.range(0), 16);
  const DistanceMatrix dm(t);
  RowId r = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dm.KthNearestDistance(r, 3));
    r = (r + 1) % t.num_rows();
  }
}
BENCHMARK(BM_KthNearest)->Arg(64)->Arg(256);

}  // namespace
}  // namespace kanon
