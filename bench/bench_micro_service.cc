// M5 — micro benchmarks for the service layer's robustness machinery.
// The headline number is the disarmed KANON_FAULT_POINT: the macro sits
// in solver hot loops (exact_dp sweeps, branch_bound nodes, ParallelFor
// chunks), so its disarmed cost must stay within noise (~1%) of the
// bare loop. Run BM_TightLoopBare vs BM_TightLoopWithFaultPoint and
// compare ns/op; BM_FaultPointArmed shows the armed (slow-path) cost
// for contrast, and the remaining benches size the other per-job
// robustness costs (backoff draw, breaker check, admission).

#include <atomic>

#include "benchmark/benchmark.h"
#include "fault/fault.h"
#include "service/breaker.h"
#include "service/queue.h"
#include "service/retry.h"
#include "util/random.h"

namespace kanon {
namespace {

/// Baseline: the work a solver checkpoint does anyway (one relaxed
/// atomic read and a branch), with no fault point.
void BM_TightLoopBare(benchmark::State& state) {
  std::atomic<uint64_t> counter{0};
  uint64_t sum = 0;
  for (auto _ : state) {
    sum += counter.load(std::memory_order_relaxed) + 1;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TightLoopBare);

/// The same loop with a disarmed KANON_FAULT_POINT in it. The delta
/// over BM_TightLoopBare is the macro's true hot-loop overhead; CI's
/// acceptance bar is <= 1% once the loop does any real solver work.
void BM_TightLoopWithFaultPoint(benchmark::State& state) {
  FaultRegistry::Instance().Disarm();
  std::atomic<uint64_t> counter{0};
  uint64_t sum = 0;
  for (auto _ : state) {
    sum += counter.load(std::memory_order_relaxed) + 1;
    if (KANON_FAULT_POINT("bench.tight_loop")) sum += 1000;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TightLoopWithFaultPoint);

/// Armed slow path: hit counting plus the SplitMix64 decision.
void BM_FaultPointArmed(benchmark::State& state) {
  FaultPlan plan;
  plan.seed = 42;
  plan.sites.push_back({.site = "bench.armed_loop", .probability = 0.001});
  ScopedFaultInjection injection(plan);
  uint64_t sum = 0;
  for (auto _ : state) {
    if (KANON_FAULT_POINT("bench.armed_loop")) sum += 1000;
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FaultPointArmed);

void BM_BackoffDraw(benchmark::State& state) {
  const RetryPolicy policy;
  Rng rng(RetrySeedForJob(7));
  double prev = 0.0;
  for (auto _ : state) {
    prev = NextBackoffMillis(policy, prev, rng);
    benchmark::DoNotOptimize(prev);
    if (prev >= policy.cap_ms) prev = 0.0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BackoffDraw);

/// Per-stage breaker consultation, as the chain does before each
/// non-final stage (mutex + map lookup + state check).
void BM_BreakerAllow(benchmark::State& state) {
  BreakerBoard board;
  board.Record("exact_dp", true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(board.Allow("exact_dp"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BreakerAllow);

/// One admit/dispatch round trip, including the shedding arithmetic,
/// RunContext creation and the cancellation-registry bookkeeping. The
/// queue is drained every iteration so depth (and thus occupancy) stays
/// constant.
void BM_QueueSubmitPopForget(benchmark::State& state) {
  JobQueue queue(64);
  AnonymizeRequest request;
  request.algorithm = "suppress_all";
  request.k = 1;
  ServiceError error = ServiceError::kNone;
  for (auto _ : state) {
    StatusOr<JobQueue::Ticket> ticket = queue.Submit(request, &error);
    benchmark::DoNotOptimize(ticket.ok());
    std::optional<Job> job = queue.Pop();
    queue.Forget(job->id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QueueSubmitPopForget);

}  // namespace
}  // namespace kanon
