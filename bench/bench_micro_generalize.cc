// M4 — micro benchmarks for the generalization substrate: label lookup,
// feasibility checks (the lattice algorithms' inner loop), and the two
// lattice searches end to end.

#include "benchmark/benchmark.h"
#include "data/generators/census.h"
#include "generalize/apply.h"
#include "generalize/optimal_lattice.h"
#include "generalize/samarati.h"
#include "util/random.h"

namespace kanon {
namespace {

Table Census(int64_t n) {
  Rng rng(3);
  return CensusTable({.num_rows = static_cast<uint32_t>(n)}, &rng);
}

void BM_CheckGeneralization(benchmark::State& state) {
  const Table t = Census(state.range(0));
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  const GeneralizationVector mid(t.num_columns(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        CheckGeneralization(t, hs, mid, 3, 5).feasible);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckGeneralization)->Arg(64)->Arg(256)->Arg(1024);

void BM_ApplyGeneralization(benchmark::State& state) {
  const Table t = Census(state.range(0));
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  GeneralizationVector top(t.num_columns());
  for (ColId c = 0; c < t.num_columns(); ++c) {
    top[c] = hs[c].max_level();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ApplyGeneralization(t, hs, top).num_rows());
  }
}
BENCHMARK(BM_ApplyGeneralization)->Arg(64)->Arg(256);

void BM_Samarati(benchmark::State& state) {
  const Table t = Census(state.range(0));
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SamaratiAnonymize(t, hs, 3, {}).height);
  }
}
BENCHMARK(BM_Samarati)->Arg(64)->Arg(128);

void BM_OptimalLattice(benchmark::State& state) {
  const Table t = Census(state.range(0));
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        OptimalLatticeAnonymize(t, hs, 3, {}).height);
  }
}
BENCHMARK(BM_OptimalLattice)->Arg(64)->Arg(128);

}  // namespace
}  // namespace kanon
