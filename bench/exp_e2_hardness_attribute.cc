// E2 — Theorem 3.2 reproduction.
//
// Claim: k-dimensional PERFECT MATCHING reduces to k-ANONYMITY ON
// ATTRIBUTES over a binary alphabet: the incidence instance of a simple
// k-hypergraph admits a k-anonymization suppressing exactly m - n/k
// attributes iff H has a perfect matching (kept attributes = matching).
// We also report the greedy attribute heuristic's gap on the same
// instances, since the hardness explains why it cannot be exact.

#include <string>

#include "algo/attribute_exact.h"
#include "algo/attribute_greedy.h"
#include "util/report.h"
#include "hypergraph/generators.h"
#include "hypergraph/matching.h"
#include "reductions/matching_to_attribute.h"
#include "util/cli.h"
#include "util/random.h"

namespace kanon {
namespace {

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t trials = static_cast<uint32_t>(cl.GetInt("trials", 5));

  bench::PrintBanner(
      "E2 (Theorem 3.2): PERFECT MATCHING -> k-ATTRIBUTE-ANONYMITY",
      "min #suppressed attributes == m - n/k iff H has a PM; binary "
      "alphabet",
      "planted-PM (YES) and matching-free (NO) hypergraphs, k in {3, 4}; "
      "exact lattice search as the optimality oracle");

  bench::ReportTable table({"seed", "k", "instance", "n", "m", "threshold",
                            "exact", "greedy", "claim"});
  bool all_ok = true;

  for (const uint32_t k : {3u, 4u}) {
    const uint32_t n = (k == 3) ? 9 : 8;
    for (uint32_t seed = 1; seed <= trials; ++seed) {
      Rng rng(seed * 17 + k);
      const Hypergraph yes = PlantedMatchingHypergraph(
          {.num_vertices = n, .k = k, .extra_edges = 4}, &rng);
      const Table v = BuildAttributeInstance(yes);
      ExactAttributeAnonymizer exact;
      GreedyAttributeAnonymizer greedy;
      const auto exact_result = exact.Solve(v, k);
      const auto greedy_result = greedy.Solve(v, k);
      const size_t threshold = AttributeHardnessThreshold(yes);
      const auto extracted =
          ExtractMatchingFromColumns(yes, v, exact_result.suppressed);
      const bool ok = exact_result.num_suppressed() == threshold &&
                      extracted.has_value();
      all_ok &= ok;
      table.AddRow(
          {bench::ReportTable::Int(seed), bench::ReportTable::Int(k),
           "YES", bench::ReportTable::Int(n),
           bench::ReportTable::Int(yes.num_edges()),
           bench::ReportTable::Int(static_cast<long long>(threshold)),
           bench::ReportTable::Int(
               static_cast<long long>(exact_result.num_suppressed())),
           bench::ReportTable::Int(
               static_cast<long long>(greedy_result.num_suppressed())),
           ok ? "OPT==thr, matching extracted" : "VIOLATED"});
    }
    for (uint32_t seed = 1; seed <= trials; ++seed) {
      Rng rng(seed * 31 + k);
      const Hypergraph no =
          MatchingFreeHypergraph(n + (n % k == 0 ? 0 : k - n % k), k,
                                 6, &rng);
      const Table v = BuildAttributeInstance(no);
      ExactAttributeAnonymizer exact;
      const auto exact_result = exact.Solve(v, k);
      const size_t threshold = AttributeHardnessThreshold(no);
      const bool ok =
          exact_result.num_suppressed() > threshold &&
          !HasPerfectMatching(no);
      all_ok &= ok;
      table.AddRow(
          {bench::ReportTable::Int(seed), bench::ReportTable::Int(k), "NO",
           bench::ReportTable::Int(no.num_vertices()),
           bench::ReportTable::Int(no.num_edges()),
           bench::ReportTable::Int(static_cast<long long>(threshold)),
           bench::ReportTable::Int(
               static_cast<long long>(exact_result.num_suppressed())),
           "-", ok ? "OPT > thr" : "VIOLATED"});
    }
  }

  table.Print();
  bench::PrintVerdict(all_ok,
                      all_ok ? "Theorem 3.2 equivalence reproduced on all "
                               "instances"
                             : "reduction equivalence violated");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
