// E1 — Theorem 3.1 reproduction.
//
// Claim: 3-DIMENSIONAL PERFECT MATCHING reduces to optimal 3-ANONYMITY:
// the instance built from a simple 3-hypergraph H (n vertices, m edges)
// has OPT = n(m-1) iff H has a perfect matching, and any anonymizer at
// that cost encodes one. We regenerate the "table" of the theorem: for a
// batch of planted-PM (YES) and matching-free (NO) hypergraphs, the exact
// optimum sits exactly at / strictly above the threshold, and matchings
// extract from optimal suppressors.

#include <iostream>

#include "algo/exact_dp.h"
#include "util/report.h"
#include "hypergraph/generators.h"
#include "hypergraph/matching.h"
#include "reductions/matching_to_kanon.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/run_context.h"

namespace kanon {
namespace {

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t trials =
      static_cast<uint32_t>(cl.GetInt("trials", 6));
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 9));
  const uint32_t extra = static_cast<uint32_t>(cl.GetInt("extra", 3));
  // Optional wall-clock bound per exact solve; interrupted instances are
  // reported as "stopped" and skipped, not counted as violations.
  const long long deadline_ms = cl.GetInt("deadline-ms", 0);
  const uint32_t k = 3;
  size_t stopped_runs = 0;

  bench::PrintBanner(
      "E1 (Theorem 3.1): PERFECT MATCHING -> k-ANONYMITY",
      "OPT(V_H) == n(m-1) iff H has a perfect matching (k = 3)",
      "planted-PM (YES) and matching-free (NO) 3-hypergraphs, n = " +
          std::to_string(n) + ", exact optimum via subset DP");

  bench::ReportTable table({"seed", "instance", "n", "m", "threshold",
                            "OPT", "PM exists", "claim"});
  bool all_ok = true;

  for (uint32_t seed = 1; seed <= trials; ++seed) {
    Rng rng(seed);
    const Hypergraph yes = PlantedMatchingHypergraph(
        {.num_vertices = n, .k = k, .extra_edges = extra}, &rng);
    const Table v = BuildKAnonInstance(yes);
    ExactDpAnonymizer exact;
    RunContext ctx;
    if (deadline_ms > 0) {
      ctx.set_deadline_after_millis(static_cast<double>(deadline_ms));
    }
    const auto result = exact.Run(v, k, &ctx);
    const size_t threshold = KAnonHardnessThreshold(yes);
    if (result.termination != StopReason::kNone) {
      ++stopped_runs;
      table.AddRow({bench::ReportTable::Int(seed), "YES (planted PM)",
                    bench::ReportTable::Int(n),
                    bench::ReportTable::Int(yes.num_edges()),
                    bench::ReportTable::Int(static_cast<long long>(threshold)),
                    "-", "yes",
                    std::string("stopped: ") +
                        StopReasonName(result.termination)});
      continue;
    }
    const bool meets = result.cost == threshold;
    // An optimal anonymizer at the threshold must encode a matching.
    const auto extracted =
        ExtractMatching(yes, v, result.MakeSuppressor(v));
    const bool ok = meets && extracted.has_value() &&
                    IsPerfectMatching(yes, *extracted);
    all_ok &= ok;
    table.AddRow({bench::ReportTable::Int(seed), "YES (planted PM)",
                  bench::ReportTable::Int(n),
                  bench::ReportTable::Int(yes.num_edges()),
                  bench::ReportTable::Int(static_cast<long long>(threshold)),
                  bench::ReportTable::Int(static_cast<long long>(result.cost)),
                  "yes", ok ? "OPT==thr, matching extracted" : "VIOLATED"});
  }

  // The construction generalizes to any k >= 3 (the paper proves k = 3
  // and notes "a straightforward generalization"); exercise k = 4 too.
  for (uint32_t seed = 1; seed <= trials / 2 + 1; ++seed) {
    Rng rng(seed + 500);
    const Hypergraph yes4 = PlantedMatchingHypergraph(
        {.num_vertices = 8, .k = 4, .extra_edges = 2}, &rng);
    const Table v = BuildKAnonInstance(yes4);
    ExactDpAnonymizer exact;
    RunContext ctx;
    if (deadline_ms > 0) {
      ctx.set_deadline_after_millis(static_cast<double>(deadline_ms));
    }
    const auto result = exact.Run(v, 4, &ctx);
    const size_t threshold = KAnonHardnessThreshold(yes4);
    if (result.termination != StopReason::kNone) {
      ++stopped_runs;
      table.AddRow({bench::ReportTable::Int(seed), "YES (k=4)",
                    bench::ReportTable::Int(8),
                    bench::ReportTable::Int(yes4.num_edges()),
                    bench::ReportTable::Int(static_cast<long long>(threshold)),
                    "-", "yes",
                    std::string("stopped: ") +
                        StopReasonName(result.termination)});
      continue;
    }
    const auto extracted =
        ExtractMatching(yes4, v, result.MakeSuppressor(v));
    const bool ok = result.cost == threshold && extracted.has_value();
    all_ok &= ok;
    table.AddRow({bench::ReportTable::Int(seed), "YES (k=4)",
                  bench::ReportTable::Int(8),
                  bench::ReportTable::Int(yes4.num_edges()),
                  bench::ReportTable::Int(static_cast<long long>(threshold)),
                  bench::ReportTable::Int(static_cast<long long>(result.cost)),
                  "yes", ok ? "OPT==thr, matching extracted" : "VIOLATED"});
  }

  for (uint32_t seed = 1; seed <= trials; ++seed) {
    Rng rng(seed + 1000);
    const Hypergraph no = MatchingFreeHypergraph(n, k, extra + n / k, &rng);
    const Table v = BuildKAnonInstance(no);
    ExactDpAnonymizer exact;
    RunContext ctx;
    if (deadline_ms > 0) {
      ctx.set_deadline_after_millis(static_cast<double>(deadline_ms));
    }
    const auto result = exact.Run(v, k, &ctx);
    const size_t threshold = KAnonHardnessThreshold(no);
    if (result.termination != StopReason::kNone) {
      ++stopped_runs;
      table.AddRow({bench::ReportTable::Int(seed), "NO (matching-free)",
                    bench::ReportTable::Int(n),
                    bench::ReportTable::Int(no.num_edges()),
                    bench::ReportTable::Int(static_cast<long long>(threshold)),
                    "-", "no",
                    std::string("stopped: ") +
                        StopReasonName(result.termination)});
      continue;
    }
    const bool ok = result.cost > threshold && !HasPerfectMatching(no);
    all_ok &= ok;
    table.AddRow({bench::ReportTable::Int(seed), "NO (matching-free)",
                  bench::ReportTable::Int(n),
                  bench::ReportTable::Int(no.num_edges()),
                  bench::ReportTable::Int(static_cast<long long>(threshold)),
                  bench::ReportTable::Int(static_cast<long long>(result.cost)),
                  "no", ok ? "OPT > thr" : "VIOLATED"});
  }

  table.Print();
  if (stopped_runs > 0) {
    std::cout << stopped_runs
              << " run(s) stopped at the --deadline-ms bound and were "
                 "skipped\n";
  }
  bench::PrintVerdict(all_ok,
                      all_ok ? "Theorem 3.1 equivalence reproduced on all "
                               "instances"
                             : "reduction equivalence violated");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
