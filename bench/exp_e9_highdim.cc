// E9 — high-dimensional regime reproduction (Section 1 remark).
//
// Claim: "our algorithm will probably be best applied in cases with
// high-dimensional records" — the exact algorithm of [Sweeney 03] needs
// m = O(log n), so as m grows past log n the paper's polynomial
// algorithm is the only principled option. We sweep m at fixed n and
// report cost (normalized by total cells) and runtime for ball_cover vs
// the practical baselines, plus the m/log2(n) ratio marking the regime
// boundary.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "util/report.h"
#include "data/generators/clustered.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/stats.h"

namespace kanon {
namespace {

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 100));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 3));
  const uint32_t trials = static_cast<uint32_t>(cl.GetInt("trials", 3));

  bench::PrintBanner(
      "E9: high-dimensional records (m >> log n)",
      "the strongly polynomial algorithm remains effective as m grows "
      "past the m = O(log n) exact-algorithm regime",
      "clustered tables, n = " + std::to_string(n) + ", k = " +
          std::to_string(k) + ", m swept 8 -> 128");

  const std::vector<std::string> algos = {"ball_cover", "mondrian",
                                          "cluster_greedy", "mdav",
                                          "random_partition"};
  std::vector<std::string> header = {"m", "m/log2(n)"};
  for (const auto& a : algos) {
    header.push_back(a + " star%");
  }
  header.push_back("ball_cover ms");
  bench::ReportTable table(header);

  std::vector<double> ball_fracs;
  std::vector<double> random_fracs;
  for (const uint32_t m : {8u, 16u, 32u, 64u, 128u}) {
    std::vector<Accumulator> fracs(algos.size());
    Accumulator ball_time;
    for (uint32_t seed = 1; seed <= trials; ++seed) {
      Rng rng(seed * 23 + m);
      ClusteredTableOptions opt;
      opt.num_rows = n;
      opt.num_columns = m;
      opt.alphabet = 6;
      opt.num_clusters = n / 8;
      opt.noise_flips = std::max(1u, m / 16);
      const Table t = ClusteredTable(opt, &rng);
      const double cells = static_cast<double>(n) * m;
      for (size_t a = 0; a < algos.size(); ++a) {
        auto algo = MakeAnonymizer(algos[a]);
        const auto result = algo->Run(t, k);
        fracs[a].Add(100.0 * static_cast<double>(result.cost) / cells);
        if (algos[a] == "ball_cover") ball_time.Add(result.seconds * 1e3);
      }
    }
    std::vector<std::string> row = {
        bench::ReportTable::Int(m),
        bench::ReportTable::Num(m / std::log2(static_cast<double>(n)), 1)};
    for (const auto& acc : fracs) {
      row.push_back(bench::ReportTable::Num(acc.mean(), 1));
    }
    row.push_back(bench::ReportTable::Num(ball_time.mean(), 2));
    table.AddRow(std::move(row));
    ball_fracs.push_back(fracs[0].mean());
    random_fracs.push_back(fracs[algos.size() - 1].mean());
  }
  table.Print();

  // The regime claim: ball_cover's advantage over random chop persists
  // (or grows) at the highest dimension measured.
  const bool ok = ball_fracs.back() < random_fracs.back();
  bench::PrintVerdict(ok,
                      "principled grouping keeps beating chance at m = "
                      "128 >> log2(n) — the paper's intended regime");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
