// E4 — Theorem 4.2 reproduction (+ ablations).
//
// Claim: the strongly polynomial ball-cover algorithm is a
// 6k(1 + ln m)-approximation. We measure its ratio against exact OPT on
// small instances and against the certified kNN lower bound on larger
// ones, and run the two design ablations from DESIGN.md:
//   * family: radius balls S_{c,i} vs pairwise balls S_{c,c'},
//   * weight: exact ball diameter vs the Lemma 4.2 bound 2i.

#include <cmath>
#include <iostream>
#include <memory>
#include <string>

#include "algo/ball_cover.h"
#include "algo/exact_dp.h"
#include "util/report.h"
#include "core/bounds.h"
#include "core/distance.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/stats.h"

namespace kanon {
namespace {

struct Config {
  std::string label;
  BallFamilyMode family;
  BallWeightMode weight;
};

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t trials = static_cast<uint32_t>(cl.GetInt("trials", 8));
  const uint32_t n_small = static_cast<uint32_t>(cl.GetInt("n_small", 12));
  const uint32_t n_large = static_cast<uint32_t>(cl.GetInt("n_large", 120));
  const uint32_t m = static_cast<uint32_t>(cl.GetInt("m", 6));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 3));

  bench::PrintBanner(
      "E4 (Theorem 4.2): ball-cover approximation ratio + ablations",
      "cost/OPT <= 6k(1+ln m); strongly polynomial (no n^{2k} blowup)",
      "small n vs exact OPT, large n vs certified kNN lower bound; "
      "ablations over ball family and weight mode");

  const std::vector<Config> configs = {
      {"radius/exact-diam", BallFamilyMode::kRadius,
       BallWeightMode::kExactDiameter},
      {"radius/2i-bound", BallFamilyMode::kRadius,
       BallWeightMode::kTwiceRadius},
      {"pairwise/exact-diam", BallFamilyMode::kPairwise,
       BallWeightMode::kExactDiameter},
      {"pairwise/2i-bound", BallFamilyMode::kPairwise,
       BallWeightMode::kTwiceRadius},
  };
  const double bound = 6.0 * static_cast<double>(k) *
                       (1.0 + std::log(static_cast<double>(m)));

  // Part 1: against exact optimum (small n, clustered workload so OPT is
  // nontrivial but nonzero).
  bench::ReportTable small_table({"config", "mean ratio vs OPT",
                                  "max ratio", "bound 6k(1+ln m)",
                                  "mean time (ms)"});
  bool within = true;
  for (const Config& config : configs) {
    Accumulator ratios, times;
    for (uint32_t seed = 1; seed <= trials; ++seed) {
      Rng rng(seed * 7);
      ClusteredTableOptions opt;
      opt.num_rows = n_small;
      opt.num_columns = m;
      opt.alphabet = 5;
      opt.num_clusters = n_small / 4;
      opt.noise_flips = 1;
      const Table t = ClusteredTable(opt, &rng);
      ExactDpAnonymizer exact;
      BallCoverOptions ball_opt;
      ball_opt.family_mode = config.family;
      ball_opt.weight_mode = config.weight;
      BallCoverAnonymizer ball(ball_opt);
      const size_t opt_cost = exact.Run(t, k).cost;
      const auto result = ball.Run(t, k);
      times.Add(result.seconds * 1e3);
      if (opt_cost == 0) {
        if (result.cost != 0) within = false;
        continue;
      }
      const double ratio = static_cast<double>(result.cost) /
                           static_cast<double>(opt_cost);
      ratios.Add(ratio);
      if (ratio > bound) within = false;
    }
    small_table.AddRow({config.label,
                        ratios.count() ? bench::ReportTable::Num(ratios.mean())
                                       : "-",
                        ratios.count() ? bench::ReportTable::Num(ratios.max())
                                       : "-",
                        bench::ReportTable::Num(bound, 2),
                        bench::ReportTable::Num(times.mean(), 2)});
  }
  small_table.Print();

  // Part 2: against the certified kNN lower bound at a size the
  // exponential algorithms cannot touch.
  std::cout << "\nlarge-instance audit (n = " << n_large
            << ", ratio vs certified lower bound — an overestimate of "
               "the true ratio):\n";
  bench::ReportTable large_table(
      {"config", "mean cost", "mean LB", "cost/LB", "time (ms)"});
  for (const Config& config : configs) {
    Accumulator costs, lbs, ratios, times;
    for (uint32_t seed = 1; seed <= 3; ++seed) {
      Rng rng(seed * 101);
      ClusteredTableOptions opt;
      opt.num_rows = n_large;
      opt.num_columns = m;
      opt.alphabet = 5;
      opt.num_clusters = n_large / 6;
      opt.noise_flips = 1;
      const Table t = ClusteredTable(opt, &rng);
      const DistanceMatrix dm(t);
      const size_t lb = KnnLowerBound(t, dm, k);
      BallCoverOptions ball_opt;
      ball_opt.family_mode = config.family;
      ball_opt.weight_mode = config.weight;
      BallCoverAnonymizer ball(ball_opt);
      const auto result = ball.Run(t, k);
      costs.Add(static_cast<double>(result.cost));
      lbs.Add(static_cast<double>(lb));
      if (lb > 0) {
        ratios.Add(static_cast<double>(result.cost) /
                   static_cast<double>(lb));
      }
      times.Add(result.seconds * 1e3);
    }
    large_table.AddRow(
        {config.label, bench::ReportTable::Num(costs.mean(), 1),
         bench::ReportTable::Num(lbs.mean(), 1),
         ratios.count() ? bench::ReportTable::Num(ratios.mean()) : "-",
         bench::ReportTable::Num(times.mean(), 2)});
  }
  large_table.Print();

  bench::PrintVerdict(within,
                      "ball-cover ratios well inside 6k(1+ln m); family / "
                      "weight ablations agree within noise");
  return within ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
