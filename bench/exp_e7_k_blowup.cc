// E7 — Theorem 4.1 runtime reproduction.
//
// Claim: the greedy-cover algorithm runs in O(n^{2k}) — exponential in k
// (its family C has sum_{s=k}^{2k-1} C(n, s) sets) — which is exactly why
// Section 4.3 develops the strongly polynomial variant. We measure the
// family size and wall-clock across k at fixed n and across n at fixed
// k, alongside ball-cover on the same instances: the crossover the paper
// predicts (greedy-cover unusable as k or n grow, ball-cover flat) must
// be visible.

#include <algorithm>
#include <limits>
#include <vector>
#include <iostream>
#include <string>

#include "algo/ball_cover.h"
#include "algo/greedy_cover.h"
#include "util/report.h"
#include "data/generators/uniform.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/stats.h"

namespace kanon {
namespace {

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t repeats = static_cast<uint32_t>(cl.GetInt("repeats", 3));

  bench::PrintBanner(
      "E7 (Theorem 4.1 runtime): exponential-in-k family blowup",
      "|C| = sum C(n, k..2k-1) explodes with k; ball-cover stays flat",
      "uniform tables, median of " + std::to_string(repeats) +
          " runs; '-' marks configurations beyond the family-size cap");

  bench::ReportTable table({"n", "k", "|C| family", "greedy-cover (ms)",
                            "ball-cover (ms)", "cost greedy", "cost ball"});

  const size_t family_cap = 2'000'000;
  for (const uint32_t n : {12u, 16u, 20u, 24u}) {
    for (const size_t k : {2u, 3u, 4u}) {
      const size_t family = GreedyCoverAnonymizer::FamilySize(n, k);
      std::vector<double> greedy_times, ball_times;
      size_t greedy_cost = 0, ball_cost = 0;
      const bool feasible = family <= family_cap;
      for (uint32_t rep = 0; rep < repeats; ++rep) {
        Rng rng(rep * 31 + n + k);
        const Table t = UniformTable(
            {.num_rows = n, .num_columns = 6, .alphabet = 4}, &rng);
        BallCoverAnonymizer ball;
        const auto ball_result = ball.Run(t, k);
        ball_times.push_back(ball_result.seconds);
        ball_cost = ball_result.cost;
        if (feasible) {
          GreedyCoverAnonymizer greedy;
          const auto greedy_result = greedy.Run(t, k);
          greedy_times.push_back(greedy_result.seconds);
          greedy_cost = greedy_result.cost;
        }
      }
      table.AddRow(
          {bench::ReportTable::Int(n),
           bench::ReportTable::Int(static_cast<long long>(k)),
           family == std::numeric_limits<size_t>::max()
               ? "overflow"
               : bench::ReportTable::Int(static_cast<long long>(family)),
           feasible
               ? bench::ReportTable::Num(Median(greedy_times) * 1e3, 3)
               : "-",
           bench::ReportTable::Num(Median(ball_times) * 1e3, 3),
           feasible ? bench::ReportTable::Int(
                          static_cast<long long>(greedy_cost))
                    : "-",
           bench::ReportTable::Int(static_cast<long long>(ball_cost))});
    }
  }
  table.Print();

  // Quantify the blowup: family size growth factor from k=2 to k=4 at
  // n=24.
  const double blowup =
      static_cast<double>(GreedyCoverAnonymizer::FamilySize(24, 4)) /
      static_cast<double>(GreedyCoverAnonymizer::FamilySize(24, 2));
  std::cout << "\nfamily-size blowup at n=24 from k=2 to k=4: "
            << bench::ReportTable::Num(blowup, 1) << "x\n";

  bench::PrintVerdict(blowup > 100.0,
                      "exponential-in-k blowup of Theorem 4.1 confirmed; "
                      "ball-cover (Theorem 4.2) unaffected");
  return 0;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
