// E3 — Theorem 4.1 reproduction.
//
// Claim: the greedy-cover algorithm over all [k, 2k-1]-subsets is an
// O(k log k)-approximation (constant <= 4, per the abstract) to optimal
// k-anonymity. We measure cost(greedy_cover) / OPT against both the
// paper's stated bound 3k(1 + ln k) and the corrected sound bound
// 4k(1 + ln 2k) (see DESIGN.md "Lemma 4.1 constants"), across uniform
// and clustered workloads with the exact DP as the OPT oracle.

#include <cmath>
#include <string>

#include "algo/exact_dp.h"
#include "algo/greedy_cover.h"
#include "util/report.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/stats.h"

namespace kanon {
namespace {

Table MakeWorkload(const std::string& kind, uint32_t n, uint32_t m,
                   uint32_t alphabet, Rng* rng) {
  if (kind == "clustered") {
    ClusteredTableOptions opt;
    opt.num_rows = n;
    opt.num_columns = m;
    opt.alphabet = alphabet;
    opt.num_clusters = std::max<uint32_t>(2, n / 4);
    opt.noise_flips = 1;
    return ClusteredTable(opt, rng);
  }
  UniformTableOptions opt;
  opt.num_rows = n;
  opt.num_columns = m;
  opt.alphabet = alphabet;
  return UniformTable(opt, rng);
}

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t trials = static_cast<uint32_t>(cl.GetInt("trials", 8));
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 12));
  const uint32_t m = static_cast<uint32_t>(cl.GetInt("m", 6));

  bench::PrintBanner(
      "E3 (Theorem 4.1): greedy-cover approximation ratio",
      "cost/OPT <= 3k(1+ln k) as stated; <= 4k(1+ln 2k) corrected; "
      "runtime O(n^{2k})",
      "n = " + std::to_string(n) + ", m = " + std::to_string(m) +
          ", k in {2, 3}, uniform + clustered workloads, " +
          std::to_string(trials) + " seeds each; OPT from exact DP");

  bench::ReportTable table({"workload", "k", "mean ratio", "max ratio",
                            "stated bound", "corrected bound",
                            "zero-OPT hits", "mean time (ms)"});
  bool within = true;

  for (const std::string kind : {"uniform", "clustered"}) {
    for (const size_t k : {2u, 3u}) {
      Accumulator ratios;
      Accumulator times;
      size_t zero_opt = 0;
      for (uint32_t seed = 1; seed <= trials; ++seed) {
        Rng rng(seed * 13 + k);
        const Table t = MakeWorkload(kind, n, m, 4, &rng);
        ExactDpAnonymizer exact;
        GreedyCoverAnonymizer greedy;
        const size_t opt = exact.Run(t, k).cost;
        const auto result = greedy.Run(t, k);
        times.Add(result.seconds * 1e3);
        if (opt == 0) {
          ++zero_opt;
          if (result.cost != 0) within = false;
          continue;
        }
        ratios.Add(static_cast<double>(result.cost) /
                   static_cast<double>(opt));
      }
      const double stated =
          3.0 * static_cast<double>(k) *
          (1.0 + std::log(static_cast<double>(k)));
      const double corrected =
          4.0 * static_cast<double>(k) *
          (1.0 + std::log(2.0 * static_cast<double>(k)));
      if (ratios.count() > 0 && ratios.max() > corrected) within = false;
      table.AddRow(
          {kind, bench::ReportTable::Int(static_cast<long long>(k)),
           ratios.count() ? bench::ReportTable::Num(ratios.mean()) : "-",
           ratios.count() ? bench::ReportTable::Num(ratios.max()) : "-",
           bench::ReportTable::Num(stated, 2),
           bench::ReportTable::Num(corrected, 2),
           bench::ReportTable::Int(static_cast<long long>(zero_opt)),
           bench::ReportTable::Num(times.mean(), 2)});
    }
  }

  table.Print();
  bench::PrintVerdict(
      within,
      "measured ratios sit far below the theoretical bounds (paper's "
      "qualitative claim: practical on small k)");
  return within ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
