// E5 — Lemma 4.1 reproduction.
//
// Claim (provable form; see DESIGN.md "Lemma 4.1 constants"):
//     k · dΠ*  <=  OPT(V)  <=  (2k-1)(2k-2) · dΠ*
// for the diameter-sum-minimizing (k, 2k-1)-partition Π*. We compute
// both sides exactly (exhaustive dΠ*, exact-DP OPT) on small instances
// and report the sandwich plus how often the paper's as-printed tighter
// bound OPT <= (2k-1) dΠ* happens to hold empirically.

#include <functional>
#include <iostream>
#include <string>

#include "algo/exact_dp.h"
#include "util/report.h"
#include "core/distance.h"
#include "data/generators/clustered.h"
#include "data/generators/uniform.h"
#include "util/cli.h"
#include "util/random.h"

namespace kanon {
namespace {

/// Exhaustive minimum diameter sum over (k, 2k-1)-partitions.
size_t MinDiameterSum(const Table& table, size_t k) {
  const RowId n = table.num_rows();
  const DistanceMatrix dm(table);
  size_t best = static_cast<size_t>(-1);
  std::vector<bool> assigned(n, false);
  std::function<void(size_t)> recurse = [&](size_t current) {
    if (current >= best) return;
    RowId anchor = n;
    for (RowId r = 0; r < n; ++r) {
      if (!assigned[r]) {
        anchor = r;
        break;
      }
    }
    if (anchor == n) {
      best = current;
      return;
    }
    std::vector<RowId> candidates;
    for (RowId r = anchor + 1; r < n; ++r) {
      if (!assigned[r]) candidates.push_back(r);
    }
    Group group = {anchor};
    std::function<void(size_t)> extend = [&](size_t pos) {
      if (group.size() >= k) {
        for (const RowId r : group) assigned[r] = true;
        recurse(current + dm.Diameter(group));
        for (const RowId r : group) assigned[r] = false;
      }
      if (group.size() == 2 * k - 1) return;
      for (size_t i = pos; i < candidates.size(); ++i) {
        group.push_back(candidates[i]);
        extend(i + 1);
        group.pop_back();
      }
    };
    extend(0);
  };
  recurse(0);
  return best;
}

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t trials = static_cast<uint32_t>(cl.GetInt("trials", 6));
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 9));

  bench::PrintBanner(
      "E5 (Lemma 4.1): diameter-sum sandwich around OPT",
      "k·dPi* <= OPT <= (2k-1)(2k-2)·dPi* (corrected constants); "
      "as-printed (2k-1)·dPi* measured for comparison",
      "exhaustive dPi*, exact-DP OPT; uniform + clustered, n = " +
          std::to_string(n) + ", k in {2, 3}");

  bench::ReportTable table({"workload", "k", "seed", "dPi*", "OPT",
                            "k*dPi*<=OPT", "OPT<=(2k-1)(2k-2)dPi*",
                            "as-printed holds"});
  bool sandwich_ok = true;
  size_t as_printed_holds = 0, as_printed_total = 0;

  for (const std::string kind : {"uniform", "clustered"}) {
    for (const size_t k : {2u, 3u}) {
      for (uint32_t seed = 1; seed <= trials; ++seed) {
        Rng rng(seed * 7 + k);
        Table t = [&] {
          if (kind == "clustered") {
            ClusteredTableOptions opt;
            opt.num_rows = n;
            opt.num_columns = 6;
            opt.alphabet = 4;
            opt.num_clusters = 3;
            opt.noise_flips = 1;
            return ClusteredTable(opt, &rng);
          }
          UniformTableOptions opt;
          opt.num_rows = n;
          opt.num_columns = 6;
          opt.alphabet = 3;
          return UniformTable(opt, &rng);
        }();
        ExactDpAnonymizer exact;
        const size_t opt = exact.Run(t, k).cost;
        const size_t dpi = MinDiameterSum(t, k);
        const bool left = k * dpi <= opt;
        const bool right =
            (dpi == 0) ? (opt == 0)
                       : (opt <= (2 * k - 1) * (2 * k - 2) * dpi);
        const bool printed = opt <= (2 * k - 1) * dpi;
        sandwich_ok &= left && right;
        ++as_printed_total;
        if (printed) ++as_printed_holds;
        table.AddRow({kind, bench::ReportTable::Int(static_cast<long long>(k)),
                      bench::ReportTable::Int(seed),
                      bench::ReportTable::Int(static_cast<long long>(dpi)),
                      bench::ReportTable::Int(static_cast<long long>(opt)),
                      left ? "yes" : "NO", right ? "yes" : "NO",
                      printed ? "yes" : "no"});
      }
    }
  }

  table.Print();
  std::cout << "\nas-printed bound held on " << as_printed_holds << "/"
            << as_printed_total
            << " instances (it is not a theorem; see DESIGN.md)\n";
  bench::PrintVerdict(sandwich_ok,
                      "corrected Lemma 4.1 sandwich holds on every "
                      "instance");
  return sandwich_ok ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
