// E10 — extension: the paper's general model (suppression OR
// generalization, Section 1).
//
// The paper analyzes entry suppression and notes generalization as the
// broader mechanism its intro example uses ("0-40", "R*"). This
// experiment quantifies the §1 intuition on synthetic census data:
// full-domain generalization (Samarati's algorithm and the optimal
// lattice search, both with an outlier-suppression budget) retains more
// utility than whole-attribute suppression at the same k, while
// entry-level suppression (the paper's model, via ball_cover +
// local_search) is the most flexible of all — the reason the paper's
// complexity study targets it.

#include <iostream>
#include <string>
#include <vector>

#include "algo/attribute_greedy.h"
#include "algo/registry.h"
#include "util/report.h"
#include "data/generators/census.h"
#include "generalize/optimal_lattice.h"
#include "generalize/samarati.h"
#include "util/cli.h"
#include "util/random.h"

namespace kanon {
namespace {

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 100));
  const uint32_t seed = static_cast<uint32_t>(cl.GetInt("seed", 1));

  bench::PrintBanner(
      "E10 (extension, §1 model): generalization vs suppression",
      "entry suppression (the paper's model) > full-domain "
      "generalization > attribute suppression, in retained utility at "
      "equal k",
      "census-like data, n = " + std::to_string(n) +
          ", taxonomy/flat hierarchies, suppression budget 5%");

  Rng rng(seed);
  const Table t = CensusTable({.num_rows = n}, &rng);

  // Hierarchies: age bands and countries get real taxonomies; the rest
  // are flat (value or *).
  std::vector<Hierarchy> hs;
  for (ColId c = 0; c < t.num_columns(); ++c) {
    const Dictionary& dict = t.schema().dictionary(c);
    const std::string& name = t.schema().attribute_name(c);
    if (name == "age_band") {
      hs.push_back(Hierarchy::Taxonomy(
          dict, {{{"0-20", "young"},
                  {"21-30", "young"},
                  {"31-40", "middle"},
                  {"41-50", "middle"},
                  {"51-60", "senior"},
                  {"61-70", "senior"},
                  {"71+", "senior"}}}));
    } else if (name == "country") {
      hs.push_back(Hierarchy::Taxonomy(
          dict, {{{"us", "americas"},
                  {"mexico", "americas"},
                  {"canada", "americas"},
                  {"cuba", "americas"},
                  {"philippines", "asia"},
                  {"india", "asia"},
                  {"china", "asia"},
                  {"germany", "europe"},
                  {"uk", "europe"},
                  {"other", "other"}}}));
    } else if (name == "education") {
      hs.push_back(Hierarchy::Taxonomy(
          dict, {{{"none", "basic"},
                  {"primary", "basic"},
                  {"hs-grad", "secondary"},
                  {"some-college", "secondary"},
                  {"bachelors", "higher"},
                  {"masters", "higher"},
                  {"doctorate", "higher"}}}));
    } else {
      hs.push_back(Hierarchy::Flat(dict));
    }
  }

  const size_t budget = n / 20;  // 5%
  bench::ReportTable table({"k", "samarati prec", "optimal prec",
                            "samarati withheld", "optimal withheld",
                            "attr-suppress kept%", "entry-suppress kept%"});
  bool ordering_holds = true;

  for (const size_t k : {2u, 3u, 5u, 8u}) {
    SamaratiOptions sam_opt;
    sam_opt.max_suppressed = budget;
    const LatticeResult samarati = SamaratiAnonymize(t, hs, k, sam_opt);
    OptimalLatticeOptions opt_opt;
    opt_opt.max_suppressed = budget;
    const LatticeResult optimal = OptimalLatticeAnonymize(t, hs, k, opt_opt);

    GreedyAttributeAnonymizer attr;
    const AttributeResult attr_result = attr.Solve(t, k);
    const double attr_kept =
        100.0 *
        (1.0 - static_cast<double>(attr_result.num_suppressed()) /
                   static_cast<double>(t.num_columns()));

    auto entry = MakeAnonymizer("ball_cover+local_search");
    const auto entry_result = entry->Run(t, k);
    const double entry_kept =
        100.0 * (1.0 - static_cast<double>(entry_result.cost) /
                           (static_cast<double>(n) * t.num_columns()));

    ordering_holds &= optimal.precision >= samarati.precision - 1e-9;
    table.AddRow({bench::ReportTable::Int(static_cast<long long>(k)),
                  bench::ReportTable::Num(samarati.precision, 3),
                  bench::ReportTable::Num(optimal.precision, 3),
                  bench::ReportTable::Int(static_cast<long long>(
                      samarati.suppressed_rows.size())),
                  bench::ReportTable::Int(static_cast<long long>(
                      optimal.suppressed_rows.size())),
                  bench::ReportTable::Num(attr_kept, 1),
                  bench::ReportTable::Num(entry_kept, 1)});
  }
  table.Print();

  std::cout << "\n(prec = Samarati precision of the generalization; "
            << "kept% = non-starred cells / attributes)\n";
  bench::PrintVerdict(ordering_holds,
                      "optimal lattice >= Samarati precision everywhere; "
                      "entry suppression retains the most cells — the "
                      "flexibility the paper's model formalizes");
  return ordering_holds ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
