// kanon_gen — reproducible synthetic-table generator CLI.
//
// Emits the same tables the benchmarks build in-process
// (data/generators/synthetic.h) as CSV, so external tools and ad-hoc
// kanond sessions can run against identical inputs without the repo
// shipping data files. Fully deterministic from --seed.
//
//   kanon_gen --rows=1000000 --cols=8 --alphabets=8,4,16,2
//             --zipf=1.1 --seed=7 --out=table.csv
//
// With no --out the CSV goes to stdout (header line first).

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "data/csv_table.h"
#include "data/generators/synthetic.h"
#include "util/cli.h"

namespace kanon {
namespace {

/// Parses "8,4,16,2" into alphabet sizes; empty result on bad input.
std::vector<uint32_t> ParseAlphabets(const std::string& spec) {
  std::vector<uint32_t> sizes;
  size_t pos = 0;
  while (pos <= spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string piece =
        spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
    try {
      const long value = std::stol(piece);
      if (value < 1) return {};
      sizes.push_back(static_cast<uint32_t>(value));
    } catch (...) {
      return {};
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return sizes;
}

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const std::vector<std::string> known = {"rows", "cols", "alphabets",
                                          "zipf", "seed", "out"};
  for (const std::string& flag : cl.UnknownFlags(known)) {
    std::cerr << "kanon_gen: unknown flag --" << flag
              << " (known: --rows --cols --alphabets --zipf --seed "
                 "--out)\n";
    return 2;
  }

  SyntheticTableOptions options;
  const auto rows = cl.GetValidatedInt("rows", 1024, 1, 1LL << 32);
  const auto cols = cl.GetValidatedInt("cols", 8, 1, 1024);
  const auto seed = cl.GetValidatedInt("seed", 1, 0, (1LL << 62));
  if (!rows.ok() || !cols.ok() || !seed.ok()) {
    std::cerr << "kanon_gen: bad flag: "
              << (!rows.ok()   ? rows.status().message()
                  : !cols.ok() ? cols.status().message()
                               : seed.status().message())
              << "\n";
    return 2;
  }
  options.num_rows = static_cast<uint64_t>(*rows);
  options.num_columns = static_cast<uint32_t>(*cols);
  options.seed = static_cast<uint64_t>(*seed);
  options.zipf_s = cl.GetDouble("zipf", 0.0);
  if (options.zipf_s < 0.0) {
    std::cerr << "kanon_gen: --zipf must be >= 0\n";
    return 2;
  }
  const std::string alphabets = cl.GetString("alphabets", "8,4,16,2");
  options.alphabet_sizes = ParseAlphabets(alphabets);
  if (options.alphabet_sizes.empty()) {
    std::cerr << "kanon_gen: --alphabets must be a comma list of sizes "
                 ">= 1 (got '"
              << alphabets << "')\n";
    return 2;
  }

  const Table table = SyntheticTable(options);
  const std::string out = cl.GetString("out", "");
  if (out.empty()) {
    std::cout << TableToCsv(table);
    return 0;
  }
  const Status written = WriteTableCsv(table, out);
  if (!written.ok()) {
    std::cerr << "kanon_gen: " << written.message() << "\n";
    return 1;
  }
  std::cerr << "kanon_gen: wrote " << table.num_rows() << " rows x "
            << table.num_columns() << " cols to " << out << "\n";
  return 0;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
