// E13 — extension: beyond the paper's guarantee.
//
// k-anonymity (the paper's object of study) bounds re-identification,
// not attribute disclosure: a k-group that is homogeneous on a
// sensitive attribute still leaks it (the homogeneity attack that
// motivated l-diversity). This experiment measures that residual risk
// on k-anonymized census releases and the utility price of upgrading
// the paper's algorithm output to distinct-l-diversity by group
// merging. It also reports the full-domain solution-space size (the
// antichain of minimal feasible generalizations) with up-set pruning
// efficiency — the Incognito-style view of the same lattice the paper's
// Section 3.1 variant suppresses over.

#include <iostream>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "util/report.h"
#include "core/cost.h"
#include "data/generators/census.h"
#include "generalize/apply.h"
#include "generalize/minimal_vectors.h"
#include "privacy/diversity.h"
#include "util/cli.h"
#include "util/random.h"

namespace kanon {
namespace {

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 120));
  const uint32_t seed = static_cast<uint32_t>(cl.GetInt("seed", 3));

  bench::PrintBanner(
      "E13 (extension): homogeneity attack and l-diversity upgrade",
      "k-anonymity alone leaves sensitive-attribute exposure; merging "
      "to distinct-l-diversity removes it at measurable star cost",
      "census data, n = " + std::to_string(n) +
          ", sensitive attribute = occupation, "
          "ball_cover+local_search base releases");

  Rng rng(seed);
  const Table t = CensusTable({.num_rows = n}, &rng);
  const ColId sensitive = t.schema().FindAttribute("occupation");
  const double cells = static_cast<double>(n) * t.num_columns();

  bench::ReportTable table({"k", "exposure before %", "stars before %",
                            "l", "exposure after %", "stars after %",
                            "groups before", "groups after"});
  bool fixed_everywhere = true;
  for (const size_t k : {2u, 3u, 5u}) {
    auto algo = MakeAnonymizer("ball_cover+local_search");
    auto result = algo->Run(t, k);
    const double exposure_before =
        HomogeneityExposure(t, result.partition, sensitive);
    const double stars_before =
        100.0 * static_cast<double>(result.cost) / cells;
    const size_t groups_before = result.partition.num_groups();

    const size_t l = 2;
    Partition upgraded = result.partition;
    const bool ok = MergeForDiversity(t, sensitive, l, &upgraded);
    fixed_everywhere &= ok && IsLDiverse(t, upgraded, sensitive, l);
    const double exposure_after =
        HomogeneityExposure(t, upgraded, sensitive);
    const double stars_after =
        100.0 * static_cast<double>(PartitionCost(t, upgraded)) / cells;

    table.AddRow({bench::ReportTable::Int(static_cast<long long>(k)),
                  bench::ReportTable::Num(exposure_before * 100, 1),
                  bench::ReportTable::Num(stars_before, 1),
                  bench::ReportTable::Int(static_cast<long long>(l)),
                  bench::ReportTable::Num(exposure_after * 100, 1),
                  bench::ReportTable::Num(stars_after, 1),
                  bench::ReportTable::Int(
                      static_cast<long long>(groups_before)),
                  bench::ReportTable::Int(
                      static_cast<long long>(upgraded.num_groups()))});
    fixed_everywhere &= exposure_after == 0.0;
  }
  table.Print();

  // Solution-space audit: antichain of minimal feasible full-domain
  // generalizations with pruning stats.
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  std::cout << "\nfull-domain solution space (flat hierarchies, "
            << "budget 5%):\n";
  bench::ReportTable lattice_table(
      {"k", "lattice", "checked", "pruned %", "minimal vectors"});
  for (const size_t k : {2u, 5u}) {
    const MinimalVectorsResult mv =
        MinimalFeasibleVectors(t, hs, k, n / 20);
    lattice_table.AddRow(
        {bench::ReportTable::Int(static_cast<long long>(k)),
         bench::ReportTable::Int(
             static_cast<long long>(mv.lattice_size)),
         bench::ReportTable::Int(
             static_cast<long long>(mv.vectors_checked)),
         bench::ReportTable::Num(
             100.0 * (1.0 - static_cast<double>(mv.vectors_checked) /
                                static_cast<double>(mv.lattice_size)),
             1),
         bench::ReportTable::Int(
             static_cast<long long>(mv.minimal.size()))});
  }
  lattice_table.Print();

  bench::PrintVerdict(fixed_everywhere,
                      "homogeneity exposure eliminated by the diversity "
                      "merge at bounded extra suppression");
  return fixed_everywhere ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
