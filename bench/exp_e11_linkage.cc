// E11 — extension: the §1 threat model, measured.
//
// The paper motivates k-anonymity by the linking attack: joining a
// released table with external knowledge re-identifies individuals. We
// quantify the protection curve: re-identification rate and minimum
// candidate-set size of a full-knowledge adversary against the raw
// release and against k-anonymized releases for growing k. The
// guarantee to reproduce: min candidates >= k, re-identification rate 0
// for every k >= 2, while the raw release re-identifies most of a
// skewed census sample.

#include <iostream>
#include <string>
#include <vector>

#include "algo/registry.h"
#include "util/report.h"
#include "data/generators/census.h"
#include "privacy/linkage.h"
#include "util/cli.h"
#include "util/random.h"

namespace kanon {
namespace {

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 120));
  const uint32_t seed = static_cast<uint32_t>(cl.GetInt("seed", 2));

  bench::PrintBanner(
      "E11 (extension, §1 threat model): linking attack vs k",
      "k-anonymity forces every victim into >= k candidates; raw "
      "release re-identifies most individuals",
      "census-like data, n = " + std::to_string(n) +
          ", adversary knows all 8 quasi-identifiers; ball_cover+"
          "local_search releases");

  Rng rng(seed);
  const Table t = CensusTable({.num_rows = n}, &rng);
  std::vector<ColId> all_columns;
  for (ColId c = 0; c < t.num_columns(); ++c) all_columns.push_back(c);

  bench::ReportTable table({"release", "k", "re-id rate %",
                            "min candidates", "mean candidates",
                            "stars %"});

  const AttackSummary raw = LinkageAttack(t, t, all_columns);
  table.AddRow({"raw", "-",
                bench::ReportTable::Num(raw.reidentification_rate * 100, 1),
                bench::ReportTable::Int(
                    static_cast<long long>(raw.min_candidates)),
                bench::ReportTable::Num(raw.mean_candidates, 1), "0.0"});

  bool guarantee = raw.reidentification_rate > 0.5;
  for (const size_t k : {2u, 3u, 5u, 8u, 12u}) {
    auto algo = MakeAnonymizer("ball_cover+local_search");
    const auto result = algo->Run(t, k);
    const Table published = result.MakeSuppressor(t).Apply(t);
    const AttackSummary attack = LinkageAttack(t, published, all_columns);
    guarantee &= attack.min_candidates >= k &&
                 attack.unique_reidentifications == 0;
    const double star_pct =
        100.0 * static_cast<double>(result.cost) /
        (static_cast<double>(n) * t.num_columns());
    table.AddRow(
        {"k-anonymized", bench::ReportTable::Int(static_cast<long long>(k)),
         bench::ReportTable::Num(attack.reidentification_rate * 100, 1),
         bench::ReportTable::Int(
             static_cast<long long>(attack.min_candidates)),
         bench::ReportTable::Num(attack.mean_candidates, 1),
         bench::ReportTable::Num(star_pct, 1)});
  }

  // Partial-knowledge curve at k = 3: privacy also holds against weaker
  // adversaries (their candidate sets only grow).
  auto algo = MakeAnonymizer("ball_cover+local_search");
  const auto result = algo->Run(t, 3);
  const Table published = result.MakeSuppressor(t).Apply(t);
  std::cout << "\npartial adversary knowledge at k=3 "
            << "(columns known -> min candidates):\n";
  for (size_t known = 1; known <= all_columns.size(); known += 2) {
    const std::vector<ColId> subset(all_columns.begin(),
                                    all_columns.begin() +
                                        static_cast<ptrdiff_t>(known));
    const AttackSummary attack = LinkageAttack(t, published, subset);
    std::cout << "  " << known << " -> " << attack.min_candidates << "\n";
    guarantee &= attack.min_candidates >= 3;
  }
  std::cout << "\n";

  table.Print();
  bench::PrintVerdict(guarantee,
                      "linkage guarantee reproduced: min candidates >= k "
                      "at every k, raw release mostly re-identifiable");
  return guarantee ? 0 : 1;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
