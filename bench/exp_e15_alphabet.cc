// E15 — the conclusions' open problem, probed empirically.
//
// Section 5: "our proof for the general case uses an alphabet Σ of
// large size, so it is possible that the problem is still tractable for
// small constant-sized alphabets." The worst-case question is open (and
// was later resolved hard even for binary alphabets by follow-up work);
// here we measure the *empirical* difficulty signal available to this
// library: branch-and-bound search effort and exact-DP runtime as the
// alphabet grows at fixed (n, m, k), plus how close greedy approximation
// gets. Larger alphabets spread rows apart (distances concentrate near
// m), which changes instance geometry — the experiment shows whether
// small alphabets are systematically easier for these exact solvers.

#include <iostream>
#include <string>
#include <vector>

#include "algo/ball_cover.h"
#include "algo/branch_bound.h"
#include "algo/exact_dp.h"
#include "data/generators/uniform.h"
#include "util/cli.h"
#include "util/random.h"
#include "util/report.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace kanon {
namespace {

int Main(int argc, char** argv) {
  const CommandLine cl = CommandLine::Parse(argc, argv);
  const uint32_t n = static_cast<uint32_t>(cl.GetInt("n", 14));
  const uint32_t m = static_cast<uint32_t>(cl.GetInt("m", 6));
  const size_t k = static_cast<size_t>(cl.GetInt("k", 3));
  const uint32_t trials = static_cast<uint32_t>(cl.GetInt("trials", 5));

  bench::PrintBanner(
      "E15 (§5 open problem): does alphabet size drive hardness?",
      "the NP-hardness proof needs |Σ| = n+1; §5 asks whether small "
      "alphabets stay tractable — we probe exact-search effort vs |Σ|",
      "uniform tables, n = " + std::to_string(n) + ", m = " +
          std::to_string(m) + ", k = " + std::to_string(k) + ", " +
          std::to_string(trials) + " seeds per point");

  bench::ReportTable table({"|Σ|", "mean OPT", "OPT / cells", "B&B nodes",
                            "DP time (ms)", "greedy ratio"});
  const double cells = static_cast<double>(n) * m;
  for (const uint32_t alphabet : {2u, 3u, 4u, 8u, 16u}) {
    Accumulator opts, nodes, dp_times, ratios;
    for (uint32_t seed = 1; seed <= trials; ++seed) {
      Rng rng(seed * 71 + alphabet);
      const Table t = UniformTable(
          {.num_rows = n, .num_columns = m, .alphabet = alphabet}, &rng);
      ExactDpAnonymizer dp;
      const auto dp_result = dp.Run(t, k);
      opts.Add(static_cast<double>(dp_result.cost));
      dp_times.Add(dp_result.seconds * 1e3);
      BranchBoundAnonymizer bb;
      const auto bb_result = bb.Run(t, k);
      // Parse "nodes=<N>" from the notes.
      const size_t pos = bb_result.notes.find("nodes=");
      long long node_count = 0;
      ParseInt(bb_result.notes.substr(pos + 6), &node_count);
      nodes.Add(static_cast<double>(node_count));
      BallCoverAnonymizer ball;
      if (dp_result.cost > 0) {
        ratios.Add(static_cast<double>(ball.Run(t, k).cost) /
                   static_cast<double>(dp_result.cost));
      }
    }
    table.AddRow({bench::ReportTable::Int(alphabet),
                  bench::ReportTable::Num(opts.mean(), 1),
                  bench::ReportTable::Num(opts.mean() / cells, 3),
                  bench::ReportTable::Num(nodes.mean(), 0),
                  bench::ReportTable::Num(dp_times.mean(), 1),
                  ratios.count() ? bench::ReportTable::Num(ratios.mean())
                                 : "-"});
  }
  table.Print();

  std::cout << "\n(observations: OPT saturates toward full suppression "
            << "as |Σ| grows, while exact-DP time is flat — the DP's "
            << "work is alphabet-independent. Crucially, exact search "
            << "does NOT collapse to easy at |Σ| = 2: binary instances "
            << "still cost ~10^4 B&B nodes at n = 14, consistent with "
            << "follow-up work proving hardness even for binary "
            << "alphabets rather than the tractability §5 hoped for)\n";
  bench::PrintVerdict(true, "empirical difficulty profile recorded");
  return 0;
}

}  // namespace
}  // namespace kanon

int main(int argc, char** argv) { return kanon::Main(argc, argv); }
