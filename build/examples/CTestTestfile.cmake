# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart_runs "/root/repo/build/examples/example_quickstart")
set_tests_properties(example_quickstart_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_medical_records_runs "/root/repo/build/examples/example_medical_records" "--rows=15" "--k=3")
set_tests_properties(example_medical_records_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_census_comparison_runs "/root/repo/build/examples/example_census_comparison" "--rows=40" "--k=3")
set_tests_properties(example_census_comparison_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hardness_reduction_runs "/root/repo/build/examples/example_hardness_reduction")
set_tests_properties(example_hardness_reduction_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_generalization_runs "/root/repo/build/examples/example_generalization")
set_tests_properties(example_generalization_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_diversity_attack_runs "/root/repo/build/examples/example_diversity_attack" "--rows=24" "--k=3")
set_tests_properties(example_diversity_attack_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;26;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anonymize_csv_demo_runs "/root/repo/build/examples/example_anonymize_csv" "--demo" "--k=3")
set_tests_properties(example_anonymize_csv_demo_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anonymize_csv_file_runs "/root/repo/build/examples/example_anonymize_csv" "/root/repo/examples/data/paper_intro.csv" "/root/repo/build/examples/paper_intro_anon.csv" "--k=2" "--algo=exact_dp")
set_tests_properties(example_anonymize_csv_file_runs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
