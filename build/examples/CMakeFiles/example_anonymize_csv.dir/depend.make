# Empty dependencies file for example_anonymize_csv.
# This may be replaced when dependencies are built.
