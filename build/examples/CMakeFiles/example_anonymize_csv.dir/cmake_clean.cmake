file(REMOVE_RECURSE
  "CMakeFiles/example_anonymize_csv.dir/anonymize_csv.cpp.o"
  "CMakeFiles/example_anonymize_csv.dir/anonymize_csv.cpp.o.d"
  "example_anonymize_csv"
  "example_anonymize_csv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_anonymize_csv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
