file(REMOVE_RECURSE
  "CMakeFiles/example_census_comparison.dir/census_comparison.cpp.o"
  "CMakeFiles/example_census_comparison.dir/census_comparison.cpp.o.d"
  "example_census_comparison"
  "example_census_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_census_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
