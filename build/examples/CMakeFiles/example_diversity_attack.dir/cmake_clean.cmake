file(REMOVE_RECURSE
  "CMakeFiles/example_diversity_attack.dir/diversity_attack.cpp.o"
  "CMakeFiles/example_diversity_attack.dir/diversity_attack.cpp.o.d"
  "example_diversity_attack"
  "example_diversity_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_diversity_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
