# Empty dependencies file for example_diversity_attack.
# This may be replaced when dependencies are built.
