file(REMOVE_RECURSE
  "CMakeFiles/example_generalization.dir/generalization.cpp.o"
  "CMakeFiles/example_generalization.dir/generalization.cpp.o.d"
  "example_generalization"
  "example_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
