# Empty dependencies file for example_generalization.
# This may be replaced when dependencies are built.
