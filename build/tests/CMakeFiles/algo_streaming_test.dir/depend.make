# Empty dependencies file for algo_streaming_test.
# This may be replaced when dependencies are built.
