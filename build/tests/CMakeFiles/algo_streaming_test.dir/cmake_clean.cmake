file(REMOVE_RECURSE
  "CMakeFiles/algo_streaming_test.dir/algo/streaming_test.cc.o"
  "CMakeFiles/algo_streaming_test.dir/algo/streaming_test.cc.o.d"
  "algo_streaming_test"
  "algo_streaming_test.pdb"
  "algo_streaming_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_streaming_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
