# Empty dependencies file for data_table_test.
# This may be replaced when dependencies are built.
