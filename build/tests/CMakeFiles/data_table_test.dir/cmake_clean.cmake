file(REMOVE_RECURSE
  "CMakeFiles/data_table_test.dir/data/table_test.cc.o"
  "CMakeFiles/data_table_test.dir/data/table_test.cc.o.d"
  "data_table_test"
  "data_table_test.pdb"
  "data_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
