file(REMOVE_RECURSE
  "CMakeFiles/algo_attribute_adapter_test.dir/algo/attribute_adapter_test.cc.o"
  "CMakeFiles/algo_attribute_adapter_test.dir/algo/attribute_adapter_test.cc.o.d"
  "algo_attribute_adapter_test"
  "algo_attribute_adapter_test.pdb"
  "algo_attribute_adapter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_attribute_adapter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
