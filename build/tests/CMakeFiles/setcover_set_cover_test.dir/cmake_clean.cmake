file(REMOVE_RECURSE
  "CMakeFiles/setcover_set_cover_test.dir/setcover/set_cover_test.cc.o"
  "CMakeFiles/setcover_set_cover_test.dir/setcover/set_cover_test.cc.o.d"
  "setcover_set_cover_test"
  "setcover_set_cover_test.pdb"
  "setcover_set_cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/setcover_set_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
