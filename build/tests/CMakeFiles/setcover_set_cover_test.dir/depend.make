# Empty dependencies file for setcover_set_cover_test.
# This may be replaced when dependencies are built.
