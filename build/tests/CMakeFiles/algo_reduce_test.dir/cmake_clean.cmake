file(REMOVE_RECURSE
  "CMakeFiles/algo_reduce_test.dir/algo/reduce_test.cc.o"
  "CMakeFiles/algo_reduce_test.dir/algo/reduce_test.cc.o.d"
  "algo_reduce_test"
  "algo_reduce_test.pdb"
  "algo_reduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_reduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
