# Empty dependencies file for algo_reduce_test.
# This may be replaced when dependencies are built.
