# Empty dependencies file for algo_registry_test.
# This may be replaced when dependencies are built.
