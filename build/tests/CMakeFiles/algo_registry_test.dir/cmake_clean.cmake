file(REMOVE_RECURSE
  "CMakeFiles/algo_registry_test.dir/algo/registry_test.cc.o"
  "CMakeFiles/algo_registry_test.dir/algo/registry_test.cc.o.d"
  "algo_registry_test"
  "algo_registry_test.pdb"
  "algo_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
