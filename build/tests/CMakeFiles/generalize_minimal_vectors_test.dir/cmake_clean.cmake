file(REMOVE_RECURSE
  "CMakeFiles/generalize_minimal_vectors_test.dir/generalize/minimal_vectors_test.cc.o"
  "CMakeFiles/generalize_minimal_vectors_test.dir/generalize/minimal_vectors_test.cc.o.d"
  "generalize_minimal_vectors_test"
  "generalize_minimal_vectors_test.pdb"
  "generalize_minimal_vectors_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalize_minimal_vectors_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
