# Empty dependencies file for generalize_minimal_vectors_test.
# This may be replaced when dependencies are built.
