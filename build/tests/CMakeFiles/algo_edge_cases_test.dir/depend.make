# Empty dependencies file for algo_edge_cases_test.
# This may be replaced when dependencies are built.
