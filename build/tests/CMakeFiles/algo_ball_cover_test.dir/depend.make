# Empty dependencies file for algo_ball_cover_test.
# This may be replaced when dependencies are built.
