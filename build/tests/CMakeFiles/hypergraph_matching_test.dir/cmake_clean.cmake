file(REMOVE_RECURSE
  "CMakeFiles/hypergraph_matching_test.dir/hypergraph/matching_test.cc.o"
  "CMakeFiles/hypergraph_matching_test.dir/hypergraph/matching_test.cc.o.d"
  "hypergraph_matching_test"
  "hypergraph_matching_test.pdb"
  "hypergraph_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypergraph_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
