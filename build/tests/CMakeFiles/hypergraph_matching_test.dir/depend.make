# Empty dependencies file for hypergraph_matching_test.
# This may be replaced when dependencies are built.
