# Empty dependencies file for util_run_context_test.
# This may be replaced when dependencies are built.
