file(REMOVE_RECURSE
  "CMakeFiles/util_run_context_test.dir/util/run_context_test.cc.o"
  "CMakeFiles/util_run_context_test.dir/util/run_context_test.cc.o.d"
  "util_run_context_test"
  "util_run_context_test.pdb"
  "util_run_context_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_run_context_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
