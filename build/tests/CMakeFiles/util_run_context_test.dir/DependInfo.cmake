
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/run_context_test.cc" "tests/CMakeFiles/util_run_context_test.dir/util/run_context_test.cc.o" "gcc" "tests/CMakeFiles/util_run_context_test.dir/util/run_context_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kanon_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_generalize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_reductions.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_hypergraph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_algo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_setcover.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
