file(REMOVE_RECURSE
  "CMakeFiles/util_report_test.dir/util/report_test.cc.o"
  "CMakeFiles/util_report_test.dir/util/report_test.cc.o.d"
  "util_report_test"
  "util_report_test.pdb"
  "util_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
