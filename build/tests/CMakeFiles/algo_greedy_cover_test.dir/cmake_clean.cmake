file(REMOVE_RECURSE
  "CMakeFiles/algo_greedy_cover_test.dir/algo/greedy_cover_test.cc.o"
  "CMakeFiles/algo_greedy_cover_test.dir/algo/greedy_cover_test.cc.o.d"
  "algo_greedy_cover_test"
  "algo_greedy_cover_test.pdb"
  "algo_greedy_cover_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_greedy_cover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
