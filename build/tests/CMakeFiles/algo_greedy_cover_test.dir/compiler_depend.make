# Empty compiler generated dependencies file for algo_greedy_cover_test.
# This may be replaced when dependencies are built.
