file(REMOVE_RECURSE
  "CMakeFiles/privacy_linkage_test.dir/privacy/linkage_test.cc.o"
  "CMakeFiles/privacy_linkage_test.dir/privacy/linkage_test.cc.o.d"
  "privacy_linkage_test"
  "privacy_linkage_test.pdb"
  "privacy_linkage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_linkage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
