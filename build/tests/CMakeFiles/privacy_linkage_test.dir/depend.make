# Empty dependencies file for privacy_linkage_test.
# This may be replaced when dependencies are built.
