# Empty compiler generated dependencies file for core_suppressor_test.
# This may be replaced when dependencies are built.
