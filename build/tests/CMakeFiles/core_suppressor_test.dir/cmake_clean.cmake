file(REMOVE_RECURSE
  "CMakeFiles/core_suppressor_test.dir/core/suppressor_test.cc.o"
  "CMakeFiles/core_suppressor_test.dir/core/suppressor_test.cc.o.d"
  "core_suppressor_test"
  "core_suppressor_test.pdb"
  "core_suppressor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_suppressor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
