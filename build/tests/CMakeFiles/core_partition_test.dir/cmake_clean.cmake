file(REMOVE_RECURSE
  "CMakeFiles/core_partition_test.dir/core/partition_test.cc.o"
  "CMakeFiles/core_partition_test.dir/core/partition_test.cc.o.d"
  "core_partition_test"
  "core_partition_test.pdb"
  "core_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
