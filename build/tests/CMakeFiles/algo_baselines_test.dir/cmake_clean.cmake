file(REMOVE_RECURSE
  "CMakeFiles/algo_baselines_test.dir/algo/baselines_test.cc.o"
  "CMakeFiles/algo_baselines_test.dir/algo/baselines_test.cc.o.d"
  "algo_baselines_test"
  "algo_baselines_test.pdb"
  "algo_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
