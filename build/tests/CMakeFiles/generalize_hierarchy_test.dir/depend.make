# Empty dependencies file for generalize_hierarchy_test.
# This may be replaced when dependencies are built.
