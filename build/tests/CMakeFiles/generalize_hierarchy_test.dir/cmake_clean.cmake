file(REMOVE_RECURSE
  "CMakeFiles/generalize_hierarchy_test.dir/generalize/hierarchy_test.cc.o"
  "CMakeFiles/generalize_hierarchy_test.dir/generalize/hierarchy_test.cc.o.d"
  "generalize_hierarchy_test"
  "generalize_hierarchy_test.pdb"
  "generalize_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalize_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
