# Empty dependencies file for algo_approx_ratio_test.
# This may be replaced when dependencies are built.
