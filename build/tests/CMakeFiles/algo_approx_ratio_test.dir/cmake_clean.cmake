file(REMOVE_RECURSE
  "CMakeFiles/algo_approx_ratio_test.dir/algo/approx_ratio_test.cc.o"
  "CMakeFiles/algo_approx_ratio_test.dir/algo/approx_ratio_test.cc.o.d"
  "algo_approx_ratio_test"
  "algo_approx_ratio_test.pdb"
  "algo_approx_ratio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_approx_ratio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
