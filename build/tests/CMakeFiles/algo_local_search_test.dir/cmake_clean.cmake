file(REMOVE_RECURSE
  "CMakeFiles/algo_local_search_test.dir/algo/local_search_test.cc.o"
  "CMakeFiles/algo_local_search_test.dir/algo/local_search_test.cc.o.d"
  "algo_local_search_test"
  "algo_local_search_test.pdb"
  "algo_local_search_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_local_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
