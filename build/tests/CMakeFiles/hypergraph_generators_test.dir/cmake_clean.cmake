file(REMOVE_RECURSE
  "CMakeFiles/hypergraph_generators_test.dir/hypergraph/generators_test.cc.o"
  "CMakeFiles/hypergraph_generators_test.dir/hypergraph/generators_test.cc.o.d"
  "hypergraph_generators_test"
  "hypergraph_generators_test.pdb"
  "hypergraph_generators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypergraph_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
