# Empty dependencies file for hypergraph_generators_test.
# This may be replaced when dependencies are built.
