# Empty dependencies file for generalize_lattice_test.
# This may be replaced when dependencies are built.
