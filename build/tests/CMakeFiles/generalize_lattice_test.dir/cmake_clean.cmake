file(REMOVE_RECURSE
  "CMakeFiles/generalize_lattice_test.dir/generalize/lattice_test.cc.o"
  "CMakeFiles/generalize_lattice_test.dir/generalize/lattice_test.cc.o.d"
  "generalize_lattice_test"
  "generalize_lattice_test.pdb"
  "generalize_lattice_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalize_lattice_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
