file(REMOVE_RECURSE
  "CMakeFiles/privacy_diversity_test.dir/privacy/diversity_test.cc.o"
  "CMakeFiles/privacy_diversity_test.dir/privacy/diversity_test.cc.o.d"
  "privacy_diversity_test"
  "privacy_diversity_test.pdb"
  "privacy_diversity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/privacy_diversity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
