# Empty dependencies file for privacy_diversity_test.
# This may be replaced when dependencies are built.
