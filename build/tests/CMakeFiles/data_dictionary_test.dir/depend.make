# Empty dependencies file for data_dictionary_test.
# This may be replaced when dependencies are built.
