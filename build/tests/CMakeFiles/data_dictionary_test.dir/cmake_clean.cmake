file(REMOVE_RECURSE
  "CMakeFiles/data_dictionary_test.dir/data/dictionary_test.cc.o"
  "CMakeFiles/data_dictionary_test.dir/data/dictionary_test.cc.o.d"
  "data_dictionary_test"
  "data_dictionary_test.pdb"
  "data_dictionary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_dictionary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
