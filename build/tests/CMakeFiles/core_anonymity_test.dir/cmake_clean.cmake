file(REMOVE_RECURSE
  "CMakeFiles/core_anonymity_test.dir/core/anonymity_test.cc.o"
  "CMakeFiles/core_anonymity_test.dir/core/anonymity_test.cc.o.d"
  "core_anonymity_test"
  "core_anonymity_test.pdb"
  "core_anonymity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_anonymity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
