file(REMOVE_RECURSE
  "CMakeFiles/algo_branch_bound_test.dir/algo/branch_bound_test.cc.o"
  "CMakeFiles/algo_branch_bound_test.dir/algo/branch_bound_test.cc.o.d"
  "algo_branch_bound_test"
  "algo_branch_bound_test.pdb"
  "algo_branch_bound_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_branch_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
