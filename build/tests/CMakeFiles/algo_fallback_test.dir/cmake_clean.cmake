file(REMOVE_RECURSE
  "CMakeFiles/algo_fallback_test.dir/algo/fallback_test.cc.o"
  "CMakeFiles/algo_fallback_test.dir/algo/fallback_test.cc.o.d"
  "algo_fallback_test"
  "algo_fallback_test.pdb"
  "algo_fallback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_fallback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
