# Empty dependencies file for algo_fallback_test.
# This may be replaced when dependencies are built.
