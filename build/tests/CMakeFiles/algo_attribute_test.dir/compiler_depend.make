# Empty compiler generated dependencies file for algo_attribute_test.
# This may be replaced when dependencies are built.
