# Empty compiler generated dependencies file for reductions_matching_to_attribute_test.
# This may be replaced when dependencies are built.
