# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for reductions_matching_to_attribute_test.
