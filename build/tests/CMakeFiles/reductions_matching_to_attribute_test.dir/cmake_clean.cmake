file(REMOVE_RECURSE
  "CMakeFiles/reductions_matching_to_attribute_test.dir/reductions/matching_to_attribute_test.cc.o"
  "CMakeFiles/reductions_matching_to_attribute_test.dir/reductions/matching_to_attribute_test.cc.o.d"
  "reductions_matching_to_attribute_test"
  "reductions_matching_to_attribute_test.pdb"
  "reductions_matching_to_attribute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reductions_matching_to_attribute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
