# Empty dependencies file for algo_annealing_test.
# This may be replaced when dependencies are built.
