file(REMOVE_RECURSE
  "CMakeFiles/algo_annealing_test.dir/algo/annealing_test.cc.o"
  "CMakeFiles/algo_annealing_test.dir/algo/annealing_test.cc.o.d"
  "algo_annealing_test"
  "algo_annealing_test.pdb"
  "algo_annealing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_annealing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
