file(REMOVE_RECURSE
  "CMakeFiles/algo_mdav_test.dir/algo/mdav_test.cc.o"
  "CMakeFiles/algo_mdav_test.dir/algo/mdav_test.cc.o.d"
  "algo_mdav_test"
  "algo_mdav_test.pdb"
  "algo_mdav_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_mdav_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
