# Empty compiler generated dependencies file for integration_lemma41_test.
# This may be replaced when dependencies are built.
