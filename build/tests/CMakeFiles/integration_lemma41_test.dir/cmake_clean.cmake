file(REMOVE_RECURSE
  "CMakeFiles/integration_lemma41_test.dir/integration/lemma41_test.cc.o"
  "CMakeFiles/integration_lemma41_test.dir/integration/lemma41_test.cc.o.d"
  "integration_lemma41_test"
  "integration_lemma41_test.pdb"
  "integration_lemma41_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_lemma41_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
