file(REMOVE_RECURSE
  "CMakeFiles/algo_exact_dp_test.dir/algo/exact_dp_test.cc.o"
  "CMakeFiles/algo_exact_dp_test.dir/algo/exact_dp_test.cc.o.d"
  "algo_exact_dp_test"
  "algo_exact_dp_test.pdb"
  "algo_exact_dp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algo_exact_dp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
