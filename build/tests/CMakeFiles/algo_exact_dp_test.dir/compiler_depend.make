# Empty compiler generated dependencies file for algo_exact_dp_test.
# This may be replaced when dependencies are built.
