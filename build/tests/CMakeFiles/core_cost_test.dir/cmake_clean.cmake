file(REMOVE_RECURSE
  "CMakeFiles/core_cost_test.dir/core/cost_test.cc.o"
  "CMakeFiles/core_cost_test.dir/core/cost_test.cc.o.d"
  "core_cost_test"
  "core_cost_test.pdb"
  "core_cost_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cost_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
