file(REMOVE_RECURSE
  "CMakeFiles/data_adversarial_test.dir/data/adversarial_test.cc.o"
  "CMakeFiles/data_adversarial_test.dir/data/adversarial_test.cc.o.d"
  "data_adversarial_test"
  "data_adversarial_test.pdb"
  "data_adversarial_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/data_adversarial_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
