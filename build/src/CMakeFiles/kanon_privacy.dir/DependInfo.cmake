
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/privacy/diversity.cc" "src/CMakeFiles/kanon_privacy.dir/privacy/diversity.cc.o" "gcc" "src/CMakeFiles/kanon_privacy.dir/privacy/diversity.cc.o.d"
  "/root/repo/src/privacy/linkage.cc" "src/CMakeFiles/kanon_privacy.dir/privacy/linkage.cc.o" "gcc" "src/CMakeFiles/kanon_privacy.dir/privacy/linkage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kanon_generalize.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
