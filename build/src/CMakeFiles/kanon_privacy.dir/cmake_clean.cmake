file(REMOVE_RECURSE
  "CMakeFiles/kanon_privacy.dir/privacy/diversity.cc.o"
  "CMakeFiles/kanon_privacy.dir/privacy/diversity.cc.o.d"
  "CMakeFiles/kanon_privacy.dir/privacy/linkage.cc.o"
  "CMakeFiles/kanon_privacy.dir/privacy/linkage.cc.o.d"
  "libkanon_privacy.a"
  "libkanon_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
