file(REMOVE_RECURSE
  "libkanon_privacy.a"
)
