# Empty dependencies file for kanon_privacy.
# This may be replaced when dependencies are built.
