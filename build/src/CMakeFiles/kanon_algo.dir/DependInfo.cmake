
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/annealing.cc" "src/CMakeFiles/kanon_algo.dir/algo/annealing.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/annealing.cc.o.d"
  "/root/repo/src/algo/anonymizer.cc" "src/CMakeFiles/kanon_algo.dir/algo/anonymizer.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/anonymizer.cc.o.d"
  "/root/repo/src/algo/attribute_adapter.cc" "src/CMakeFiles/kanon_algo.dir/algo/attribute_adapter.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/attribute_adapter.cc.o.d"
  "/root/repo/src/algo/attribute_anonymity.cc" "src/CMakeFiles/kanon_algo.dir/algo/attribute_anonymity.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/attribute_anonymity.cc.o.d"
  "/root/repo/src/algo/attribute_exact.cc" "src/CMakeFiles/kanon_algo.dir/algo/attribute_exact.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/attribute_exact.cc.o.d"
  "/root/repo/src/algo/attribute_greedy.cc" "src/CMakeFiles/kanon_algo.dir/algo/attribute_greedy.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/attribute_greedy.cc.o.d"
  "/root/repo/src/algo/ball_cover.cc" "src/CMakeFiles/kanon_algo.dir/algo/ball_cover.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/ball_cover.cc.o.d"
  "/root/repo/src/algo/branch_bound.cc" "src/CMakeFiles/kanon_algo.dir/algo/branch_bound.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/branch_bound.cc.o.d"
  "/root/repo/src/algo/cluster_greedy.cc" "src/CMakeFiles/kanon_algo.dir/algo/cluster_greedy.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/cluster_greedy.cc.o.d"
  "/root/repo/src/algo/exact_dp.cc" "src/CMakeFiles/kanon_algo.dir/algo/exact_dp.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/exact_dp.cc.o.d"
  "/root/repo/src/algo/fallback.cc" "src/CMakeFiles/kanon_algo.dir/algo/fallback.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/fallback.cc.o.d"
  "/root/repo/src/algo/greedy_cover.cc" "src/CMakeFiles/kanon_algo.dir/algo/greedy_cover.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/greedy_cover.cc.o.d"
  "/root/repo/src/algo/local_search.cc" "src/CMakeFiles/kanon_algo.dir/algo/local_search.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/local_search.cc.o.d"
  "/root/repo/src/algo/mdav.cc" "src/CMakeFiles/kanon_algo.dir/algo/mdav.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/mdav.cc.o.d"
  "/root/repo/src/algo/mondrian.cc" "src/CMakeFiles/kanon_algo.dir/algo/mondrian.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/mondrian.cc.o.d"
  "/root/repo/src/algo/random_partition.cc" "src/CMakeFiles/kanon_algo.dir/algo/random_partition.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/random_partition.cc.o.d"
  "/root/repo/src/algo/reduce.cc" "src/CMakeFiles/kanon_algo.dir/algo/reduce.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/reduce.cc.o.d"
  "/root/repo/src/algo/registry.cc" "src/CMakeFiles/kanon_algo.dir/algo/registry.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/registry.cc.o.d"
  "/root/repo/src/algo/streaming.cc" "src/CMakeFiles/kanon_algo.dir/algo/streaming.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/streaming.cc.o.d"
  "/root/repo/src/algo/suppress_all.cc" "src/CMakeFiles/kanon_algo.dir/algo/suppress_all.cc.o" "gcc" "src/CMakeFiles/kanon_algo.dir/algo/suppress_all.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kanon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_setcover.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
