# Empty dependencies file for kanon_algo.
# This may be replaced when dependencies are built.
