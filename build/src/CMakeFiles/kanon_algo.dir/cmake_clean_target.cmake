file(REMOVE_RECURSE
  "libkanon_algo.a"
)
