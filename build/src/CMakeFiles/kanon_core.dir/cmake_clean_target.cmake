file(REMOVE_RECURSE
  "libkanon_core.a"
)
