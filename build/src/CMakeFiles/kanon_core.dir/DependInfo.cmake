
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/anonymity.cc" "src/CMakeFiles/kanon_core.dir/core/anonymity.cc.o" "gcc" "src/CMakeFiles/kanon_core.dir/core/anonymity.cc.o.d"
  "/root/repo/src/core/bounds.cc" "src/CMakeFiles/kanon_core.dir/core/bounds.cc.o" "gcc" "src/CMakeFiles/kanon_core.dir/core/bounds.cc.o.d"
  "/root/repo/src/core/cost.cc" "src/CMakeFiles/kanon_core.dir/core/cost.cc.o" "gcc" "src/CMakeFiles/kanon_core.dir/core/cost.cc.o.d"
  "/root/repo/src/core/distance.cc" "src/CMakeFiles/kanon_core.dir/core/distance.cc.o" "gcc" "src/CMakeFiles/kanon_core.dir/core/distance.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/CMakeFiles/kanon_core.dir/core/metrics.cc.o" "gcc" "src/CMakeFiles/kanon_core.dir/core/metrics.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/CMakeFiles/kanon_core.dir/core/partition.cc.o" "gcc" "src/CMakeFiles/kanon_core.dir/core/partition.cc.o.d"
  "/root/repo/src/core/suppressor.cc" "src/CMakeFiles/kanon_core.dir/core/suppressor.cc.o" "gcc" "src/CMakeFiles/kanon_core.dir/core/suppressor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kanon_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
