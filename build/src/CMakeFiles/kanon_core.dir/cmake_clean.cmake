file(REMOVE_RECURSE
  "CMakeFiles/kanon_core.dir/core/anonymity.cc.o"
  "CMakeFiles/kanon_core.dir/core/anonymity.cc.o.d"
  "CMakeFiles/kanon_core.dir/core/bounds.cc.o"
  "CMakeFiles/kanon_core.dir/core/bounds.cc.o.d"
  "CMakeFiles/kanon_core.dir/core/cost.cc.o"
  "CMakeFiles/kanon_core.dir/core/cost.cc.o.d"
  "CMakeFiles/kanon_core.dir/core/distance.cc.o"
  "CMakeFiles/kanon_core.dir/core/distance.cc.o.d"
  "CMakeFiles/kanon_core.dir/core/metrics.cc.o"
  "CMakeFiles/kanon_core.dir/core/metrics.cc.o.d"
  "CMakeFiles/kanon_core.dir/core/partition.cc.o"
  "CMakeFiles/kanon_core.dir/core/partition.cc.o.d"
  "CMakeFiles/kanon_core.dir/core/suppressor.cc.o"
  "CMakeFiles/kanon_core.dir/core/suppressor.cc.o.d"
  "libkanon_core.a"
  "libkanon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
