# Empty compiler generated dependencies file for kanon_core.
# This may be replaced when dependencies are built.
