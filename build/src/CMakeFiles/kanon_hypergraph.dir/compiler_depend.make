# Empty compiler generated dependencies file for kanon_hypergraph.
# This may be replaced when dependencies are built.
