file(REMOVE_RECURSE
  "libkanon_hypergraph.a"
)
