
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hypergraph/generators.cc" "src/CMakeFiles/kanon_hypergraph.dir/hypergraph/generators.cc.o" "gcc" "src/CMakeFiles/kanon_hypergraph.dir/hypergraph/generators.cc.o.d"
  "/root/repo/src/hypergraph/hypergraph.cc" "src/CMakeFiles/kanon_hypergraph.dir/hypergraph/hypergraph.cc.o" "gcc" "src/CMakeFiles/kanon_hypergraph.dir/hypergraph/hypergraph.cc.o.d"
  "/root/repo/src/hypergraph/matching.cc" "src/CMakeFiles/kanon_hypergraph.dir/hypergraph/matching.cc.o" "gcc" "src/CMakeFiles/kanon_hypergraph.dir/hypergraph/matching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
