file(REMOVE_RECURSE
  "CMakeFiles/kanon_hypergraph.dir/hypergraph/generators.cc.o"
  "CMakeFiles/kanon_hypergraph.dir/hypergraph/generators.cc.o.d"
  "CMakeFiles/kanon_hypergraph.dir/hypergraph/hypergraph.cc.o"
  "CMakeFiles/kanon_hypergraph.dir/hypergraph/hypergraph.cc.o.d"
  "CMakeFiles/kanon_hypergraph.dir/hypergraph/matching.cc.o"
  "CMakeFiles/kanon_hypergraph.dir/hypergraph/matching.cc.o.d"
  "libkanon_hypergraph.a"
  "libkanon_hypergraph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_hypergraph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
