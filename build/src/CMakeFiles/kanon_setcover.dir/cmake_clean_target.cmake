file(REMOVE_RECURSE
  "libkanon_setcover.a"
)
