# Empty compiler generated dependencies file for kanon_setcover.
# This may be replaced when dependencies are built.
