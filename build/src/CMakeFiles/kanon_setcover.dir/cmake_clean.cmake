file(REMOVE_RECURSE
  "CMakeFiles/kanon_setcover.dir/setcover/set_cover.cc.o"
  "CMakeFiles/kanon_setcover.dir/setcover/set_cover.cc.o.d"
  "libkanon_setcover.a"
  "libkanon_setcover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_setcover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
