file(REMOVE_RECURSE
  "libkanon_reductions.a"
)
