file(REMOVE_RECURSE
  "CMakeFiles/kanon_reductions.dir/reductions/matching_to_attribute.cc.o"
  "CMakeFiles/kanon_reductions.dir/reductions/matching_to_attribute.cc.o.d"
  "CMakeFiles/kanon_reductions.dir/reductions/matching_to_kanon.cc.o"
  "CMakeFiles/kanon_reductions.dir/reductions/matching_to_kanon.cc.o.d"
  "libkanon_reductions.a"
  "libkanon_reductions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_reductions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
