# Empty compiler generated dependencies file for kanon_reductions.
# This may be replaced when dependencies are built.
