file(REMOVE_RECURSE
  "libkanon_generalize.a"
)
