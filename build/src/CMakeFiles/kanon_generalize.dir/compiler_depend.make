# Empty compiler generated dependencies file for kanon_generalize.
# This may be replaced when dependencies are built.
