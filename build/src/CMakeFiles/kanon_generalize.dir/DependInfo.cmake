
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/generalize/apply.cc" "src/CMakeFiles/kanon_generalize.dir/generalize/apply.cc.o" "gcc" "src/CMakeFiles/kanon_generalize.dir/generalize/apply.cc.o.d"
  "/root/repo/src/generalize/hierarchy.cc" "src/CMakeFiles/kanon_generalize.dir/generalize/hierarchy.cc.o" "gcc" "src/CMakeFiles/kanon_generalize.dir/generalize/hierarchy.cc.o.d"
  "/root/repo/src/generalize/minimal_vectors.cc" "src/CMakeFiles/kanon_generalize.dir/generalize/minimal_vectors.cc.o" "gcc" "src/CMakeFiles/kanon_generalize.dir/generalize/minimal_vectors.cc.o.d"
  "/root/repo/src/generalize/optimal_lattice.cc" "src/CMakeFiles/kanon_generalize.dir/generalize/optimal_lattice.cc.o" "gcc" "src/CMakeFiles/kanon_generalize.dir/generalize/optimal_lattice.cc.o.d"
  "/root/repo/src/generalize/samarati.cc" "src/CMakeFiles/kanon_generalize.dir/generalize/samarati.cc.o" "gcc" "src/CMakeFiles/kanon_generalize.dir/generalize/samarati.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kanon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
