file(REMOVE_RECURSE
  "CMakeFiles/kanon_generalize.dir/generalize/apply.cc.o"
  "CMakeFiles/kanon_generalize.dir/generalize/apply.cc.o.d"
  "CMakeFiles/kanon_generalize.dir/generalize/hierarchy.cc.o"
  "CMakeFiles/kanon_generalize.dir/generalize/hierarchy.cc.o.d"
  "CMakeFiles/kanon_generalize.dir/generalize/minimal_vectors.cc.o"
  "CMakeFiles/kanon_generalize.dir/generalize/minimal_vectors.cc.o.d"
  "CMakeFiles/kanon_generalize.dir/generalize/optimal_lattice.cc.o"
  "CMakeFiles/kanon_generalize.dir/generalize/optimal_lattice.cc.o.d"
  "CMakeFiles/kanon_generalize.dir/generalize/samarati.cc.o"
  "CMakeFiles/kanon_generalize.dir/generalize/samarati.cc.o.d"
  "libkanon_generalize.a"
  "libkanon_generalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_generalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
