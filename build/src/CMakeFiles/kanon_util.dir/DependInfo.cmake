
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/cli.cc" "src/CMakeFiles/kanon_util.dir/util/cli.cc.o" "gcc" "src/CMakeFiles/kanon_util.dir/util/cli.cc.o.d"
  "/root/repo/src/util/csv.cc" "src/CMakeFiles/kanon_util.dir/util/csv.cc.o" "gcc" "src/CMakeFiles/kanon_util.dir/util/csv.cc.o.d"
  "/root/repo/src/util/logging.cc" "src/CMakeFiles/kanon_util.dir/util/logging.cc.o" "gcc" "src/CMakeFiles/kanon_util.dir/util/logging.cc.o.d"
  "/root/repo/src/util/parallel.cc" "src/CMakeFiles/kanon_util.dir/util/parallel.cc.o" "gcc" "src/CMakeFiles/kanon_util.dir/util/parallel.cc.o.d"
  "/root/repo/src/util/random.cc" "src/CMakeFiles/kanon_util.dir/util/random.cc.o" "gcc" "src/CMakeFiles/kanon_util.dir/util/random.cc.o.d"
  "/root/repo/src/util/report.cc" "src/CMakeFiles/kanon_util.dir/util/report.cc.o" "gcc" "src/CMakeFiles/kanon_util.dir/util/report.cc.o.d"
  "/root/repo/src/util/run_context.cc" "src/CMakeFiles/kanon_util.dir/util/run_context.cc.o" "gcc" "src/CMakeFiles/kanon_util.dir/util/run_context.cc.o.d"
  "/root/repo/src/util/stats.cc" "src/CMakeFiles/kanon_util.dir/util/stats.cc.o" "gcc" "src/CMakeFiles/kanon_util.dir/util/stats.cc.o.d"
  "/root/repo/src/util/status.cc" "src/CMakeFiles/kanon_util.dir/util/status.cc.o" "gcc" "src/CMakeFiles/kanon_util.dir/util/status.cc.o.d"
  "/root/repo/src/util/string_util.cc" "src/CMakeFiles/kanon_util.dir/util/string_util.cc.o" "gcc" "src/CMakeFiles/kanon_util.dir/util/string_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
