file(REMOVE_RECURSE
  "CMakeFiles/kanon_util.dir/util/cli.cc.o"
  "CMakeFiles/kanon_util.dir/util/cli.cc.o.d"
  "CMakeFiles/kanon_util.dir/util/csv.cc.o"
  "CMakeFiles/kanon_util.dir/util/csv.cc.o.d"
  "CMakeFiles/kanon_util.dir/util/logging.cc.o"
  "CMakeFiles/kanon_util.dir/util/logging.cc.o.d"
  "CMakeFiles/kanon_util.dir/util/parallel.cc.o"
  "CMakeFiles/kanon_util.dir/util/parallel.cc.o.d"
  "CMakeFiles/kanon_util.dir/util/random.cc.o"
  "CMakeFiles/kanon_util.dir/util/random.cc.o.d"
  "CMakeFiles/kanon_util.dir/util/report.cc.o"
  "CMakeFiles/kanon_util.dir/util/report.cc.o.d"
  "CMakeFiles/kanon_util.dir/util/run_context.cc.o"
  "CMakeFiles/kanon_util.dir/util/run_context.cc.o.d"
  "CMakeFiles/kanon_util.dir/util/stats.cc.o"
  "CMakeFiles/kanon_util.dir/util/stats.cc.o.d"
  "CMakeFiles/kanon_util.dir/util/status.cc.o"
  "CMakeFiles/kanon_util.dir/util/status.cc.o.d"
  "CMakeFiles/kanon_util.dir/util/string_util.cc.o"
  "CMakeFiles/kanon_util.dir/util/string_util.cc.o.d"
  "libkanon_util.a"
  "libkanon_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
