# Empty compiler generated dependencies file for kanon_util.
# This may be replaced when dependencies are built.
