file(REMOVE_RECURSE
  "libkanon_util.a"
)
