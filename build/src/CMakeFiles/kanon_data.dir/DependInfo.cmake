
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv_table.cc" "src/CMakeFiles/kanon_data.dir/data/csv_table.cc.o" "gcc" "src/CMakeFiles/kanon_data.dir/data/csv_table.cc.o.d"
  "/root/repo/src/data/dictionary.cc" "src/CMakeFiles/kanon_data.dir/data/dictionary.cc.o" "gcc" "src/CMakeFiles/kanon_data.dir/data/dictionary.cc.o.d"
  "/root/repo/src/data/generators/adversarial.cc" "src/CMakeFiles/kanon_data.dir/data/generators/adversarial.cc.o" "gcc" "src/CMakeFiles/kanon_data.dir/data/generators/adversarial.cc.o.d"
  "/root/repo/src/data/generators/census.cc" "src/CMakeFiles/kanon_data.dir/data/generators/census.cc.o" "gcc" "src/CMakeFiles/kanon_data.dir/data/generators/census.cc.o.d"
  "/root/repo/src/data/generators/clustered.cc" "src/CMakeFiles/kanon_data.dir/data/generators/clustered.cc.o" "gcc" "src/CMakeFiles/kanon_data.dir/data/generators/clustered.cc.o.d"
  "/root/repo/src/data/generators/medical.cc" "src/CMakeFiles/kanon_data.dir/data/generators/medical.cc.o" "gcc" "src/CMakeFiles/kanon_data.dir/data/generators/medical.cc.o.d"
  "/root/repo/src/data/generators/uniform.cc" "src/CMakeFiles/kanon_data.dir/data/generators/uniform.cc.o" "gcc" "src/CMakeFiles/kanon_data.dir/data/generators/uniform.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/kanon_data.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/kanon_data.dir/data/schema.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/kanon_data.dir/data/table.cc.o" "gcc" "src/CMakeFiles/kanon_data.dir/data/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kanon_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
