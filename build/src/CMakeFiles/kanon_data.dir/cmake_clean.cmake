file(REMOVE_RECURSE
  "CMakeFiles/kanon_data.dir/data/csv_table.cc.o"
  "CMakeFiles/kanon_data.dir/data/csv_table.cc.o.d"
  "CMakeFiles/kanon_data.dir/data/dictionary.cc.o"
  "CMakeFiles/kanon_data.dir/data/dictionary.cc.o.d"
  "CMakeFiles/kanon_data.dir/data/generators/adversarial.cc.o"
  "CMakeFiles/kanon_data.dir/data/generators/adversarial.cc.o.d"
  "CMakeFiles/kanon_data.dir/data/generators/census.cc.o"
  "CMakeFiles/kanon_data.dir/data/generators/census.cc.o.d"
  "CMakeFiles/kanon_data.dir/data/generators/clustered.cc.o"
  "CMakeFiles/kanon_data.dir/data/generators/clustered.cc.o.d"
  "CMakeFiles/kanon_data.dir/data/generators/medical.cc.o"
  "CMakeFiles/kanon_data.dir/data/generators/medical.cc.o.d"
  "CMakeFiles/kanon_data.dir/data/generators/uniform.cc.o"
  "CMakeFiles/kanon_data.dir/data/generators/uniform.cc.o.d"
  "CMakeFiles/kanon_data.dir/data/schema.cc.o"
  "CMakeFiles/kanon_data.dir/data/schema.cc.o.d"
  "CMakeFiles/kanon_data.dir/data/table.cc.o"
  "CMakeFiles/kanon_data.dir/data/table.cc.o.d"
  "libkanon_data.a"
  "libkanon_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kanon_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
