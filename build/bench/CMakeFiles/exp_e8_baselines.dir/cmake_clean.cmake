file(REMOVE_RECURSE
  "CMakeFiles/exp_e8_baselines.dir/exp_e8_baselines.cc.o"
  "CMakeFiles/exp_e8_baselines.dir/exp_e8_baselines.cc.o.d"
  "exp_e8_baselines"
  "exp_e8_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e8_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
