# Empty dependencies file for exp_e8_baselines.
# This may be replaced when dependencies are built.
