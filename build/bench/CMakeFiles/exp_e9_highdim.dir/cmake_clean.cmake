file(REMOVE_RECURSE
  "CMakeFiles/exp_e9_highdim.dir/exp_e9_highdim.cc.o"
  "CMakeFiles/exp_e9_highdim.dir/exp_e9_highdim.cc.o.d"
  "exp_e9_highdim"
  "exp_e9_highdim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e9_highdim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
