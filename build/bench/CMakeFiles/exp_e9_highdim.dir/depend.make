# Empty dependencies file for exp_e9_highdim.
# This may be replaced when dependencies are built.
