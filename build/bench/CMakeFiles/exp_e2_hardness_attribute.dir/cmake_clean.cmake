file(REMOVE_RECURSE
  "CMakeFiles/exp_e2_hardness_attribute.dir/exp_e2_hardness_attribute.cc.o"
  "CMakeFiles/exp_e2_hardness_attribute.dir/exp_e2_hardness_attribute.cc.o.d"
  "exp_e2_hardness_attribute"
  "exp_e2_hardness_attribute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e2_hardness_attribute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
