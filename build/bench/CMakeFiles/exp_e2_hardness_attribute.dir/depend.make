# Empty dependencies file for exp_e2_hardness_attribute.
# This may be replaced when dependencies are built.
