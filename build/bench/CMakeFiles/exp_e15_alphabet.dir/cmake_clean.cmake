file(REMOVE_RECURSE
  "CMakeFiles/exp_e15_alphabet.dir/exp_e15_alphabet.cc.o"
  "CMakeFiles/exp_e15_alphabet.dir/exp_e15_alphabet.cc.o.d"
  "exp_e15_alphabet"
  "exp_e15_alphabet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e15_alphabet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
