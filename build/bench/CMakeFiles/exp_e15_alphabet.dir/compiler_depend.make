# Empty compiler generated dependencies file for exp_e15_alphabet.
# This may be replaced when dependencies are built.
