file(REMOVE_RECURSE
  "CMakeFiles/exp_e10_generalization.dir/exp_e10_generalization.cc.o"
  "CMakeFiles/exp_e10_generalization.dir/exp_e10_generalization.cc.o.d"
  "exp_e10_generalization"
  "exp_e10_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e10_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
