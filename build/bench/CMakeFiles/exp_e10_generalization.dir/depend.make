# Empty dependencies file for exp_e10_generalization.
# This may be replaced when dependencies are built.
