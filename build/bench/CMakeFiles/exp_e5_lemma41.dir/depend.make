# Empty dependencies file for exp_e5_lemma41.
# This may be replaced when dependencies are built.
