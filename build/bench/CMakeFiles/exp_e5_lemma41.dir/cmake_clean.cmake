file(REMOVE_RECURSE
  "CMakeFiles/exp_e5_lemma41.dir/exp_e5_lemma41.cc.o"
  "CMakeFiles/exp_e5_lemma41.dir/exp_e5_lemma41.cc.o.d"
  "exp_e5_lemma41"
  "exp_e5_lemma41.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e5_lemma41.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
