# Empty compiler generated dependencies file for bench_micro_setcover.
# This may be replaced when dependencies are built.
