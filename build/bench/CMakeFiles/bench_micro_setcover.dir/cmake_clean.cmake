file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_setcover.dir/bench_micro_setcover.cc.o"
  "CMakeFiles/bench_micro_setcover.dir/bench_micro_setcover.cc.o.d"
  "bench_micro_setcover"
  "bench_micro_setcover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_setcover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
