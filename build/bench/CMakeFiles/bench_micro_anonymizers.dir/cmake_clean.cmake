file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_anonymizers.dir/bench_micro_anonymizers.cc.o"
  "CMakeFiles/bench_micro_anonymizers.dir/bench_micro_anonymizers.cc.o.d"
  "bench_micro_anonymizers"
  "bench_micro_anonymizers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_anonymizers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
