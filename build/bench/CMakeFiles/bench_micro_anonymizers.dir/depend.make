# Empty dependencies file for bench_micro_anonymizers.
# This may be replaced when dependencies are built.
