# Empty compiler generated dependencies file for exp_e14_streaming.
# This may be replaced when dependencies are built.
