file(REMOVE_RECURSE
  "CMakeFiles/exp_e14_streaming.dir/exp_e14_streaming.cc.o"
  "CMakeFiles/exp_e14_streaming.dir/exp_e14_streaming.cc.o.d"
  "exp_e14_streaming"
  "exp_e14_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e14_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
