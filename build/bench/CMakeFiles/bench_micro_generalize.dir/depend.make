# Empty dependencies file for bench_micro_generalize.
# This may be replaced when dependencies are built.
