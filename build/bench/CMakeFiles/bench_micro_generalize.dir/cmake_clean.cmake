file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_generalize.dir/bench_micro_generalize.cc.o"
  "CMakeFiles/bench_micro_generalize.dir/bench_micro_generalize.cc.o.d"
  "bench_micro_generalize"
  "bench_micro_generalize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_generalize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
