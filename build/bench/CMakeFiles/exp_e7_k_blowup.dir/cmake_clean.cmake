file(REMOVE_RECURSE
  "CMakeFiles/exp_e7_k_blowup.dir/exp_e7_k_blowup.cc.o"
  "CMakeFiles/exp_e7_k_blowup.dir/exp_e7_k_blowup.cc.o.d"
  "exp_e7_k_blowup"
  "exp_e7_k_blowup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e7_k_blowup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
