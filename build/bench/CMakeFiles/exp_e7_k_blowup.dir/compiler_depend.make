# Empty compiler generated dependencies file for exp_e7_k_blowup.
# This may be replaced when dependencies are built.
