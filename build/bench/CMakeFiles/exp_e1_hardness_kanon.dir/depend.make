# Empty dependencies file for exp_e1_hardness_kanon.
# This may be replaced when dependencies are built.
