file(REMOVE_RECURSE
  "CMakeFiles/exp_e1_hardness_kanon.dir/exp_e1_hardness_kanon.cc.o"
  "CMakeFiles/exp_e1_hardness_kanon.dir/exp_e1_hardness_kanon.cc.o.d"
  "exp_e1_hardness_kanon"
  "exp_e1_hardness_kanon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e1_hardness_kanon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
