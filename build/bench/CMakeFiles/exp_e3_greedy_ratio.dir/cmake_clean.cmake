file(REMOVE_RECURSE
  "CMakeFiles/exp_e3_greedy_ratio.dir/exp_e3_greedy_ratio.cc.o"
  "CMakeFiles/exp_e3_greedy_ratio.dir/exp_e3_greedy_ratio.cc.o.d"
  "exp_e3_greedy_ratio"
  "exp_e3_greedy_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e3_greedy_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
