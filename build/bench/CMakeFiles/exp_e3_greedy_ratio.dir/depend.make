# Empty dependencies file for exp_e3_greedy_ratio.
# This may be replaced when dependencies are built.
