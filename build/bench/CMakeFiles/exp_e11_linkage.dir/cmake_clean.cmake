file(REMOVE_RECURSE
  "CMakeFiles/exp_e11_linkage.dir/exp_e11_linkage.cc.o"
  "CMakeFiles/exp_e11_linkage.dir/exp_e11_linkage.cc.o.d"
  "exp_e11_linkage"
  "exp_e11_linkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e11_linkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
