# Empty dependencies file for exp_e11_linkage.
# This may be replaced when dependencies are built.
