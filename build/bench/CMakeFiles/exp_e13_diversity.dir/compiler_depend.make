# Empty compiler generated dependencies file for exp_e13_diversity.
# This may be replaced when dependencies are built.
