file(REMOVE_RECURSE
  "CMakeFiles/exp_e13_diversity.dir/exp_e13_diversity.cc.o"
  "CMakeFiles/exp_e13_diversity.dir/exp_e13_diversity.cc.o.d"
  "exp_e13_diversity"
  "exp_e13_diversity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e13_diversity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
