# Empty compiler generated dependencies file for exp_e6_scaling.
# This may be replaced when dependencies are built.
