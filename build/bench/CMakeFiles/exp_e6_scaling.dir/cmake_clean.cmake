file(REMOVE_RECURSE
  "CMakeFiles/exp_e6_scaling.dir/exp_e6_scaling.cc.o"
  "CMakeFiles/exp_e6_scaling.dir/exp_e6_scaling.cc.o.d"
  "exp_e6_scaling"
  "exp_e6_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e6_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
