# Empty compiler generated dependencies file for exp_e4_ball_ratio.
# This may be replaced when dependencies are built.
