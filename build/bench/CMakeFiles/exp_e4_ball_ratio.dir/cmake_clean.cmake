file(REMOVE_RECURSE
  "CMakeFiles/exp_e4_ball_ratio.dir/exp_e4_ball_ratio.cc.o"
  "CMakeFiles/exp_e4_ball_ratio.dir/exp_e4_ball_ratio.cc.o.d"
  "exp_e4_ball_ratio"
  "exp_e4_ball_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e4_ball_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
