# Empty compiler generated dependencies file for exp_e12_postopt.
# This may be replaced when dependencies are built.
