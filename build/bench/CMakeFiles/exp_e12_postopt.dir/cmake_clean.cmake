file(REMOVE_RECURSE
  "CMakeFiles/exp_e12_postopt.dir/exp_e12_postopt.cc.o"
  "CMakeFiles/exp_e12_postopt.dir/exp_e12_postopt.cc.o.d"
  "exp_e12_postopt"
  "exp_e12_postopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp_e12_postopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
