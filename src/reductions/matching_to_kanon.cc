#include "reductions/matching_to_kanon.h"

#include <algorithm>
#include <set>
#include <string>

#include "core/anonymity.h"
#include "util/logging.h"

namespace kanon {

size_t KAnonHardnessThreshold(const Hypergraph& h) {
  KANON_CHECK_GE(h.num_edges(), 1u);
  return static_cast<size_t>(h.num_vertices()) * (h.num_edges() - 1);
}

Table BuildKAnonInstance(const Hypergraph& h) {
  KANON_CHECK(h.IsSimple());
  KANON_CHECK_GE(h.num_edges(), 1u);
  const uint32_t n = h.num_vertices();
  const uint32_t m = h.num_edges();

  Schema schema;
  for (uint32_t j = 0; j < m; ++j) {
    schema.AddAttribute("e" + std::to_string(j));
  }
  Table table(std::move(schema));

  std::vector<std::string> row(m);
  for (VertexId i = 0; i < n; ++i) {
    // Row-unique filler "<i+1>" off-edge, shared "0" on-edge: two rows can
    // agree only on coordinates where both are on the edge.
    const std::string filler = std::to_string(i + 1);
    for (uint32_t j = 0; j < m; ++j) {
      row[j] = h.Incident(i, j) ? "0" : filler;
    }
    table.AppendStringRow(row);
  }
  return table;
}

Suppressor MatchingToSuppressor(const Hypergraph& h,
                                const std::vector<uint32_t>& matching) {
  KANON_CHECK(IsPerfectMatching(h, matching));
  const uint32_t n = h.num_vertices();
  const uint32_t m = h.num_edges();

  // matched_edge[i] = the unique matching edge containing vertex i.
  std::vector<uint32_t> matched_edge(n, m);
  for (const uint32_t e : matching) {
    for (const VertexId v : h.edge(e)) {
      KANON_CHECK_EQ(matched_edge[v], m);
      matched_edge[v] = e;
    }
  }

  Suppressor t(n, m);
  for (VertexId i = 0; i < n; ++i) {
    KANON_CHECK_LT(matched_edge[i], m);
    for (uint32_t j = 0; j < m; ++j) {
      if (j != matched_edge[i]) t.Suppress(i, j);
    }
  }
  KANON_CHECK_EQ(t.Stars(), KAnonHardnessThreshold(h));
  return t;
}

std::optional<std::vector<uint32_t>> ExtractMatching(
    const Hypergraph& h, const Table& instance, const Suppressor& t) {
  const uint32_t n = h.num_vertices();
  const uint32_t m = h.num_edges();
  if (instance.num_rows() != n || instance.num_columns() != m) {
    return std::nullopt;
  }
  if (t.Stars() > KAnonHardnessThreshold(h)) return std::nullopt;
  if (!IsKAnonymizer(t, instance, h.uniformity())) return std::nullopt;

  // Theorem 3.1's converse: at this cost every row keeps exactly one
  // coordinate, whose value must be the shared "0" of some edge.
  std::set<uint32_t> edges;
  for (RowId i = 0; i < n; ++i) {
    uint32_t kept = m;
    for (ColId j = 0; j < m; ++j) {
      if (!t.IsSuppressed(i, j)) {
        if (kept != m) return std::nullopt;  // two kept coordinates
        kept = j;
      }
    }
    if (kept == m) return std::nullopt;  // all-star row
    // Dictionaries are per-column, so resolve "0" in the kept column.
    const ValueCode zero_code =
        instance.schema().dictionary(kept).Lookup("0");
    if (instance.at(i, kept) != zero_code) return std::nullopt;
    if (!h.Incident(i, kept)) return std::nullopt;
    edges.insert(kept);
  }
  std::vector<uint32_t> matching(edges.begin(), edges.end());
  if (!IsPerfectMatching(h, matching)) return std::nullopt;
  return matching;
}

}  // namespace kanon
