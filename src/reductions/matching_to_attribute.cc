#include "reductions/matching_to_attribute.h"

#include <algorithm>
#include <string>

#include "algo/attribute_anonymity.h"
#include "util/logging.h"

namespace kanon {

size_t AttributeHardnessThreshold(const Hypergraph& h) {
  KANON_CHECK_EQ(h.num_vertices() % h.uniformity(), 0u);
  const size_t pm_edges = h.num_vertices() / h.uniformity();
  KANON_CHECK_GE(static_cast<size_t>(h.num_edges()), pm_edges);
  return h.num_edges() - pm_edges;
}

Table BuildAttributeInstance(const Hypergraph& h) {
  KANON_CHECK(h.IsSimple());
  const uint32_t n = h.num_vertices();
  const uint32_t m = h.num_edges();

  Schema schema;
  for (uint32_t j = 0; j < m; ++j) {
    schema.AddAttribute("e" + std::to_string(j));
  }
  Table table(std::move(schema));
  std::vector<std::string> row(m);
  for (VertexId i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < m; ++j) {
      row[j] = h.Incident(i, j) ? "1" : "0";
    }
    table.AppendStringRow(row);
  }
  return table;
}

std::vector<ColId> MatchingToSuppressedColumns(
    const Hypergraph& h, const std::vector<uint32_t>& matching) {
  KANON_CHECK(IsPerfectMatching(h, matching));
  std::vector<bool> kept(h.num_edges(), false);
  for (const uint32_t e : matching) kept[e] = true;
  std::vector<ColId> suppressed;
  for (uint32_t j = 0; j < h.num_edges(); ++j) {
    if (!kept[j]) suppressed.push_back(j);
  }
  KANON_CHECK_EQ(suppressed.size(), AttributeHardnessThreshold(h));
  return suppressed;
}

std::optional<std::vector<uint32_t>> ExtractMatchingFromColumns(
    const Hypergraph& h, const Table& instance,
    const std::vector<ColId>& suppressed) {
  const uint32_t m = h.num_edges();
  if (instance.num_columns() != m ||
      instance.num_rows() != h.num_vertices()) {
    return std::nullopt;
  }
  if (suppressed.size() > AttributeHardnessThreshold(h)) {
    return std::nullopt;
  }
  uint64_t kept_mask = (m >= 64) ? 0 : ((uint64_t{1} << m) - 1);
  KANON_CHECK_LT(m, 64u);
  for (const ColId c : suppressed) {
    if (c >= m) return std::nullopt;
    kept_mask &= ~(uint64_t{1} << c);
  }
  if (!KeptSetFeasible(instance, kept_mask, h.uniformity())) {
    return std::nullopt;
  }
  // The kept columns are the matching.
  std::vector<uint32_t> matching;
  for (uint32_t j = 0; j < m; ++j) {
    if (kept_mask & (uint64_t{1} << j)) matching.push_back(j);
  }
  if (!IsPerfectMatching(h, matching)) return std::nullopt;
  return matching;
}

}  // namespace kanon
