#ifndef KANON_REDUCTIONS_MATCHING_TO_ATTRIBUTE_H_
#define KANON_REDUCTIONS_MATCHING_TO_ATTRIBUTE_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "data/table.h"
#include "hypergraph/hypergraph.h"

/// \file
/// Theorem 3.2 as executable code: the reduction from k-dimensional
/// PERFECT MATCHING to k-ANONYMITY ON ATTRIBUTES with a binary alphabet.
///
/// Construction: v_i[j] = b1 if u_i ∈ e_j else b0. Suppressing attribute
/// j removes hyperedge e_j. Exactly k rows carry b1 in each kept column,
/// so two columns can both stay only if their edges are disjoint; hence a
/// k-anonymization suppressing exactly m - n/k attributes exists iff H
/// has a perfect matching (the kept columns ARE the matching).

namespace kanon {

/// Objective threshold of the reduction: m - n/k suppressed attributes.
size_t AttributeHardnessThreshold(const Hypergraph& h);

/// Builds the binary incidence table ("1" on-edge, "0" off-edge;
/// attributes "e0".."e{m-1}"). Requires h.IsSimple().
Table BuildAttributeInstance(const Hypergraph& h);

/// Forward direction: the suppressed-column set encoding a perfect
/// matching (all columns except the matching's edges).
std::vector<ColId> MatchingToSuppressedColumns(
    const Hypergraph& h, const std::vector<uint32_t>& matching);

/// Converse direction: given a set of suppressed columns of size at most
/// the threshold whose projection is k-anonymous, the kept columns form
/// a perfect matching; extracts it. Returns std::nullopt when the
/// premises fail.
std::optional<std::vector<uint32_t>> ExtractMatchingFromColumns(
    const Hypergraph& h, const Table& instance,
    const std::vector<ColId>& suppressed);

}  // namespace kanon

#endif  // KANON_REDUCTIONS_MATCHING_TO_ATTRIBUTE_H_
