#ifndef KANON_REDUCTIONS_MATCHING_TO_KANON_H_
#define KANON_REDUCTIONS_MATCHING_TO_KANON_H_

#include <cstddef>
#include <optional>
#include <vector>

#include "core/suppressor.h"
#include "data/table.h"
#include "hypergraph/hypergraph.h"

/// \file
/// Theorem 3.1 as executable code: the reduction from k-DIMENSIONAL
/// PERFECT MATCHING to k-ANONYMITY (entry suppression, |Σ| = n+1).
///
/// Construction (OCR-corrected; see DESIGN.md): for a simple k-uniform
/// hypergraph H with n vertices and m edges, build one m-dimensional row
/// per vertex u_i with
///     v_i[j] = "0"          if u_i ∈ e_j,
///     v_i[j] = "<i+1>"      otherwise (a row-unique filler symbol),
/// over Σ = {0, 1, ..., n}. Two rows can then agree on a coordinate only
/// where both are 0, i.e. only on shared edges; since H is simple, no two
/// rows share two edges, so every nontrivial k-group must keep at most
/// one coordinate. Consequently
///     OPT_k-anonymity(V) <= n(m-1)   iff   H has a perfect matching,
/// and equality holds exactly at that threshold.

namespace kanon {

/// Cost threshold of the reduction: n * (m - 1).
size_t KAnonHardnessThreshold(const Hypergraph& h);

/// Builds the Theorem 3.1 table from `h` (attributes "e0".."e{m-1}").
/// Requires h.IsSimple() and m >= 1.
Table BuildKAnonInstance(const Hypergraph& h);

/// Forward direction: turns a perfect matching of `h` into a suppressor
/// on the instance table with exactly n(m-1) stars whose application is
/// k-anonymous (k = h.uniformity()).
Suppressor MatchingToSuppressor(const Hypergraph& h,
                                const std::vector<uint32_t>& matching);

/// Converse direction: given any k-anonymizer with at most n(m-1) stars,
/// extracts the perfect matching it encodes (the unique kept coordinate
/// of each row). Returns std::nullopt if `t` has more than n(m-1) stars
/// or is not a k-anonymizer of the instance — cases Theorem 3.1 proves
/// impossible when OPT <= n(m-1); the experiments assert non-null.
std::optional<std::vector<uint32_t>> ExtractMatching(
    const Hypergraph& h, const Table& instance, const Suppressor& t);

}  // namespace kanon

#endif  // KANON_REDUCTIONS_MATCHING_TO_KANON_H_
