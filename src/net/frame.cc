#include "net/frame.h"

#include <cstring>
#include <utility>

#include "ckpt/checkpoint.h"
#include "util/fingerprint.h"

namespace kanon {

namespace {

constexpr char kMagic[4] = {'K', 'N', 'E', 'T'};
constexpr uint32_t kVersion = 1;

void AppendU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

void AppendU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(char((v >> (8 * i)) & 0xff));
}

uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | uint8_t(p[i]);
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | uint8_t(p[i]);
  return v;
}

constexpr uint32_t kFlagEmitCsv = 1u << 0;
constexpr uint32_t kFlagCacheHit = 1u << 0;

bool KnownVerb(uint32_t v) {
  return v >= uint32_t(NetVerb::kAnonymize) && v <= uint32_t(NetVerb::kShutdown);
}

/// StatusCode values a response may legitimately carry; anything else off
/// the wire is a protocol violation, not a value to cast blindly.
bool KnownStatusCode(uint32_t v) {
  return v <= uint32_t(StatusCode::kUnavailable);
}

}  // namespace

std::string EncodeFrame(std::string_view body) {
  std::string out;
  out.reserve(kFrameHeaderBytes + body.size() + kFrameTrailerBytes);
  out.append(kMagic, sizeof(kMagic));
  AppendU32(out, kVersion);
  AppendU64(out, body.size());
  out.append(body);
  AppendU64(out, Fingerprint(out));
  return out;
}

FrameDecode TryDecodeFrame(std::string_view buffer,
                           const FrameLimits& limits,
                           std::string_view* body, size_t* consumed,
                           Status* error) {
  KANON_CHECK(body != nullptr && consumed != nullptr && error != nullptr);
  if (buffer.empty()) return FrameDecode::kNeedMore;
  // Magic is checked byte-by-byte so a stream that is not speaking the
  // protocol is rejected on its very first byte, not buffered until a
  // 16-byte header happens to accumulate.
  const size_t magic_seen = buffer.size() < 4 ? buffer.size() : 4;
  if (std::memcmp(buffer.data(), kMagic, magic_seen) != 0) {
    *error = Status::ParseError("bad frame magic");
    return FrameDecode::kBad;
  }
  if (buffer.size() < kFrameHeaderBytes) return FrameDecode::kNeedMore;

  const uint32_t version = LoadU32(buffer.data() + 4);
  if (version != kVersion) {
    *error = Status::ParseError("unsupported frame version " +
                                std::to_string(version));
    return FrameDecode::kBad;
  }
  const uint64_t body_len = LoadU64(buffer.data() + 8);
  // The announced length is validated before any buffering decision, so a
  // hostile 2^63 header can never drive an allocation.
  if (body_len > limits.max_body) {
    *error = Status::ParseError("frame body of " + std::to_string(body_len) +
                                " bytes exceeds cap of " +
                                std::to_string(limits.max_body));
    return FrameDecode::kBad;
  }
  const size_t total =
      kFrameHeaderBytes + size_t(body_len) + kFrameTrailerBytes;
  if (buffer.size() < total) return FrameDecode::kNeedMore;

  const size_t checked = kFrameHeaderBytes + size_t(body_len);
  const uint64_t want = Fingerprint(buffer.substr(0, checked));
  const uint64_t got = LoadU64(buffer.data() + checked);
  if (want != got) {
    *error = Status::ParseError("frame checksum mismatch");
    return FrameDecode::kBad;
  }
  *body = buffer.substr(kFrameHeaderBytes, size_t(body_len));
  *consumed = total;
  return FrameDecode::kFrame;
}

StatusOr<std::string> DecodeFrameExact(std::string_view bytes,
                                       const FrameLimits& limits) {
  std::string_view body;
  size_t consumed = 0;
  Status error;
  switch (TryDecodeFrame(bytes, limits, &body, &consumed, &error)) {
    case FrameDecode::kBad:
      return error;
    case FrameDecode::kNeedMore:
      return Status::ParseError("truncated frame: " +
                                std::to_string(bytes.size()) + " bytes");
    case FrameDecode::kFrame:
      break;
  }
  if (consumed != bytes.size()) {
    return Status::ParseError(
        "trailing bytes after frame: " +
        std::to_string(bytes.size() - consumed));
  }
  return std::string(body);
}

std::string EncodeNetRequest(const NetRequest& request) {
  CheckpointWriter w;
  w.PutU32(uint32_t(request.verb));
  w.PutU64(request.client_seq);
  if (request.verb == NetVerb::kAnonymize) {
    const AnonymizeRequest& r = request.request;
    w.PutBytes(r.algorithm);
    w.PutU64(r.k);
    w.PutDouble(r.deadline_ms);
    w.PutU64(r.node_budget);
    w.PutU64(uint64_t(int64_t(r.priority)));
    uint32_t flags = 0;
    if (r.emit_csv) flags |= kFlagEmitCsv;
    w.PutU32(flags);
    w.PutBytes(r.csv_text);
  }
  return EncodeFrame(w.bytes());
}

StatusOr<NetRequest> DecodeNetRequest(std::string_view body) {
  CheckpointReader r(body);
  const uint32_t verb = r.GetU32();
  if (!r.failed() && !KnownVerb(verb)) {
    return Status::ParseError("unknown request verb " + std::to_string(verb));
  }
  NetRequest req;
  req.verb = NetVerb(verb);
  req.client_seq = r.GetU64();
  if (req.verb == NetVerb::kAnonymize) {
    req.request.algorithm = std::string(r.GetBytes());
    req.request.k = size_t(r.GetU64());
    req.request.deadline_ms = r.GetDouble();
    req.request.node_budget = r.GetU64();
    req.request.priority = int(int64_t(r.GetU64()));
    const uint32_t flags = r.GetU32();
    req.request.emit_csv = (flags & kFlagEmitCsv) != 0;
    req.request.csv_text = std::string(r.GetBytes());
  }
  if (r.failed() || !r.AtEnd()) {
    return Status::ParseError("malformed request body");
  }
  return req;
}

std::string EncodeNetResponse(const NetResponse& response) {
  CheckpointWriter w;
  w.PutU32(uint32_t(response.verb));
  w.PutU64(response.client_seq);
  w.PutU64(response.job_id);
  w.PutU32(uint32_t(response.code));
  w.PutBytes(response.error_name);
  w.PutBytes(response.message);
  if (response.ok() && response.verb == NetVerb::kAnonymize) {
    w.PutU64(response.k);
    w.PutU64(response.rows);
    w.PutU64(response.cost);
    w.PutBytes(response.stage);
    w.PutBytes(response.chain);
    w.PutU32(response.termination);
    uint32_t flags = 0;
    if (response.cache_hit) flags |= kFlagCacheHit;
    w.PutU32(flags);
    w.PutDouble(response.queue_ms);
    w.PutDouble(response.run_ms);
    w.PutBytes(response.csv);
    w.PutBytes(response.effective_algorithm);
    w.PutU32(response.brownout);
  } else if (response.ok() && response.verb == NetVerb::kStats) {
    w.PutBytes(response.stats_line);
  }
  return EncodeFrame(w.bytes());
}

StatusOr<NetResponse> DecodeNetResponse(std::string_view body) {
  CheckpointReader r(body);
  const uint32_t verb = r.GetU32();
  if (!r.failed() && !KnownVerb(verb)) {
    return Status::ParseError("unknown response verb " + std::to_string(verb));
  }
  NetResponse resp;
  resp.verb = NetVerb(verb);
  resp.client_seq = r.GetU64();
  resp.job_id = r.GetU64();
  const uint32_t code = r.GetU32();
  if (!r.failed() && !KnownStatusCode(code)) {
    return Status::ParseError("unknown status code " + std::to_string(code));
  }
  resp.code = StatusCode(code);
  resp.error_name = std::string(r.GetBytes());
  resp.message = std::string(r.GetBytes());
  if (resp.ok() && resp.verb == NetVerb::kAnonymize) {
    resp.k = r.GetU64();
    resp.rows = r.GetU64();
    resp.cost = r.GetU64();
    resp.stage = std::string(r.GetBytes());
    resp.chain = std::string(r.GetBytes());
    resp.termination = r.GetU32();
    const uint32_t flags = r.GetU32();
    resp.cache_hit = (flags & kFlagCacheHit) != 0;
    resp.queue_ms = r.GetDouble();
    resp.run_ms = r.GetDouble();
    resp.csv = std::string(r.GetBytes());
    resp.effective_algorithm = std::string(r.GetBytes());
    resp.brownout = r.GetU32();
  } else if (resp.ok() && resp.verb == NetVerb::kStats) {
    resp.stats_line = std::string(r.GetBytes());
  }
  if (r.failed() || !r.AtEnd()) {
    return Status::ParseError("malformed response body");
  }
  return resp;
}

NetResponse MakeNetResponse(NetVerb verb, uint64_t client_seq,
                            const AnonymizeResponse& response,
                            ServiceError error) {
  NetResponse out;
  out.verb = verb;
  out.client_seq = client_seq;
  out.job_id = response.id;
  if (error == ServiceError::kNone) error = response.error;
  out.code = response.status.ok() ? StatusCode::kOk : response.status.code();
  if (!response.status.ok()) {
    out.error_name = ServiceErrorName(error);
    out.message = response.status.message();
    return out;
  }
  out.k = response.k;
  out.rows = response.rows;
  out.cost = response.cost;
  out.stage = response.stage;
  out.chain = response.chain;
  out.termination = uint32_t(response.termination);
  out.cache_hit = response.cache_hit;
  out.queue_ms = response.queue_ms;
  out.run_ms = response.run_ms;
  out.csv = response.anonymized_csv;
  out.effective_algorithm = response.effective_algorithm;
  out.brownout = uint32_t(response.brownout);
  return out;
}

NetResponse MakeNetError(NetVerb verb, uint64_t client_seq,
                         ServiceError error, std::string message) {
  NetResponse out;
  out.verb = verb;
  out.client_seq = client_seq;
  out.code = ServiceErrorCode(error);
  out.error_name = ServiceErrorName(error);
  out.message = std::move(message);
  return out;
}

}  // namespace kanon
