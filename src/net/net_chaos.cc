#include "net/net_chaos.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <iostream>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>

#include "data/csv_table.h"
#include "data/generators/uniform.h"
#include "fault/fault.h"
#include "net/client.h"
#include "service/journal.h"
#include "util/fingerprint.h"
#include "util/random.h"
#include "util/string_util.h"

namespace kanon {

namespace {

/// One step of a client session. Exactly one of the payloads applies.
struct Op {
  enum class Kind {
    kAnonymize,    // one valid request, wait for its response
    kBurst,        // `burst` pipelined valid requests, then collect all
    kStats,        // stats probe
    kGarbage,      // bytes that are not the protocol (terminal)
    kBitFlip,      // a valid frame with one bit flipped (terminal)
    kTruncate,     // a valid frame cut short, then EOF (terminal)
    kOversized,    // an envelope declaring a too-large body (terminal)
  };
  Kind kind = Kind::kAnonymize;
  std::vector<NetRequest> requests;  // kAnonymize/kBurst/kStats
  std::string raw;                   // the hostile byte payloads
  std::vector<size_t> expect_k;      // k per request, for validation
};

struct Session {
  std::vector<Op> ops;
};

bool IsTerminal(Op::Kind kind) {
  return kind == Op::Kind::kGarbage || kind == Op::Kind::kBitFlip ||
         kind == Op::Kind::kTruncate || kind == Op::Kind::kOversized;
}

/// The transport fault plan: only net.* + queue.admit specs, never a
/// background probability (worker/cache/ckpt sites belong to the
/// service-layer harness).
FaultPlan DrawNetFaultPlan(uint64_t seed, Rng* rng, bool* mid_write) {
  FaultPlan plan;
  plan.seed = seed;
  *mid_write = false;
  // Every 4th schedule runs fault-free as a control.
  if (rng->Uniform(4) == 0) return plan;
  static const char* const kSites[] = {
      "net.accept", "net.read_torn", "net.write_stall",
      "net.close_mid_frame", "queue.admit",
  };
  const int overrides = rng->UniformInt(1, 3);
  for (int i = 0; i < overrides; ++i) {
    FaultSiteSpec spec;
    spec.site = kSites[rng->Uniform(sizeof(kSites) / sizeof(kSites[0]))];
    if (rng->Bernoulli(0.5)) {
      spec.first_n = static_cast<uint64_t>(rng->UniformInt(1, 3));
    } else {
      spec.probability = 0.02 + 0.18 * rng->UniformDouble();
    }
    if (spec.site == std::string("net.close_mid_frame") ||
        spec.site == std::string("net.write_stall")) {
      *mid_write = true;
    }
    plan.sites.push_back(std::move(spec));
  }
  return plan;
}

NetRequest DrawAnonymize(Rng* rng, uint64_t* next_seq) {
  static const char* const kAlgos[] = {
      "resilient", "resilient", "greedy_cover", "mondrian", "mdav",
  };
  NetRequest request;
  request.verb = NetVerb::kAnonymize;
  request.client_seq = (*next_seq)++;
  request.request.algorithm =
      kAlgos[rng->Uniform(sizeof(kAlgos) / sizeof(kAlgos[0]))];
  UniformTableOptions table;
  table.num_rows = static_cast<uint32_t>(rng->UniformInt(6, 14));
  table.num_columns = static_cast<uint32_t>(rng->UniformInt(2, 4));
  table.alphabet = static_cast<uint32_t>(rng->UniformInt(2, 4));
  request.request.csv_text = TableToCsv(UniformTable(table, rng));
  request.request.k = static_cast<size_t>(rng->UniformInt(2, 4));
  request.request.priority = rng->UniformInt(-2, 2);
  if (rng->Bernoulli(0.25)) {
    request.request.node_budget =
        static_cast<uint64_t>(rng->UniformInt(50, 5000));
  }
  request.request.emit_csv = true;
  return request;
}

Op DrawOp(Rng* rng, uint64_t* next_seq) {
  Op op;
  const uint32_t pick = rng->Uniform(10);
  if (pick < 4) {
    op.kind = Op::Kind::kAnonymize;
    op.requests.push_back(DrawAnonymize(rng, next_seq));
    op.expect_k.push_back(op.requests.back().request.k);
    return op;
  }
  if (pick < 6) {
    op.kind = Op::Kind::kBurst;
    const int burst = rng->UniformInt(2, 5);
    for (int i = 0; i < burst; ++i) {
      op.requests.push_back(DrawAnonymize(rng, next_seq));
      op.expect_k.push_back(op.requests.back().request.k);
    }
    return op;
  }
  if (pick < 7) {
    op.kind = Op::Kind::kStats;
    NetRequest request;
    request.verb = NetVerb::kStats;
    request.client_seq = (*next_seq)++;
    op.requests.push_back(std::move(request));
    return op;
  }
  // Hostile payloads: all terminal for their session.
  const uint32_t hostile = rng->Uniform(4);
  if (hostile == 0) {
    op.kind = Op::Kind::kGarbage;
    const int len = rng->UniformInt(8, 64);
    op.raw.reserve(static_cast<size_t>(len));
    for (int i = 0; i < len; ++i) {
      op.raw.push_back(static_cast<char>(rng->Uniform(256)));
    }
    op.raw[0] = 'X';  // never a valid magic prefix
    return op;
  }
  std::string frame = EncodeNetRequest(DrawAnonymize(rng, next_seq));
  if (hostile == 1) {
    op.kind = Op::Kind::kBitFlip;
    const size_t bit =
        rng->Uniform(static_cast<uint32_t>(frame.size() * 8));
    frame[bit / 8] = static_cast<char>(
        static_cast<unsigned char>(frame[bit / 8]) ^ (1u << (bit % 8)));
    op.raw = std::move(frame);
    return op;
  }
  if (hostile == 2) {
    op.kind = Op::Kind::kTruncate;
    const size_t keep = 1 + static_cast<size_t>(rng->Uniform(
                                static_cast<uint32_t>(frame.size() - 1)));
    op.raw = frame.substr(0, keep);
    return op;
  }
  op.kind = Op::Kind::kOversized;
  // A syntactically perfect header announcing a body past the cap: the
  // codec must reject it before buffering a byte of it.
  std::string header = "KNET";
  const uint32_t version = 1;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((version >> (8 * i)) & 0xff));
  }
  const uint64_t huge = (uint64_t{1} << 40) + rng->Uniform(1000);
  for (int i = 0; i < 8; ++i) {
    header.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  op.raw = std::move(header);
  return op;
}

uint64_t FoldWorkload(uint64_t fp, const std::vector<Session>& sessions,
                      const FaultPlan& plan) {
  for (const FaultSiteSpec& spec : plan.sites) {
    fp = FingerprintPiece(fp, spec.site);
    fp = FingerprintInt(fp, spec.first_n);
    fp = FingerprintInt(fp, static_cast<uint64_t>(spec.probability * 1e6));
  }
  for (const Session& session : sessions) {
    for (const Op& op : session.ops) {
      fp = FingerprintInt(fp, static_cast<uint64_t>(op.kind));
      fp = FingerprintPiece(fp, op.raw);
      for (const NetRequest& request : op.requests) {
        fp = FingerprintPiece(fp, EncodeNetRequest(request));
      }
    }
  }
  return fp;
}

/// Invariant 7's k-anonymity predicate (same as the service harness).
bool OutputIsKAnonymous(const std::string& csv, size_t k,
                        std::string* why) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) {
    *why = "empty output CSV";
    return false;
  }
  std::unordered_map<std::string, size_t> counts;
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) ++counts[line];
  }
  for (const auto& [row, count] : counts) {
    if (count < k) {
      *why = "output row '" + row + "' appears " + std::to_string(count) +
             " < k=" + std::to_string(k) + " times";
      return false;
    }
  }
  return true;
}

/// Shared tallies the session threads fold into.
struct Tally {
  std::mutex mu;
  size_t requests_sent = 0;
  size_t hostile_sent = 0;
  size_t ok_responses = 0;
  size_t typed_errors = 0;
  size_t transport_closes = 0;
  std::vector<std::string> violations;

  void Violation(std::string v) {
    std::lock_guard<std::mutex> lock(mu);
    violations.push_back(std::move(v));
  }
};

/// Examines one Receive outcome. Returns false when the session's
/// transport is gone (stop the session).
bool NoteReceive(const StatusOr<NetResponse>& received, uint64_t want_seq,
                 size_t want_k, bool mid_write_faults, bool any_faults,
                 Tally* tally) {
  if (!received.ok()) {
    const StatusCode code = received.status().code();
    std::lock_guard<std::mutex> lock(tally->mu);
    ++tally->transport_closes;
    if (code == StatusCode::kParseError) {
      tally->violations.push_back("server sent non-protocol bytes: " +
                                  received.status().ToString());
    } else if (code == StatusCode::kDeadlineExceeded) {
      tally->violations.push_back("interaction hung: " +
                                  received.status().ToString());
    } else if (code == StatusCode::kDataLoss && !mid_write_faults) {
      tally->violations.push_back(
          "frame torn with no mid-write fault armed: " +
          received.status().ToString());
    }
    (void)any_faults;
    return false;
  }
  const NetResponse& response = *received;
  if (response.verb == NetVerb::kShutdown) {
    // Connection-level farewell (limit, desync, drain): permitted; the
    // close that follows is clean.
    std::lock_guard<std::mutex> lock(tally->mu);
    ++tally->typed_errors;
    return false;
  }
  if (want_seq != 0 && response.client_seq != want_seq) {
    tally->Violation("response seq " + std::to_string(response.client_seq) +
                     " does not match request seq " +
                     std::to_string(want_seq));
    return true;
  }
  if (!response.ok()) {
    if (response.error_name.empty()) {
      tally->Violation("error response without a taxonomy name (code " +
                       std::string(StatusCodeName(response.code)) + ")");
    }
    std::lock_guard<std::mutex> lock(tally->mu);
    ++tally->typed_errors;
    return true;
  }
  std::string why;
  if (response.verb == NetVerb::kAnonymize && want_k > 0 &&
      !response.csv.empty() &&
      !OutputIsKAnonymous(response.csv, want_k, &why)) {
    tally->Violation("anonymize response is not k-anonymous: " + why);
  }
  std::lock_guard<std::mutex> lock(tally->mu);
  ++tally->ok_responses;
  return true;
}

/// Runs one session's ops against the server. Each terminal hostile op
/// ends the session; transport loss ends it early (permitted).
void RunSession(const Session& session, uint16_t port,
                bool mid_write_faults, bool any_faults, Tally* tally) {
  NetClient client;
  if (!client.Connect("127.0.0.1", port, 2000.0).ok()) {
    // Listener gone (drain) or injected accept failure: clean refusal.
    std::lock_guard<std::mutex> lock(tally->mu);
    ++tally->transport_closes;
    return;
  }
  for (const Op& op : session.ops) {
    if (IsTerminal(op.kind)) {
      {
        std::lock_guard<std::mutex> lock(tally->mu);
        ++tally->hostile_sent;
      }
      if (!client.SendRaw(op.raw).ok()) return;
      if (op.kind == Op::Kind::kTruncate) {
        // Tear the frame: the server must treat the EOF as a clean end
        // of a conversation that never completed a request.
        client.ShutdownWrite();
        StatusOr<NetResponse> last = client.Receive(10000.0);
        if (last.ok()) {
          // A typed farewell is fine too; nothing further is owed.
          std::lock_guard<std::mutex> lock(tally->mu);
          ++tally->typed_errors;
        } else if (last.status().code() == StatusCode::kParseError) {
          tally->Violation("server answered a torn frame with garbage: " +
                           last.status().ToString());
        } else {
          std::lock_guard<std::mutex> lock(tally->mu);
          ++tally->transport_closes;
        }
        return;
      }
      // Garbage / bit flip / oversized: expect one typed bad_frame
      // farewell or a straight close — never silence, never garbage.
      StatusOr<NetResponse> answer = client.Receive(10000.0);
      if (answer.ok()) {
        std::lock_guard<std::mutex> lock(tally->mu);
        ++tally->typed_errors;
      } else if (answer.status().code() == StatusCode::kParseError) {
        tally->Violation("server answered hostile bytes with garbage: " +
                         answer.status().ToString());
      } else if (answer.status().code() == StatusCode::kDeadlineExceeded) {
        tally->Violation("hostile bytes hung the connection: " +
                         answer.status().ToString());
      } else {
        std::lock_guard<std::mutex> lock(tally->mu);
        ++tally->transport_closes;
      }
      return;
    }

    // Valid traffic: send everything, then collect one response per
    // request (bursts pipeline, so responses may arrive out of order).
    {
      std::lock_guard<std::mutex> lock(tally->mu);
      tally->requests_sent += op.requests.size();
    }
    for (const NetRequest& request : op.requests) {
      if (!client.Send(request).ok()) {
        std::lock_guard<std::mutex> lock(tally->mu);
        ++tally->transport_closes;
        return;
      }
    }
    if (op.kind == Op::Kind::kBurst) {
      std::unordered_map<uint64_t, size_t> want;  // seq -> k
      for (size_t i = 0; i < op.requests.size(); ++i) {
        want[op.requests[i].client_seq] = op.expect_k[i];
      }
      for (size_t i = 0; i < op.requests.size(); ++i) {
        StatusOr<NetResponse> received = client.Receive(20000.0);
        uint64_t seq = 0;
        size_t k = 0;
        if (received.ok()) {
          const auto found = want.find(received->client_seq);
          if (found != want.end()) {
            seq = found->first;
            k = found->second;
            want.erase(found);
          } else if (received->verb != NetVerb::kShutdown) {
            tally->Violation("burst response seq " +
                             std::to_string(received->client_seq) +
                             " matches no outstanding request");
          }
        }
        if (!NoteReceive(received, seq, k, mid_write_faults, any_faults,
                         tally)) {
          return;
        }
      }
    } else {
      const uint64_t seq = op.requests.front().client_seq;
      const size_t k = op.expect_k.empty() ? 0 : op.expect_k.front();
      if (!NoteReceive(client.Receive(20000.0), seq, k, mid_write_faults,
                       any_faults, tally)) {
        return;
      }
    }
  }
  client.Close();
}

}  // namespace

NetChaosReport RunNetChaosSchedule(const NetChaosOptions& options) {
  NetChaosReport report;
  report.seed = options.seed;
  Rng rng(options.seed, /*stream=*/0x6e657463ull);  // "netc"

  bool mid_write_faults = false;
  const FaultPlan plan =
      DrawNetFaultPlan(options.seed, &rng, &mid_write_faults);
  const bool any_faults = !plan.sites.empty();

  // Workload first (pure function of the seed), then the live run.
  uint64_t next_seq = 1;
  std::vector<Session> sessions(std::max<size_t>(options.sessions, 1));
  for (Session& session : sessions) {
    const int ops = rng.UniformInt(2, 6);
    for (int i = 0; i < ops; ++i) {
      session.ops.push_back(DrawOp(&rng, &next_seq));
      if (IsTerminal(session.ops.back().kind)) break;  // terminal ends it
    }
  }
  report.sessions = sessions.size();
  report.workload_fingerprint =
      FoldWorkload(kFingerprintSeed, sessions, plan);

  const std::string scratch_tag =
      std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
      std::to_string(options.seed);
  const std::string journal_path =
      options.scratch_dir + "/kanon_netchaos_" + scratch_tag + ".journal";
  std::unique_ptr<JobJournal> journal;
  if (options.with_journal) {
    ::unlink(journal_path.c_str());
    journal = std::make_unique<JobJournal>(journal_path);
  }

  ServiceOptions service_options;
  service_options.workers = 2;
  service_options.queue_capacity =
      static_cast<size_t>(rng.UniformInt(4, 32));
  service_options.cache_capacity = 16;
  service_options.observer = journal.get();
  AnonymizationService service(service_options);

  NetServerOptions server_options;
  server_options.port = 0;
  server_options.max_connections =
      rng.Bernoulli(0.25) ? 2 : sessions.size() + 4;
  server_options.max_inflight = static_cast<size_t>(rng.UniformInt(2, 8));
  server_options.frame_timeout_ms = 250.0;
  server_options.write_stall_ms = 2000.0;
  server_options.drain_grace_ms = 500.0;
  NetServer server(service, server_options);
  const Status started = server.Start();
  if (!started.ok()) {
    report.violations.push_back("server failed to start: " +
                                started.ToString());
    return report;
  }

  // Arm the fault plan only for the live run.
  std::optional<ScopedFaultInjection> injection;
  injection.emplace(plan);

  std::thread server_thread([&server] { server.Run(); });

  Tally tally;
  const uint16_t port = server.port();
  std::vector<std::thread> threads;
  threads.reserve(sessions.size());
  for (const Session& session : sessions) {
    threads.emplace_back([&session, port, mid_write_faults, any_faults,
                          &tally] {
      RunSession(session, port, mid_write_faults, any_faults, &tally);
    });
  }
  if (options.with_drain) {
    // The SIGTERM path, mid-flight: stop accepting, deliver what was
    // admitted, cancel (typed) past the grace window.
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int>(rng.UniformInt(20, 120))));
    server.RequestDrain();
  }
  for (std::thread& t : threads) t.join();
  server.RequestDrain();
  server_thread.join();
  injection.reset();

  // Everything the front end admitted must now drain through the
  // workers; Shutdown blocks until the queue is empty and joined.
  service.Shutdown();

  report.requests_sent = tally.requests_sent;
  report.hostile_sent = tally.hostile_sent;
  report.ok_responses = tally.ok_responses;
  report.typed_errors = tally.typed_errors;
  report.transport_closes = tally.transport_closes;
  report.violations = std::move(tally.violations);
  report.server = server.stats();

  for (const FaultSiteSnapshot& site :
       FaultRegistry::Instance().Snapshot()) {
    report.fault_fires += site.fires;
  }

  // Invariant 9: the front end accounts for every admitted job.
  if (report.server.jobs_submitted !=
      report.server.responses_delivered + report.server.responses_dropped) {
    report.violations.push_back(
        "admitted jobs leaked: submitted=" +
        std::to_string(report.server.jobs_submitted) + " delivered=" +
        std::to_string(report.server.responses_delivered) + " dropped=" +
        std::to_string(report.server.responses_dropped));
  }

  // Invariant 8, ledger half: everything the queue admitted, the pool
  // answered (hostile frames and drain included).
  const ServiceStats stats = service.Stats();
  if (stats.accepted != stats.completed) {
    report.violations.push_back(
        "queue/pool ledgers disagree: accepted=" +
        std::to_string(stats.accepted) +
        " completed=" + std::to_string(stats.completed));
  }

  // Invariant 8, journal half: the file replays, and no admitted job is
  // left pending (every one has a durable outcome record).
  if (options.with_journal) {
    journal.reset();  // close the fd before reading
    const StatusOr<JournalReplay> replay =
        JobJournal::ReplayFile(journal_path);
    if (!replay.ok()) {
      report.violations.push_back("journal does not replay: " +
                                  replay.status().message());
    } else if (!replay->pending.empty()) {
      report.violations.push_back(
          "journal shows " + std::to_string(replay->pending.size()) +
          " job(s) with no outcome after a clean drain");
    }
    ::unlink(journal_path.c_str());
  }

  if (options.verbose) {
    std::cerr << "netchaos seed=" << options.seed
              << " sent=" << report.requests_sent
              << " hostile=" << report.hostile_sent
              << " ok=" << report.ok_responses
              << " typed=" << report.typed_errors
              << " closes=" << report.transport_closes
              << " fires=" << report.fault_fires << "\n";
  }
  return report;
}

}  // namespace kanon
