#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "fault/fault.h"
#include "util/logging.h"

namespace kanon {

namespace {

/// epoll user-data ids below this are the loop's own fds; connections
/// start above it.
constexpr uint64_t kListenerTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kFirstConnId = 2;

double MonotonicMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Signals an eventfd. Async-signal-safe (one write(2) of a counter).
void SignalEventFd(int fd) {
  const uint64_t one = 1;
  ssize_t ignored = write(fd, &one, sizeof(one));
  (void)ignored;
}

}  // namespace

/// Per-connection state machine. Owned by the loop thread exclusively.
struct NetServer::Connection {
  uint64_t id = 0;
  int fd = -1;
  /// Unparsed input. Bounded: reads pause under backpressure and the
  /// frame codec rejects oversized declared lengths at the header, so
  /// the buffer cannot exceed one frame plus one read chunk per parse
  /// pause.
  std::string inbuf;
  /// Encoded-but-unsent output plus the flushed prefix length.
  std::string outbuf;
  size_t out_offset = 0;
  /// Admitted, unanswered jobs owned by this connection.
  size_t inflight = 0;
  /// The peer half-closed; never read again, flush and go.
  bool eof = false;
  /// Close as soon as the output buffer flushes (protocol error,
  /// shutdown verb, frame timeout).
  bool close_after_flush = false;
  /// Events currently registered with epoll (EPOLLIN/EPOLLOUT mask).
  uint32_t armed_events = 0;
  bool paused = false;
  double last_read_ms = 0.0;
  /// When the head of inbuf became a partial frame; < 0 when the buffer
  /// holds no partial frame (slow-loris clock).
  double partial_since_ms = -1.0;
  /// Last instant the flush made progress; < 0 when nothing is pending.
  double write_since_ms = -1.0;

  size_t pending_out() const { return outbuf.size() - out_offset; }
};

/// The worker -> loop handoff. Callbacks co-own it, so a completion
/// arriving after the server died locks, observes `open == false` and
/// returns — never a dangling server pointer.
struct NetServer::Completions {
  struct Item {
    uint64_t conn_id = 0;
    uint64_t client_seq = 0;
    AnonymizeResponse response;
  };
  std::mutex mu;
  bool open = true;
  int wake_fd = -1;
  std::vector<Item> items;
};

NetServer::NetServer(AnonymizationService& service, NetServerOptions options)
    : service_(service), options_(std::move(options)) {}

NetServer::~NetServer() {
  if (completions_ != nullptr) {
    std::lock_guard<std::mutex> lock(completions_->mu);
    completions_->open = false;
  }
  for (auto& [id, conn] : conns_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

Status NetServer::Start() {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  const int enable = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address '" + options_.host +
                                   "'");
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Status::Unavailable(std::string("bind: ") + strerror(errno));
  }
  if (listen(listen_fd_, options_.backlog) != 0) {
    return Status::Unavailable(std::string("listen: ") + strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Status::Internal(std::string("getsockname: ") + strerror(errno));
  }
  port_ = ntohs(addr.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenerTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  completions_ = std::make_shared<Completions>();
  completions_->wake_fd = wake_fd_;
  next_conn_id_ = kFirstConnId;
  return Status::Ok();
}

void NetServer::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) SignalEventFd(wake_fd_);
}

void NetServer::RequestStop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) SignalEventFd(wake_fd_);
}

NetServerStats NetServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

bool NetServer::ReadsPaused(const Connection& conn) const {
  return draining_ || conn.close_after_flush ||
         conn.pending_out() > options_.max_output_bytes ||
         conn.inflight >= options_.max_inflight;
}

void NetServer::UpdateEpoll(Connection& conn) {
  uint32_t want = 0;
  if (!conn.eof && !ReadsPaused(conn)) want |= EPOLLIN;
  if (conn.pending_out() > 0) want |= EPOLLOUT;
  if (want == conn.armed_events) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.u64 = conn.id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
  conn.armed_events = want;
}

void NetServer::AcceptReady() {
  for (;;) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient (EMFILE, ECONNABORTED): retry at next tick
    }
    // Injected accept-path failure: the fd is dropped on the floor.
    // The peer observes an immediate close — exactly what a crashed
    // accept handler or an out-of-fds spiral produces.
    if (KANON_FAULT_POINT("net.accept")) {
      close(fd);
      continue;
    }
    if (conns_.size() >= options_.max_connections) {
      // Typed over-limit rejection, best effort: one nonblocking write
      // of a connection_limit frame, then close. A peer that cannot
      // take even that sees a plain close.
      const std::string frame = EncodeNetResponse(MakeNetError(
          NetVerb::kShutdown, 0, ServiceError::kConnectionLimit,
          "server at max_connections=" +
              std::to_string(options_.max_connections)));
      ssize_t ignored = write(fd, frame.data(), frame.size());
      (void)ignored;
      close(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_over_limit;
      continue;
    }
    const int enable = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->last_read_ms = now_ms_;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conn->armed_events = EPOLLIN;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.accepted;
      ++stats_.open_connections;
    }
    conns_.emplace(conn->id, std::move(conn));
  }
}

void NetServer::SendResponse(Connection& conn, const NetResponse& response) {
  conn.outbuf += EncodeNetResponse(response);
  if (conn.write_since_ms < 0) conn.write_since_ms = now_ms_;
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.frames_out;
}

void NetServer::HandleFrame(Connection& conn, std::string_view body) {
  StatusOr<NetRequest> request = DecodeNetRequest(body);
  if (!request.ok()) {
    // The envelope was intact (checksum verified) but the body does not
    // decode: framing is still synchronized, so answer the one bad
    // frame and keep serving the connection.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    SendResponse(conn,
                 MakeNetError(NetVerb::kAnonymize, 0, ServiceError::kBadFrame,
                              request.status().message()));
    return;
  }

  switch (request->verb) {
    case NetVerb::kStats: {
      NetResponse response;
      response.verb = NetVerb::kStats;
      response.client_seq = request->client_seq;
      response.stats_line = FormatStatsLine(service_.Stats());
      SendResponse(conn, response);
      return;
    }
    case NetVerb::kShutdown: {
      NetResponse response;
      response.verb = NetVerb::kShutdown;
      response.client_seq = request->client_seq;
      SendResponse(conn, response);
      conn.close_after_flush = true;
      // The shutdown verb means "drain the daemon", same as the line
      // protocol: picked up at the top of the next loop iteration.
      drain_requested_.store(true, std::memory_order_release);
      return;
    }
    case NetVerb::kAnonymize:
      break;
  }

  if (draining_) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.jobs_rejected;
    SendResponse(conn, MakeNetError(NetVerb::kAnonymize, request->client_seq,
                                    ServiceError::kShuttingDown,
                                    "server is draining"));
    return;
  }

  const uint64_t conn_id = conn.id;
  const uint64_t client_seq = request->client_seq;
  std::shared_ptr<Completions> comp = completions_;
  ServiceError error = ServiceError::kNone;
  StatusOr<uint64_t> job = service_.SubmitAsync(
      std::move(request->request), &error,
      [comp, conn_id, client_seq](const AnonymizeResponse& response) {
        std::lock_guard<std::mutex> lock(comp->mu);
        if (!comp->open) return;
        comp->items.push_back({conn_id, client_seq, response});
        SignalEventFd(comp->wake_fd);
      });
  if (!job.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.jobs_rejected;
    }
    SendResponse(conn, MakeNetError(NetVerb::kAnonymize, client_seq, error,
                                    job.status().message()));
    return;
  }
  ++conn.inflight;
  inflight_jobs_.emplace(*job, conn_id);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.jobs_submitted;
}

void NetServer::DrainInput(Connection& conn) {
  while (!conn.close_after_flush) {
    // Backpressure on parsing, not just reading: buffered frames wait
    // until a completion frees an in-flight slot (or the outbuf drains,
    // or the drain finishes with a clean close).
    if (ReadsPaused(conn)) break;
    std::string_view frame_body;
    size_t consumed = 0;
    Status error;
    const FrameLimits limits{options_.max_frame_bytes};
    const FrameDecode decode = TryDecodeFrame(conn.inbuf, limits,
                                              &frame_body, &consumed, &error);
    if (decode == FrameDecode::kNeedMore) {
      if (conn.inbuf.empty()) {
        conn.partial_since_ms = -1.0;
      } else if (conn.partial_since_ms < 0) {
        conn.partial_since_ms = now_ms_;
      }
      break;
    }
    if (decode == FrameDecode::kBad) {
      // Framing is lost: one typed response, then close. Anything else
      // buffered is unparseable noise.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      SendResponse(conn,
                   MakeNetError(NetVerb::kShutdown, 0,
                                ServiceError::kBadFrame, error.message()));
      conn.inbuf.clear();
      conn.partial_since_ms = -1.0;
      conn.close_after_flush = true;
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.frames_in;
    }
    HandleFrame(conn, frame_body);
    conn.inbuf.erase(0, consumed);
    conn.partial_since_ms = conn.inbuf.empty() ? -1.0 : now_ms_;
  }
}

void NetServer::HandleReadable(Connection& conn) {
  char chunk[65536];
  while (!conn.eof && !ReadsPaused(conn)) {
    const ssize_t n = read(conn.fd, chunk, sizeof(chunk));
    if (n == 0) {
      conn.eof = true;
      break;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      DestroyConnection(conn);
      return;
    }
    size_t take = size_t(n);
    // An injected torn read models a peer (or middlebox) dying mid
    // frame: only a prefix of the bytes arrives, then EOF.
    if (KANON_FAULT_POINT("net.read_torn")) {
      take = size_t(n) / 2;
      conn.eof = true;
    }
    conn.inbuf.append(chunk, take);
    conn.last_read_ms = now_ms_;
    if (conn.eof) break;
  }
  DrainInput(conn);
  if (conn.eof) {
    if (conn.inflight == 0 && conn.pending_out() == 0) {
      DestroyConnection(conn);
      return;
    }
    // Half-closed peer with work still owed: deliver, flush, then go.
    conn.close_after_flush = true;
  }
  UpdateEpoll(conn);
}

void NetServer::HandleWritable(Connection& conn) {
  // An injected write stall skips the flush while EPOLLOUT stays armed:
  // the kernel will report writability again, the stall clock keeps
  // running, and the write_stall_ms reaper is the one that acts.
  if (KANON_FAULT_POINT("net.write_stall")) return;
  // An injected mid-frame close flushes half of what is pending and
  // hard-closes: the peer observes a torn frame (kDataLoss on their
  // side), the server's accounting stays exact.
  if (conn.pending_out() > 0 && KANON_FAULT_POINT("net.close_mid_frame")) {
    const size_t half = conn.pending_out() / 2;
    if (half > 0) {
      ssize_t ignored =
          write(conn.fd, conn.outbuf.data() + conn.out_offset, half);
      (void)ignored;
    }
    DestroyConnection(conn);
    return;
  }
  while (conn.pending_out() > 0) {
    const ssize_t n = write(conn.fd, conn.outbuf.data() + conn.out_offset,
                            conn.pending_out());
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      DestroyConnection(conn);
      return;
    }
    conn.out_offset += size_t(n);
    conn.write_since_ms = now_ms_;  // progress resets the stall clock
  }
  if (conn.pending_out() == 0) {
    conn.outbuf.clear();
    conn.out_offset = 0;
    conn.write_since_ms = -1.0;
    // Close only once every admitted job's response has been delivered
    // and flushed — a closing connection still collects what it is owed.
    if (conn.close_after_flush && conn.inflight == 0) {
      DestroyConnection(conn);
      return;
    }
  } else if (conn.out_offset > size_t{1} << 16) {
    conn.outbuf.erase(0, conn.out_offset);
    conn.out_offset = 0;
  }
  UpdateEpoll(conn);
}

void NetServer::DeliverCompletions() {
  std::vector<Completions::Item> items;
  {
    std::lock_guard<std::mutex> lock(completions_->mu);
    items.swap(completions_->items);
  }
  for (Completions::Item& item : items) {
    inflight_jobs_.erase(item.response.id);
    const auto found = conns_.find(item.conn_id);
    if (found == conns_.end()) {
      // The connection died while its job ran. The job still executed
      // to completion (and is journaled); only the delivery is lost,
      // and it is lost *accountably*.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.responses_dropped;
      continue;
    }
    Connection& conn = *found->second;
    KANON_CHECK_GE(conn.inflight, 1u);
    --conn.inflight;
    SendResponse(conn, MakeNetResponse(NetVerb::kAnonymize, item.client_seq,
                                       item.response));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.responses_delivered;
    }
    // A freed in-flight slot may unpause parsing of buffered frames.
    DrainInput(conn);
    HandleWritable(conn);
  }
}

void NetServer::ScanTimeouts() {
  std::vector<uint64_t> hard_close;
  for (auto& [id, conn_ptr] : conns_) {
    Connection& conn = *conn_ptr;
    if (options_.write_stall_ms > 0 && conn.write_since_ms >= 0 &&
        now_ms_ - conn.write_since_ms > options_.write_stall_ms) {
      // The peer stopped reading: no typed farewell can be delivered
      // through a full socket, so this one is a hard close.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.timeouts_write;
      hard_close.push_back(id);
      continue;
    }
    if (options_.frame_timeout_ms > 0 && conn.partial_since_ms >= 0 &&
        !conn.close_after_flush &&
        now_ms_ - conn.partial_since_ms > options_.frame_timeout_ms) {
      // Slow loris: a partial frame aged out. Typed farewell, close.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.timeouts_frame;
      }
      SendResponse(conn, MakeNetError(NetVerb::kShutdown, 0,
                                      ServiceError::kBadFrame,
                                      "partial frame timed out"));
      conn.inbuf.clear();
      conn.partial_since_ms = -1.0;
      conn.close_after_flush = true;
      UpdateEpoll(conn);  // arm the flush; never destroy mid-iteration
      continue;
    }
    if (options_.idle_timeout_ms > 0 && conn.inbuf.empty() &&
        conn.inflight == 0 && conn.pending_out() == 0 &&
        now_ms_ - conn.last_read_ms > options_.idle_timeout_ms) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.timeouts_idle;
      hard_close.push_back(id);
      continue;
    }
  }
  for (const uint64_t id : hard_close) CloseConnection(id, false);
}

void NetServer::CloseConnection(uint64_t conn_id, bool flush_first) {
  const auto found = conns_.find(conn_id);
  if (found == conns_.end()) return;
  Connection& conn = *found->second;
  if (flush_first && conn.pending_out() > 0) {
    conn.close_after_flush = true;
    UpdateEpoll(conn);
    return;
  }
  DestroyConnection(conn);
}

void NetServer::DestroyConnection(Connection& conn) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn.fd, nullptr);
  close(conn.fd);
  conn.fd = -1;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.closed;
    --stats_.open_connections;
  }
  // Jobs this connection owns stay in inflight_jobs_: their completions
  // are still observed (and counted dropped) before a drain finishes.
  conns_.erase(conn.id);
}

void NetServer::BeginDrain() {
  draining_ = true;
  drain_deadline_ms_ = now_ms_ + std::max(options_.drain_grace_ms, 0.0);
  if (listen_fd_ >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    close(listen_fd_);
    listen_fd_ = -1;
  }
  // Pause every connection's reads; flush what is owed; close the ones
  // that are already square.
  std::vector<uint64_t> idle;
  for (auto& [id, conn] : conns_) {
    if (conn->inflight == 0 && conn->pending_out() == 0) {
      idle.push_back(id);
    } else {
      UpdateEpoll(*conn);
    }
  }
  for (const uint64_t id : idle) CloseConnection(id, false);
}

bool NetServer::DrainComplete() const {
  return draining_ && conns_.empty() && inflight_jobs_.empty();
}

size_t NetServer::Run() {
  KANON_CHECK_GE(epoll_fd_, 0) << "NetServer::Run requires Start()";
  bool cancelled_for_drain = false;
  now_ms_ = MonotonicMs();
  while (!stop_requested_.load(std::memory_order_acquire)) {
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDrain();
    }
    if (draining_) {
      // Sweep: connections that became square since the last pass close
      // cleanly; past the grace window, cancel what is still running
      // (cancellation itself produces a typed response to deliver).
      // Unparsed pipelined input is deliberately ignored here: those
      // requests were never admitted, and a clean close is their typed
      // outcome under drain.
      std::vector<uint64_t> square;
      for (auto& [id, conn] : conns_) {
        if (conn->inflight == 0 && conn->pending_out() == 0) {
          square.push_back(id);
        }
      }
      for (const uint64_t id : square) CloseConnection(id, false);
      if (!cancelled_for_drain && now_ms_ >= drain_deadline_ms_) {
        cancelled_for_drain = true;
        for (const auto& [job_id, conn_id] : inflight_jobs_) {
          if (service_.Cancel(job_id)) {
            std::lock_guard<std::mutex> lock(stats_mu_);
            ++stats_.drain_cancelled;
          }
        }
      }
      if (DrainComplete()) break;
    }

    epoll_event events[64];
    const int timeout_ms = std::max(1, int(options_.tick_ms));
    const int n = epoll_wait(epoll_fd_, events, 64, timeout_ms);
    now_ms_ = MonotonicMs();
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t drained = 0;
        while (read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      if (tag == kListenerTag) {
        if (!draining_) AcceptReady();
        continue;
      }
      // The connection may have been destroyed by an earlier event in
      // this same batch; re-resolve before every touch.
      auto found = conns_.find(tag);
      if (found == conns_.end()) continue;
      if (events[i].events & EPOLLOUT) {
        HandleWritable(*found->second);
        found = conns_.find(tag);
        if (found == conns_.end()) continue;
      }
      if (events[i].events & (EPOLLIN | EPOLLERR | EPOLLHUP)) {
        HandleReadable(*found->second);
      }
    }
    DeliverCompletions();
    ScanTimeouts();
    // Backpressure accounting: note connections whose reads just
    // transitioned into the paused state.
    for (auto& [id, conn] : conns_) {
      const bool paused_now =
          !draining_ && !conn->close_after_flush && ReadsPaused(*conn);
      if (paused_now && !conn->paused) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.backpressure_pauses;
      }
      conn->paused = paused_now;
      UpdateEpoll(*conn);
    }
  }

  // Teardown. A hard stop abandons connections (their completions are
  // dropped by the closed queue); a completed drain has nothing left.
  std::vector<uint64_t> remaining;
  remaining.reserve(conns_.size());
  for (auto& [id, conn] : conns_) remaining.push_back(id);
  for (const uint64_t id : remaining) CloseConnection(id, false);
  {
    std::lock_guard<std::mutex> lock(completions_->mu);
    completions_->open = false;
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  return size_t(stats_.accepted);
}

}  // namespace kanon
