#ifndef KANON_NET_FRAME_H_
#define KANON_NET_FRAME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "service/request.h"
#include "util/status.h"

/// \file
/// The compact binary wire protocol of the TCP front end.
///
/// Each direction carries a stream of self-delimiting *frames* built
/// with the same envelope discipline as the `src/ckpt` snapshot codec
/// (magic, version, length prefix, trailing FNV-1a checksum) — that
/// codec is fuzz-hardened against every prefix, bit flip and garbage
/// blob, and this one inherits both the layout and the trust model:
///
/// **Trust model.** Bytes off a socket are *hostile* input: a peer may
/// be malicious, a proxy may truncate, a client library may be buggy.
/// Decoding never throws, never KANON_CHECKs on content, never lets a
/// wire-supplied length drive an allocation past `FrameLimits.max_body`,
/// and reports every violation as a typed `kParseError` — the network
/// analog of the checkpoint decoder's kDataLoss/kParseError split
/// collapses to kParseError because a socket has no "bytes did not
/// survive" excuse: either the frame is whole and well-formed, or the
/// peer is not speaking the protocol.
///
/// **Envelope** (all integers little-endian):
///
///     magic   "KNET"                      4 bytes
///     version u32 (currently 1)           4 bytes
///     length  u64 = len(body)             8 bytes
///     body    request or response fields  length bytes
///     check   u64 FNV-1a over everything above
///
/// **Request body:** verb u32, client_seq u64, then for kAnonymize:
/// algorithm (len-prefixed bytes), k u64, deadline_ms double,
/// node_budget u64, priority i64, flags u32 (bit0 = emit_csv), csv
/// (len-prefixed bytes, plain CSV with real newlines — no inline ';'
/// encoding needed on a binary transport). kStats/kShutdown bodies end
/// after client_seq.
///
/// **Response body:** verb u32, client_seq u64 (echo; 0 when the
/// request body was undecodable), job_id u64, code u32 (StatusCode),
/// error (len-prefixed taxonomy name, empty on success), message
/// (len-prefixed), then for a successful kAnonymize: k u64, rows u64,
/// cost u64, stage bytes, chain bytes, termination u32 (StopReason),
/// flags u32 (bit0 = cache_hit), queue_ms double, run_ms double, csv
/// bytes, effective backend bytes (empty when the brownout ladder left
/// the request untouched), brownout level u32 (0 = full fidelity).
/// A successful kStats carries the stats key=value line as one
/// len-prefixed payload (same text as the line protocol, one source of
/// truth for the counter names).

namespace kanon {

/// Decode-side allocation caps. A frame whose announced body length
/// exceeds `max_body` is rejected at the header, before any buffering.
struct FrameLimits {
  size_t max_body = size_t{8} << 20;  // 8 MiB
};

/// Bytes every frame spends on magic + version + length.
inline constexpr size_t kFrameHeaderBytes = 4 + 4 + 8;
/// Trailing checksum width.
inline constexpr size_t kFrameTrailerBytes = 8;

/// Wraps `body` in the envelope (magic, version, length, checksum).
std::string EncodeFrame(std::string_view body);

/// Outcome of examining the front of a receive buffer.
enum class FrameDecode {
  /// A whole frame was verified; *body and *consumed are set.
  kFrame,
  /// The buffer holds a valid but incomplete prefix; read more bytes.
  kNeedMore,
  /// The stream is not speaking the protocol; *error is the typed
  /// kParseError. Framing is lost — the connection cannot recover.
  kBad,
};

/// Streaming decoder: examines the front of `buffer` without copying.
/// On kFrame, *body views the verified body bytes inside `buffer` and
/// *consumed is the full frame size to drop. On kBad, *error carries
/// the typed kParseError. kNeedMore promises the already-seen prefix is
/// consistent (magic/version/length all valid so far), so a caller can
/// bound its receive buffer by max_body + envelope overhead.
FrameDecode TryDecodeFrame(std::string_view buffer,
                           const FrameLimits& limits,
                           std::string_view* body, size_t* consumed,
                           Status* error);

/// One-shot decode of exactly one complete frame (EOF semantics): a
/// prefix that TryDecodeFrame would wait on becomes a typed
/// kParseError, as do trailing bytes after the frame. Returns the body.
StatusOr<std::string> DecodeFrameExact(std::string_view bytes,
                                       const FrameLimits& limits = {});

/// Protocol verbs, mirroring the line protocol's anonymize|stats|
/// shutdown. Values are wire-stable; never renumber.
enum class NetVerb : uint32_t {
  kAnonymize = 1,
  kStats = 2,
  kShutdown = 3,
};

/// A decoded request frame. `request` is populated for kAnonymize only.
struct NetRequest {
  NetVerb verb = NetVerb::kAnonymize;
  /// Client-chosen correlation id, echoed verbatim on the response so a
  /// pipelining client can match answers to questions.
  uint64_t client_seq = 0;
  AnonymizeRequest request;
};

/// A decoded response frame. Exactly one wire shape, three payloads:
/// anonymize summaries, the stats line, or nothing (shutdown / errors).
struct NetResponse {
  NetVerb verb = NetVerb::kAnonymize;
  uint64_t client_seq = 0;
  uint64_t job_id = 0;
  /// kOk for answers; the ServiceError-mapped code for typed failures.
  StatusCode code = StatusCode::kOk;
  /// Taxonomy name ("queue_full", "bad_frame", ...); empty on success.
  std::string error_name;
  std::string message;
  // kAnonymize success payload.
  uint64_t k = 0;
  uint64_t rows = 0;
  uint64_t cost = 0;
  std::string stage;
  std::string chain;
  /// StopReason as a raw wire integer (hostile peers can send anything;
  /// keep it untyped and map through StopReasonName only when in range).
  uint32_t termination = 0;
  bool cache_hit = false;
  double queue_ms = 0.0;
  double run_ms = 0.0;
  std::string csv;
  /// Backend that actually produced the answer when the brownout ladder
  /// rewrote the job; empty = the requested backend ran untouched.
  std::string effective_algorithm;
  /// Brownout level the job executed under (0 green / full fidelity).
  uint32_t brownout = 0;
  // kStats success payload.
  std::string stats_line;

  bool ok() const { return code == StatusCode::kOk; }
};

/// Encoders return a complete frame (envelope included), ready to write.
std::string EncodeNetRequest(const NetRequest& request);
std::string EncodeNetResponse(const NetResponse& response);

/// Body decoders consume the verified body bytes a frame decoder
/// produced. Typed kParseError on any violation (unknown verb, torn
/// field, trailing bytes); never an exception, never an over-allocation
/// (all variable fields are views bounded by the body size).
StatusOr<NetRequest> DecodeNetRequest(std::string_view body);
StatusOr<NetResponse> DecodeNetResponse(std::string_view body);

/// Builds the wire response for an AnonymizeResponse (answer or typed
/// rejection — both carry the taxonomy name and mapped code).
NetResponse MakeNetResponse(NetVerb verb, uint64_t client_seq,
                            const AnonymizeResponse& response,
                            ServiceError error = ServiceError::kNone);

/// Builds a typed error response that never touched the service layer
/// (bad frame, connection limit, draining).
NetResponse MakeNetError(NetVerb verb, uint64_t client_seq,
                         ServiceError error, std::string message);

}  // namespace kanon

#endif  // KANON_NET_FRAME_H_
