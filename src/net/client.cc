#include "net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

namespace kanon {

namespace {

double MonotonicMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Polls `fd` for `events` with a millisecond budget. Returns false on
/// timeout.
bool PollFor(int fd, short events, double timeout_ms) {
  pollfd pfd{fd, events, 0};
  const int n = poll(&pfd, 1, timeout_ms < 0 ? -1 : int(timeout_ms));
  return n > 0;
}

}  // namespace

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  inbuf_.clear();
}

void NetClient::ShutdownWrite() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

Status NetClient::Connect(const std::string& host, uint16_t port,
                          double timeout_ms) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address '" + host + "'");
  }
  // Nonblocking connect with a poll-bounded wait, then back to blocking
  // writes (reads poll explicitly).
  const int flags = fcntl(fd_, F_GETFL, 0);
  fcntl(fd_, F_SETFL, flags | O_NONBLOCK);
  const int rc =
      connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Close();
    return Status::Unavailable(std::string("connect: ") + strerror(errno));
  }
  if (rc != 0) {
    if (!PollFor(fd_, POLLOUT, timeout_ms)) {
      Close();
      return Status::DeadlineExceeded("connect timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    getsockopt(fd_, SOL_SOCKET, SO_ERROR, &err, &len);
    if (err != 0) {
      Close();
      return Status::Unavailable(std::string("connect: ") + strerror(err));
    }
  }
  fcntl(fd_, F_SETFL, flags);
  const int enable = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  return Status::Ok();
}

Status NetClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable(std::string("send: ") + strerror(errno));
    }
    sent += size_t(n);
  }
  return Status::Ok();
}

Status NetClient::Send(const NetRequest& request) {
  return SendRaw(EncodeNetRequest(request));
}

StatusOr<NetResponse> NetClient::Receive(double timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  const double deadline = MonotonicMs() + timeout_ms;
  char chunk[65536];
  for (;;) {
    std::string_view body;
    size_t consumed = 0;
    Status error;
    switch (TryDecodeFrame(inbuf_, limits_, &body, &consumed, &error)) {
      case FrameDecode::kFrame: {
        StatusOr<NetResponse> response = DecodeNetResponse(body);
        inbuf_.erase(0, consumed);
        return response;
      }
      case FrameDecode::kBad:
        // The server (not the network) sent non-protocol bytes.
        return error;
      case FrameDecode::kNeedMore:
        break;
    }
    const double left = deadline - MonotonicMs();
    if (left <= 0) return Status::DeadlineExceeded("receive timed out");
    if (!PollFor(fd_, POLLIN, left)) {
      return Status::DeadlineExceeded("receive timed out");
    }
    const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
    if (n == 0) {
      // EOF. At a frame boundary it is a clean hangup; mid-frame the
      // bytes were torn off the wire.
      if (inbuf_.empty()) {
        return Status::Unavailable("connection closed");
      }
      return Status::DataLoss("connection closed mid-frame (" +
                              std::to_string(inbuf_.size()) +
                              " bytes buffered)");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return inbuf_.empty()
                   ? Status::Unavailable("connection reset")
                   : Status::DataLoss("connection reset mid-frame");
      }
      return Status::Unavailable(std::string("recv: ") + strerror(errno));
    }
    inbuf_.append(chunk, size_t(n));
  }
}

StatusOr<NetResponse> NetClient::Call(const NetRequest& request,
                                      double timeout_ms) {
  const Status sent = Send(request);
  if (!sent.ok()) return sent;
  return Receive(timeout_ms);
}

}  // namespace kanon
