#ifndef KANON_NET_NET_CHAOS_H_
#define KANON_NET_NET_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/tcp_server.h"

/// \file
/// Seeded connection-fault chaos against a live NetServer + service
/// stack — the network extension of service/chaos.h.
///
/// One schedule = one seed. The seed derives a fault plan over the
/// transport's injection sites (`net.accept`, `net.read_torn`,
/// `net.write_stall`, `net.close_mid_frame`, plus `queue.admit`) and a
/// client workload: concurrent sessions mixing valid requests,
/// pipelined bursts, stats probes and hostile bytes (garbage, single
/// bit flips of valid frames, truncated frames, oversized declared
/// lengths). Optionally the schedule drains the server mid-flight, the
/// way SIGTERM would.
///
/// Invariants checked (numbered after the service layer's six):
///
///   7. every client interaction terminates with a decodable, typed
///      response or a clean connection close — the server never emits
///      non-protocol bytes (client-side kParseError), never hangs a
///      receive, and tears a frame (client-side kDataLoss) only when a
///      mid-write fault site is actually armed; every OK anonymize
///      response is a *valid* k-anonymization;
///   8. hostile frames never corrupt shared state: after the schedule,
///      the crash journal replays cleanly and shows no pending jobs,
///      and the queue/pool ledgers reconcile (accepted == completed);
///   9. drain loses nothing: every job the front end admitted is
///      accounted for as delivered or (connection died first) dropped —
///      jobs_submitted == responses_delivered + responses_dropped — and
///      cancellations past the grace window still produced typed
///      responses.
///
/// The wall-clock interleaving of sessions is *not* deterministic (real
/// sockets, real threads); what is deterministic is the generated
/// workload and fault plan, so `workload_fingerprint` is a pure
/// function of the seed and is what the reproducibility gate compares.

namespace kanon {

struct NetChaosOptions {
  uint64_t seed = 0;
  /// Concurrent client sessions per schedule.
  size_t sessions = 6;
  /// Journal the schedule's jobs and check the replay half of
  /// invariant 8. Requires `scratch_dir` to be writable.
  bool with_journal = true;
  /// Request a mid-schedule graceful drain (the SIGTERM path).
  bool with_drain = true;
  std::string scratch_dir = "/tmp";
  bool verbose = false;
};

struct NetChaosReport {
  uint64_t seed = 0;
  size_t sessions = 0;
  /// Valid requests sent (anonymize + stats + shutdown verbs).
  size_t requests_sent = 0;
  /// Hostile byte sequences sent.
  size_t hostile_sent = 0;
  size_t ok_responses = 0;
  size_t typed_errors = 0;
  /// Interactions that ended in a (permitted) connection close.
  size_t transport_closes = 0;
  /// Fault-site fires across the schedule.
  uint64_t fault_fires = 0;
  /// Final transport counters.
  NetServerStats server;
  /// Invariant violations; empty means the schedule passed.
  std::vector<std::string> violations;
  /// Deterministic digest of the generated workload + fault plan;
  /// equal across runs with the same seed.
  uint64_t workload_fingerprint = 0;

  bool passed() const { return violations.empty(); }
};

/// Runs one seeded schedule. Arms the process-wide FaultRegistry for
/// its duration (disarmed before verification), so do not run
/// schedules concurrently in one process.
NetChaosReport RunNetChaosSchedule(const NetChaosOptions& options);

}  // namespace kanon

#endif  // KANON_NET_NET_CHAOS_H_
