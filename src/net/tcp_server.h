#ifndef KANON_NET_TCP_SERVER_H_
#define KANON_NET_TCP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/frame.h"
#include "service/server.h"

/// \file
/// The hardened TCP front end of `kanond`: a single-threaded epoll
/// readiness loop speaking the binary frame protocol (net/frame.h) and
/// feeding the existing AnonymizationService admission path.
///
/// **Threading model.** One thread owns every socket: Run() is the
/// event loop; worker threads never touch a connection. A worker
/// finishing a job pushes its response onto a mutex-guarded completion
/// queue and signals an eventfd the loop polls — the loop then encodes
/// the response into the owning connection's output buffer. The
/// completion queue is a shared_ptr co-owned by the job callbacks, so a
/// callback outliving the server (shutdown races) degrades to a dropped
/// completion, never a dangling pointer.
///
/// **Connection state machine.**
///
///     accepting --over-limit--> reject (typed response, close)
///         |
///     serving  <--frames/responses-->  (inbuf / outbuf bounded)
///         |
///         |  bad frame / timeout / drain
///         v
///     closing  (flush outbuf, then close)
///
/// Robustness properties, each enforced here and checked by the chaos
/// harness (net/net_chaos.h):
///   - *Bounded everything*: connection count, input buffer (one frame
///     cap), output buffer, and in-flight jobs per connection are all
///     capped; past each cap the server rejects/pauses, never buffers.
///   - *Typed rejection over silent drop*: over-limit accepts, hostile
///     frames, oversized frames, timeouts and drain-time requests all
///     produce one well-formed error frame when the transport still
///     permits (a half-open peer gets a close).
///   - *Slow-loris resistance*: a connection sitting on a partial frame
///     or an unflushed output buffer past its timeout is closed; idle
///     complete-state connections are closed after idle_timeout_ms.
///   - *Graceful drain*: RequestDrain() (async-signal-safe) stops the
///     listener, parks parsing, answers new requests with
///     `shutting_down`, and keeps the loop alive until every admitted
///     job's response is delivered or its connection died — an admitted
///     job is never silently lost (cancel only fires past the grace
///     window, and cancellation is itself a typed response).

namespace kanon {

struct NetServerOptions {
  /// Bind address. Tests and the load harness use 127.0.0.1.
  std::string host = "127.0.0.1";
  /// 0 binds an ephemeral port; read the outcome from port().
  uint16_t port = 0;
  int backlog = 128;
  /// Connections past this are answered with a typed connection_limit
  /// frame (best effort) and closed without being registered.
  size_t max_connections = 1024;
  /// Frame body cap forwarded to the codec; bounds per-connection input
  /// buffering to roughly this plus envelope overhead.
  size_t max_frame_bytes = size_t{8} << 20;
  /// Output buffer cap per connection. Reads pause (backpressure) while
  /// the peer is this far behind; the connection is not killed unless
  /// it also stops draining for write_stall_ms.
  size_t max_output_bytes = size_t{16} << 20;
  /// In-flight (admitted, unanswered) jobs per connection; reads pause
  /// past this bound — admission-level backpressure, not an error.
  size_t max_inflight = 32;
  /// A connection with no complete frame, no partial bytes and no
  /// pending work for this long is closed. <= 0 disables.
  double idle_timeout_ms = 0.0;
  /// A connection sitting on a *partial* frame for this long is
  /// answered with bad_frame and closed (slow-loris). <= 0 disables.
  double frame_timeout_ms = 0.0;
  /// A connection whose output buffer makes no progress for this long
  /// is hard-closed. <= 0 disables.
  double write_stall_ms = 0.0;
  /// Drain: how long to wait for in-flight jobs before cancelling them
  /// (the cancellation still produces a typed response). <= 0 cancels
  /// immediately.
  double drain_grace_ms = 2000.0;
  /// Event-loop tick (timeout scan cadence).
  double tick_ms = 20.0;
};

/// Monotonic counters, readable from any thread.
struct NetServerStats {
  uint64_t accepted = 0;
  uint64_t rejected_over_limit = 0;
  uint64_t closed = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  /// Hostile input answered with a typed frame (bad envelope/body).
  uint64_t protocol_errors = 0;
  uint64_t timeouts_idle = 0;
  uint64_t timeouts_frame = 0;
  uint64_t timeouts_write = 0;
  /// Times a connection's reads were paused for outbuf/inflight bounds.
  uint64_t backpressure_pauses = 0;
  uint64_t jobs_submitted = 0;
  /// Typed admission/validation rejections (queue_full, shed, ...).
  uint64_t jobs_rejected = 0;
  /// Completions encoded into a live connection's output buffer.
  uint64_t responses_delivered = 0;
  /// Completions whose connection was already gone (every admitted job
  /// is still delivered or counted here — never silently lost).
  uint64_t responses_dropped = 0;
  /// Jobs cancelled by drain past the grace window.
  uint64_t drain_cancelled = 0;
  uint64_t open_connections = 0;
};

/// The epoll front end. Lifecycle: construct, Start(), Run() on the
/// serving thread, RequestDrain()/RequestStop() from anywhere
/// (including a signal handler), then destroy. The referenced service
/// must outlive the server.
class NetServer {
 public:
  NetServer(AnonymizationService& service, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens and creates the epoll/eventfd plumbing. On success
  /// port() is live. Typed kInternal/kUnavailable on socket errors.
  Status Start();

  /// The serving loop: blocks until drain completes or RequestStop().
  /// Returns the number of connections served over its lifetime.
  size_t Run();

  /// Begins graceful drain: stop accepting, answer new requests with
  /// shutting_down, deliver (or cancel past the grace window) every
  /// admitted job, then return from Run(). Async-signal-safe: writes
  /// one eventfd and sets an atomic.
  void RequestDrain();

  /// Hard stop: Run() exits at the next poll without waiting for
  /// in-flight work (their completions are dropped and counted).
  /// Async-signal-safe.
  void RequestStop();

  /// The bound port (after a successful Start()).
  uint16_t port() const { return port_; }

  NetServerStats stats() const;

 private:
  struct Connection;
  struct Completions;

  void AcceptReady();
  void HandleReadable(Connection& conn);
  void HandleWritable(Connection& conn);
  /// Parses every complete frame currently buffered (unless paused).
  void DrainInput(Connection& conn);
  void HandleFrame(Connection& conn, std::string_view body);
  void SendResponse(Connection& conn, const NetResponse& response);
  void DeliverCompletions();
  void ScanTimeouts();
  void CloseConnection(uint64_t conn_id, bool flush_first);
  void DestroyConnection(Connection& conn);
  /// True while the connection must not parse further input (outbuf or
  /// inflight bound exceeded, or draining).
  bool ReadsPaused(const Connection& conn) const;
  void UpdateEpoll(Connection& conn);
  void BeginDrain();
  bool DrainComplete() const;

  AnonymizationService& service_;
  const NetServerOptions options_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t port_ = 0;

  std::atomic<bool> drain_requested_{false};
  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  double drain_deadline_ms_ = 0.0;
  /// Monotonic milliseconds at the current loop iteration.
  double now_ms_ = 0.0;

  uint64_t next_conn_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns_;
  /// job id -> owning connection id, for drain-time cancellation.
  std::unordered_map<uint64_t, uint64_t> inflight_jobs_;
  std::shared_ptr<Completions> completions_;

  mutable std::mutex stats_mu_;
  NetServerStats stats_;
};

}  // namespace kanon

#endif  // KANON_NET_TCP_SERVER_H_
