#ifndef KANON_NET_CLIENT_H_
#define KANON_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "net/frame.h"
#include "util/status.h"

/// \file
/// A small blocking client for the binary protocol — the reference peer
/// of net/tcp_server.h, used by the unit tests, the chaos harness and
/// the load generator. One connection per object, no internal threads.
///
/// Error taxonomy on the receive path (what the chaos invariants key
/// on):
///   - kUnavailable   — the server closed cleanly *between* frames: a
///                      legitimate end of conversation.
///   - kDataLoss      — the connection died *mid* frame: bytes were
///                      torn off the wire.
///   - kParseError    — the server sent bytes that are not the
///                      protocol (this one indicts the server).
///   - kDeadlineExceeded — the receive timeout expired.

namespace kanon {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects (blocking, with timeout) to host:port.
  Status Connect(const std::string& host, uint16_t port,
                 double timeout_ms = 5000.0);

  /// True between a successful Connect and Close (or a fatal error).
  bool connected() const { return fd_ >= 0; }

  /// Writes one encoded request frame. kUnavailable if the server hung
  /// up first.
  Status Send(const NetRequest& request);

  /// Writes raw bytes verbatim — the hostile-input path for tests and
  /// chaos (garbage, truncations, bit flips).
  Status SendRaw(std::string_view bytes);

  /// Blocks for the next complete response frame.
  StatusOr<NetResponse> Receive(double timeout_ms = 30000.0);

  /// Convenience: Send + Receive.
  StatusOr<NetResponse> Call(const NetRequest& request,
                             double timeout_ms = 30000.0);

  /// Half-closes the write side (the server observes EOF) while the
  /// read side stays open for pending responses.
  void ShutdownWrite();

  void Close();

 private:
  int fd_ = -1;
  /// Bytes received but not yet consumed as frames.
  std::string inbuf_;
  FrameLimits limits_;
};

}  // namespace kanon

#endif  // KANON_NET_CLIENT_H_
