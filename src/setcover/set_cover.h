#ifndef KANON_SETCOVER_SET_COVER_H_
#define KANON_SETCOVER_SET_COVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

/// \file
/// Weighted greedy set cover (Johnson '74 / Chvátal '79), the engine of
/// both Phase-1 constructions in Section 4 of the paper.
///
/// The family is abstract: algorithms provide the member lists and
/// weights, either materialized (`VectorSetFamily`) or lazily. The greedy
/// rule repeatedly picks a set minimizing weight / newly-covered and is an
/// (1 + ln max|S|)-approximation to the min-weight cover.
///
/// Implementation note: with fixed weights, a set's ratio only increases
/// as elements get covered, so the classic lazy-evaluation heap is exact
/// (not a heuristic): pop the stale minimum, recompute, and re-push unless
/// it is still minimal.

namespace kanon {

class RunContext;

/// Abstract universe + weighted family interface.
class SetFamily {
 public:
  virtual ~SetFamily() = default;

  /// Number of elements in the universe [0, NumElements()).
  virtual size_t NumElements() const = 0;

  /// Number of sets in the family.
  virtual size_t NumSets() const = 0;

  /// Member elements of set `s` (may contain duplicates; they are
  /// harmless but wasteful).
  virtual std::vector<uint32_t> Members(size_t s) const = 0;

  /// Non-negative weight of set `s`.
  virtual double Weight(size_t s) const = 0;
};

/// Materialized family.
class VectorSetFamily : public SetFamily {
 public:
  VectorSetFamily(size_t num_elements,
                  std::vector<std::vector<uint32_t>> sets,
                  std::vector<double> weights);

  size_t NumElements() const override { return num_elements_; }
  size_t NumSets() const override { return sets_.size(); }
  std::vector<uint32_t> Members(size_t s) const override;
  double Weight(size_t s) const override;

 private:
  size_t num_elements_;
  std::vector<std::vector<uint32_t>> sets_;
  std::vector<double> weights_;
};

/// Result of a greedy cover run.
struct SetCoverResult {
  /// Indices of chosen sets, in pick order.
  std::vector<size_t> chosen;
  /// Total weight of the chosen sets.
  double total_weight = 0.0;
  /// True iff every element ended up covered (false only when the family
  /// itself does not cover the universe).
  bool complete = false;
  /// Greedy iterations executed (== chosen.size()).
  size_t iterations = 0;
  /// Ratio weight/new_covered of each pick, for the Johnson analysis
  /// audit in the benches.
  std::vector<double> pick_ratios;
};

/// Runs the weighted greedy cover over `family`. Ties are broken toward
/// the lower set index, making runs deterministic. A non-null `ctx` is
/// polled between heap operations: when it stops the run, the partial
/// result is returned with `complete == false` (callers must check
/// `ctx->stop_reason()` to distinguish "family cannot cover" from "run
/// was stopped").
SetCoverResult GreedySetCover(const SetFamily& family,
                              RunContext* ctx = nullptr);

}  // namespace kanon

#endif  // KANON_SETCOVER_SET_COVER_H_
