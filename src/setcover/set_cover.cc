#include "setcover/set_cover.h"

#include <limits>
#include <queue>

#include "util/logging.h"
#include "util/run_context.h"

namespace kanon {

VectorSetFamily::VectorSetFamily(size_t num_elements,
                                 std::vector<std::vector<uint32_t>> sets,
                                 std::vector<double> weights)
    : num_elements_(num_elements),
      sets_(std::move(sets)),
      weights_(std::move(weights)) {
  KANON_CHECK_EQ(sets_.size(), weights_.size());
  for (const auto& s : sets_) {
    for (const uint32_t e : s) {
      KANON_CHECK_LT(e, num_elements_);
    }
  }
  for (const double w : weights_) {
    KANON_CHECK_GE(w, 0.0);
  }
}

std::vector<uint32_t> VectorSetFamily::Members(size_t s) const {
  KANON_CHECK_LT(s, sets_.size());
  return sets_[s];
}

double VectorSetFamily::Weight(size_t s) const {
  KANON_CHECK_LT(s, weights_.size());
  return weights_[s];
}

namespace {

/// Heap entry: cached ratio for set `index` computed when `covered_count`
/// elements were covered. Stale entries are lazily re-evaluated.
struct HeapEntry {
  double ratio;
  size_t index;
  size_t covered_when_computed;

  bool operator>(const HeapEntry& other) const {
    if (ratio != other.ratio) return ratio > other.ratio;
    return index > other.index;  // deterministic tie-break: lower index
  }
};

}  // namespace

SetCoverResult GreedySetCover(const SetFamily& family, RunContext* ctx) {
  const size_t n = family.NumElements();
  const size_t num_sets = family.NumSets();
  SetCoverResult result;

  std::vector<bool> covered(n, false);
  size_t covered_count = 0;

  auto new_coverage = [&](size_t s) {
    size_t fresh = 0;
    for (const uint32_t e : family.Members(s)) {
      if (!covered[e]) ++fresh;
    }
    return fresh;
  };
  auto ratio_of = [&](size_t s, size_t fresh) {
    if (fresh == 0) return std::numeric_limits<double>::infinity();
    return family.Weight(s) / static_cast<double>(fresh);
  };

  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  size_t polls = 0;
  for (size_t s = 0; s < num_sets; ++s) {
    if ((++polls & 0xfff) == 0 && ctx != nullptr && ctx->ShouldStop()) {
      return result;  // complete stays false
    }
    const size_t fresh = new_coverage(s);
    if (fresh > 0) heap.push({ratio_of(s, fresh), s, covered_count});
  }

  while (covered_count < n && !heap.empty()) {
    if ((++polls & 0xff) == 0 && ctx != nullptr && ctx->ShouldStop()) {
      return result;  // partial cover; complete stays false
    }
    HeapEntry top = heap.top();
    heap.pop();
    if (top.covered_when_computed != covered_count) {
      // Stale: ratios only grow, so recompute and re-insert.
      const size_t fresh = new_coverage(top.index);
      if (fresh == 0) continue;
      heap.push({ratio_of(top.index, fresh), top.index, covered_count});
      continue;
    }
    // Fresh minimum: take it.
    const size_t fresh = new_coverage(top.index);
    KANON_CHECK_GT(fresh, 0u);
    for (const uint32_t e : family.Members(top.index)) {
      if (!covered[e]) {
        covered[e] = true;
        ++covered_count;
      }
    }
    result.chosen.push_back(top.index);
    result.total_weight += family.Weight(top.index);
    result.pick_ratios.push_back(top.ratio);
    ++result.iterations;
  }

  result.complete = (covered_count == n);
  return result;
}

}  // namespace kanon
