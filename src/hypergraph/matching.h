#ifndef KANON_HYPERGRAPH_MATCHING_H_
#define KANON_HYPERGRAPH_MATCHING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "hypergraph/hypergraph.h"

/// \file
/// Perfect matching in k-uniform hypergraphs. For k >= 3 the decision
/// problem is NP-complete (k-DIMENSIONAL MATCHING), which is exactly why
/// the paper reduces *from* it; the exact solver here is an exponential
/// backtracking search adequate for the reduction-validation instance
/// sizes, plus a linear-time greedy heuristic for contrast.

namespace kanon {

/// Statistics from an exact matching search.
struct MatchingSearchStats {
  uint64_t nodes_explored = 0;
};

/// Exhaustive search for a perfect matching. Returns the edge ids of one
/// perfect matching, or std::nullopt if none exists. Branches on the
/// uncovered vertex with the fewest usable incident edges (fail-first),
/// which prunes aggressively. Returns nullopt immediately when n is not a
/// multiple of k.
std::optional<std::vector<uint32_t>> FindPerfectMatching(
    const Hypergraph& h, MatchingSearchStats* stats = nullptr);

/// Convenience wrapper.
bool HasPerfectMatching(const Hypergraph& h);

/// Greedy maximal matching: scans edges in id order, keeping each edge
/// whose vertices are all still free. The result is maximal but not
/// necessarily maximum (and usually not perfect).
std::vector<uint32_t> GreedyMaximalMatching(const Hypergraph& h);

}  // namespace kanon

#endif  // KANON_HYPERGRAPH_MATCHING_H_
