#include "hypergraph/hypergraph.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "util/logging.h"

namespace kanon {

Hypergraph::Hypergraph(uint32_t num_vertices, uint32_t k)
    : num_vertices_(num_vertices), k_(k) {
  KANON_CHECK_GE(k, 1u);
}

uint32_t Hypergraph::AddEdge(Edge edge) {
  KANON_CHECK_EQ(edge.size(), static_cast<size_t>(k_));
  std::sort(edge.begin(), edge.end());
  for (size_t i = 0; i < edge.size(); ++i) {
    KANON_CHECK_LT(edge[i], num_vertices_);
    if (i > 0) {
      KANON_CHECK_NE(edge[i], edge[i - 1]);
    }
  }
  edges_.push_back(std::move(edge));
  return static_cast<uint32_t>(edges_.size() - 1);
}

const Edge& Hypergraph::edge(uint32_t e) const {
  KANON_CHECK_LT(e, edges_.size());
  return edges_[e];
}

bool Hypergraph::IsSimple() const {
  std::set<Edge> seen;
  for (const Edge& e : edges_) {
    if (!seen.insert(e).second) return false;
  }
  return true;
}

bool Hypergraph::Incident(VertexId v, uint32_t e) const {
  const Edge& edge_vertices = edge(e);
  return std::binary_search(edge_vertices.begin(), edge_vertices.end(), v);
}

std::vector<std::vector<uint32_t>> Hypergraph::IncidenceLists() const {
  std::vector<std::vector<uint32_t>> incident(num_vertices_);
  for (uint32_t e = 0; e < edges_.size(); ++e) {
    for (const VertexId v : edges_[e]) incident[v].push_back(e);
  }
  return incident;
}

std::string Hypergraph::ToString() const {
  std::ostringstream os;
  os << "n=" << num_vertices_ << " k=" << k_ << " edges={";
  for (uint32_t e = 0; e < edges_.size(); ++e) {
    if (e > 0) os << " ";
    os << "(";
    for (size_t i = 0; i < edges_[e].size(); ++i) {
      if (i > 0) os << ",";
      os << edges_[e][i];
    }
    os << ")";
  }
  os << "}";
  return os.str();
}

bool IsPerfectMatching(const Hypergraph& h,
                       const std::vector<uint32_t>& matching) {
  std::vector<int> times(h.num_vertices(), 0);
  for (const uint32_t e : matching) {
    if (e >= h.num_edges()) return false;
    for (const VertexId v : h.edge(e)) ++times[v];
  }
  for (const int t : times) {
    if (t != 1) return false;
  }
  return true;
}

}  // namespace kanon
