#include "hypergraph/generators.h"

#include <algorithm>
#include <set>

#include "util/logging.h"

namespace kanon {

namespace {

/// Draws one random sorted k-subset of [0, n) excluding vertices in
/// `forbidden` (which may be empty).
Edge RandomEdge(uint32_t n, uint32_t k, const std::vector<bool>& forbidden,
                Rng* rng) {
  std::vector<VertexId> pool;
  pool.reserve(n);
  for (VertexId v = 0; v < n; ++v) {
    if (forbidden.empty() || !forbidden[v]) pool.push_back(v);
  }
  KANON_CHECK_GE(pool.size(), static_cast<size_t>(k));
  const std::vector<uint32_t> picks =
      rng->SampleWithoutReplacement(static_cast<uint32_t>(pool.size()), k);
  Edge edge(k);
  for (uint32_t i = 0; i < k; ++i) edge[i] = pool[picks[i]];
  std::sort(edge.begin(), edge.end());
  return edge;
}

/// Adds `count` random distinct edges (also distinct from those already in
/// `existing`) to `h`.
void AddDistinctRandomEdges(Hypergraph* h, uint32_t count,
                            std::set<Edge>* existing,
                            const std::vector<bool>& forbidden, Rng* rng) {
  uint32_t added = 0;
  uint32_t attempts = 0;
  const uint32_t max_attempts = 1000 * (count + 1);
  while (added < count) {
    KANON_CHECK_LT(attempts++, max_attempts);  // family not exhausted
    Edge e = RandomEdge(h->num_vertices(), h->uniformity(), forbidden, rng);
    if (existing->insert(e).second) {
      h->AddEdge(std::move(e));
      ++added;
    }
  }
}

}  // namespace

Hypergraph PlantedMatchingHypergraph(const PlantedHypergraphOptions& options,
                                     Rng* rng) {
  const uint32_t n = options.num_vertices;
  const uint32_t k = options.k;
  KANON_CHECK_GE(k, 2u);
  KANON_CHECK_GT(n, 0u);
  KANON_CHECK_EQ(n % k, 0u);

  std::vector<VertexId> perm(n);
  for (VertexId v = 0; v < n; ++v) perm[v] = v;
  rng->Shuffle(&perm);

  std::set<Edge> edges;
  for (uint32_t i = 0; i < n / k; ++i) {
    Edge e(perm.begin() + static_cast<size_t>(i) * k,
           perm.begin() + static_cast<size_t>(i + 1) * k);
    std::sort(e.begin(), e.end());
    edges.insert(std::move(e));
  }
  std::vector<Edge> all(edges.begin(), edges.end());

  Hypergraph h(n, k);
  {
    // Build a temporary graph to reuse the distinct-edge machinery, then
    // shuffle edge order so the planted matching has no positional tell.
    Hypergraph tmp(n, k);
    for (Edge e : all) tmp.AddEdge(std::move(e));
    AddDistinctRandomEdges(&tmp, options.extra_edges, &edges, {}, rng);
    std::vector<Edge> final_edges = tmp.edges();
    rng->Shuffle(&final_edges);
    for (Edge e : final_edges) h.AddEdge(std::move(e));
  }
  KANON_CHECK(h.IsSimple());
  return h;
}

Hypergraph RandomHypergraph(uint32_t num_vertices, uint32_t k,
                            uint32_t num_edges, Rng* rng) {
  KANON_CHECK_GE(k, 2u);
  KANON_CHECK_GE(num_vertices, k);
  Hypergraph h(num_vertices, k);
  std::set<Edge> edges;
  AddDistinctRandomEdges(&h, num_edges, &edges, {}, rng);
  KANON_CHECK(h.IsSimple());
  return h;
}

Hypergraph MatchingFreeHypergraph(uint32_t num_vertices, uint32_t k,
                                  uint32_t num_edges, Rng* rng) {
  KANON_CHECK_GE(k, 2u);
  KANON_CHECK_EQ(num_vertices % k, 0u);
  KANON_CHECK_GE(num_vertices, k + 1);
  Hypergraph h(num_vertices, k);
  std::vector<bool> forbidden(num_vertices, false);
  forbidden[0] = true;  // vertex 0 never appears on an edge
  std::set<Edge> edges;
  AddDistinctRandomEdges(&h, num_edges, &edges, forbidden, rng);
  KANON_CHECK(h.IsSimple());
  return h;
}

}  // namespace kanon
