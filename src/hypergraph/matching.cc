#include "hypergraph/matching.h"

#include <algorithm>

#include "util/logging.h"

namespace kanon {

namespace {

/// Backtracking state for the exact search.
class Search {
 public:
  explicit Search(const Hypergraph& h)
      : h_(h),
        incident_(h.IncidenceLists()),
        covered_(h.num_vertices(), false) {}

  bool Run(std::vector<uint32_t>* matching, MatchingSearchStats* stats) {
    return Extend(matching, stats);
  }

 private:
  bool EdgeUsable(uint32_t e) const {
    for (const VertexId v : h_.edge(e)) {
      if (covered_[v]) return false;
    }
    return true;
  }

  /// Picks the uncovered vertex with the fewest usable incident edges.
  /// Returns false via `found` when all vertices are covered.
  bool PickBranchVertex(VertexId* pick) const {
    bool found = false;
    size_t best_count = 0;
    for (VertexId v = 0; v < h_.num_vertices(); ++v) {
      if (covered_[v]) continue;
      size_t usable = 0;
      for (const uint32_t e : incident_[v]) {
        if (EdgeUsable(e)) ++usable;
      }
      if (!found || usable < best_count) {
        found = true;
        best_count = usable;
        *pick = v;
        if (usable == 0) break;  // dead end: fail fast
      }
    }
    return found;
  }

  bool Extend(std::vector<uint32_t>* matching,
              MatchingSearchStats* stats) {
    if (stats != nullptr) ++stats->nodes_explored;
    VertexId v = 0;
    if (!PickBranchVertex(&v)) return true;  // everything covered
    for (const uint32_t e : incident_[v]) {
      if (!EdgeUsable(e)) continue;
      for (const VertexId u : h_.edge(e)) covered_[u] = true;
      matching->push_back(e);
      if (Extend(matching, stats)) return true;
      matching->pop_back();
      for (const VertexId u : h_.edge(e)) covered_[u] = false;
    }
    return false;
  }

  const Hypergraph& h_;
  std::vector<std::vector<uint32_t>> incident_;
  std::vector<bool> covered_;
};

}  // namespace

std::optional<std::vector<uint32_t>> FindPerfectMatching(
    const Hypergraph& h, MatchingSearchStats* stats) {
  if (h.num_vertices() % h.uniformity() != 0) return std::nullopt;
  std::vector<uint32_t> matching;
  Search search(h);
  if (!search.Run(&matching, stats)) return std::nullopt;
  KANON_CHECK(IsPerfectMatching(h, matching));
  return matching;
}

bool HasPerfectMatching(const Hypergraph& h) {
  return FindPerfectMatching(h).has_value();
}

std::vector<uint32_t> GreedyMaximalMatching(const Hypergraph& h) {
  std::vector<bool> covered(h.num_vertices(), false);
  std::vector<uint32_t> matching;
  for (uint32_t e = 0; e < h.num_edges(); ++e) {
    bool usable = true;
    for (const VertexId v : h.edge(e)) {
      if (covered[v]) {
        usable = false;
        break;
      }
    }
    if (!usable) continue;
    for (const VertexId v : h.edge(e)) covered[v] = true;
    matching.push_back(e);
  }
  return matching;
}

}  // namespace kanon
