#ifndef KANON_HYPERGRAPH_GENERATORS_H_
#define KANON_HYPERGRAPH_GENERATORS_H_

#include <cstdint>

#include "hypergraph/hypergraph.h"
#include "util/random.h"

/// \file
/// Instance generators for the hardness experiments: simple k-uniform
/// hypergraphs with a planted perfect matching (YES instances), fully
/// random ones (mixed), and instances certified to have no perfect
/// matching (NO instances).

namespace kanon {

/// Parameters for PlantedMatchingHypergraph.
struct PlantedHypergraphOptions {
  /// Number of vertices; must be a positive multiple of k.
  uint32_t num_vertices = 9;
  /// Uniformity k >= 2.
  uint32_t k = 3;
  /// Extra random (distinct, non-planted-duplicate) edges added on top of
  /// the n/k planted matching edges.
  uint32_t extra_edges = 4;
};

/// Simple k-uniform hypergraph that contains a perfect matching by
/// construction: vertices are randomly permuted and chopped into n/k
/// planted edges, then `extra_edges` random distinct edges are added.
/// Edge ids are shuffled so the planted matching is not positional.
Hypergraph PlantedMatchingHypergraph(const PlantedHypergraphOptions& options,
                                     Rng* rng);

/// Simple random k-uniform hypergraph with `num_edges` distinct edges.
/// May or may not have a perfect matching. Requires num_edges to not
/// exceed C(n, k).
Hypergraph RandomHypergraph(uint32_t num_vertices, uint32_t k,
                            uint32_t num_edges, Rng* rng);

/// Random simple k-uniform hypergraph guaranteed to have NO perfect
/// matching: vertex 0 is isolated (on no edge) while n is still a
/// multiple of k, so no edge set can cover it.
Hypergraph MatchingFreeHypergraph(uint32_t num_vertices, uint32_t k,
                                  uint32_t num_edges, Rng* rng);

}  // namespace kanon

#endif  // KANON_HYPERGRAPH_GENERATORS_H_
