#ifndef KANON_HYPERGRAPH_HYPERGRAPH_H_
#define KANON_HYPERGRAPH_HYPERGRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// k-uniform hypergraphs, the source problem of both NP-hardness
/// reductions (Section 3). Vertices are 0..n-1; each edge is a sorted
/// list of k distinct vertices. The reductions require *simple*
/// hypergraphs (no repeated edges), which `IsSimple` checks and the
/// generators guarantee.

namespace kanon {

/// Vertex id.
using VertexId = uint32_t;

/// One hyperedge: k distinct vertices, kept sorted.
using Edge = std::vector<VertexId>;

/// A k-uniform hypergraph H = (U, E).
class Hypergraph {
 public:
  /// Empty hypergraph with `num_vertices` vertices and uniformity `k`.
  Hypergraph(uint32_t num_vertices, uint32_t k);

  uint32_t num_vertices() const { return num_vertices_; }
  uint32_t uniformity() const { return k_; }
  uint32_t num_edges() const {
    return static_cast<uint32_t>(edges_.size());
  }

  /// Adds an edge; vertices are sorted internally. Dies if the edge does
  /// not have exactly k distinct in-range vertices. Returns the edge id.
  uint32_t AddEdge(Edge edge);

  const Edge& edge(uint32_t e) const;
  const std::vector<Edge>& edges() const { return edges_; }

  /// True iff no two edges are identical.
  bool IsSimple() const;

  /// True iff vertex v lies on edge e.
  bool Incident(VertexId v, uint32_t e) const;

  /// Edge ids incident to each vertex.
  std::vector<std::vector<uint32_t>> IncidenceLists() const;

  /// "n=.. k=.. edges={...}" rendering for diagnostics.
  std::string ToString() const;

 private:
  uint32_t num_vertices_;
  uint32_t k_;
  std::vector<Edge> edges_;
};

/// True iff `matching` (a list of edge ids of H) is a perfect matching:
/// the selected edges are disjoint and cover every vertex (so there are
/// exactly n/k of them).
bool IsPerfectMatching(const Hypergraph& h,
                       const std::vector<uint32_t>& matching);

}  // namespace kanon

#endif  // KANON_HYPERGRAPH_HYPERGRAPH_H_
