#ifndef KANON_PRIVACY_LINKAGE_H_
#define KANON_PRIVACY_LINKAGE_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "generalize/hierarchy.h"

/// \file
/// Linking-attack simulator — the threat model motivating the paper
/// (Section 1): an adversary who knows a victim's true values on some
/// quasi-identifier attributes tries to locate the victim's record in
/// the published table. k-anonymity's promise is that every victim is
/// consistent with >= k published records; this module measures that
/// directly, before and after anonymization.

namespace kanon {

/// Aggregate re-identification risk over all rows as victims.
struct AttackSummary {
  /// Mean size of the candidate set (published rows consistent with the
  /// victim's known values).
  double mean_candidates = 0.0;
  /// Smallest candidate set across victims (0 only if a victim's own
  /// record was withheld AND nothing else matches).
  size_t min_candidates = 0;
  /// Victims whose candidate set has size exactly 1 — uniquely
  /// re-identified.
  size_t unique_reidentifications = 0;
  /// unique_reidentifications / #victims.
  double reidentification_rate = 0.0;

  std::string ToString() const;
};

/// Attack against a suppression-anonymized release. `published` must
/// have the same shape and dictionaries as `original` (i.e. come from
/// Suppressor::Apply on it); a published `*` cell is consistent with
/// any value. `known_columns` lists the attributes the adversary knows.
AttackSummary LinkageAttack(const Table& original, const Table& published,
                            const std::vector<ColId>& known_columns);

/// Attack against a full-domain generalized release: the adversary
/// knows the victim's base values; a published record is consistent if
/// on every known column its label equals the victim's value lifted to
/// the release's level (withheld rows are all-`*` and match anything).
AttackSummary LinkageAttackGeneralized(
    const Table& original, const std::vector<Hierarchy>& hierarchies,
    const GeneralizationVector& levels,
    const std::vector<RowId>& suppressed_rows,
    const std::vector<ColId>& known_columns);

}  // namespace kanon

#endif  // KANON_PRIVACY_LINKAGE_H_
