#include "privacy/linkage.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace kanon {

namespace {

/// Folds per-victim candidate counts into a summary.
AttackSummary Summarize(const std::vector<size_t>& candidates) {
  AttackSummary summary;
  if (candidates.empty()) return summary;
  size_t total = 0;
  summary.min_candidates = candidates[0];
  for (const size_t c : candidates) {
    total += c;
    summary.min_candidates = std::min(summary.min_candidates, c);
    if (c == 1) ++summary.unique_reidentifications;
  }
  summary.mean_candidates =
      static_cast<double>(total) / static_cast<double>(candidates.size());
  summary.reidentification_rate =
      static_cast<double>(summary.unique_reidentifications) /
      static_cast<double>(candidates.size());
  return summary;
}

}  // namespace

std::string AttackSummary::ToString() const {
  std::ostringstream os;
  os << "mean_candidates=" << mean_candidates
     << " min_candidates=" << min_candidates
     << " unique=" << unique_reidentifications << " ("
     << reidentification_rate * 100.0 << "%)";
  return os.str();
}

AttackSummary LinkageAttack(const Table& original, const Table& published,
                            const std::vector<ColId>& known_columns) {
  KANON_CHECK_EQ(original.num_rows(), published.num_rows());
  KANON_CHECK_EQ(original.num_columns(), published.num_columns());
  for (const ColId c : known_columns) {
    KANON_CHECK_LT(c, original.num_columns());
  }

  std::vector<size_t> candidates(original.num_rows(), 0);
  for (RowId victim = 0; victim < original.num_rows(); ++victim) {
    size_t count = 0;
    for (RowId p = 0; p < published.num_rows(); ++p) {
      bool consistent = true;
      for (const ColId c : known_columns) {
        const ValueCode pub = published.at(p, c);
        if (pub != kSuppressedCode && pub != original.at(victim, c)) {
          consistent = false;
          break;
        }
      }
      if (consistent) ++count;
    }
    candidates[victim] = count;
  }
  return Summarize(candidates);
}

AttackSummary LinkageAttackGeneralized(
    const Table& original, const std::vector<Hierarchy>& hierarchies,
    const GeneralizationVector& levels,
    const std::vector<RowId>& suppressed_rows,
    const std::vector<ColId>& known_columns) {
  KANON_CHECK_EQ(hierarchies.size(),
                 static_cast<size_t>(original.num_columns()));
  KANON_CHECK_EQ(levels.size(),
                 static_cast<size_t>(original.num_columns()));
  std::vector<bool> withheld(original.num_rows(), false);
  for (const RowId r : suppressed_rows) {
    KANON_CHECK_LT(r, original.num_rows());
    withheld[r] = true;
  }

  // Published label of row p on column c (nullptr sentinel via "*").
  auto label_of = [&](RowId p, ColId c) -> const std::string& {
    static const std::string kStar = "*";
    if (withheld[p]) return kStar;
    return hierarchies[c].Label(original.at(p, c), levels[c]);
  };

  std::vector<size_t> candidates(original.num_rows(), 0);
  for (RowId victim = 0; victim < original.num_rows(); ++victim) {
    size_t count = 0;
    for (RowId p = 0; p < original.num_rows(); ++p) {
      if (withheld[p]) continue;  // not in the release
      bool consistent = true;
      for (const ColId c : known_columns) {
        // The victim's true value lifts to exactly one label at the
        // release's level; a consistent record must carry it.
        const std::string& victim_label =
            hierarchies[c].Label(original.at(victim, c), levels[c]);
        if (label_of(p, c) != victim_label) {
          consistent = false;
          break;
        }
      }
      if (consistent) ++count;
    }
    candidates[victim] = count;
  }
  return Summarize(candidates);
}

}  // namespace kanon
