#include "privacy/diversity.h"

#include <algorithm>
#include <set>

#include "core/cost.h"
#include "util/logging.h"

namespace kanon {

namespace {

/// Distinct sensitive values of a group as a set.
std::set<ValueCode> SensitiveValues(const Table& table, const Group& group,
                                    ColId sensitive_col) {
  std::set<ValueCode> values;
  for (const RowId r : group) values.insert(table.at(r, sensitive_col));
  return values;
}

/// ANON cost restricted to quasi-identifier columns (all but the
/// sensitive one).
size_t QiCost(const Table& table, const Group& group, ColId sensitive_col) {
  const std::vector<bool> disagree = DisagreeingColumns(table, group);
  size_t cols = 0;
  for (ColId c = 0; c < table.num_columns(); ++c) {
    if (c != sensitive_col && disagree[c]) ++cols;
  }
  return group.size() * cols;
}

}  // namespace

size_t GroupDiversity(const Table& table, const Group& group,
                      ColId sensitive_col) {
  KANON_CHECK_LT(sensitive_col, table.num_columns());
  return SensitiveValues(table, group, sensitive_col).size();
}

size_t DistinctDiversity(const Table& table, const Partition& p,
                         ColId sensitive_col) {
  if (p.groups.empty()) return 0;
  size_t min_diversity = table.num_rows();
  for (const Group& g : p.groups) {
    min_diversity =
        std::min(min_diversity, GroupDiversity(table, g, sensitive_col));
  }
  return min_diversity;
}

bool IsLDiverse(const Table& table, const Partition& p,
                ColId sensitive_col, size_t l) {
  return DistinctDiversity(table, p, sensitive_col) >= l;
}

bool MergeForDiversity(const Table& table, ColId sensitive_col, size_t l,
                       Partition* p) {
  KANON_CHECK_LT(sensitive_col, table.num_columns());
  KANON_CHECK_GE(l, 1u);
  std::vector<Group>& groups = p->groups;

  while (true) {
    // Find the least-diverse group below the target.
    size_t worst = groups.size();
    size_t worst_diversity = l;
    for (size_t g = 0; g < groups.size(); ++g) {
      const size_t diversity =
          GroupDiversity(table, groups[g], sensitive_col);
      if (diversity < worst_diversity) {
        worst = g;
        worst_diversity = diversity;
      }
    }
    if (worst == groups.size()) return true;  // all groups >= l
    if (groups.size() == 1) {
      // Nothing left to merge with: the table itself lacks diversity.
      return GroupDiversity(table, groups[0], sensitive_col) >= l;
    }

    // Pick the partner maximizing diversity gain, ties by smallest QI
    // cost of the merged group.
    const std::set<ValueCode> have =
        SensitiveValues(table, groups[worst], sensitive_col);
    size_t best_partner = groups.size();
    size_t best_gain = 0;
    size_t best_cost = 0;
    for (size_t g = 0; g < groups.size(); ++g) {
      if (g == worst) continue;
      const std::set<ValueCode> theirs =
          SensitiveValues(table, groups[g], sensitive_col);
      size_t gain = 0;
      for (const ValueCode v : theirs) {
        if (!have.count(v)) ++gain;
      }
      Group merged = groups[worst];
      merged.insert(merged.end(), groups[g].begin(), groups[g].end());
      const size_t cost = QiCost(table, merged, sensitive_col);
      if (best_partner == groups.size() || gain > best_gain ||
          (gain == best_gain && cost < best_cost)) {
        best_partner = g;
        best_gain = gain;
        best_cost = cost;
      }
    }
    KANON_CHECK_LT(best_partner, groups.size());
    Group& target = groups[worst];
    Group& source = groups[best_partner];
    target.insert(target.end(), source.begin(), source.end());
    groups.erase(groups.begin() +
                 static_cast<ptrdiff_t>(best_partner));
  }
}

double HomogeneityExposure(const Table& table, const Partition& p,
                           ColId sensitive_col) {
  if (table.num_rows() == 0) return 0.0;
  size_t exposed = 0;
  for (const Group& g : p.groups) {
    if (GroupDiversity(table, g, sensitive_col) == 1) exposed += g.size();
  }
  return static_cast<double>(exposed) /
         static_cast<double>(table.num_rows());
}

}  // namespace kanon
