#ifndef KANON_PRIVACY_DIVERSITY_H_
#define KANON_PRIVACY_DIVERSITY_H_

#include <cstddef>

#include "core/partition.h"
#include "data/table.h"

/// \file
/// Distinct l-diversity (Machanavajjhala et al.), the classic follow-up
/// to k-anonymity: even a k-anonymous release leaks a sensitive value
/// when a whole k-group shares it (the homogeneity attack). A partition
/// is distinct-l-diverse w.r.t. a sensitive attribute when every group
/// contains at least l distinct sensitive values. This module measures
/// diversity and upgrades a k-anonymous partition to an l-diverse one
/// by cost-aware group merging (merging preserves the >= k group-size
/// invariant, so k-anonymity survives).

namespace kanon {

/// Number of distinct values of `sensitive_col` inside `group`.
size_t GroupDiversity(const Table& table, const Group& group,
                      ColId sensitive_col);

/// Minimum group diversity over the partition (0 for an empty
/// partition).
size_t DistinctDiversity(const Table& table, const Partition& p,
                         ColId sensitive_col);

/// True iff every group has >= l distinct sensitive values.
bool IsLDiverse(const Table& table, const Partition& p,
                ColId sensitive_col, size_t l);

/// Greedily merges under-diverse groups into partners until the
/// partition is distinct-l-diverse. The partner is chosen to maximize
/// the diversity gain, ties broken by the smallest ANON-cost increase
/// over the quasi-identifier columns (all columns except
/// `sensitive_col`). Returns false — leaving `p` as a single merged
/// group — when the table itself has fewer than l distinct sensitive
/// values, in which case no partition can be l-diverse.
bool MergeForDiversity(const Table& table, ColId sensitive_col, size_t l,
                       Partition* p);

/// Homogeneity-attack exposure: the fraction of rows whose group is
/// sensitive-homogeneous (diversity == 1), i.e. rows whose sensitive
/// value an adversary learns with certainty from group membership
/// alone.
double HomogeneityExposure(const Table& table, const Partition& p,
                           ColId sensitive_col);

}  // namespace kanon

#endif  // KANON_PRIVACY_DIVERSITY_H_
