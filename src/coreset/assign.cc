#include "coreset/assign.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <utility>

#include "fault/fault.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace kanon {
namespace {

/// Weighted per-column mode of a sample group (ties -> lowest code); the
/// same centroid MDAV uses, with row weights multiplying the counts.
std::vector<ValueCode> WeightedModeCentroid(const Table& sample,
                                            const Group& group) {
  const ColId m = sample.num_columns();
  std::vector<ValueCode> centroid(m);
  std::vector<std::pair<ValueCode, uint64_t>> counts;
  for (ColId c = 0; c < m; ++c) {
    counts.clear();
    for (const RowId r : group) {
      const ValueCode code = sample.at(r, c);
      bool found = false;
      for (auto& [existing, count] : counts) {
        if (existing == code) {
          count += sample.row_weight(r);
          found = true;
          break;
        }
      }
      if (!found) counts.emplace_back(code, sample.row_weight(r));
    }
    ValueCode best_code = 0;
    uint64_t best_count = 0;
    for (const auto& [code, count] : counts) {
      if (count > best_count ||
          (count == best_count && code < best_code)) {
        best_code = code;
        best_count = count;
      }
    }
    centroid[c] = best_code;
  }
  return centroid;
}

/// Hamming distance from a row to a centroid, early-exiting once it can
/// no longer beat `bound`.
uint32_t BoundedDistance(std::span<const ValueCode> row,
                         const std::vector<ValueCode>& centroid,
                         uint32_t bound) {
  uint32_t d = 0;
  for (size_t c = 0; c < row.size(); ++c) {
    d += (row[c] != centroid[c]);
    if (d >= bound) return d;
  }
  return d;
}

/// Hamming distance between two centroids.
uint32_t CentroidDistance(const std::vector<ValueCode>& a,
                          const std::vector<ValueCode>& b) {
  uint32_t d = 0;
  for (size_t c = 0; c < a.size(); ++c) d += (a[c] != b[c]);
  return d;
}

}  // namespace

StatusOr<AssignmentOutcome> AssignToCoresetGroups(
    const Table& full, const Table& sample_table,
    const Partition& sample_partition, size_t k, RunContext* ctx) {
  KANON_CHECK(ctx != nullptr);
  const size_t n = full.num_rows();
  const size_t g = sample_partition.num_groups();
  if (g == 0) {
    return Status::InvalidArgument("coreset assignment needs >= 1 group");
  }
  if (k > n) {
    return Status::InvalidArgument("k exceeds the full row count");
  }
  KANON_CHECK_EQ(full.num_columns(), sample_table.num_columns());
  if (KANON_FAULT_POINT("coreset.assign")) {
    ctx->MarkStopped(StopReason::kDeadline);
    return StopReasonToStatus(ctx->stop_reason());
  }
  if (ctx->ShouldStop()) return StopReasonToStatus(ctx->stop_reason());

  std::vector<std::vector<ValueCode>> centroids(g);
  for (size_t i = 0; i < g; ++i) {
    KANON_CHECK(!sample_partition.groups[i].empty())
        << "empty group in the coreset partition";
    centroids[i] = WeightedModeCentroid(sample_table,
                                        sample_partition.groups[i]);
  }

  const size_t owner_bytes = n * sizeof(uint32_t);
  if (!ctx->TryChargeMemory(owner_bytes)) {
    return Status::ResourceExhausted(
        "coreset assignment owner array exceeds memory limit");
  }
  std::vector<uint32_t> owner(n);
  ParallelFor(
      0, n, 2048,
      [&](size_t b, size_t e) {
        for (size_t r = b; r < e; ++r) {
          const std::span<const ValueCode> row =
              full.row(static_cast<RowId>(r));
          uint32_t best_g = 0;
          uint32_t best_d = std::numeric_limits<uint32_t>::max();
          for (size_t i = 0; i < g; ++i) {
            const uint32_t d = BoundedDistance(row, centroids[i], best_d);
            if (d < best_d) {
              best_d = d;
              best_g = static_cast<uint32_t>(i);
            }
          }
          owner[r] = best_g;
        }
      },
      ctx);
  ctx->ChargeNodes(n);
  if (ctx->ShouldStop()) {
    ctx->ReleaseMemory(owner_bytes);
    return StopReasonToStatus(ctx->stop_reason());
  }

  AssignmentOutcome outcome;
  outcome.partition.groups.assign(g, Group());
  for (size_t r = 0; r < n; ++r) {
    outcome.partition.groups[owner[r]].push_back(static_cast<RowId>(r));
  }
  owner.clear();
  owner.shrink_to_fit();
  ctx->ReleaseMemory(owner_bytes);

  // Drop groups no full-table row chose (a sample row need not be
  // nearest to its own group's centroid), keeping centroids aligned.
  {
    size_t kept = 0;
    for (size_t i = 0; i < outcome.partition.groups.size(); ++i) {
      if (outcome.partition.groups[i].empty()) continue;
      if (kept != i) {
        outcome.partition.groups[kept] =
            std::move(outcome.partition.groups[i]);
        centroids[kept] = std::move(centroids[i]);
      }
      ++kept;
    }
    outcome.partition.groups.resize(kept);
    centroids.resize(kept);
  }

  // Repair: merge every undersized group (smallest first, ties -> lowest
  // id) into its nearest surviving neighbor by centroid distance. Each
  // merge removes one group, so this terminates; with n >= k the final
  // state — possibly a single group of all n rows — is always valid.
  const bool multi_group_before_repair = outcome.partition.num_groups() > 1;
  while (outcome.partition.num_groups() > 1) {
    size_t victim = outcome.partition.num_groups();
    for (size_t i = 0; i < outcome.partition.num_groups(); ++i) {
      const size_t size = outcome.partition.groups[i].size();
      if (size >= k) continue;
      if (victim == outcome.partition.num_groups() ||
          size < outcome.partition.groups[victim].size()) {
        victim = i;
      }
    }
    if (victim == outcome.partition.num_groups()) break;  // all >= k
    size_t target = victim == 0 ? 1 : 0;
    uint32_t best_d = CentroidDistance(centroids[victim],
                                       centroids[target]);
    for (size_t i = 0; i < outcome.partition.num_groups(); ++i) {
      if (i == victim) continue;
      const uint32_t d = CentroidDistance(centroids[victim], centroids[i]);
      if (d < best_d || (d == best_d && i < target)) {
        best_d = d;
        target = i;
      }
    }
    Group& dst = outcome.partition.groups[target];
    Group& src = outcome.partition.groups[victim];
    dst.insert(dst.end(), src.begin(), src.end());
    outcome.partition.groups.erase(outcome.partition.groups.begin() +
                                   static_cast<long>(victim));
    centroids.erase(centroids.begin() + static_cast<long>(victim));
    ++outcome.repair_merges;
  }
  outcome.repair_suppressed = outcome.repair_merges > 0 &&
                              multi_group_before_repair &&
                              outcome.partition.num_groups() == 1;
  KANON_CHECK(IsValidPartition(outcome.partition, static_cast<RowId>(n), k,
                               n))
      << "coreset assignment produced an invalid partition";
  return outcome;
}

}  // namespace kanon
