#include "coreset/coreset_anonymizer.h"

#include <sstream>
#include <utility>

#include "ckpt/checkpoint.h"
#include "core/partition.h"
#include "coreset/assign.h"
#include "coreset/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {
namespace {

constexpr uint32_t kSnapshotVersion = 1;

/// Wrapper snapshot: which phase completed, plus enough state to skip
/// the completed phases on resume. Phase 1 = sample drawn; phase 2 =
/// inner solve finished (weighted partition included).
struct WrapperState {
  uint32_t phase = 0;
  CoresetSample sample;
  Partition sample_partition;
};

std::string EncodeWrapperState(uint64_t options_fp, size_t n, size_t k,
                               const WrapperState& state) {
  CheckpointWriter w;
  w.PutU32(kSnapshotVersion);
  w.PutU64(options_fp);
  w.PutU64(n);
  w.PutU64(k);
  w.PutU32(state.phase);
  w.PutU64(state.sample.rows.size());
  for (const RowId r : state.sample.rows) w.PutU64(r);
  for (const uint32_t weight : state.sample.weights) w.PutU64(weight);
  if (state.phase >= 2) w.PutPartition(state.sample_partition);
  return w.TakeBytes();
}

/// Decodes and fully validates a wrapper snapshot against this run's
/// stamp. Any mismatch (hostile bytes, different knobs, different
/// instance) returns false and the caller cold-starts — a bad snapshot
/// must never be silently restored.
bool DecodeWrapperState(const std::string& payload, uint64_t options_fp,
                        size_t n, size_t k, size_t expected_sample,
                        WrapperState* state) {
  CheckpointReader r(payload);
  if (r.GetU32() != kSnapshotVersion) return false;
  if (r.GetU64() != options_fp) return false;
  if (r.GetU64() != n || r.GetU64() != k) return false;
  const uint32_t phase = r.GetU32();
  if (r.failed() || phase < 1 || phase > 2) return false;
  const uint64_t count = r.GetU64();
  if (r.failed() || count == 0 || count > expected_sample) return false;
  state->sample.rows.resize(count);
  state->sample.weights.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t row = r.GetU64();
    if (row >= n) return false;
    if (i > 0 && row <= state->sample.rows[i - 1]) return false;
    state->sample.rows[i] = static_cast<RowId>(row);
  }
  uint64_t total = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t weight = r.GetU64();
    if (weight == 0 || weight > n) return false;
    state->sample.weights[i] = static_cast<uint32_t>(weight);
    total += weight;
  }
  if (r.failed() || total != n) return false;
  if (phase >= 2) {
    state->sample_partition = r.GetPartition();
    if (r.failed() ||
        !IsValidPartition(state->sample_partition,
                          static_cast<RowId>(count), k, count)) {
      return false;
    }
  }
  if (!r.AtEnd()) return false;
  state->phase = phase;
  return true;
}

}  // namespace

CoresetAnonymizer::CoresetAnonymizer(std::unique_ptr<Anonymizer> inner,
                                     CoresetOptions options)
    : inner_(std::move(inner)), options_(options) {
  KANON_CHECK(inner_ != nullptr) << "coreset wrapper needs an inner solver";
  const std::string inner_name = inner_->name();
  KANON_CHECK(inner_name != "resilient" &&
              inner_name.rfind("coreset_", 0) != 0)
      << "coreset wrapper cannot nest '" << inner_name << "'";
}

std::string CoresetAnonymizer::name() const {
  return "coreset_" + inner_->name();
}

AnonymizationResult CoresetAnonymizer::Run(const Table& table, size_t k,
                                           RunContext* ctx) {
  KANON_CHECK(ctx != nullptr);
  const size_t n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(n, k);
  WallTimer timer;

  const size_t target = ResolveSampleSize(n, k, options_);
  if (target >= n) {
    // Sampling would not shrink the instance; solve directly.
    AnonymizationResult direct = inner_->Run(table, k, ctx);
    direct.notes = "coreset=direct(n<=sample) [" + direct.notes + "]";
    return direct;
  }

  const uint64_t options_fp = options_.Fingerprint();
  WrapperState state;
  bool resumed = false;
  if (const auto payload = ctx->resume_payload(name())) {
    WrapperState loaded;
    if (DecodeWrapperState(*payload, options_fp, n, k, target, &loaded)) {
      state = std::move(loaded);
      resumed = true;
      CoresetMetrics::Instance().RecordResume();
    }
  }

  if (state.phase < 1) {
    StatusOr<CoresetSample> drawn =
        DrawCoresetSample(table, k, options_, ctx);
    if (!drawn.ok()) {
      if (ctx->stop_reason() == StopReason::kNone) {
        ctx->MarkStopped(StopReason::kBudget);
      }
      return StoppedResult(
          *ctx, timer.Seconds(),
          "declined: " + std::string(drawn.status().message()));
    }
    state.sample = std::move(drawn.value());
    state.phase = 1;
    CoresetMetrics::Instance().RecordSample(state.sample.rows.size());
    if (ctx->CheckpointDue()) {
      (void)ctx->EmitCheckpoint(
          name(), EncodeWrapperState(options_fp, n, k, state));
    }
  }

  Table sample_table = table.SelectRows(state.sample.rows);
  sample_table.SetRowWeights(state.sample.weights);
  const size_t s = sample_table.num_rows();

  if (state.phase < 2) {
    // Lenient child with a slice of the remaining limits, exactly like a
    // fallback-chain stage: the assignment pass still needs headroom.
    RunContext child(ctx);
    child.set_lenient(true);
    if (ctx->has_deadline()) {
      child.set_deadline_after_millis(ctx->remaining_millis() * 0.7);
    }
    if (ctx->node_budget() > 0) {
      const uint64_t used = ctx->nodes_charged();
      child.set_node_budget(
          ctx->node_budget() > used ? ctx->node_budget() - used : 1);
    }
    if (ctx->memory_limit_bytes() > 0) {
      child.set_memory_limit_bytes(ctx->memory_limit_bytes());
    }
    AnonymizationResult inner_result = inner_->Run(sample_table, k, &child);
    ctx->ChargeNodes(child.nodes_charged());
    const bool valid =
        !inner_result.partition.groups.empty() &&
        IsValidPartition(inner_result.partition, static_cast<RowId>(s), k,
                         s);
    if (!valid) {
      if (ctx->stop_reason() == StopReason::kNone) {
        ctx->MarkStopped(child.stop_reason() != StopReason::kNone
                             ? child.stop_reason()
                             : StopReason::kBudget);
      }
      return StoppedResult(*ctx, timer.Seconds(),
                           "declined: inner solver failed on the sample (" +
                               std::string(StopReasonName(
                                   child.stop_reason())) +
                               ")");
    }
    state.sample_partition = std::move(inner_result.partition);
    state.phase = 2;
    if (ctx->CheckpointDue()) {
      (void)ctx->EmitCheckpoint(
          name(), EncodeWrapperState(options_fp, n, k, state));
    }
  }

  StatusOr<AssignmentOutcome> assigned = AssignToCoresetGroups(
      table, sample_table, state.sample_partition, k, ctx);
  if (!assigned.ok()) {
    if (ctx->stop_reason() == StopReason::kNone) {
      ctx->MarkStopped(StopReason::kBudget);
    }
    return StoppedResult(
        *ctx, timer.Seconds(),
        "declined: " + std::string(assigned.status().message()));
  }
  AssignmentOutcome& outcome = assigned.value();
  CoresetMetrics::Instance().RecordAssignment(n, outcome.repair_merges,
                                              outcome.repair_suppressed);

  AnonymizationResult result;
  result.partition = std::move(outcome.partition);
  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  std::ostringstream notes;
  notes << "coreset s=" << s << " strategy="
        << CoresetStrategyName(options_.strategy)
        << " inner=" << inner_->name()
        << " groups=" << result.partition.num_groups()
        << " repairs=" << outcome.repair_merges;
  if (outcome.repair_suppressed) notes << " degraded=repair_suppressed";
  if (resumed) notes << " resumed=1";
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
