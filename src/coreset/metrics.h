#ifndef KANON_CORESET_METRICS_H_
#define KANON_CORESET_METRICS_H_

#include <atomic>
#include <cstdint>

/// \file
/// Process-wide counters for the coreset subsystem, surfaced in kanond
/// `stats` and folded into the chaos replay fingerprint (so a seed
/// replay that samples or repairs differently is caught). Plain relaxed
/// atomics: the counters are diagnostics, not synchronization.

namespace kanon {

struct CoresetMetricsSnapshot {
  uint64_t sample_runs = 0;
  uint64_t samples_drawn = 0;
  uint64_t assigned_rows = 0;
  uint64_t repair_merges = 0;
  uint64_t repair_suppressed = 0;
  uint64_t resumed = 0;
};

class CoresetMetrics {
 public:
  static CoresetMetrics& Instance();

  void RecordSample(uint64_t rows_drawn) {
    sample_runs_.fetch_add(1, std::memory_order_relaxed);
    samples_drawn_.fetch_add(rows_drawn, std::memory_order_relaxed);
  }
  void RecordAssignment(uint64_t rows, uint64_t merges, bool suppressed) {
    assigned_rows_.fetch_add(rows, std::memory_order_relaxed);
    repair_merges_.fetch_add(merges, std::memory_order_relaxed);
    if (suppressed) {
      repair_suppressed_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void RecordResume() { resumed_.fetch_add(1, std::memory_order_relaxed); }

  CoresetMetricsSnapshot Snapshot() const;

  /// Zeroes every counter; the chaos harness calls this at the start of
  /// each schedule so fingerprints are per-schedule.
  void Reset();

 private:
  CoresetMetrics() = default;

  std::atomic<uint64_t> sample_runs_{0};
  std::atomic<uint64_t> samples_drawn_{0};
  std::atomic<uint64_t> assigned_rows_{0};
  std::atomic<uint64_t> repair_merges_{0};
  std::atomic<uint64_t> repair_suppressed_{0};
  std::atomic<uint64_t> resumed_{0};
};

}  // namespace kanon

#endif  // KANON_CORESET_METRICS_H_
