#include "coreset/metrics.h"

namespace kanon {

CoresetMetrics& CoresetMetrics::Instance() {
  static CoresetMetrics* instance = new CoresetMetrics();
  return *instance;
}

CoresetMetricsSnapshot CoresetMetrics::Snapshot() const {
  CoresetMetricsSnapshot snap;
  snap.sample_runs = sample_runs_.load(std::memory_order_relaxed);
  snap.samples_drawn = samples_drawn_.load(std::memory_order_relaxed);
  snap.assigned_rows = assigned_rows_.load(std::memory_order_relaxed);
  snap.repair_merges = repair_merges_.load(std::memory_order_relaxed);
  snap.repair_suppressed =
      repair_suppressed_.load(std::memory_order_relaxed);
  snap.resumed = resumed_.load(std::memory_order_relaxed);
  return snap;
}

void CoresetMetrics::Reset() {
  sample_runs_.store(0, std::memory_order_relaxed);
  samples_drawn_.store(0, std::memory_order_relaxed);
  assigned_rows_.store(0, std::memory_order_relaxed);
  repair_merges_.store(0, std::memory_order_relaxed);
  repair_suppressed_.store(0, std::memory_order_relaxed);
  resumed_.store(0, std::memory_order_relaxed);
}

}  // namespace kanon
