#ifndef KANON_CORESET_ASSIGN_H_
#define KANON_CORESET_ASSIGN_H_

#include <cstddef>
#include <vector>

#include "core/partition.h"
#include "data/table.h"
#include "util/run_context.h"
#include "util/status.h"

/// \file
/// Coreset assignment plane: maps every row of the full table onto the
/// partition an inner solver produced for the weighted sample, then
/// repairs undersized groups so the output is always a valid k-anonymous
/// partition of the full table.
///
/// Each coreset group is summarized by its weighted mode centroid (the
/// same per-column mode MDAV uses, with sample weights multiplying the
/// counts); full-table rows go to the nearest centroid by Hamming
/// distance (ties -> lowest group id), blocked across ParallelFor
/// workers with cooperative cancellation. Assignment can leave a group
/// with fewer than k rows — or none — so a repair pass merges every
/// undersized group into its nearest surviving neighbor (smallest group
/// first, ties -> lowest id). Repair provably terminates with all groups
/// >= k whenever n >= k; if it had to collapse the table into a single
/// group the outcome is flagged so the caller can report the typed
/// degradation (the result is then close to full suppression).

namespace kanon {

/// Result of AssignToCoresetGroups.
struct AssignmentOutcome {
  /// Valid k-anonymous partition of the full table.
  Partition partition;
  /// Undersized-group merges the repair pass performed.
  size_t repair_merges = 0;
  /// True when repair collapsed everything into one group — the typed
  /// "repair had to suppress" degradation.
  bool repair_suppressed = false;
};

/// Maps each of the full table's rows onto `sample_partition` (a
/// partition of `sample_table`, which must be the weighted
/// SelectRows(sample rows) view of `full`). Typed failures mirror the
/// sampler: kCancelled/kDeadlineExceeded when `ctx` stops (fault site
/// `coreset.assign` fires a deadline stop), kResourceExhausted when the
/// owner array does not fit the memory budget, kInvalidArgument on
/// structural mismatch (no groups, or k > n).
StatusOr<AssignmentOutcome> AssignToCoresetGroups(
    const Table& full, const Table& sample_table,
    const Partition& sample_partition, size_t k, RunContext* ctx);

}  // namespace kanon

#endif  // KANON_CORESET_ASSIGN_H_
