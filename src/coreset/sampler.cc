#include "coreset/sampler.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "fault/fault.h"
#include "util/fingerprint.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"

namespace kanon {
namespace {

/// Hamming distance between row `r` and the cached codes of a center row.
uint32_t RowDistance(const Table& table, RowId r,
                     std::span<const ValueCode> center) {
  const std::span<const ValueCode> codes = table.row(r);
  uint32_t d = 0;
  for (size_t c = 0; c < codes.size(); ++c) d += (codes[c] != center[c]);
  return d;
}

/// RAII release of a TryChargeMemory charge.
class MemoryLease {
 public:
  MemoryLease(RunContext* ctx, size_t bytes) : ctx_(ctx), bytes_(bytes) {}
  ~MemoryLease() { ctx_->ReleaseMemory(bytes_); }
  MemoryLease(const MemoryLease&) = delete;
  MemoryLease& operator=(const MemoryLease&) = delete;

 private:
  RunContext* ctx_;
  size_t bytes_;
};

/// Scales `real` to integer weights >= 1 summing to exactly `target`.
/// Deterministic: remainder units go to the largest fractional parts
/// (ties by index), deficit units are taken from the smallest fractional
/// parts among weights still > 1. Requires real.size() <= target and
/// every entry > 0.
std::vector<uint32_t> IntegerizeWeights(const std::vector<double>& real,
                                        size_t target) {
  const size_t s = real.size();
  KANON_CHECK_GT(s, 0u);
  KANON_CHECK_LE(s, target);
  double total = 0.0;
  for (const double w : real) {
    KANON_CHECK(w > 0.0);
    total += w;
  }
  const double scale = static_cast<double>(target) / total;
  std::vector<uint32_t> out(s);
  std::vector<std::pair<double, size_t>> frac(s);  // (fractional part, i)
  size_t sum = 0;
  for (size_t i = 0; i < s; ++i) {
    const double scaled = real[i] * scale;
    const double floored = std::floor(scaled);
    out[i] = static_cast<uint32_t>(std::max(1.0, floored));
    frac[i] = {scaled - floored, i};
    sum += out[i];
  }
  if (sum < target) {
    // Hand out the missing units to the largest fractional parts,
    // cycling deterministically if one pass is not enough.
    std::sort(frac.begin(), frac.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first > b.first;
      return a.second < b.second;
    });
    size_t need = target - sum;
    while (need > 0) {
      for (size_t j = 0; j < s && need > 0; ++j, --need) {
        ++out[frac[j].second];
      }
    }
  } else if (sum > target) {
    // Claw back the excess from the smallest fractional parts, never
    // dropping a weight below 1. Feasible because s <= target.
    std::sort(frac.begin(), frac.end(), [](const auto& a, const auto& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    });
    size_t excess = sum - target;
    while (excess > 0) {
      bool any = false;
      for (size_t j = 0; j < s && excess > 0; ++j) {
        uint32_t& w = out[frac[j].second];
        if (w > 1) {
          --w;
          --excess;
          any = true;
        }
      }
      KANON_CHECK(any) << "IntegerizeWeights cannot reach target";
    }
  }
  return out;
}

StatusOr<CoresetSample> DrawUniform(const Table& table, size_t s,
                                    Rng* rng, RunContext* ctx) {
  const size_t n = table.num_rows();
  // SampleWithoutReplacement builds an O(n) index pool.
  const size_t pool_bytes = n * sizeof(uint32_t);
  if (!ctx->TryChargeMemory(pool_bytes)) {
    return Status::ResourceExhausted(
        "coreset sampler scratch exceeds memory limit");
  }
  const MemoryLease lease(ctx, pool_bytes);
  CoresetSample sample;
  sample.rows = rng->SampleWithoutReplacement(
      static_cast<uint32_t>(n), static_cast<uint32_t>(s));
  std::sort(sample.rows.begin(), sample.rows.end());
  // Every sampled row stands for ~n/s tuples; the first n%s rows absorb
  // the remainder so the weights sum to exactly n.
  const uint32_t base = static_cast<uint32_t>(n / s);
  const uint32_t extra = static_cast<uint32_t>(n % s);
  sample.weights.assign(s, base);
  for (uint32_t i = 0; i < extra; ++i) ++sample.weights[i];
  return sample;
}

StatusOr<CoresetSample> DrawSensitivity(const Table& table, size_t s,
                                        const CoresetOptions& options,
                                        Rng* rng, RunContext* ctx) {
  const size_t n = table.num_rows();
  const size_t scratch_bytes =
      n * (sizeof(uint32_t) + sizeof(double));  // dist + prefix sums
  if (!ctx->TryChargeMemory(scratch_bytes)) {
    return Status::ResourceExhausted(
        "coreset sampler scratch exceeds memory limit");
  }
  const MemoryLease lease(ctx, scratch_bytes);

  // Farthest-point seeding: distance-to-nearest-center for every row.
  std::vector<uint32_t> dist(n);
  const size_t centers = std::clamp<size_t>(options.seed_centers, 1, s);
  RowId center = static_cast<RowId>(rng->Uniform(static_cast<uint32_t>(n)));
  std::vector<ValueCode> center_codes(table.row(center).begin(),
                                      table.row(center).end());
  ParallelFor(
      0, n, 4096,
      [&](size_t b, size_t e) {
        for (size_t r = b; r < e; ++r) {
          dist[r] = RowDistance(table, static_cast<RowId>(r), center_codes);
        }
      },
      ctx);
  for (size_t j = 1; j < centers && !ctx->ShouldStop(); ++j) {
    // Next center: the row farthest from every chosen center (ties ->
    // lowest id). If everything is at distance 0 the table has collapsed
    // onto the centers and more seeding cannot help.
    size_t best = 0;
    for (size_t r = 1; r < n; ++r) {
      if (dist[r] > dist[best]) best = r;
    }
    if (dist[best] == 0) break;
    center = static_cast<RowId>(best);
    center_codes.assign(table.row(center).begin(), table.row(center).end());
    ParallelFor(
        0, n, 4096,
        [&](size_t b, size_t e) {
          for (size_t r = b; r < e; ++r) {
            dist[r] = std::min(
                dist[r],
                RowDistance(table, static_cast<RowId>(r), center_codes));
          }
        },
        ctx);
  }
  ctx->ChargeNodes(centers);
  if (ctx->ShouldStop()) return StopReasonToStatus(ctx->stop_reason());

  // Sensitivity score: distance to the nearest center plus an additive
  // uniform term so zero-distance rows keep nonzero mass. Draw s i.i.d.
  // rows proportional to the score via prefix sums, then weight each
  // distinct row by multiplicity/(s * p_row) tuples — the standard
  // unbiased sensitivity-sampling estimator — before integerizing.
  std::vector<double> prefix(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += static_cast<double>(dist[r]) + 1.0;
    prefix[r] = total;
  }
  std::vector<std::pair<RowId, uint32_t>> tally;  // (row, multiplicity)
  tally.reserve(s);
  for (size_t i = 0; i < s; ++i) {
    const double u = rng->UniformDouble() * total;
    const size_t r = static_cast<size_t>(
        std::lower_bound(prefix.begin(), prefix.end(), u) - prefix.begin());
    tally.emplace_back(static_cast<RowId>(std::min(r, n - 1)), 1);
  }
  std::sort(tally.begin(), tally.end());
  size_t distinct = 0;
  for (size_t i = 0; i < tally.size(); ++i) {
    if (distinct > 0 && tally[distinct - 1].first == tally[i].first) {
      tally[distinct - 1].second += 1;
    } else {
      tally[distinct++] = tally[i];
    }
  }
  tally.resize(distinct);

  CoresetSample sample;
  sample.rows.reserve(distinct);
  std::vector<double> real(distinct);
  for (size_t i = 0; i < distinct; ++i) {
    const auto [row, count] = tally[i];
    sample.rows.push_back(row);
    const double score = static_cast<double>(dist[row]) + 1.0;
    real[i] = static_cast<double>(count) * total /
              (static_cast<double>(s) * score);
  }
  sample.weights = IntegerizeWeights(real, n);
  return sample;
}

}  // namespace

const char* CoresetStrategyName(CoresetStrategy strategy) {
  switch (strategy) {
    case CoresetStrategy::kUniform:
      return "uniform";
    case CoresetStrategy::kSensitivity:
      return "sensitivity";
  }
  return "unknown";
}

uint64_t CoresetOptions::Fingerprint() const {
  uint64_t fp = kFingerprintSeed;
  uint64_t rate_bits = 0;
  static_assert(sizeof(rate_bits) == sizeof(sample_rate));
  std::memcpy(&rate_bits, &sample_rate, sizeof(rate_bits));
  fp = FingerprintInt(fp, rate_bits);
  fp = FingerprintInt(fp, min_sample);
  fp = FingerprintInt(fp, max_sample);
  fp = FingerprintInt(fp, static_cast<uint64_t>(strategy));
  fp = FingerprintInt(fp, seed);
  fp = FingerprintInt(fp, seed_centers);
  return fp;
}

size_t ResolveSampleSize(size_t n, size_t k,
                         const CoresetOptions& options) {
  if (n == 0) return 0;
  const double rate =
      options.sample_rate > 0.0 ? options.sample_rate : kDefaultCoresetRate;
  size_t s = static_cast<size_t>(
      std::ceil(rate * static_cast<double>(n)));
  s = std::min(s, options.max_sample);
  // The floor wins over max_sample: a sample smaller than 3k gives the
  // inner solver no room to form groups.
  s = std::max(s, std::max(options.min_sample, 3 * k));
  return std::clamp<size_t>(s, 1, n);
}

StatusOr<CoresetSample> DrawCoresetSample(const Table& table, size_t k,
                                          const CoresetOptions& options,
                                          RunContext* ctx) {
  KANON_CHECK(ctx != nullptr);
  const size_t n = table.num_rows();
  if (n == 0) {
    return Status::InvalidArgument("cannot sample an empty table");
  }
  if (KANON_FAULT_POINT("coreset.sample")) {
    ctx->MarkStopped(StopReason::kBudget);
    return Status::ResourceExhausted("injected coreset sampling failure");
  }
  if (ctx->ShouldStop()) return StopReasonToStatus(ctx->stop_reason());
  const size_t s = ResolveSampleSize(n, k, options);
  Rng rng(options.seed, /*stream=*/0x1c0ULL);
  StatusOr<CoresetSample> result =
      options.strategy == CoresetStrategy::kUniform
          ? DrawUniform(table, s, &rng, ctx)
          : DrawSensitivity(table, s, options, &rng, ctx);
  if (!result.ok()) return result;
  CoresetSample& sample = result.value();
  KANON_CHECK_EQ(sample.rows.size(), sample.weights.size());
  size_t total = 0;
  for (const uint32_t w : sample.weights) total += w;
  KANON_CHECK_EQ(total, n) << "coreset weights must sum to the row count";
  ctx->ChargeNodes(sample.rows.size());
  return result;
}

}  // namespace kanon
