#ifndef KANON_CORESET_CORESET_ANONYMIZER_H_
#define KANON_CORESET_CORESET_ANONYMIZER_H_

#include <memory>
#include <string>

#include "algo/anonymizer.h"
#include "coreset/sampler.h"

/// \file
/// `coreset_<inner>`: the million-row pipeline as a composable
/// anonymizer. Three phases, each resumable and typed on failure:
///
///   1. **sample** — DrawCoresetSample produces a weighted instance
///      (deterministic from the seed, so a resumed run regenerates the
///      identical sample);
///   2. **solve** — the inner anonymizer runs unmodified on the weighted
///      SelectRows view under a lenient child context (GroupStats and
///      the cost core are weight-aware, so its objective is the weighted
///      suppression cost);
///   3. **assign** — AssignToCoresetGroups maps every full-table row to
///      its nearest coreset group and repairs undersized groups, so the
///      output is always a valid k-anonymous partition of the full
///      table; the reported cost is the real unweighted PartitionCost.
///
/// When the resolved sample size would not shrink the instance the inner
/// solver runs directly on the full table. Any phase that stops (fault
/// site, deadline, budget, cancel) returns a typed StoppedResult, which
/// the resilient fallback chain turns into graceful degradation — a
/// killed or faulted coreset job resumes or degrades typed, never emits
/// an invalid partition. Wrapper snapshots (sampler state, then the
/// weighted sample partition) ride the standard checkpoint cadence under
/// the name "coreset_<inner>".

namespace kanon {

class CoresetAnonymizer : public Anonymizer {
 public:
  /// Wraps `inner` (must be non-null and not itself "resilient" or a
  /// coreset_* wrapper).
  explicit CoresetAnonymizer(std::unique_ptr<Anonymizer> inner,
                             CoresetOptions options = {});

  using Anonymizer::Run;
  std::string name() const override;
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

  const CoresetOptions& options() const { return options_; }

 private:
  std::unique_ptr<Anonymizer> inner_;
  CoresetOptions options_;
};

}  // namespace kanon

#endif  // KANON_CORESET_CORESET_ANONYMIZER_H_
