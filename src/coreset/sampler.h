#ifndef KANON_CORESET_SAMPLER_H_
#define KANON_CORESET_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/table.h"
#include "util/run_context.h"
#include "util/status.h"

/// \file
/// Coreset sampling layer: draws a weighted representative subsample of
/// a table so an O(n^2) solver can run on s << n rows while the weighted
/// suppression cost approximates the full table's (Motwani & Nabar's
/// clustering view of anonymization; minicore's coreset.h is the shape
/// exemplar). Two strategies:
///
///   * **uniform** — s rows without replacement, each standing for ~n/s
///     tuples;
///   * **sensitivity** — farthest-point seed centers (ball_cover-style
///     seeding) give every row a sensitivity score proportional to its
///     distance from the nearest center plus a uniform term; rows are
///     drawn with probability proportional to the score and weighted by
///     the inverse of their inclusion probability, so outliers that
///     dominate suppression cost are kept while dense regions collapse
///     onto few heavy representatives.
///
/// Both are deterministic from `CoresetOptions::seed`, poll the
/// RunContext for cancellation, and account their transient memory like
/// the DistanceOracle (typed kResourceExhausted + kBudget latch, never
/// bad_alloc). Integer weights always sum to exactly the full row count,
/// so a weighted group cost is directly comparable to an unweighted one.

namespace kanon {

/// How sample rows are chosen.
enum class CoresetStrategy {
  kUniform = 0,
  kSensitivity = 1,
};

const char* CoresetStrategyName(CoresetStrategy strategy);

/// Knobs for DrawCoresetSample; all have million-row-friendly defaults.
struct CoresetOptions {
  /// Target sample size as a fraction of n; 0 means the default rate.
  double sample_rate = 0.0;
  /// Resolved sample size is clamped to [min_sample, max_sample] (and
  /// never below 3k or above n).
  size_t min_sample = 32;
  size_t max_sample = 2048;
  CoresetStrategy strategy = CoresetStrategy::kSensitivity;
  /// Seed for the sampler's private PCG32 stream.
  uint64_t seed = 0x5eedc0de;
  /// Number of farthest-point seed centers for sensitivity scoring.
  size_t seed_centers = 16;

  /// Stable fingerprint over every knob; keyed into the service result
  /// cache so runs with different knobs can never collide.
  uint64_t Fingerprint() const;
};

/// Default sample_rate when CoresetOptions::sample_rate == 0.
inline constexpr double kDefaultCoresetRate = 0.125;

/// A weighted subsample: `rows` are distinct ids of the source table in
/// ascending order; `weights[i]` >= 1 is the number of source tuples row
/// `rows[i]` stands for, and the weights sum to exactly n.
struct CoresetSample {
  std::vector<RowId> rows;
  std::vector<uint32_t> weights;
};

/// Sample size DrawCoresetSample would use for an n-row table: s in
/// [max(min_sample, 3k), min(max_sample, ...)] clamped to [1, n]. When
/// this returns n the caller should solve directly — sampling would not
/// shrink the instance.
size_t ResolveSampleSize(size_t n, size_t k, const CoresetOptions& options);

/// Draws the weighted sample. Typed failures: kCancelled/
/// kDeadlineExceeded when `ctx` stops, kResourceExhausted when the
/// score/selection scratch does not fit the memory budget (kBudget
/// latched), kInvalidArgument on an empty table. Fault site
/// `coreset.sample` fires a typed budget decline for chaos testing.
StatusOr<CoresetSample> DrawCoresetSample(const Table& table, size_t k,
                                          const CoresetOptions& options,
                                          RunContext* ctx);

}  // namespace kanon

#endif  // KANON_CORESET_SAMPLER_H_
