#ifndef KANON_FAULT_FAULT_H_
#define KANON_FAULT_FAULT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// Deterministic, seedable fault injection.
///
/// PRs 1-2 built the happy-path resilience machinery (RunContext limits,
/// the fallback chain, the service queue/pool/cache) — this subsystem is
/// what *proves* those layers survive induced failure. Code declares
/// named injection sites with `KANON_FAULT_POINT("site.name")`; a chaos
/// harness arms the process-wide `FaultRegistry` with a seeded
/// `FaultPlan`, and each site then fires deterministically as a pure
/// function of (seed, site name, per-site hit index). Same seed, same
/// site, same hit index ⇒ same decision, on every platform and thread
/// interleaving — which is what makes a chaos schedule replayable.
///
/// **Disarmed cost.** `KANON_FAULT_POINT` compiles to a function-local
/// static (one guard check after first use) plus a single relaxed atomic
/// load and a predictable branch — cheap enough for solver hot loops
/// (bench_micro_service pins the overhead). No site state is touched
/// while disarmed; hit counters only accumulate under an armed plan.
///
/// **What a fire means** is decided locally by the site: a solver treats
/// it as an induced deadline or allocation failure (latching its
/// RunContext), the worker pool treats it as a worker death (retry with
/// backoff), the cache treats it as a poisoning attempt (rejected by the
/// insert guard), the journal as a torn write (dropped at replay). The
/// registry only answers "does hit #h of site s fire under this plan?".

namespace kanon {

/// One registered injection site. Stable address for the process
/// lifetime; all fields are internally synchronized.
struct FaultSite {
  std::string name;
  /// Seed-independent fingerprint of `name`, folded into the decision.
  uint64_t name_fp = 0;
  /// Hits observed while armed (the decision index).
  std::atomic<uint64_t> hits{0};
  /// Hits that fired.
  std::atomic<uint64_t> fires{0};
  /// Armed firing probability as raw double bits (0 bits = never).
  std::atomic<uint64_t> probability_bits{0};
  /// When > 0, the first `first_n` armed hits fire and later ones never
  /// do (deterministic trigger for targeted tests); overrides
  /// probability.
  std::atomic<uint64_t> first_n{0};
};

/// Read-only snapshot of one site for stats/reporting.
struct FaultSiteSnapshot {
  std::string name;
  uint64_t hits = 0;
  uint64_t fires = 0;
  double probability = 0.0;
  uint64_t first_n = 0;
};

/// How one armed site should fire. `first_n > 0` wins over probability.
struct FaultSiteSpec {
  std::string site;  // exact site name
  double probability = 0.0;
  uint64_t first_n = 0;
};

/// A full injection schedule: the seed plus per-site firing rules.
struct FaultPlan {
  uint64_t seed = 0;
  /// Probability applied to every site without an explicit spec.
  double default_probability = 0.0;
  std::vector<FaultSiteSpec> sites;
};

/// Parses a compact plan spec, e.g.
///   "seed=42 p=0.01 worker.dispatch=0.5 exact_dp.alloc=first:2"
/// Tokens are whitespace-separated key=value pairs; `seed` and `p`
/// (default probability) are reserved keys, anything else names a site
/// whose value is either a probability in [0,1] or "first:<n>".
StatusOr<FaultPlan> ParseFaultPlan(const std::string& spec);

/// Process-wide site registry. Arm/Disarm are cheap and thread-safe;
/// they are meant to bracket a chaos schedule, not to toggle per-call.
class FaultRegistry {
 public:
  static FaultRegistry& Instance();

  FaultRegistry(const FaultRegistry&) = delete;
  FaultRegistry& operator=(const FaultRegistry&) = delete;

  /// Idempotent by name; the returned site outlives every caller.
  /// Sites registered after Arm() pick up the active plan.
  FaultSite& Register(const std::string& name);

  /// Installs `plan` and starts firing. Also resets hit/fire counters so
  /// consecutive schedules with the same seed replay identically.
  void Arm(const FaultPlan& plan);

  /// Stops all firing (sites keep their counters until the next Arm).
  void Disarm();

  /// True while a plan is armed. Relaxed read — THE fast-path check.
  static bool Armed() {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Decides hit #(site.hits++) of `site` under the armed plan. Slow
  /// path — only reached while armed.
  bool Fire(FaultSite& site);

  /// Pure decision function, exposed so tests can assert that a
  /// schedule is a deterministic function of (seed, site, hit index).
  static bool FireDecision(uint64_t seed, uint64_t site_name_fp,
                           uint64_t hit, double probability);

  /// Catalog snapshot (every site ever registered, in name order).
  std::vector<FaultSiteSnapshot> Snapshot() const;

  /// Sum of fires across all sites since the last Arm().
  uint64_t TotalFires() const;

 private:
  FaultRegistry() = default;

  void ApplyPlanLocked(FaultSite& site) const;

  static std::atomic<bool> armed_;

  mutable std::mutex mu_;
  /// Node-stable storage: sites are never destroyed or moved.
  std::vector<std::unique_ptr<FaultSite>> sites_;
  /// Written under mu_ by Arm(), read lock-free by Fire().
  std::atomic<uint64_t> seed_{0};
  FaultPlan plan_;
};

/// RAII plan for tests: arms in the constructor, disarms in the
/// destructor (exceptions cannot leave a schedule armed).
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultPlan& plan) {
    FaultRegistry::Instance().Arm(plan);
  }
  ~ScopedFaultInjection() { FaultRegistry::Instance().Disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

}  // namespace kanon

/// Declares a named injection site and evaluates to true when the
/// armed schedule fires this hit. `site_name` must be a string literal
/// (or otherwise live forever). Disarmed cost: a static-local guard plus
/// one relaxed atomic load.
#define KANON_FAULT_POINT(site_name)                                     \
  ([]() -> bool {                                                        \
    static ::kanon::FaultSite& kanon_fault_site =                        \
        ::kanon::FaultRegistry::Instance().Register(site_name);          \
    return ::kanon::FaultRegistry::Armed() &&                            \
           ::kanon::FaultRegistry::Instance().Fire(kanon_fault_site);    \
  }())

#endif  // KANON_FAULT_FAULT_H_
