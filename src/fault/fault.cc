#include "fault/fault.h"

#include <algorithm>
#include <bit>

#include "util/fingerprint.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/string_util.h"

namespace kanon {

std::atomic<bool> FaultRegistry::armed_{false};

FaultRegistry& FaultRegistry::Instance() {
  static FaultRegistry* instance = new FaultRegistry();  // never destroyed
  return *instance;
}

FaultSite& FaultRegistry::Register(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& site : sites_) {
    if (site->name == name) return *site;
  }
  auto site = std::make_unique<FaultSite>();
  site->name = name;
  site->name_fp = Fingerprint(name);
  if (armed_.load(std::memory_order_relaxed)) ApplyPlanLocked(*site);
  sites_.push_back(std::move(site));
  return *sites_.back();
}

void FaultRegistry::ApplyPlanLocked(FaultSite& site) const {
  double p = plan_.default_probability;
  uint64_t first_n = 0;
  for (const FaultSiteSpec& spec : plan_.sites) {
    if (spec.site == site.name) {
      p = spec.probability;
      first_n = spec.first_n;
      break;
    }
  }
  site.probability_bits.store(p > 0.0 ? std::bit_cast<uint64_t>(p) : 0,
                              std::memory_order_relaxed);
  site.first_n.store(first_n, std::memory_order_relaxed);
}

void FaultRegistry::Arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  plan_ = plan;
  seed_.store(plan.seed, std::memory_order_relaxed);
  for (const auto& site : sites_) {
    site->hits.store(0, std::memory_order_relaxed);
    site->fires.store(0, std::memory_order_relaxed);
    ApplyPlanLocked(*site);
  }
  armed_.store(true, std::memory_order_release);
}

void FaultRegistry::Disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.store(false, std::memory_order_release);
  for (const auto& site : sites_) {
    site->probability_bits.store(0, std::memory_order_relaxed);
    site->first_n.store(0, std::memory_order_relaxed);
  }
}

bool FaultRegistry::FireDecision(uint64_t seed, uint64_t site_name_fp,
                                 uint64_t hit, double probability) {
  if (probability <= 0.0) return false;
  if (probability >= 1.0) return true;
  // One SplitMix64 mix of (seed, site, hit) -> uniform in [0, 1). Pure
  // and platform-independent, so a schedule replays bit-identically.
  uint64_t x = seed ^ site_name_fp ^ (hit * 0x9e3779b97f4a7c15ull);
  const uint64_t mixed = SplitMix64(&x);
  const double u =
      static_cast<double>(mixed >> 11) * 0x1.0p-53;  // 53-bit mantissa
  return u < probability;
}

bool FaultRegistry::Fire(FaultSite& site) {
  const uint64_t hit = site.hits.fetch_add(1, std::memory_order_relaxed);
  const uint64_t first_n = site.first_n.load(std::memory_order_relaxed);
  bool fire;
  if (first_n > 0) {
    fire = hit < first_n;
  } else {
    const uint64_t p_bits =
        site.probability_bits.load(std::memory_order_relaxed);
    if (p_bits == 0) return false;
    fire = FireDecision(seed_.load(std::memory_order_relaxed),
                        site.name_fp, hit, std::bit_cast<double>(p_bits));
  }
  if (fire) site.fires.fetch_add(1, std::memory_order_relaxed);
  return fire;
}

std::vector<FaultSiteSnapshot> FaultRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<FaultSiteSnapshot> out;
  out.reserve(sites_.size());
  for (const auto& site : sites_) {
    FaultSiteSnapshot snap;
    snap.name = site->name;
    snap.hits = site->hits.load(std::memory_order_relaxed);
    snap.fires = site->fires.load(std::memory_order_relaxed);
    const uint64_t p_bits =
        site->probability_bits.load(std::memory_order_relaxed);
    snap.probability = p_bits == 0 ? 0.0 : std::bit_cast<double>(p_bits);
    snap.first_n = site->first_n.load(std::memory_order_relaxed);
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const FaultSiteSnapshot& a, const FaultSiteSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

uint64_t FaultRegistry::TotalFires() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& site : sites_) {
    total += site->fires.load(std::memory_order_relaxed);
  }
  return total;
}

StatusOr<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  for (const std::string& raw : Split(spec, ' ')) {
    const std::string_view token = Trim(raw);
    if (token.empty()) continue;
    const size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return Status::InvalidArgument("fault plan: expected key=value, got '" +
                                     std::string(token) + "'");
    }
    const std::string key(token.substr(0, eq));
    const std::string value(token.substr(eq + 1));
    if (key == "seed") {
      long long seed = 0;
      if (!ParseInt(value, &seed) || seed < 0) {
        return Status::InvalidArgument("fault plan: bad seed '" + value +
                                       "'");
      }
      plan.seed = static_cast<uint64_t>(seed);
      continue;
    }
    if (key == "p") {
      double p = 0.0;
      if (!ParseDouble(value, &p) || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument(
            "fault plan: default probability must be in [0,1], got '" +
            value + "'");
      }
      plan.default_probability = p;
      continue;
    }
    FaultSiteSpec site_spec;
    site_spec.site = key;
    if (StartsWith(value, "first:")) {
      long long n = 0;
      if (!ParseInt(value.substr(6), &n) || n < 1) {
        return Status::InvalidArgument("fault plan: bad first:<n> in '" +
                                       value + "'");
      }
      site_spec.first_n = static_cast<uint64_t>(n);
    } else {
      double p = 0.0;
      if (!ParseDouble(value, &p) || p < 0.0 || p > 1.0) {
        return Status::InvalidArgument("fault plan: site probability for '" +
                                       key + "' must be in [0,1]");
      }
      site_spec.probability = p;
    }
    plan.sites.push_back(std::move(site_spec));
  }
  return plan;
}

}  // namespace kanon
