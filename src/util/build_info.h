#ifndef KANON_UTIL_BUILD_INFO_H_
#define KANON_UTIL_BUILD_INFO_H_

#include <string>

/// \file
/// Build provenance for crash-report and chaos-fingerprint triage.
///
/// When a chaos sweep or a SIGKILL drill fails, the first question is
/// always "which build was that?" — the git revision, the CMake build
/// type, and whether a sanitizer was baked in all change behavior and
/// timing. The values are injected at compile time (see
/// src/CMakeLists.txt) into this one translation unit so the rest of the
/// library never recompiles when the hash moves.

namespace kanon {

struct BuildInfo {
  std::string git_hash;    ///< Short revision, or "unknown" outside git.
  std::string build_type;  ///< CMAKE_BUILD_TYPE, or "unspecified".
  std::string sanitizer;   ///< "asan", "tsan", "ubsan", ... or "none".
};

/// The build this binary was produced from.
const BuildInfo& GetBuildInfo();

/// Human-readable one-liner: "git=<hash> build=<type> sanitizer=<san>".
std::string BuildInfoString();

/// Compact token for machine-parsed stats lines: "<hash>/<type>/<san>".
std::string BuildInfoToken();

}  // namespace kanon

#endif  // KANON_UTIL_BUILD_INFO_H_
