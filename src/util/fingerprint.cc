#include "util/fingerprint.h"

namespace kanon {

namespace {
constexpr uint64_t kFnvPrime = 0x100000001b3ull;
}  // namespace

uint64_t FingerprintBytes(uint64_t fp, std::string_view data) {
  for (const char c : data) {
    fp ^= static_cast<unsigned char>(c);
    fp *= kFnvPrime;
  }
  return fp;
}

uint64_t FingerprintInt(uint64_t fp, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    fp ^= (value >> (8 * i)) & 0xffu;
    fp *= kFnvPrime;
  }
  return fp;
}

uint64_t FingerprintPiece(uint64_t fp, std::string_view piece) {
  fp = FingerprintInt(fp, piece.size());
  return FingerprintBytes(fp, piece);
}

uint64_t Fingerprint(std::string_view data) {
  return FingerprintBytes(kFingerprintSeed, data);
}

}  // namespace kanon
