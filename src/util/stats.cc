#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace kanon {

void Accumulator::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  KANON_CHECK_GT(count_, 0u);
  return min_;
}

double Accumulator::max() const {
  KANON_CHECK_GT(count_, 0u);
  return max_;
}

std::string Accumulator::ToString() const {
  std::ostringstream os;
  if (count_ == 0) {
    os << "(empty)";
    return os.str();
  }
  os << mean() << " ± " << stddev() << " [" << min() << ", " << max()
     << "] (n=" << count_ << ")";
  return os.str();
}

double Quantile(std::vector<double> values, double q) {
  KANON_CHECK(!values.empty());
  KANON_CHECK_GE(q, 0.0);
  KANON_CHECK_LE(q, 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) {
  return Quantile(std::move(values), 0.5);
}

LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys) {
  KANON_CHECK_EQ(xs.size(), ys.size());
  KANON_CHECK_GE(xs.size(), 2u);
  const double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  KANON_CHECK_NE(denom, 0.0);
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  if (ss_tot <= 0.0) {
    fit.r_squared = 1.0;  // all ys identical: the fit is exact
  } else {
    double ss_res = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

LinearFit FitPowerLaw(const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  KANON_CHECK_EQ(xs.size(), ys.size());
  std::vector<double> lx(xs.size()), ly(ys.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    KANON_CHECK_GT(xs[i], 0.0);
    KANON_CHECK_GT(ys[i], 0.0);
    lx[i] = std::log(xs[i]);
    ly[i] = std::log(ys[i]);
  }
  return FitLinear(lx, ly);
}

}  // namespace kanon
