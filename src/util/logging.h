#ifndef KANON_UTIL_LOGGING_H_
#define KANON_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

/// \file
/// Minimal logging and invariant-checking facility.
///
/// The library does not throw exceptions across its API boundary; internal
/// invariant violations terminate via `KANON_CHECK` with a source location,
/// mirroring the CHECK idiom used by production database codebases.

namespace kanon {

/// Severity of a log record.
enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

/// Returns a short human-readable tag ("DEBUG", "INFO", ...) for a level.
const char* LogLevelName(LogLevel level);

/// Process-wide minimum level that is actually emitted. Defaults to kInfo.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

namespace internal_logging {

/// Accumulates one log record and emits it to stderr on destruction.
/// Fatal records abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the record is below the minimum
/// level; keeps the macro expansion an expression.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

}  // namespace kanon

#define KANON_LOG(level)                                                  \
  (static_cast<int>(::kanon::LogLevel::k##level) <                        \
   static_cast<int>(::kanon::MinLogLevel()))                              \
      ? void(0)                                                           \
      : void(::kanon::internal_logging::LogMessage(                      \
            ::kanon::LogLevel::k##level, __FILE__, __LINE__))

// Streaming form: KANON_LOGS(Info) << "x=" << x;
#define KANON_LOGS(level)                                    \
  ::kanon::internal_logging::LogMessage(                     \
      ::kanon::LogLevel::k##level, __FILE__, __LINE__)

/// Aborts with a message when `condition` is false. Always on (also in
/// release builds): these guard data-integrity invariants. Additional
/// context can be streamed: KANON_CHECK(ok) << "while parsing " << path;
#define KANON_CHECK(condition)                                  \
  if (condition) {                                              \
  } else /* NOLINT */                                           \
    ::kanon::internal_logging::LogMessage(                      \
        ::kanon::LogLevel::kFatal, __FILE__, __LINE__)          \
        << "Check failed: " #condition " "

#define KANON_CHECK_OP(lhs, op, rhs)                            \
  if ((lhs)op(rhs)) {                                           \
  } else /* NOLINT */                                           \
    ::kanon::internal_logging::LogMessage(                      \
        ::kanon::LogLevel::kFatal, __FILE__, __LINE__)          \
        << "Check failed: " #lhs " " #op " " #rhs << " ("       \
        << (lhs) << " vs " << (rhs) << ") "

#define KANON_CHECK_EQ(a, b) KANON_CHECK_OP(a, ==, b)
#define KANON_CHECK_NE(a, b) KANON_CHECK_OP(a, !=, b)
#define KANON_CHECK_LT(a, b) KANON_CHECK_OP(a, <, b)
#define KANON_CHECK_LE(a, b) KANON_CHECK_OP(a, <=, b)
#define KANON_CHECK_GT(a, b) KANON_CHECK_OP(a, >, b)
#define KANON_CHECK_GE(a, b) KANON_CHECK_OP(a, >=, b)

#endif  // KANON_UTIL_LOGGING_H_
