#include "util/run_context.h"

#include <limits>

namespace kanon {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "completed";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kBudget:
      return "budget";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Status StopReasonToStatus(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return Status::Ok();
    case StopReason::kDeadline:
      return Status::DeadlineExceeded("run deadline expired");
    case StopReason::kBudget:
      return Status::ResourceExhausted("run budget exhausted");
    case StopReason::kCancelled:
      return Status::Cancelled("run cancelled");
  }
  return Status::Internal("unknown stop reason");
}

void RunContext::set_deadline_after_millis(double millis) {
  set_deadline(Clock::now() +
               std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::milli>(millis)));
}

double RunContext::remaining_millis() const {
  if (!has_deadline()) return std::numeric_limits<double>::max();
  return std::chrono::duration<double, std::milli>(deadline_ -
                                                   Clock::now())
      .count();
}

void RunContext::Latch(StopReason reason) {
  int expected = static_cast<int>(StopReason::kNone);
  stop_reason_.compare_exchange_strong(expected,
                                       static_cast<int>(reason),
                                       std::memory_order_acq_rel);
}

bool RunContext::ShouldStop() {
  Heartbeat();
  if (stop_reason() != StopReason::kNone) return true;
  if (cancel_requested()) {
    Latch(StopReason::kCancelled);
    return true;
  }
  if (node_budget_ != 0 &&
      nodes_.load(std::memory_order_relaxed) >= node_budget_) {
    Latch(StopReason::kBudget);
    return true;
  }
  if (has_deadline() && Clock::now() >= deadline_) {
    Latch(StopReason::kDeadline);
    return true;
  }
  return false;
}

void RunContext::Heartbeat() const {
  for (const RunContext* c = this; c != nullptr; c = c->parent_) {
    c->heartbeats_.fetch_add(1, std::memory_order_relaxed);
  }
}

const RunContext* RunContext::CheckpointRoot() const {
  for (const RunContext* c = this; c != nullptr; c = c->parent_) {
    if (c->ckpt_armed_.load(std::memory_order_acquire)) return c;
    // An isolated context hides every armed ancestor from its subtree
    // (its own arming, checked above, still counts).
    if (c->ckpt_isolated_) return nullptr;
  }
  return nullptr;
}

void RunContext::ArmCheckpoints(CheckpointSink* sink, uint64_t every_polls,
                                double every_millis) {
  const bool arm = sink != nullptr && (every_polls > 0 || every_millis > 0.0);
  if (!arm) {
    // Disarm first so a concurrent CheckpointDue() never observes a
    // half-configured cadence.
    ckpt_armed_.store(false, std::memory_order_release);
    ckpt_sink_ = nullptr;
    ckpt_every_polls_.store(0, std::memory_order_relaxed);
    ckpt_every_ns_.store(0, std::memory_order_relaxed);
    return;
  }
  ckpt_sink_ = sink;
  ckpt_every_polls_.store(every_polls, std::memory_order_relaxed);
  ckpt_every_ns_.store(
      every_millis > 0.0
          ? static_cast<int64_t>(every_millis * 1e6)
          : 0,
      std::memory_order_relaxed);
  ckpt_polls_.store(0, std::memory_order_relaxed);
  ckpt_last_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count(),
      std::memory_order_relaxed);
  ckpt_armed_.store(true, std::memory_order_release);
}

bool RunContext::CheckpointDue() const {
  const RunContext* root = CheckpointRoot();
  if (root == nullptr) return false;
  const uint64_t every =
      root->ckpt_every_polls_.load(std::memory_order_relaxed);
  if (every > 0) {
    const uint64_t polls =
        root->ckpt_polls_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (polls % every == 0) return true;
  }
  const int64_t every_ns =
      root->ckpt_every_ns_.load(std::memory_order_relaxed);
  if (every_ns > 0) {
    const int64_t now_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count();
    int64_t last = root->ckpt_last_ns_.load(std::memory_order_relaxed);
    if (now_ns - last >= every_ns &&
        root->ckpt_last_ns_.compare_exchange_strong(
            last, now_ns, std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

Status RunContext::EmitCheckpoint(std::string_view solver,
                                  const std::string& payload) const {
  const RunContext* root = CheckpointRoot();
  if (root == nullptr || root->ckpt_sink_ == nullptr) {
    return Status::Internal("no checkpoint sink armed");
  }
  const Status status = root->ckpt_sink_->Persist(solver, payload);
  if (status.ok()) {
    root->ckpt_emitted_.fetch_add(1, std::memory_order_relaxed);
    // Emitting counts as liveness for the watchdog even if the solver
    // never reaches another ShouldStop() between snapshots.
    Heartbeat();
  }
  return status;
}

void RunContext::SetResume(std::string solver, std::string payload) {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  resume_[std::move(solver)] = std::move(payload);
}

std::optional<std::string> RunContext::resume_payload(
    std::string_view solver) const {
  const std::string key(solver);
  for (const RunContext* c = this; c != nullptr; c = c->parent_) {
    {
      std::lock_guard<std::mutex> lock(c->scratch_mu_);
      const auto it = c->resume_.find(key);
      if (it != c->resume_.end()) return it->second;
    }
    // Same barrier as CheckpointRoot(): an isolated context's own slot
    // is visible, its ancestors' slots are not.
    if (c->ckpt_isolated_) return std::nullopt;
  }
  return std::nullopt;
}

void RunContext::PutScratch(const void* key, std::shared_ptr<void> value) {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_[key] = std::move(value);
}

std::shared_ptr<void> RunContext::GetScratch(const void* key) const {
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    const auto it = scratch_.find(key);
    if (it != scratch_.end()) return it->second;
  }
  return parent_ != nullptr ? parent_->GetScratch(key) : nullptr;
}

bool RunContext::TryChargeMemory(size_t bytes) {
  const size_t now =
      memory_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (memory_limit_ != 0 && now > memory_limit_) {
    // Rejected charges are rolled back and do not count toward the
    // high-water mark — nothing was ever allocated.
    memory_.fetch_sub(bytes, std::memory_order_relaxed);
    Latch(StopReason::kBudget);
    return false;
  }
  // Track the high-water mark.
  size_t peak = peak_memory_.load(std::memory_order_relaxed);
  while (now > peak && !peak_memory_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

}  // namespace kanon
