#include "util/run_context.h"

#include <limits>

namespace kanon {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "completed";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kBudget:
      return "budget";
    case StopReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

Status StopReasonToStatus(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return Status::Ok();
    case StopReason::kDeadline:
      return Status::DeadlineExceeded("run deadline expired");
    case StopReason::kBudget:
      return Status::ResourceExhausted("run budget exhausted");
    case StopReason::kCancelled:
      return Status::Cancelled("run cancelled");
  }
  return Status::Internal("unknown stop reason");
}

void RunContext::set_deadline_after_millis(double millis) {
  set_deadline(Clock::now() +
               std::chrono::duration_cast<Clock::duration>(
                   std::chrono::duration<double, std::milli>(millis)));
}

double RunContext::remaining_millis() const {
  if (!has_deadline()) return std::numeric_limits<double>::max();
  return std::chrono::duration<double, std::milli>(deadline_ -
                                                   Clock::now())
      .count();
}

void RunContext::Latch(StopReason reason) {
  int expected = static_cast<int>(StopReason::kNone);
  stop_reason_.compare_exchange_strong(expected,
                                       static_cast<int>(reason),
                                       std::memory_order_acq_rel);
}

bool RunContext::ShouldStop() {
  if (stop_reason() != StopReason::kNone) return true;
  if (cancel_requested()) {
    Latch(StopReason::kCancelled);
    return true;
  }
  if (node_budget_ != 0 &&
      nodes_.load(std::memory_order_relaxed) >= node_budget_) {
    Latch(StopReason::kBudget);
    return true;
  }
  if (has_deadline() && Clock::now() >= deadline_) {
    Latch(StopReason::kDeadline);
    return true;
  }
  return false;
}

void RunContext::PutScratch(const void* key, std::shared_ptr<void> value) {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  scratch_[key] = std::move(value);
}

std::shared_ptr<void> RunContext::GetScratch(const void* key) const {
  {
    std::lock_guard<std::mutex> lock(scratch_mu_);
    const auto it = scratch_.find(key);
    if (it != scratch_.end()) return it->second;
  }
  return parent_ != nullptr ? parent_->GetScratch(key) : nullptr;
}

bool RunContext::TryChargeMemory(size_t bytes) {
  const size_t now =
      memory_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  if (memory_limit_ != 0 && now > memory_limit_) {
    // Rejected charges are rolled back and do not count toward the
    // high-water mark — nothing was ever allocated.
    memory_.fetch_sub(bytes, std::memory_order_relaxed);
    Latch(StopReason::kBudget);
    return false;
  }
  // Track the high-water mark.
  size_t peak = peak_memory_.load(std::memory_order_relaxed);
  while (now > peak && !peak_memory_.compare_exchange_weak(
                           peak, now, std::memory_order_relaxed)) {
  }
  return true;
}

}  // namespace kanon
