#include "util/build_info.h"

namespace kanon {
namespace {

#ifndef KANON_GIT_HASH
#define KANON_GIT_HASH "unknown"
#endif
#ifndef KANON_BUILD_TYPE
#define KANON_BUILD_TYPE "unspecified"
#endif
#ifndef KANON_SANITIZE_NAME
#define KANON_SANITIZE_NAME "none"
#endif

std::string NormalizeSanitizer(std::string name) {
  // CMake hands through the raw -DKANON_SANITIZE value; the historical
  // "off" spelling (and an empty value) both mean no sanitizer.
  if (name.empty() || name == "OFF" || name == "off" || name == "0") {
    return "none";
  }
  for (char& c : name) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return name;
}

}  // namespace

const BuildInfo& GetBuildInfo() {
  static const BuildInfo* const info = new BuildInfo{
      KANON_GIT_HASH,
      KANON_BUILD_TYPE,
      NormalizeSanitizer(KANON_SANITIZE_NAME),
  };
  return *info;
}

std::string BuildInfoString() {
  const BuildInfo& info = GetBuildInfo();
  return "git=" + info.git_hash + " build=" + info.build_type +
         " sanitizer=" + info.sanitizer;
}

std::string BuildInfoToken() {
  const BuildInfo& info = GetBuildInfo();
  return info.git_hash + "/" + info.build_type + "/" + info.sanitizer;
}

}  // namespace kanon
