#ifndef KANON_UTIL_STATS_H_
#define KANON_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

/// \file
/// Descriptive statistics and least-squares fits used by the benchmark
/// harness to summarize measured costs/runtimes and to estimate scaling
/// exponents (e.g. the O(m n^2 + n^3) claim of Theorem 4.2).

namespace kanon {

/// Streaming accumulator: count / mean / variance (Welford) / min / max.
class Accumulator {
 public:
  Accumulator() = default;

  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

  /// "mean ± stddev [min, max] (n)" rendering for report tables.
  std::string ToString() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Returns the q-th quantile (0 <= q <= 1) of `values` using linear
/// interpolation between order statistics. `values` need not be sorted.
/// Dies on an empty input.
double Quantile(std::vector<double> values, double q);

/// Median shorthand.
double Median(std::vector<double> values);

/// Simple linear regression y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1].
  double r_squared = 0.0;
};

/// Least-squares fit. Requires xs.size() == ys.size() >= 2 and at least two
/// distinct x values.
LinearFit FitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys);

/// Fits y = c * x^p via regression in log-log space and returns the
/// exponent estimate p with its r^2. All inputs must be positive.
LinearFit FitPowerLaw(const std::vector<double>& xs,
                      const std::vector<double>& ys);

}  // namespace kanon

#endif  // KANON_UTIL_STATS_H_
