#ifndef KANON_UTIL_TIMER_H_
#define KANON_UTIL_TIMER_H_

#include <chrono>

/// \file
/// Wall-clock timing for the experiment harnesses.

namespace kanon {

/// Monotonic stopwatch. Starts running on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Resets the epoch to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

  /// Microseconds elapsed.
  double Micros() const { return Seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace kanon

#endif  // KANON_UTIL_TIMER_H_
