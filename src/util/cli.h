#ifndef KANON_UTIL_CLI_H_
#define KANON_UTIL_CLI_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

/// \file
/// A tiny `--flag=value` command-line parser used by the example binaries
/// and the experiment harnesses. Not a general-purpose library: flags are
/// string-keyed and typed accessors fall back to caller defaults.

namespace kanon {

/// Parsed command line: `--name=value` and `--name value` pairs plus bare
/// positional arguments. `--flag` with no value is stored as "true".
class CommandLine {
 public:
  /// Parses argv (excluding argv[0]). Later duplicates win.
  static CommandLine Parse(int argc, const char* const* argv);

  bool HasFlag(const std::string& name) const;

  /// Flags present on the command line but absent from `known`, in
  /// sorted order. Binaries with a fixed flag set use this to reject a
  /// typo (`--workres=4`) with a usage message and a non-zero exit
  /// instead of silently running with the default.
  std::vector<std::string> UnknownFlags(
      const std::vector<std::string>& known) const;

  /// Typed accessors; return `fallback` when absent or unparsable.
  std::string GetString(const std::string& name,
                        const std::string& fallback) const;
  long long GetInt(const std::string& name, long long fallback) const;

  /// Strict variant of GetInt for values the program cannot guess at:
  /// returns kInvalidArgument when the flag is present but unparsable, or
  /// when the value (parsed or fallback) lies outside
  /// [min_value, max_value]. Lets a CLI reject bad input with a message
  /// and a non-zero exit instead of silently using the fallback.
  StatusOr<long long> GetValidatedInt(const std::string& name,
                                      long long fallback,
                                      long long min_value,
                                      long long max_value) const;
  double GetDouble(const std::string& name, double fallback) const;
  bool GetBool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace kanon

#endif  // KANON_UTIL_CLI_H_
