#ifndef KANON_UTIL_REPORT_H_
#define KANON_UTIL_REPORT_H_

#include <string>
#include <vector>

/// \file
/// Shared reporting for the experiment binaries: aligned console tables
/// (the "rows the paper reports"), experiment banners, and optional CSV
/// dumps for downstream plotting.

namespace kanon::bench {

/// An aligned console table with a fixed header.
class ReportTable {
 public:
  explicit ReportTable(std::vector<std::string> header);

  /// Appends one row; must match the header arity.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with 3 digits, keeps strings.
  static std::string Num(double value, int digits = 3);
  static std::string Int(long long value);

  /// Renders with column alignment.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

  /// Writes the table as CSV to `path`; returns false on I/O error.
  bool WriteCsv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints the experiment banner: id, claim, and setup description.
void PrintBanner(const std::string& experiment_id,
                 const std::string& claim,
                 const std::string& setup);

/// Prints a one-line verdict ("[PASS] ..." / "[INFO] ...") used at the
/// end of each experiment to state whether the paper's claim reproduced.
void PrintVerdict(bool ok, const std::string& message);

}  // namespace kanon::bench

#endif  // KANON_UTIL_REPORT_H_
