#ifndef KANON_UTIL_RANDOM_H_
#define KANON_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

/// \file
/// Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (data generators, randomized
/// baselines, property tests) draw from `Rng`, a PCG32 generator seeded via
/// SplitMix64. Determinism for a fixed seed is part of the public contract:
/// experiments in `bench/` are reproducible run to run.

namespace kanon {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
uint64_t SplitMix64(uint64_t* state);

/// PCG32 (O'Neill) pseudo-random generator. Small, fast, statistically
/// solid; 2^64 period, 2^63 streams.
class Rng {
 public:
  /// Seeds the generator. Two Rngs with equal (seed, stream) produce
  /// identical output sequences on every platform.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL, uint64_t stream = 1);

  /// Uniform 32-bit value.
  uint32_t Next();

  /// Uniform value in [0, bound) without modulo bias. bound must be > 0.
  uint32_t Uniform(uint32_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int UniformInt(int lo, int hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Zipf-distributed rank in [0, n) with exponent s >= 0 (s = 0 reduces to
  /// uniform). Linear-time inverse-CDF draw; suitable for the modest
  /// alphabet sizes used by the data generators.
  uint32_t Zipf(uint32_t n, double s);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    if (items->empty()) return;
    for (size_t i = items->size() - 1; i > 0; --i) {
      const size_t j = Uniform(static_cast<uint32_t>(i + 1));
      std::swap((*items)[i], (*items)[j]);
    }
  }

  /// Uniform sample of `count` distinct values from [0, n), in random
  /// order. Requires count <= n.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t count);

  /// Raw generator state, exposed for checkpointing: restoring the pair
  /// with Restore() resumes the exact output sequence from where it was
  /// captured (PCG32 state is just these two words).
  uint64_t state() const { return state_; }
  uint64_t stream_inc() const { return inc_; }
  void Restore(uint64_t state, uint64_t stream_inc) {
    state_ = state;
    inc_ = stream_inc;
  }

 private:
  uint64_t state_;
  uint64_t inc_;
};

}  // namespace kanon

#endif  // KANON_UTIL_RANDOM_H_
