#include "util/csv.h"

#include <fstream>
#include <sstream>

namespace kanon {

bool ParseCsv(std::string_view text, std::vector<CsvRow>* rows,
              std::string* error) {
  rows->clear();
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  bool any_data_in_row = false;

  auto end_field = [&]() {
    row.push_back(std::move(field));
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&]() {
    end_field();
    rows->push_back(std::move(row));
    row.clear();
    any_data_in_row = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty() || field_was_quoted) {
          if (error) *error = "quote inside unquoted field";
          rows->clear();
          return false;
        }
        in_quotes = true;
        field_was_quoted = true;
        any_data_in_row = true;
        break;
      case ',':
        end_field();
        any_data_in_row = true;
        break;
      case '\r':
        // Accept CRLF; a bare CR is treated as a row terminator too.
        if (i + 1 < text.size() && text[i + 1] == '\n') ++i;
        end_row();
        break;
      case '\n':
        end_row();
        break;
      default:
        if (field_was_quoted) {
          if (error) *error = "data after closing quote";
          rows->clear();
          return false;
        }
        field.push_back(c);
        any_data_in_row = true;
        break;
    }
  }
  if (in_quotes) {
    if (error) *error = "unterminated quoted field";
    rows->clear();
    return false;
  }
  // Flush a final record not terminated by a newline.
  if (any_data_in_row || !row.empty() || !field.empty()) {
    end_row();
  }
  return true;
}

std::string EscapeCsvField(std::string_view field) {
  bool needs_quotes = false;
  for (const char c : field) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string WriteCsv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const CsvRow& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      out.append(EscapeCsvField(row[i]));
    }
    out.push_back('\n');
  }
  return out;
}

bool ReadFileToString(const std::string& path, std::string* contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *contents = buf.str();
  return true;
}

bool WriteStringToFile(const std::string& path, std::string_view contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  return static_cast<bool>(out);
}

}  // namespace kanon
