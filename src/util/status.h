#ifndef KANON_UTIL_STATUS_H_
#define KANON_UTIL_STATUS_H_

#include <iosfwd>
#include <optional>
#include <string>
#include <utility>

#include "util/logging.h"

/// \file
/// Error-code plumbing for the library's *input* boundary.
///
/// The library distinguishes two failure classes. Internal invariant
/// violations (bugs) still terminate via `KANON_CHECK` — those guard
/// data-integrity properties no caller can recover from. Bad *input*
/// (malformed CSV, an out-of-range k, a missing file) must instead reach
/// the caller as a `Status` so a CLI can print a message and exit
/// non-zero, and a server can reject the one request instead of dying.

namespace kanon {

/// Machine-readable failure class, loosely following the absl/grpc
/// canonical codes the team already knows.
enum class StatusCode {
  kOk = 0,
  /// Caller passed an argument outside the documented domain (k < 1,
  /// k > n, batch_size < k, ...).
  kInvalidArgument,
  /// A named resource (file path, algorithm name) does not exist.
  kNotFound,
  /// Input data failed to parse (malformed CSV, ragged rows).
  kParseError,
  /// A deadline expired before the operation finished.
  kDeadlineExceeded,
  /// A node/iteration/memory budget was exhausted.
  kResourceExhausted,
  /// The operation was cooperatively cancelled.
  kCancelled,
  /// Unexpected internal failure surfaced as a value (rare; prefer
  /// KANON_CHECK for true invariants).
  kInternal,
  /// Persisted state is unrecoverable: a torn write, a failed checksum.
  /// Unlike kParseError (well-formed bytes that mean nothing) this says
  /// the bytes themselves did not survive — callers should discard the
  /// artifact and fall back, never retry the read.
  kDataLoss,
  /// A peer or transport is gone (connection refused, closed, reset).
  /// Distinct from kDataLoss: nothing was corrupted, the other side
  /// simply is not there — callers may reconnect and retry.
  kUnavailable,
};

/// Short upper-case tag ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

/// A code plus a human-readable message. Cheap to copy for the sizes it
/// carries; the OK status has an empty message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status ParseError(std::string m) {
    return Status(StatusCode::kParseError, std::move(m));
  }
  static Status DeadlineExceeded(std::string m) {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DataLoss(std::string m) {
    return Status(StatusCode::kDataLoss, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "CODE: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value or a non-OK Status. Minimal by design: accessors check,
/// there is no monadic API.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design
      : status_(std::move(status)) {
    KANON_CHECK(!status_.ok()) << "StatusOr constructed from OK status";
  }
  StatusOr(T value)  // NOLINT: implicit by design
      : status_(Status::Ok()), value_(std::move(value)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    KANON_CHECK(value_.has_value()) << status_.ToString();
    return *value_;
  }
  T& value() & {
    KANON_CHECK(value_.has_value()) << status_.ToString();
    return *value_;
  }
  T&& value() && {
    KANON_CHECK(value_.has_value()) << status_.ToString();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace kanon

#endif  // KANON_UTIL_STATUS_H_
