#include "util/random.h"

#include <cmath>

#include "util/logging.h"

namespace kanon {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed, uint64_t stream) {
  uint64_t mix = seed;
  state_ = SplitMix64(&mix);
  inc_ = (stream << 1u) | 1u;
  // Advance once so that the first output depends on both seed and stream.
  Next();
}

uint32_t Rng::Next() {
  const uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const uint32_t xorshifted =
      static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  const uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((~rot + 1u) & 31));
}

uint32_t Rng::Uniform(uint32_t bound) {
  KANON_CHECK_GT(bound, 0u);
  // Lemire-style rejection to remove modulo bias.
  const uint32_t threshold = (~bound + 1u) % bound;
  for (;;) {
    const uint32_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int Rng::UniformInt(int lo, int hi) {
  KANON_CHECK_LE(lo, hi);
  const uint32_t span = static_cast<uint32_t>(hi - lo) + 1u;
  if (span == 0) return static_cast<int>(Next());  // full 32-bit range
  return lo + static_cast<int>(Uniform(span));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  const uint64_t hi = Next();
  const uint64_t lo = Next();
  const uint64_t bits = ((hi << 21) ^ lo) & ((1ULL << 53) - 1);
  return static_cast<double>(bits) / static_cast<double>(1ULL << 53);
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint32_t Rng::Zipf(uint32_t n, double s) {
  KANON_CHECK_GT(n, 0u);
  if (s <= 0.0) return Uniform(n);
  double norm = 0.0;
  for (uint32_t i = 1; i <= n; ++i) norm += 1.0 / std::pow(i, s);
  double u = UniformDouble() * norm;
  for (uint32_t i = 1; i <= n; ++i) {
    u -= 1.0 / std::pow(i, s);
    if (u <= 0.0) return i - 1;
  }
  return n - 1;
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n,
                                                    uint32_t count) {
  KANON_CHECK_LE(count, n);
  // Partial Fisher-Yates over an index vector; O(n) memory, which is fine
  // for the library's instance sizes.
  std::vector<uint32_t> pool(n);
  for (uint32_t i = 0; i < n; ++i) pool[i] = i;
  for (uint32_t i = 0; i < count; ++i) {
    const uint32_t j = i + Uniform(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(count);
  return pool;
}

}  // namespace kanon
