#ifndef KANON_UTIL_RUN_CONTEXT_H_
#define KANON_UTIL_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/status.h"

/// \file
/// Cooperative execution control for the anonymizers.
///
/// The paper's central result is that optimal k-anonymity is NP-hard
/// (Theorems 3.1/3.2), so the exact solvers and the exponential set-cover
/// family can blow up without warning — precisely on the adversarial
/// instances the hardness reductions generate. A production deployment
/// must therefore *bound* every run. `RunContext` carries those bounds:
///
///   * a wall-clock **deadline**,
///   * a cooperative **cancellation token** (thread-safe; another thread
///     may call RequestCancel() at any time),
///   * a **node/iteration budget** charged by the solvers,
///   * a transient **memory estimate** with an optional ceiling.
///
/// Solvers poll `ShouldStop()` at cooperative checkpoints in their hot
/// loops (every few hundred iterations). The first limit to trip is
/// *latched* as the context's `stop_reason()` and every later
/// `ShouldStop()` returns true immediately, so a stop propagates through
/// nested helpers without re-deriving the cause. A default-constructed
/// context has no limits and its `ShouldStop()` is a couple of relaxed
/// atomic loads — cheap enough for inner loops.
///
/// **Strict vs lenient.** Solvers with structural caps (exact_dp's
/// max_rows, greedy_cover's max_family_size, ...) abort via KANON_CHECK
/// when the cap is exceeded on a strict context (the historical
/// behavior: exceeding the cap is a caller bug). On a context marked
/// `set_lenient(true)` they instead *decline*: they return immediately
/// with `StopReason::kBudget` and an empty partition, which the
/// fallback chain (algo/fallback.h) turns into graceful degradation.

namespace kanon {

/// Why a run stopped early; kNone means it ran to completion.
enum class StopReason {
  kNone = 0,
  kDeadline,
  kBudget,
  kCancelled,
};

/// Presentation name: "completed", "deadline", "budget", "cancelled".
const char* StopReasonName(StopReason reason);

/// Maps a stop reason onto the Status layer (kNone -> OK).
Status StopReasonToStatus(StopReason reason);

/// Destination for solver checkpoints. The util layer only defines the
/// interface; the concrete sink (src/ckpt's durable store, a test's
/// in-memory slot) lives above. Persist() is called from the solver's
/// own thread at a cadence poll; implementations decide durability and
/// must be safe to call repeatedly with the latest state.
class CheckpointSink {
 public:
  virtual ~CheckpointSink() = default;
  /// Persists `payload` as the newest snapshot of `solver`'s state.
  /// Returning non-OK is not fatal to the run — the solver keeps going
  /// and simply has an older (or no) snapshot on record.
  virtual Status Persist(std::string_view solver,
                         const std::string& payload) = 0;
};

/// Execution-control state for one anonymization run. Not copyable;
/// share by pointer. All methods are thread-safe, so one context can be
/// observed from every ParallelFor worker at once.
class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// No limits, strict.
  RunContext() = default;

  /// Child context: cancellation of `parent` (or any of its ancestors)
  /// is observed by this context too. Limits are NOT inherited — the
  /// creator sets the child's own deadline/budget (the fallback chain
  /// gives each stage a slice of the remaining time).
  explicit RunContext(const RunContext* parent) : parent_(parent) {}

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // --- Limit configuration (set before the run starts) ---------------

  /// Absolute deadline.
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Deadline `millis` from now. Negative or zero means "already
  /// expired" (useful in tests).
  void set_deadline_after_millis(double millis);

  /// Node/iteration budget; 0 (default) = unlimited.
  void set_node_budget(uint64_t max_nodes) { node_budget_ = max_nodes; }
  uint64_t node_budget() const { return node_budget_; }

  /// Ceiling for the solver-estimated transient memory; 0 = unlimited.
  void set_memory_limit_bytes(size_t bytes) { memory_limit_ = bytes; }
  size_t memory_limit_bytes() const { return memory_limit_; }

  /// Lenient contexts make structural-cap violations decline instead of
  /// abort; see the file comment.
  void set_lenient(bool lenient) { lenient_ = lenient; }
  bool lenient() const { return lenient_; }

  /// Blocks the checkpoint/resume ancestor walk at this context: solvers
  /// running under it (or any descendant) observe no armed sink above —
  /// CheckpointDue() stays false, EmitCheckpoint() fails — and no resume
  /// payloads installed above. Cancellation, preemption, heartbeats and
  /// scratch still propagate. Parallel fan-out wrappers (the sharded
  /// pipeline) set this on their per-shard child contexts so the wrapper
  /// is the job's single snapshot writer and an inner solver can never
  /// restore another shard's (same-sized, size-validated) partial state
  /// through the job-root resume slot. Set before the child runs, like
  /// the limits above.
  void set_checkpoint_isolated(bool isolated) { ckpt_isolated_ = isolated; }
  bool checkpoint_isolated() const { return ckpt_isolated_; }

  bool has_deadline() const {
    return has_deadline_.load(std::memory_order_acquire);
  }

  /// Milliseconds until the deadline (negative once past it); a very
  /// large value when no deadline is set.
  double remaining_millis() const;

  // --- Cancellation ---------------------------------------------------

  /// Requests cooperative cancellation; safe from any thread.
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  /// True if this context or any ancestor was cancelled.
  bool cancel_requested() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    return parent_ != nullptr && parent_->cancel_requested();
  }

  /// Watchdog preemption: cancellation plus a marker distinguishing "the
  /// service gave up on this worker" from a caller's own cancel, so the
  /// response can carry the watchdog-specific typed error.
  void RequestPreempt() {
    preempted_.store(true, std::memory_order_release);
    RequestCancel();
  }

  /// True if this context or any ancestor was preempted by a watchdog.
  bool preempt_requested() const {
    if (preempted_.load(std::memory_order_acquire)) return true;
    return parent_ != nullptr && parent_->preempt_requested();
  }

  // --- Cooperative checkpoints ---------------------------------------

  /// The checkpoint solvers poll in their hot loops. Latches and
  /// returns true once any limit trips; returns false on the fast path.
  bool ShouldStop();

  /// Adds `n` to the consumed node/iteration count. Does not itself
  /// stop the run — the next ShouldStop() observes the overrun.
  void ChargeNodes(uint64_t n = 1) {
    nodes_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t nodes_charged() const {
    return nodes_.load(std::memory_order_relaxed);
  }

  /// Accounts `bytes` of planned transient memory. Returns false (and
  /// latches kBudget) if the ceiling would be exceeded — callers must
  /// then not allocate. Balance with ReleaseMemory().
  bool TryChargeMemory(size_t bytes);
  void ReleaseMemory(size_t bytes) {
    memory_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// High-water mark of the charged estimate over the context lifetime.
  size_t peak_memory_bytes() const {
    return peak_memory_.load(std::memory_order_relaxed);
  }

  /// Bytes currently charged (TryChargeMemory minus ReleaseMemory).
  size_t memory_charged_bytes() const {
    return memory_.load(std::memory_order_relaxed);
  }

  // --- Checkpoint cadence and resume ----------------------------------
  //
  // Same discipline as KANON_FAULT_POINT: disarmed (the default) the
  // whole feature costs a few relaxed loads per cadence poll, so the
  // anytime solvers can poll unconditionally. The worker pool arms the
  // *job root* context; solvers running under fallback-chain child
  // contexts reach it through the parent walk, exactly like
  // cancellation. Heartbeats ride along: every ShouldStop() poll bumps a
  // counter on the whole ancestor chain, which is what the service
  // watchdog reads to tell a slow-but-alive worker from a stuck one.

  /// Arms checkpointing on THIS context (the job root). Solvers reach it
  /// from descendant contexts. A snapshot becomes due every
  /// `every_polls` CheckpointDue() calls (0 = never by count), or once
  /// `every_millis` has elapsed since the last emission (0 = never by
  /// time). `sink` must outlive the armed window.
  void ArmCheckpoints(CheckpointSink* sink, uint64_t every_polls,
                      double every_millis = 0.0);

  /// Disarms; safe while no solver is concurrently polling.
  void DisarmCheckpoints() { ArmCheckpoints(nullptr, 0, 0.0); }

  /// Cadence poll, called by solvers at their natural save boundaries
  /// (a pass, a search-node stride, an outer-loop head). Returns true
  /// when a snapshot should be emitted now. False-and-cheap when no
  /// ancestor is armed.
  bool CheckpointDue() const;

  /// Hands `payload` (the solver's encoded state) to the armed sink.
  /// Returns the sink's status; kFailedPrecondition-style Internal when
  /// nothing is armed. Solvers may ignore the result — a failed
  /// persist only means the last good snapshot stays current.
  Status EmitCheckpoint(std::string_view solver,
                        const std::string& payload) const;

  /// Snapshots successfully emitted through this (root) context.
  uint64_t checkpoints_emitted() const {
    return ckpt_emitted_.load(std::memory_order_relaxed);
  }

  /// Installs solver state to resume from: the named solver, on its next
  /// run under this context (or a descendant), restores `payload`
  /// instead of starting cold. One slot per solver name; the service
  /// layer installs exactly the snapshot it loaded for the job.
  void SetResume(std::string solver, std::string payload);

  /// Resume payload for `solver`, looked up on this context then its
  /// ancestors; nullopt when none was installed. The walk stops at a
  /// checkpoint-isolated context (own slot still visible, ancestors
  /// not). Non-consuming (an in-place retry re-resumes
  /// deterministically).
  std::optional<std::string> resume_payload(std::string_view solver) const;

  /// Liveness counter: bumped on this context and every ancestor by each
  /// ShouldStop() poll and each emitted checkpoint.
  uint64_t heartbeats() const {
    return heartbeats_.load(std::memory_order_relaxed);
  }

  // --- Per-run scratch cache ------------------------------------------
  //
  // Expensive derived structures (the DistanceOracle of core/, built
  // from one table) are shared across every consumer that receives the
  // same context instead of being rebuilt per solver. The context only
  // sees opaque shared_ptrs; the owning layer defines the key (an
  // object address) and validates what it gets back. Entries die with
  // the context; a value whose destructor calls ReleaseMemory() on this
  // context is safe because the scratch map is destroyed first (it is
  // the last declared member).

  /// Stores `value` under `key` on this context, replacing any previous
  /// entry. Thread-safe.
  void PutScratch(const void* key, std::shared_ptr<void> value);

  /// Looks `key` up on this context, then on its ancestors (so work
  /// cached on a parent is visible to child stage contexts). Returns
  /// nullptr when absent. Thread-safe.
  std::shared_ptr<void> GetScratch(const void* key) const;

  // --- Outcome --------------------------------------------------------

  /// First limit that tripped; kNone while running normally.
  StopReason stop_reason() const {
    return static_cast<StopReason>(
        stop_reason_.load(std::memory_order_acquire));
  }

  /// Latches `reason` directly (used by solvers that decline a run
  /// before starting it, e.g. a structural cap on a lenient context).
  void MarkStopped(StopReason reason) { Latch(reason); }

 private:
  /// First writer wins; later latches keep the original reason.
  void Latch(StopReason reason);

  const RunContext* parent_ = nullptr;

  std::atomic<bool> has_deadline_{false};
  Clock::time_point deadline_{};

  uint64_t node_budget_ = 0;
  size_t memory_limit_ = 0;
  bool lenient_ = false;
  bool ckpt_isolated_ = false;

  std::atomic<bool> cancelled_{false};
  std::atomic<bool> preempted_{false};
  std::atomic<uint64_t> nodes_{0};
  std::atomic<size_t> memory_{0};
  std::atomic<size_t> peak_memory_{0};
  std::atomic<int> stop_reason_{static_cast<int>(StopReason::kNone)};

  /// Nearest ancestor (possibly this) with checkpoints armed; nullptr
  /// when the whole chain is disarmed.
  const RunContext* CheckpointRoot() const;

  /// Bumps the liveness counter on this context and every ancestor.
  void Heartbeat() const;

  // Checkpoint cadence state. All mutable: cadence polling happens on
  // logically-const paths (CheckpointDue/EmitCheckpoint are const so
  // solvers holding a const ancestor pointer can reach them).
  CheckpointSink* ckpt_sink_ = nullptr;
  std::atomic<bool> ckpt_armed_{false};
  std::atomic<uint64_t> ckpt_every_polls_{0};
  std::atomic<int64_t> ckpt_every_ns_{0};
  mutable std::atomic<uint64_t> ckpt_polls_{0};
  mutable std::atomic<int64_t> ckpt_last_ns_{0};
  mutable std::atomic<uint64_t> ckpt_emitted_{0};
  mutable std::atomic<uint64_t> heartbeats_{0};

  // Resume payloads by solver name; written once by the service layer
  // before the run, read by solvers at run start. Guarded by scratch_mu_.
  std::unordered_map<std::string, std::string> resume_;

  // Declared last so it is destroyed first: scratch values may release
  // charged memory on this context from their destructors.
  mutable std::mutex scratch_mu_;
  std::unordered_map<const void*, std::shared_ptr<void>> scratch_;
};

/// RAII slice of a parent context's memory budget, for wrappers that
/// fan one run out into concurrent child runs (the sharded pipeline).
/// Construction charges `bytes` against the parent — so sibling slices
/// can never collectively exceed the parent's ceiling — and caps the
/// child at exactly that slice; destruction returns the slice to the
/// parent. When the parent cannot cover the slice, `ok()` is false, the
/// parent latches kBudget (TryChargeMemory semantics) and the child is
/// left untouched — the caller declines typed instead of running.
/// A zero `bytes` or a parent without a ceiling is a no-op slice: the
/// child inherits the parent's (un)limitedness unchanged.
class ScopedMemoryBudget {
 public:
  ScopedMemoryBudget(RunContext* parent, RunContext* child, size_t bytes)
      : parent_(parent) {
    if (parent == nullptr || child == nullptr || bytes == 0 ||
        parent->memory_limit_bytes() == 0) {
      ok_ = true;
      return;
    }
    ok_ = parent->TryChargeMemory(bytes);
    if (ok_) {
      charged_ = bytes;
      child->set_memory_limit_bytes(bytes);
    }
  }

  ~ScopedMemoryBudget() {
    if (charged_ > 0) parent_->ReleaseMemory(charged_);
  }

  ScopedMemoryBudget(const ScopedMemoryBudget&) = delete;
  ScopedMemoryBudget& operator=(const ScopedMemoryBudget&) = delete;

  /// False when the parent could not cover the slice (kBudget latched on
  /// the parent); the caller must not run the child.
  bool ok() const { return ok_; }

  /// The slice actually charged against the parent (0 for no-op slices).
  size_t charged_bytes() const { return charged_; }

 private:
  RunContext* parent_;
  size_t charged_ = 0;
  bool ok_ = false;
};

}  // namespace kanon

#endif  // KANON_UTIL_RUN_CONTEXT_H_
