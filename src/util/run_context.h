#ifndef KANON_UTIL_RUN_CONTEXT_H_
#define KANON_UTIL_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "util/status.h"

/// \file
/// Cooperative execution control for the anonymizers.
///
/// The paper's central result is that optimal k-anonymity is NP-hard
/// (Theorems 3.1/3.2), so the exact solvers and the exponential set-cover
/// family can blow up without warning — precisely on the adversarial
/// instances the hardness reductions generate. A production deployment
/// must therefore *bound* every run. `RunContext` carries those bounds:
///
///   * a wall-clock **deadline**,
///   * a cooperative **cancellation token** (thread-safe; another thread
///     may call RequestCancel() at any time),
///   * a **node/iteration budget** charged by the solvers,
///   * a transient **memory estimate** with an optional ceiling.
///
/// Solvers poll `ShouldStop()` at cooperative checkpoints in their hot
/// loops (every few hundred iterations). The first limit to trip is
/// *latched* as the context's `stop_reason()` and every later
/// `ShouldStop()` returns true immediately, so a stop propagates through
/// nested helpers without re-deriving the cause. A default-constructed
/// context has no limits and its `ShouldStop()` is a couple of relaxed
/// atomic loads — cheap enough for inner loops.
///
/// **Strict vs lenient.** Solvers with structural caps (exact_dp's
/// max_rows, greedy_cover's max_family_size, ...) abort via KANON_CHECK
/// when the cap is exceeded on a strict context (the historical
/// behavior: exceeding the cap is a caller bug). On a context marked
/// `set_lenient(true)` they instead *decline*: they return immediately
/// with `StopReason::kBudget` and an empty partition, which the
/// fallback chain (algo/fallback.h) turns into graceful degradation.

namespace kanon {

/// Why a run stopped early; kNone means it ran to completion.
enum class StopReason {
  kNone = 0,
  kDeadline,
  kBudget,
  kCancelled,
};

/// Presentation name: "completed", "deadline", "budget", "cancelled".
const char* StopReasonName(StopReason reason);

/// Maps a stop reason onto the Status layer (kNone -> OK).
Status StopReasonToStatus(StopReason reason);

/// Execution-control state for one anonymization run. Not copyable;
/// share by pointer. All methods are thread-safe, so one context can be
/// observed from every ParallelFor worker at once.
class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  /// No limits, strict.
  RunContext() = default;

  /// Child context: cancellation of `parent` (or any of its ancestors)
  /// is observed by this context too. Limits are NOT inherited — the
  /// creator sets the child's own deadline/budget (the fallback chain
  /// gives each stage a slice of the remaining time).
  explicit RunContext(const RunContext* parent) : parent_(parent) {}

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  // --- Limit configuration (set before the run starts) ---------------

  /// Absolute deadline.
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_.store(true, std::memory_order_release);
  }

  /// Deadline `millis` from now. Negative or zero means "already
  /// expired" (useful in tests).
  void set_deadline_after_millis(double millis);

  /// Node/iteration budget; 0 (default) = unlimited.
  void set_node_budget(uint64_t max_nodes) { node_budget_ = max_nodes; }
  uint64_t node_budget() const { return node_budget_; }

  /// Ceiling for the solver-estimated transient memory; 0 = unlimited.
  void set_memory_limit_bytes(size_t bytes) { memory_limit_ = bytes; }
  size_t memory_limit_bytes() const { return memory_limit_; }

  /// Lenient contexts make structural-cap violations decline instead of
  /// abort; see the file comment.
  void set_lenient(bool lenient) { lenient_ = lenient; }
  bool lenient() const { return lenient_; }

  bool has_deadline() const {
    return has_deadline_.load(std::memory_order_acquire);
  }

  /// Milliseconds until the deadline (negative once past it); a very
  /// large value when no deadline is set.
  double remaining_millis() const;

  // --- Cancellation ---------------------------------------------------

  /// Requests cooperative cancellation; safe from any thread.
  void RequestCancel() { cancelled_.store(true, std::memory_order_release); }

  /// True if this context or any ancestor was cancelled.
  bool cancel_requested() const {
    if (cancelled_.load(std::memory_order_acquire)) return true;
    return parent_ != nullptr && parent_->cancel_requested();
  }

  // --- Cooperative checkpoints ---------------------------------------

  /// The checkpoint solvers poll in their hot loops. Latches and
  /// returns true once any limit trips; returns false on the fast path.
  bool ShouldStop();

  /// Adds `n` to the consumed node/iteration count. Does not itself
  /// stop the run — the next ShouldStop() observes the overrun.
  void ChargeNodes(uint64_t n = 1) {
    nodes_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t nodes_charged() const {
    return nodes_.load(std::memory_order_relaxed);
  }

  /// Accounts `bytes` of planned transient memory. Returns false (and
  /// latches kBudget) if the ceiling would be exceeded — callers must
  /// then not allocate. Balance with ReleaseMemory().
  bool TryChargeMemory(size_t bytes);
  void ReleaseMemory(size_t bytes) {
    memory_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  /// High-water mark of the charged estimate over the context lifetime.
  size_t peak_memory_bytes() const {
    return peak_memory_.load(std::memory_order_relaxed);
  }

  // --- Per-run scratch cache ------------------------------------------
  //
  // Expensive derived structures (the DistanceOracle of core/, built
  // from one table) are shared across every consumer that receives the
  // same context instead of being rebuilt per solver. The context only
  // sees opaque shared_ptrs; the owning layer defines the key (an
  // object address) and validates what it gets back. Entries die with
  // the context; a value whose destructor calls ReleaseMemory() on this
  // context is safe because the scratch map is destroyed first (it is
  // the last declared member).

  /// Stores `value` under `key` on this context, replacing any previous
  /// entry. Thread-safe.
  void PutScratch(const void* key, std::shared_ptr<void> value);

  /// Looks `key` up on this context, then on its ancestors (so work
  /// cached on a parent is visible to child stage contexts). Returns
  /// nullptr when absent. Thread-safe.
  std::shared_ptr<void> GetScratch(const void* key) const;

  // --- Outcome --------------------------------------------------------

  /// First limit that tripped; kNone while running normally.
  StopReason stop_reason() const {
    return static_cast<StopReason>(
        stop_reason_.load(std::memory_order_acquire));
  }

  /// Latches `reason` directly (used by solvers that decline a run
  /// before starting it, e.g. a structural cap on a lenient context).
  void MarkStopped(StopReason reason) { Latch(reason); }

 private:
  /// First writer wins; later latches keep the original reason.
  void Latch(StopReason reason);

  const RunContext* parent_ = nullptr;

  std::atomic<bool> has_deadline_{false};
  Clock::time_point deadline_{};

  uint64_t node_budget_ = 0;
  size_t memory_limit_ = 0;
  bool lenient_ = false;

  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> nodes_{0};
  std::atomic<size_t> memory_{0};
  std::atomic<size_t> peak_memory_{0};
  std::atomic<int> stop_reason_{static_cast<int>(StopReason::kNone)};

  // Declared last so it is destroyed first: scratch values may release
  // charged memory on this context from their destructors.
  mutable std::mutex scratch_mu_;
  std::unordered_map<const void*, std::shared_ptr<void>> scratch_;
};

}  // namespace kanon

#endif  // KANON_UTIL_RUN_CONTEXT_H_
