#ifndef KANON_UTIL_STRING_UTIL_H_
#define KANON_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

/// \file
/// Small string helpers shared by the CSV engine, CLI parser and report
/// printers.

namespace kanon {

/// Splits `text` on `sep`. Adjacent separators yield empty fields;
/// splitting the empty string yields one empty field.
std::vector<std::string> Split(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view text);

/// True iff `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Left/right pads `text` with spaces to at least `width` characters.
std::string PadLeft(std::string_view text, size_t width);
std::string PadRight(std::string_view text, size_t width);

/// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

/// Parses a base-10 signed integer; returns false on any trailing junk,
/// overflow, or empty input.
bool ParseInt(std::string_view text, long long* out);

/// Parses a double; returns false on trailing junk or empty input.
bool ParseDouble(std::string_view text, double* out);

}  // namespace kanon

#endif  // KANON_UTIL_STRING_UTIL_H_
