#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "fault/fault.h"
#include "util/logging.h"
#include "util/run_context.h"

namespace kanon {

namespace {

unsigned DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 8u);
}

std::atomic<unsigned> g_workers{0};  // 0 = uninitialized, use default

/// Runs fn over [begin, end) in sub-chunks of `stride`, polling `ctx`
/// between sub-chunks; used by each worker of the ctx-aware overload.
void RunRangeCooperatively(size_t begin, size_t end, size_t stride,
                           const std::function<void(size_t, size_t)>& fn,
                           RunContext* ctx) {
  if (ctx == nullptr) {
    // No cancellation to poll: one contiguous call, exactly like the
    // historical behavior (callers may count invocations).
    if (begin < end) fn(begin, end);
    return;
  }
  for (size_t lo = begin; lo < end; lo += stride) {
    // An injected fault kills this worker mid-range. Cancellation is the
    // recovery path: every sibling stops within one sub-chunk and the
    // caller discards the partial output (the documented contract).
    if (KANON_FAULT_POINT("parallel.worker")) ctx->RequestCancel();
    if (ctx->ShouldStop()) return;
    fn(lo, std::min(end, lo + stride));
  }
}

}  // namespace

void SetParallelism(unsigned workers) {
  // Clamp 0 to 1: hardware_concurrency() is allowed to return 0, and a
  // zero cap would otherwise mean "no one does the work".
  g_workers.store(std::max(workers, 1u), std::memory_order_relaxed);
}

unsigned GetParallelism() {
  const unsigned configured = g_workers.load(std::memory_order_relaxed);
  return configured == 0 ? DefaultParallelism() : configured;
}

void ParallelFor(size_t begin, size_t end, size_t min_chunk,
                 const std::function<void(size_t, size_t)>& fn) {
  ParallelFor(begin, end, min_chunk, fn, nullptr);
}

void ParallelFor(size_t begin, size_t end, size_t min_chunk,
                 const std::function<void(size_t, size_t)>& fn,
                 RunContext* ctx) {
  if (begin >= end) return;
  min_chunk = std::max<size_t>(min_chunk, 1);  // 0 would divide by zero
  if (ctx != nullptr && ctx->ShouldStop()) return;
  const size_t span = end - begin;
  const unsigned workers = GetParallelism();
  if (workers <= 1 || span < std::max<size_t>(min_chunk, 2)) {
    RunRangeCooperatively(begin, end, min_chunk, fn, ctx);
    return;
  }
  const size_t chunks =
      std::min<size_t>(workers, (span + min_chunk - 1) / min_chunk);
  if (chunks <= 1) {
    RunRangeCooperatively(begin, end, min_chunk, fn, ctx);
    return;
  }
  const size_t per_chunk = (span + chunks - 1) / chunks;
  std::vector<std::thread> threads;
  threads.reserve(chunks - 1);
  for (size_t i = 1; i < chunks; ++i) {
    const size_t lo = begin + i * per_chunk;
    const size_t hi = std::min(end, lo + per_chunk);
    if (lo >= hi) break;
    threads.emplace_back([&fn, lo, hi, min_chunk, ctx] {
      RunRangeCooperatively(lo, hi, min_chunk, fn, ctx);
    });
  }
  // The calling thread takes the first chunk.
  RunRangeCooperatively(begin, std::min(end, begin + per_chunk), min_chunk,
                        fn, ctx);
  for (std::thread& t : threads) t.join();
}

}  // namespace kanon
