#include "util/parallel.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "util/logging.h"

namespace kanon {

namespace {

unsigned DefaultParallelism() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 8u);
}

std::atomic<unsigned> g_workers{0};  // 0 = uninitialized, use default

}  // namespace

void SetParallelism(unsigned workers) {
  KANON_CHECK_GE(workers, 1u);
  g_workers.store(workers, std::memory_order_relaxed);
}

unsigned GetParallelism() {
  const unsigned configured = g_workers.load(std::memory_order_relaxed);
  return configured == 0 ? DefaultParallelism() : configured;
}

void ParallelFor(size_t begin, size_t end, size_t min_chunk,
                 const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t span = end - begin;
  const unsigned workers = GetParallelism();
  if (workers <= 1 || span < std::max<size_t>(min_chunk, 2)) {
    fn(begin, end);
    return;
  }
  const size_t chunks =
      std::min<size_t>(workers, (span + min_chunk - 1) / min_chunk);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  const size_t per_chunk = (span + chunks - 1) / chunks;
  std::vector<std::thread> threads;
  threads.reserve(chunks - 1);
  for (size_t i = 1; i < chunks; ++i) {
    const size_t lo = begin + i * per_chunk;
    const size_t hi = std::min(end, lo + per_chunk);
    if (lo >= hi) break;
    threads.emplace_back([&fn, lo, hi] { fn(lo, hi); });
  }
  // The calling thread takes the first chunk.
  fn(begin, std::min(end, begin + per_chunk));
  for (std::thread& t : threads) t.join();
}

}  // namespace kanon
