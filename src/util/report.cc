#include "util/report.h"

#include <algorithm>
#include <iostream>
#include <sstream>

#include "util/csv.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kanon::bench {

ReportTable::ReportTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void ReportTable::AddRow(std::vector<std::string> row) {
  KANON_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string ReportTable::Num(double value, int digits) {
  return FormatDouble(value, digits);
}

std::string ReportTable::Int(long long value) {
  return std::to_string(value);
}

std::string ReportTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      os << PadLeft(row[c], widths[c]);
    }
    os << "\n";
  };
  emit_row(header_);
  size_t total = header_.size() > 0 ? (header_.size() - 1) * 2 : 0;
  for (const size_t w : widths) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void ReportTable::Print() const { std::cout << ToString() << std::flush; }

bool ReportTable::WriteCsv(const std::string& path) const {
  std::vector<CsvRow> all;
  all.push_back(header_);
  for (const auto& row : rows_) all.push_back(row);
  return WriteStringToFile(path, kanon::WriteCsv(all));
}

void PrintBanner(const std::string& experiment_id, const std::string& claim,
                 const std::string& setup) {
  std::cout << "\n=== " << experiment_id << " ===\n"
            << "claim: " << claim << "\n"
            << "setup: " << setup << "\n\n"
            << std::flush;
}

void PrintVerdict(bool ok, const std::string& message) {
  std::cout << (ok ? "[PASS] " : "[INFO] ") << message << "\n"
            << std::flush;
}

}  // namespace kanon::bench
