#ifndef KANON_UTIL_FINGERPRINT_H_
#define KANON_UTIL_FINGERPRINT_H_

#include <cstdint>
#include <string_view>

/// \file
/// Stable 64-bit content fingerprints (FNV-1a) for cache keys.
///
/// The service layer (src/service/) caches anonymization results keyed by
/// the *content* of the input relation, not its address: two requests
/// carrying byte-identical CSV must collide on the same cache entry even
/// though they were parsed into distinct Table objects. These helpers
/// provide the hash. FNV-1a is not cryptographic — a cache collision
/// serves a wrong-but-valid cached answer, which is acceptable for the
/// 2^-64 odds at play and keeps the repo dependency-free.

namespace kanon {

/// FNV-1a offset basis; the seed for a fresh fingerprint chain.
inline constexpr uint64_t kFingerprintSeed = 0xcbf29ce484222325ull;

/// Folds `data` into `fp` byte-by-byte (FNV-1a step). Chaining calls is
/// order-sensitive: Fingerprint("ab") != Fingerprint("a") then ("b")
/// composed via FingerprintPiece, because FingerprintPiece adds a length
/// delimiter (see below).
uint64_t FingerprintBytes(uint64_t fp, std::string_view data);

/// Folds `piece` plus its length into `fp`, so adjacent pieces cannot
/// alias across their boundary ("ab","c" vs "a","bc").
uint64_t FingerprintPiece(uint64_t fp, std::string_view piece);

/// Folds an integer (its 8 little-endian bytes) into `fp`.
uint64_t FingerprintInt(uint64_t fp, uint64_t value);

/// One-shot convenience over FingerprintBytes from the seed.
uint64_t Fingerprint(std::string_view data);

}  // namespace kanon

#endif  // KANON_UTIL_FINGERPRINT_H_
