#ifndef KANON_UTIL_PARALLEL_H_
#define KANON_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

/// \file
/// Minimal data-parallel helper for the library's O(n^2)/O(n^3)
/// precomputations (distance matrix, ball-family construction). Static
/// range partitioning over std::thread; callers guarantee disjoint
/// writes, so results are bit-identical to the serial execution and all
/// algorithms remain deterministic.

namespace kanon {

class RunContext;

/// Process-wide worker cap for ParallelFor. 1 = fully serial; 0 is
/// clamped to 1 (callers may pass a computed value like
/// hardware_concurrency(), which the standard allows to be 0). The
/// default is the hardware concurrency clamped to 8. Thread-safe to
/// read; set it once at startup.
void SetParallelism(unsigned workers);
unsigned GetParallelism();

/// Invokes `fn(chunk_begin, chunk_end)` over a static partition of
/// [begin, end) using up to GetParallelism() threads (the calling
/// thread works too). Falls back to a single inline call when the range
/// is shorter than `min_chunk` or parallelism is 1; `min_chunk` of 0 is
/// treated as 1. `fn` must tolerate concurrent invocation on disjoint
/// ranges.
void ParallelFor(size_t begin, size_t end, size_t min_chunk,
                 const std::function<void(size_t, size_t)>& fn);

/// Cancellation-aware variant: each worker processes its range in
/// sub-chunks of `min_chunk` and polls `ctx->ShouldStop()` between
/// them, so a deadline or cancellation is observed within one chunk's
/// worth of work. When the context stops mid-flight, the tail of each
/// worker's range is simply not visited — callers must check
/// `ctx->ShouldStop()` afterwards and discard partial output. A null
/// `ctx` behaves exactly like the three-argument overload.
void ParallelFor(size_t begin, size_t end, size_t min_chunk,
                 const std::function<void(size_t, size_t)>& fn,
                 RunContext* ctx);

}  // namespace kanon

#endif  // KANON_UTIL_PARALLEL_H_
