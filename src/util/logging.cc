#include "util/logging.h"

#include <atomic>

namespace kanon {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  // Trim the path down to the basename for readability.
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LogLevelName(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::cerr << stream_.str() << std::endl;
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging

}  // namespace kanon
