#include "util/cli.h"

#include "util/string_util.h"

namespace kanon {

CommandLine CommandLine::Parse(int argc, const char* const* argv) {
  CommandLine cl;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      cl.positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      cl.flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      cl.flags_[body] = argv[++i];
    } else {
      cl.flags_[body] = "true";
    }
  }
  return cl;
}

bool CommandLine::HasFlag(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::vector<std::string> CommandLine::UnknownFlags(
    const std::vector<std::string>& known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : flags_) {
    bool found = false;
    for (const std::string& k : known) {
      if (name == k) {
        found = true;
        break;
      }
    }
    if (!found) unknown.push_back(name);
  }
  return unknown;  // flags_ is an ordered map, so this is sorted
}

std::string CommandLine::GetString(const std::string& name,
                                   const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

long long CommandLine::GetInt(const std::string& name,
                              long long fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  long long value = 0;
  return ParseInt(it->second, &value) ? value : fallback;
}

StatusOr<long long> CommandLine::GetValidatedInt(const std::string& name,
                                                 long long fallback,
                                                 long long min_value,
                                                 long long max_value) const {
  long long value = fallback;
  const auto it = flags_.find(name);
  if (it != flags_.end() && !ParseInt(it->second, &value)) {
    return Status::InvalidArgument("--" + name + "=" + it->second +
                                   " is not an integer");
  }
  if (value < min_value || value > max_value) {
    return Status::InvalidArgument(
        "--" + name + "=" + std::to_string(value) + " out of range [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) + "]");
  }
  return value;
}

double CommandLine::GetDouble(const std::string& name,
                              double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  double value = 0;
  return ParseDouble(it->second, &value) ? value : fallback;
}

bool CommandLine::GetBool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  return fallback;
}

}  // namespace kanon
