#ifndef KANON_UTIL_CSV_H_
#define KANON_UTIL_CSV_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

/// \file
/// RFC-4180-style CSV reading and writing.
///
/// Supports quoted fields containing commas, doubled quotes and embedded
/// newlines. This is the only on-disk interchange format the library uses
/// (tables, experiment dumps).

namespace kanon {

/// One parsed record (row) of fields.
using CsvRow = std::vector<std::string>;

/// Parses a full CSV document. Returns false on malformed input such as
/// an unterminated quote or junk after a closing quote; on failure
/// `*rows` is left EMPTY — callers never observe a partially parsed
/// document. A trailing final newline is optional; empty input parses to
/// zero rows.
bool ParseCsv(std::string_view text, std::vector<CsvRow>* rows,
              std::string* error);

/// Quotes a single field if (and only if) it needs quoting.
std::string EscapeCsvField(std::string_view field);

/// Serializes rows to CSV text with "\n" record separators.
std::string WriteCsv(const std::vector<CsvRow>& rows);

/// Reads an entire file; returns false if it cannot be opened.
bool ReadFileToString(const std::string& path, std::string* contents);

/// Writes (truncates) a file; returns false on I/O failure.
bool WriteStringToFile(const std::string& path, std::string_view contents);

}  // namespace kanon

#endif  // KANON_UTIL_CSV_H_
