#ifndef KANON_ALGO_MDAV_H_
#define KANON_ALGO_MDAV_H_

#include "algo/anonymizer.h"

/// \file
/// MDAV (Maximum Distance to AVerage vector; Domingo-Ferrer & Mateo-Sanz)
/// microaggregation baseline, adapted from numeric microaggregation to
/// the paper's categorical/Hamming setting: the "average vector" is the
/// per-column mode of the unassigned rows, distances are Hamming.
///
///   while >= 3k rows unassigned:
///     r = farthest row from the mode-centroid; group r with its k-1
///         nearest unassigned rows;
///     s = farthest unassigned row from r; group s with its k-1 nearest;
///   if >= 2k remain: group the farthest-from-centroid row with its k-1
///         nearest, then the rest form one group;
///   else: the rest form one group (size in [k, 3k-1]).
///
/// MDAV produces fixed-size-k groups except the final one — the
/// classic statistical-disclosure-control competitor to the clustering
/// baselines, used in E8-style comparisons.

namespace kanon {

/// MDAV baseline.
class MdavAnonymizer : public Anonymizer {
 public:
  using Anonymizer::Run;
  std::string name() const override { return "mdav"; }
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;
};

}  // namespace kanon

#endif  // KANON_ALGO_MDAV_H_
