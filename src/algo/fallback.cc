#include "algo/fallback.h"

#include <sstream>

#include "algo/registry.h"
#include "core/partition.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

FallbackAnonymizer::FallbackAnonymizer(FallbackOptions options)
    : options_(std::move(options)) {
  KANON_CHECK(!options_.stages.empty());
  KANON_CHECK_GT(options_.non_final_deadline_fraction, 0.0);
  KANON_CHECK_LE(options_.non_final_deadline_fraction, 1.0);
  stages_.reserve(options_.stages.size());
  for (const std::string& stage : options_.stages) {
    KANON_CHECK(stage != "resilient") << "fallback chain cannot nest itself";
    auto algo = options_.make_stage ? options_.make_stage(stage)
                                    : MakeAnonymizer(stage);
    KANON_CHECK(algo != nullptr) << "unknown chain stage: " << stage;
    stages_.push_back(std::move(algo));
  }
}

std::string FallbackAnonymizer::name() const { return "resilient"; }

AnonymizationResult FallbackAnonymizer::Run(const Table& table, size_t k,
                                            RunContext* ctx) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);

  WallTimer timer;
  // First limit observed across the chain; kNone iff the accepted stage
  // is the first one and it ran to completion.
  StopReason first_stop = StopReason::kNone;
  std::ostringstream chain;

  for (size_t i = 0; i < stages_.size(); ++i) {
    // If the caller's own limit has tripped, that — not a stage's
    // structural decline — is why the chain degrades; record it first.
    if (first_stop == StopReason::kNone && ctx->ShouldStop()) {
      first_stop = ctx->stop_reason();
    }
    const bool last = (i + 1 == stages_.size());
    // A tripped breaker skips the stage outright: when a stage has been
    // failing for everyone, burning a deadline slice on it again only
    // steals time from the stages that still work. Never the terminal
    // stage — the always-answers contract outranks the breaker.
    if (!last && options_.gate != nullptr &&
        !options_.gate->Allow(stages_[i]->name())) {
      if (i > 0) chain << "->";
      chain << stages_[i]->name() << "(skipped:breaker)";
      continue;
    }
    RunContext child(ctx);  // observes ctx's cancellation
    child.set_lenient(true);
    if (ctx->has_deadline()) {
      const double remaining = ctx->remaining_millis();
      child.set_deadline_after_millis(
          last ? remaining
               : remaining * options_.non_final_deadline_fraction);
    }
    if (ctx->node_budget() > 0) {
      const uint64_t used = ctx->nodes_charged();
      child.set_node_budget(
          ctx->node_budget() > used ? ctx->node_budget() - used : 1);
    }
    if (ctx->memory_limit_bytes() > 0) {
      child.set_memory_limit_bytes(ctx->memory_limit_bytes());
    }

    // Whether the caller's own limit already tripped going in: such an
    // attempt is doomed for reasons that say nothing about the stage, so
    // its outcome must not move the breaker.
    const bool caller_stopped = ctx->ShouldStop();
    AnonymizationResult attempt = stages_[i]->Run(table, k, &child);
    ctx->ChargeNodes(child.nodes_charged());
    if (first_stop == StopReason::kNone) {
      first_stop = child.stop_reason();
    }

    const bool valid =
        !attempt.partition.groups.empty() &&
        IsValidPartition(attempt.partition, n, k, n);
    if (!last && options_.gate != nullptr && !caller_stopped) {
      options_.gate->Record(stages_[i]->name(), valid);
    }
    if (i > 0) chain << "->";
    chain << stages_[i]->name() << '(';
    if (valid) {
      chain << (child.stop_reason() == StopReason::kNone
                    ? "ok"
                    : StopReasonName(child.stop_reason()));
    } else {
      chain << "declined:" << StopReasonName(child.stop_reason());
    }
    chain << ')';

    if (valid) {
      attempt.stage = stages_[i]->name();
      attempt.termination = first_stop;
      attempt.seconds = timer.Seconds();
      std::ostringstream notes;
      notes << "chain=" << chain.str() << " [" << attempt.notes << "]";
      attempt.notes = notes.str();
      return attempt;
    }
  }
  KANON_CHECK(false) << "fallback chain exhausted: " << chain.str()
                     << " (terminal stage must be unconditionally feasible)";
  return {};
}

}  // namespace kanon
