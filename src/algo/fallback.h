#ifndef KANON_ALGO_FALLBACK_H_
#define KANON_ALGO_FALLBACK_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "algo/anonymizer.h"

/// \file
/// Graceful-degradation chain ("resilient" in the registry).
///
/// The paper proves optimal k-anonymity NP-hard (Theorem 3.2), so the
/// exact solvers can blow up on adversarial inputs — exactly the
/// instances the Theorem 3.1 reduction generates. The fallback chain
/// turns that into a quality/latency trade instead of a failure: it
/// tries stages in decreasing quality order, each under a lenient child
/// RunContext carrying a slice of the remaining deadline, and accepts
/// the first stage that yields a *validated* k-anonymous partition.
/// The terminal stage (suppress_all, O(n)) cannot fail for any
/// 1 <= k <= n, so the chain ALWAYS returns a valid partition; the
/// result's `termination` and `stage` record how far it degraded.

namespace kanon {

/// Admission gate consulted per chain stage — the seam the service
/// layer's circuit breakers plug into. Allow() is asked before a
/// non-final stage runs (false = skip it, recorded as
/// `name(skipped:breaker)` in the chain); Record() reports whether the
/// stage produced a valid partition. The terminal stage is never gated.
/// Implementations must be thread-safe: one gate is shared by all
/// workers.
class StageGate {
 public:
  virtual ~StageGate() = default;
  virtual bool Allow(const std::string& stage) = 0;
  virtual void Record(const std::string& stage, bool success) = 0;
};

/// Configuration for FallbackAnonymizer.
struct FallbackOptions {
  /// Registry names tried in order; the last must be unconditionally
  /// feasible (suppress_all). "resilient" itself is rejected.
  std::vector<std::string> stages = {"exact_dp", "branch_bound",
                                     "greedy_cover", "suppress_all"};
  /// Share of the remaining deadline granted to each non-final stage;
  /// the final stage gets everything left.
  double non_final_deadline_fraction = 0.5;
  /// Optional per-stage admission gate (not owned; may be null).
  StageGate* gate = nullptr;
  /// Optional stage factory; null = registry MakeAnonymizer. The seam
  /// the service layer uses to thread per-request knobs (coreset sample
  /// rate/seed) into stages the registry would build with defaults. A
  /// factory returning nullptr for a stage name is a caller bug, same
  /// as an unknown registry name.
  std::function<std::unique_ptr<Anonymizer>(const std::string&)>
      make_stage;
};

/// Anonymizer that degrades across `options.stages` until one produces
/// a valid partition. See the file comment for the contract.
class FallbackAnonymizer : public Anonymizer {
 public:
  explicit FallbackAnonymizer(FallbackOptions options = {});

  using Anonymizer::Run;
  std::string name() const override;
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

 private:
  FallbackOptions options_;
  std::vector<std::unique_ptr<Anonymizer>> stages_;
};

}  // namespace kanon

#endif  // KANON_ALGO_FALLBACK_H_
