#ifndef KANON_ALGO_BALL_COVER_H_
#define KANON_ALGO_BALL_COVER_H_

#include <cstddef>

#include "algo/anonymizer.h"

/// \file
/// The paper's second, strongly polynomial approximation algorithm
/// (Section 4.3 / Theorem 4.2). Phase 1's exponential family C is
/// replaced by a polynomial family of balls:
///
///   * radius family D = { S_{c,i} = {v : d(c,v) <= i} : c in V,
///     i in {0..m} } — at most (m+1)·n sets, d(S_{c,i}) <= 2i
///     (Lemma 4.2);
///   * pair family { S_{c,c'} = {v : d(c,v) <= d(c,c')} : c,c' in V } —
///     n^2 sets.
///
/// The paper advises using whichever collection is smaller; `family_mode`
/// exposes both plus that automatic choice. Only balls with >= k members
/// enter the family (every group needs a center with >= k-1 peers in
/// range). Greedy cover over D loses 1 + ln m instead of 1 + ln 2k, and
/// restricting to centered sets costs a factor 2 in diameter sum
/// (Lemma 4.3), for a 6k(1 + ln m) total ratio.
///
/// After the cover, oversized chosen balls are split to [k, 2k-1] chunks
/// (the wlog step), Reduce converts the cover to a partition, and the
/// canonical suppressor is emitted.

namespace kanon {

/// Which ball family Phase 1 searches.
enum class BallFamilyMode {
  /// S_{c,i}: (m+1)·n sets.
  kRadius,
  /// S_{c,c'}: n^2 sets.
  kPairwise,
  /// Whichever of the two is smaller for the instance (paper's advice).
  kAuto,
};

/// How a ball's set-cover weight is computed.
enum class BallWeightMode {
  /// True Hamming diameter of the ball (tighter greedy choices; costs an
  /// O(|S|^2) scan per ball at build time).
  kExactDiameter,
  /// The Lemma 4.2 bound 2i (2·d(c,c') for the pair family). Cheaper;
  /// the stated 6k(1 + ln m) analysis is in terms of this bound.
  kTwiceRadius,
};

/// Configuration for BallCoverAnonymizer.
struct BallCoverOptions {
  BallFamilyMode family_mode = BallFamilyMode::kAuto;
  BallWeightMode weight_mode = BallWeightMode::kExactDiameter;
};

/// Theorem 4.2 algorithm. Runtime O(m n^2 + n^3).
class BallCoverAnonymizer : public Anonymizer {
 public:
  explicit BallCoverAnonymizer(BallCoverOptions options = {});

  using Anonymizer::Run;
  std::string name() const override;
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

 private:
  BallCoverOptions options_;
};

}  // namespace kanon

#endif  // KANON_ALGO_BALL_COVER_H_
