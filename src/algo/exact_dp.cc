#include "algo/exact_dp.h"

#include <bit>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "core/cost.h"
#include "fault/fault.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

namespace {

constexpr size_t kInf = std::numeric_limits<size_t>::max();

/// Enumerates all size-`s` subsets of `items`, invoking `fn` with the
/// OR-mask of each chosen subset. `fn` returns false to abort the
/// enumeration (cooperative cancellation).
template <typename Fn>
void ForEachSubsetMask(const std::vector<uint32_t>& item_bits, size_t s,
                       Fn&& fn) {
  const size_t p = item_bits.size();
  if (s > p) return;
  if (s == 0) {
    fn(0u);
    return;
  }
  std::vector<size_t> idx(s);
  for (size_t i = 0; i < s; ++i) idx[i] = i;
  for (;;) {
    uint32_t mask = 0;
    for (const size_t i : idx) mask |= item_bits[i];
    if (!fn(mask)) return;
    size_t i = s;
    bool advanced = false;
    while (i > 0) {
      --i;
      if (idx[i] + (s - i) < p) {
        ++idx[i];
        for (size_t j = i + 1; j < s; ++j) idx[j] = idx[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) return;
  }
}

/// ANON cost of the row set encoded by `mask`.
size_t GroupCost(const Table& table, uint32_t mask) {
  std::vector<RowId> rows;
  for (uint32_t m = mask; m != 0; m &= m - 1) {
    rows.push_back(static_cast<RowId>(std::countr_zero(m)));
  }
  return AnonCost(table, rows);
}

}  // namespace

ExactDpAnonymizer::ExactDpAnonymizer(ExactDpOptions options)
    : options_(options) {}

AnonymizationResult ExactDpAnonymizer::Run(const Table& table, size_t k,
                                           RunContext* ctx) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);
  WallTimer timer;
  if (static_cast<size_t>(n) > options_.max_rows) {
    if (!ctx->lenient()) {
      KANON_CHECK_LE(static_cast<size_t>(n), options_.max_rows)
          << "exact_dp is exponential in n";
    }
    ctx->MarkStopped(StopReason::kBudget);
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: n exceeds exact_dp max_rows");
  }

  const size_t group_max = std::min<size_t>(2 * k - 1, n);
  const uint32_t full = (n == 32) ? 0xffffffffu : ((1u << n) - 1u);

  // The dp/choice tables dominate the footprint; account them up front
  // so a memory-limited context declines instead of thrashing. An
  // injected allocation failure takes the same decline path.
  const size_t table_bytes =
      (static_cast<size_t>(full) + 1) * (sizeof(size_t) + sizeof(uint32_t));
  if (KANON_FAULT_POINT("exact_dp.alloc")) {
    ctx->MarkStopped(StopReason::kBudget);
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: injected allocation failure");
  }
  if (!ctx->TryChargeMemory(table_bytes)) {
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: dp tables exceed memory limit");
  }

  // Precompute ANON for every candidate group mask (|S| in [k, 2k-1]).
  std::unordered_map<uint32_t, size_t> group_cost;
  bool stopped = false;
  {
    std::vector<uint32_t> all_bits(n);
    for (RowId r = 0; r < n; ++r) all_bits[r] = 1u << r;
    size_t enumerated = 0;
    for (size_t s = k; s <= group_max && !stopped; ++s) {
      ForEachSubsetMask(all_bits, s, [&](uint32_t mask) {
        if ((++enumerated & 0x3ff) == 0) {
          if (KANON_FAULT_POINT("exact_dp.precompute")) {
            ctx->MarkStopped(StopReason::kDeadline);
          }
          if (ctx->ShouldStop()) {
            stopped = true;
            return false;
          }
        }
        group_cost.emplace(mask, GroupCost(table, mask));
        return true;
      });
    }
  }
  if (stopped) {
    ctx->ReleaseMemory(table_bytes);
    return StoppedResult(*ctx, timer.Seconds(),
                         "stopped during candidate-group precompute");
  }

  std::vector<size_t> dp(static_cast<size_t>(full) + 1, kInf);
  std::vector<uint32_t> choice(static_cast<size_t>(full) + 1, 0);
  dp[0] = 0;
  for (uint32_t mask = 1; mask <= full; ++mask) {
    // One dp state per mask; the checkpoint stride keeps the clock off
    // the inner subset enumeration.
    ctx->ChargeNodes();
    if ((mask & 0x3f) == 0) {
      if (KANON_FAULT_POINT("exact_dp.sweep")) {
        ctx->MarkStopped(StopReason::kDeadline);
      }
      if (ctx->ShouldStop()) {
        stopped = true;
        break;
      }
    }
    const int population = std::popcount(mask);
    if (static_cast<size_t>(population) < k) continue;
    const uint32_t low_bit = mask & (~mask + 1);
    // Remaining bits above the anchor.
    std::vector<uint32_t> rest_bits;
    rest_bits.reserve(static_cast<size_t>(population) - 1);
    for (uint32_t m = mask ^ low_bit; m != 0; m &= m - 1) {
      rest_bits.push_back(m & (~m + 1));
    }
    size_t best = kInf;
    uint32_t best_set = 0;
    const size_t hi = std::min(group_max - 1, rest_bits.size());
    for (size_t s = k - 1; s <= hi; ++s) {
      ForEachSubsetMask(rest_bits, s, [&](uint32_t bits) {
        const uint32_t set_mask = low_bit | bits;
        const size_t rest_cost = dp[mask ^ set_mask];
        if (rest_cost == kInf) return true;
        const auto it = group_cost.find(set_mask);
        KANON_CHECK(it != group_cost.end());
        const size_t total = it->second + rest_cost;
        if (total < best) {
          best = total;
          best_set = set_mask;
        }
        return true;
      });
    }
    dp[mask] = best;
    choice[mask] = best_set;
    if (mask == full) break;
  }
  if (stopped) {
    ctx->ReleaseMemory(table_bytes);
    return StoppedResult(*ctx, timer.Seconds(), "stopped during dp sweep");
  }
  KANON_CHECK_NE(dp[full], kInf);

  // Reconstruct the optimal partition.
  AnonymizationResult result;
  uint32_t mask = full;
  while (mask != 0) {
    const uint32_t set_mask = choice[mask];
    KANON_CHECK_NE(set_mask, 0u);
    Group group;
    for (uint32_t m = set_mask; m != 0; m &= m - 1) {
      group.push_back(static_cast<RowId>(std::countr_zero(m)));
    }
    result.partition.groups.push_back(std::move(group));
    mask ^= set_mask;
  }

  FinalizeResult(table, &result);
  KANON_CHECK_EQ(result.cost, dp[full]);
  result.seconds = timer.Seconds();
  std::ostringstream notes;
  notes << "states=" << (static_cast<size_t>(full) + 1)
        << " candidate_groups=" << group_cost.size();
  result.notes = notes.str();
  ctx->ReleaseMemory(table_bytes);
  return result;
}

}  // namespace kanon
