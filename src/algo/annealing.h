#ifndef KANON_ALGO_ANNEALING_H_
#define KANON_ALGO_ANNEALING_H_

#include <cstdint>
#include <memory>

#include "algo/anonymizer.h"

/// \file
/// Simulated-annealing post-optimizer — a second answer to the paper's
/// closing question ("can an approximation algorithm be found whose
/// performance ratio is independent of k?"): unlike the greedy local
/// search it can escape local optima by accepting uphill MOVE/SWAP/
/// MERGE-SPLIT perturbations with temperature-controlled probability,
/// at the price of losing the deterministic descent guarantee (the
/// final answer is still clamped to never exceed the starting cost).

namespace kanon {

/// Annealing schedule parameters.
struct AnnealingOptions {
  /// Total proposal count.
  size_t iterations = 20'000;
  /// Initial temperature, in units of the objective (stars).
  double initial_temperature = 4.0;
  /// Geometric cooling factor applied every `cooling_interval` steps.
  double cooling = 0.97;
  size_t cooling_interval = 200;
  /// PRNG seed (deterministic runs).
  uint64_t seed = 1;
};

/// Anonymizer adapter: runs `base`, then anneals its partition. The
/// returned partition is the best ever visited, so the result is never
/// worse than the base algorithm's.
class AnnealingAnonymizer : public Anonymizer {
 public:
  AnnealingAnonymizer(std::unique_ptr<Anonymizer> base,
                      AnnealingOptions options = {});

  using Anonymizer::Run;
  std::string name() const override;
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

 private:
  std::unique_ptr<Anonymizer> base_;
  AnnealingOptions options_;
};

}  // namespace kanon

#endif  // KANON_ALGO_ANNEALING_H_
