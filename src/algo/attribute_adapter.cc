#include "algo/attribute_adapter.h"

#include <sstream>

#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

AttributeAdapterAnonymizer::AttributeAdapterAnonymizer(
    std::unique_ptr<AttributeAnonymizer> solver)
    : solver_(std::move(solver)) {
  KANON_CHECK(solver_ != nullptr);
}

std::string AttributeAdapterAnonymizer::name() const {
  return solver_->name();
}

AnonymizationResult AttributeAdapterAnonymizer::Run(const Table& table,
                                                    size_t k,
                                                    RunContext* ctx) {
  WallTimer timer;
  const AttributeResult attr = solver_->Solve(table, k, ctx);

  AnonymizationResult result;
  result.partition = attr.partition;
  FinalizeResult(table, &result);
  // The canonical suppressor of the kept-column grouping stars exactly
  // the suppressed columns in every row (groups agree on kept columns
  // by construction), so cost == n * |suppressed| unless two groups
  // happen to agree on a suppressed column's values as well — the
  // canonical suppressor can only do better.
  KANON_CHECK_LE(result.cost,
                 static_cast<size_t>(table.num_rows()) *
                     attr.num_suppressed());
  result.seconds = timer.Seconds();
  result.termination = attr.termination;
  std::ostringstream notes;
  notes << "suppressed_attributes=" << attr.num_suppressed() << " ["
        << attr.notes << "]";
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
