#ifndef KANON_ALGO_BRANCH_BOUND_H_
#define KANON_ALGO_BRANCH_BOUND_H_

#include <cstddef>

#include "algo/anonymizer.h"

/// \file
/// Exact optimal k-anonymity by branch & bound over anchored groups.
///
/// Search: repeatedly take the lowest unassigned row as anchor and branch
/// on every candidate group (anchor + a (k-1)..(2k-2)-subset of unassigned
/// rows). Prune with
///   current cost + sum_{r unassigned} d_{k-1}NN(r)  >=  incumbent,
/// where the per-row term is the k-NN lower bound of core/bounds.h
/// evaluated on the full table (a superset of candidates, hence valid).
///
/// Complements exact_dp: no 2^n memory, so it reaches slightly larger n
/// when the instance has pruning-friendly structure (e.g. planted
/// clusters), and it cross-checks the DP in tests.

namespace kanon {

/// Configuration for BranchBoundAnonymizer.
struct BranchBoundOptions {
  /// Hard instance-size cap.
  size_t max_rows = 28;
  /// Optional cap on explored search nodes; 0 = unlimited. When the cap
  /// is hit the incumbent (a valid anonymization, possibly suboptimal)
  /// is returned and `notes` records the truncation.
  size_t max_nodes = 0;
};

/// Exact (or anytime, when max_nodes truncates) solver.
class BranchBoundAnonymizer : public Anonymizer {
 public:
  explicit BranchBoundAnonymizer(BranchBoundOptions options = {});

  using Anonymizer::Run;
  std::string name() const override { return "branch_bound"; }
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

 private:
  BranchBoundOptions options_;
};

}  // namespace kanon

#endif  // KANON_ALGO_BRANCH_BOUND_H_
