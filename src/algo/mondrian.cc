#include "algo/mondrian.h"

#include <algorithm>
#include <sstream>

#include "core/cost.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

namespace {

/// Chooses the split attribute: widest code span with at least two
/// distinct values in `rows`. Returns false when no attribute splits.
bool ChooseSplitColumn(const Table& table, const Group& rows, ColId* col) {
  bool found = false;
  ValueCode best_span = 0;
  for (ColId c = 0; c < table.num_columns(); ++c) {
    ValueCode lo = table.at(rows[0], c);
    ValueCode hi = lo;
    for (const RowId r : rows) {
      lo = std::min(lo, table.at(r, c));
      hi = std::max(hi, table.at(r, c));
    }
    if (hi == lo) continue;
    const ValueCode span = hi - lo;
    if (!found || span > best_span) {
      found = true;
      best_span = span;
      *col = c;
    }
  }
  return found;
}

/// Recursively splits `rows`, appending finished leaves to `out`.
void Split(const Table& table, Group rows, size_t k, size_t* leaves,
           Partition* out) {
  ColId col = 0;
  if (rows.size() >= 2 * k && ChooseSplitColumn(table, rows, &col)) {
    // Median split on the chosen attribute's codes.
    std::sort(rows.begin(), rows.end(), [&](RowId a, RowId b) {
      const ValueCode va = table.at(a, col), vb = table.at(b, col);
      if (va != vb) return va < vb;
      return a < b;
    });
    // Find a cut position that (a) keeps >= k rows on both sides and
    // (b) falls on a value boundary (strict Mondrian: equal values stay
    // together). Prefer the boundary closest to the median.
    const size_t mid = rows.size() / 2;
    size_t best_cut = 0;
    bool have_cut = false;
    for (size_t cut = k; cut + k <= rows.size(); ++cut) {
      if (table.at(rows[cut - 1], col) == table.at(rows[cut], col)) {
        continue;  // not a value boundary
      }
      if (!have_cut ||
          (cut > mid ? cut - mid : mid - cut) <
              (best_cut > mid ? best_cut - mid : mid - best_cut)) {
        have_cut = true;
        best_cut = cut;
      }
    }
    if (have_cut) {
      Group left(rows.begin(), rows.begin() + static_cast<ptrdiff_t>(best_cut));
      Group right(rows.begin() + static_cast<ptrdiff_t>(best_cut),
                  rows.end());
      Split(table, std::move(left), k, leaves, out);
      Split(table, std::move(right), k, leaves, out);
      return;
    }
  }
  ++*leaves;
  out->groups.push_back(std::move(rows));
}

}  // namespace

AnonymizationResult MondrianAnonymizer::Run(const Table& table, size_t k,
                                        RunContext* /*ctx*/) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);

  WallTimer timer;
  Group all(n);
  for (RowId r = 0; r < n; ++r) all[r] = r;

  AnonymizationResult result;
  size_t leaves = 0;
  Split(table, std::move(all), k, &leaves, &result.partition);

  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  std::ostringstream notes;
  notes << "leaves=" << leaves;
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
