#include "algo/shard_metrics.h"

namespace kanon {

ShardMetrics& ShardMetrics::Instance() {
  static ShardMetrics* instance = new ShardMetrics();
  return *instance;
}

ShardMetricsSnapshot ShardMetrics::Snapshot() const {
  ShardMetricsSnapshot snap;
  snap.plans = plans_.load(std::memory_order_relaxed);
  snap.shards_planned = shards_planned_.load(std::memory_order_relaxed);
  snap.shard_solves = shard_solves_.load(std::memory_order_relaxed);
  snap.shard_declines = shard_declines_.load(std::memory_order_relaxed);
  snap.merges = merges_.load(std::memory_order_relaxed);
  snap.repair_merges = repair_merges_.load(std::memory_order_relaxed);
  snap.resumed = resumed_.load(std::memory_order_relaxed);
  return snap;
}

void ShardMetrics::Reset() {
  plans_.store(0, std::memory_order_relaxed);
  shards_planned_.store(0, std::memory_order_relaxed);
  shard_solves_.store(0, std::memory_order_relaxed);
  shard_declines_.store(0, std::memory_order_relaxed);
  merges_.store(0, std::memory_order_relaxed);
  repair_merges_.store(0, std::memory_order_relaxed);
  resumed_.store(0, std::memory_order_relaxed);
}

}  // namespace kanon
