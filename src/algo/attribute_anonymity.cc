#include "algo/attribute_anonymity.h"

#include <algorithm>
#include <map>

#include "util/logging.h"

namespace kanon {

AttributeResult AttributeAnonymizer::Solve(const Table& table, size_t k) {
  RunContext unlimited;
  return Solve(table, k, &unlimited);
}

Suppressor AttributeResult::MakeSuppressor(const Table& table) const {
  Suppressor t(table.num_rows(), table.num_columns());
  for (const ColId c : suppressed) t.SuppressColumn(c);
  return t;
}

Partition GroupByKeptColumns(const Table& table, uint64_t kept_mask) {
  std::map<std::vector<ValueCode>, Group> buckets;
  std::vector<ValueCode> key;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    key.clear();
    for (ColId c = 0; c < table.num_columns(); ++c) {
      if (kept_mask & (uint64_t{1} << c)) key.push_back(table.at(r, c));
    }
    buckets[key].push_back(r);
  }
  Partition p;
  p.groups.reserve(buckets.size());
  for (auto& [unused, group] : buckets) p.groups.push_back(std::move(group));
  return p;
}

size_t ProjectionAnonymityLevel(const Table& table, uint64_t kept_mask) {
  if (table.num_rows() == 0) return 0;
  const Partition p = GroupByKeptColumns(table, kept_mask);
  size_t level = table.num_rows();
  for (const Group& g : p.groups) level = std::min(level, g.size());
  return level;
}

bool KeptSetFeasible(const Table& table, uint64_t kept_mask, size_t k) {
  return ProjectionAnonymityLevel(table, kept_mask) >= k;
}

AttributeResult ValidateAttributeResult(const Table& table, size_t k,
                                        AttributeResult result) {
  KANON_CHECK_LE(table.num_columns(), 63u);
  uint64_t kept = (uint64_t{1} << table.num_columns()) - 1;
  for (const ColId c : result.suppressed) {
    KANON_CHECK_LT(c, table.num_columns());
    KANON_CHECK(kept & (uint64_t{1} << c)) << "duplicate suppressed column";
    kept &= ~(uint64_t{1} << c);
  }
  KANON_CHECK(KeptSetFeasible(table, kept, k));
  const Partition expected = GroupByKeptColumns(table, kept);
  KANON_CHECK_EQ(expected.num_groups(), result.partition.num_groups());
  KANON_CHECK(IsValidPartition(result.partition, table.num_rows(), k,
                               table.num_rows()));
  return result;
}

}  // namespace kanon
