#ifndef KANON_ALGO_ATTRIBUTE_ANONYMITY_H_
#define KANON_ALGO_ATTRIBUTE_ANONYMITY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/partition.h"
#include "core/suppressor.h"
#include "data/table.h"
#include "util/run_context.h"

/// \file
/// k-ANONYMITY ON ATTRIBUTES (Section 3.1): instead of starring
/// individual entries, whole attributes are suppressed; minimize the
/// number of suppressed attributes subject to k-anonymity of the
/// projection onto the kept attributes.
///
/// Key structural fact: suppressing MORE attributes only coarsens the
/// induced row partition, so feasibility of a kept-attribute set is
/// downward monotone. The exact solver searches kept sets by decreasing
/// size; the greedy solver eliminates attributes backward.

namespace kanon {

/// Output of an attribute-suppression solver.
struct AttributeResult {
  /// Columns suppressed (the objective is its size).
  std::vector<ColId> suppressed;
  /// Groups of rows identical on the kept columns; all sizes >= k.
  Partition partition;
  /// seconds spent in Solve().
  double seconds = 0.0;
  /// Free-form counters.
  std::string notes;
  /// StopReason::kNone when Solve ran to completion. A stopped solver
  /// degrades to a coarser feasible answer (ultimately all-suppressed,
  /// which is always k-anonymous for n >= k) rather than failing, so
  /// `suppressed`/`partition` stay valid either way.
  StopReason termination = StopReason::kNone;

  size_t num_suppressed() const { return suppressed.size(); }

  /// Materializes the column suppressor.
  Suppressor MakeSuppressor(const Table& table) const;
};

/// True iff keeping exactly the columns with kept_mask bit set yields a
/// k-anonymous projection. `kept_mask` bit c corresponds to column c;
/// requires m <= 63.
bool KeptSetFeasible(const Table& table, uint64_t kept_mask, size_t k);

/// Partition of rows by equality on the kept columns.
Partition GroupByKeptColumns(const Table& table, uint64_t kept_mask);

/// Minimum multiplicity of the projection onto kept columns (n for empty
/// kept set on a nonempty table).
size_t ProjectionAnonymityLevel(const Table& table, uint64_t kept_mask);

/// Abstract solver interface.
class AttributeAnonymizer {
 public:
  virtual ~AttributeAnonymizer() = default;
  virtual std::string name() const = 0;
  /// Requires 1 <= k <= n and m <= 63. The all-suppressed solution is
  /// always feasible (every row becomes (*,...,*)), so Solve always
  /// succeeds — a run stopped by `ctx` falls back to it and records the
  /// stop reason in the result's `termination`.
  virtual AttributeResult Solve(const Table& table, size_t k,
                                RunContext* ctx) = 0;

  /// Back-compat convenience: unlimited, strict context. (Subclasses
  /// re-expose via `using AttributeAnonymizer::Solve;`.)
  AttributeResult Solve(const Table& table, size_t k);
};

/// Validates a result (partition matches the kept-column grouping, all
/// groups >= k) and dies on violations; returns it for chaining.
AttributeResult ValidateAttributeResult(const Table& table, size_t k,
                                        AttributeResult result);

}  // namespace kanon

#endif  // KANON_ALGO_ATTRIBUTE_ANONYMITY_H_
