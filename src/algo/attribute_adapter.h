#ifndef KANON_ALGO_ATTRIBUTE_ADAPTER_H_
#define KANON_ALGO_ATTRIBUTE_ADAPTER_H_

#include <memory>

#include "algo/anonymizer.h"
#include "algo/attribute_anonymity.h"

/// \file
/// Adapter exposing the Section 3.1 attribute-suppression solvers
/// through the entry-suppression `Anonymizer` interface: a suppressed
/// attribute is n starred entries, so the adapter's `cost` is directly
/// comparable with the entry-level algorithms — which is exactly the
/// comparison Theorem 3.2 motivates (whole-column suppression is the
/// coarsest suppressor shape).

namespace kanon {

/// Wraps an AttributeAnonymizer as an Anonymizer.
class AttributeAdapterAnonymizer : public Anonymizer {
 public:
  explicit AttributeAdapterAnonymizer(
      std::unique_ptr<AttributeAnonymizer> solver);

  using Anonymizer::Run;
  std::string name() const override;
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

 private:
  std::unique_ptr<AttributeAnonymizer> solver_;
};

}  // namespace kanon

#endif  // KANON_ALGO_ATTRIBUTE_ADAPTER_H_
