#ifndef KANON_ALGO_ATTRIBUTE_EXACT_H_
#define KANON_ALGO_ATTRIBUTE_EXACT_H_

#include "algo/attribute_anonymity.h"

/// \file
/// Exact solver for k-ANONYMITY ON ATTRIBUTES. The problem is NP-hard
/// (Theorem 3.2), so this is exponential in m: kept-attribute sets are
/// enumerated by decreasing cardinality and the first feasible set wins
/// (feasibility is downward monotone, so that set is optimal). The
/// hardness experiment E2 uses this as its optimality oracle.

namespace kanon {

/// Configuration for ExactAttributeAnonymizer.
struct ExactAttributeOptions {
  /// Hard cap on the number of columns (2^m subsets in the worst case).
  size_t max_columns = 24;
};

/// Exact exponential-in-m solver.
class ExactAttributeAnonymizer : public AttributeAnonymizer {
 public:
  explicit ExactAttributeAnonymizer(ExactAttributeOptions options = {});

  using AttributeAnonymizer::Solve;
  std::string name() const override { return "attribute_exact"; }
  AttributeResult Solve(const Table& table, size_t k,
                        RunContext* ctx) override;

 private:
  ExactAttributeOptions options_;
};

}  // namespace kanon

#endif  // KANON_ALGO_ATTRIBUTE_EXACT_H_
