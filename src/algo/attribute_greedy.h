#ifndef KANON_ALGO_ATTRIBUTE_GREEDY_H_
#define KANON_ALGO_ATTRIBUTE_GREEDY_H_

#include "algo/attribute_anonymity.h"

/// \file
/// Greedy backward-elimination heuristic for k-ANONYMITY ON ATTRIBUTES:
/// starting from all attributes kept, repeatedly suppress the attribute
/// whose removal raises the projection's anonymity level the most (ties:
/// the attribute with the largest alphabet, then lowest index), until the
/// projection is k-anonymous. Polynomial: O(m^2) feasibility checks.
/// No approximation guarantee — Theorem 3.2's hardness suggests none is
/// cheap to get — but it is the natural practical heuristic and E2
/// measures its gap against the exact solver.

namespace kanon {

/// Greedy backward elimination.
class GreedyAttributeAnonymizer : public AttributeAnonymizer {
 public:
  using AttributeAnonymizer::Solve;
  std::string name() const override { return "attribute_greedy"; }
  AttributeResult Solve(const Table& table, size_t k,
                        RunContext* ctx) override;
};

}  // namespace kanon

#endif  // KANON_ALGO_ATTRIBUTE_GREEDY_H_
