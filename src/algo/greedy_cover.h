#ifndef KANON_ALGO_GREEDY_COVER_H_
#define KANON_ALGO_GREEDY_COVER_H_

#include <cstddef>

#include "algo/anonymizer.h"

/// \file
/// The paper's first approximation algorithm (Theorem 4.1):
///
///   1. Build the collection C of ALL subsets of rows with cardinality in
///      [k, 2k-1], weighted by Hamming diameter.
///   2. Greedy weighted set cover over C — a (1 + ln 2k)-approximation
///      (the paper states 1 + ln k for subsets "of cardinality at most
///      2k"; the constant is absorbed into the O(k log k) statement) to
///      the k-minimum diameter sum, relaxed to covers.
///   3. Reduce the cover to a (k, 2k-1)-partition (no diameter-sum
///      increase).
///   4. Star each group's disagreeing columns.
///
/// Total approximation ratio for k-anonymity: 3k(1 + ln 2k) via
/// Lemma 4.1 / Corollary 4.1. Runtime O(n^{2k}) — exponential in k, so
/// Run() refuses instances whose family C would exceed `max_family_size`.

namespace kanon {

/// Configuration for GreedyCoverAnonymizer.
struct GreedyCoverOptions {
  /// Hard cap on |C| = sum_{s=k}^{2k-1} C(n, s); Run() dies if exceeded
  /// (the strongly-polynomial BallCoverAnonymizer is the right tool
  /// there). 20M sets ~ a few GB of transient member lists; the default
  /// keeps experiments laptop-friendly.
  size_t max_family_size = 2'000'000;
};

/// Theorem 4.1 algorithm.
class GreedyCoverAnonymizer : public Anonymizer {
 public:
  explicit GreedyCoverAnonymizer(GreedyCoverOptions options = {});

  using Anonymizer::Run;
  std::string name() const override { return "greedy_cover"; }
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

  /// Number of sets Run() would enumerate for (n, k); saturates at
  /// SIZE_MAX on overflow. Exposed so callers can pre-check feasibility.
  static size_t FamilySize(size_t n, size_t k);

 private:
  GreedyCoverOptions options_;
};

}  // namespace kanon

#endif  // KANON_ALGO_GREEDY_COVER_H_
