#ifndef KANON_ALGO_ANONYMIZER_H_
#define KANON_ALGO_ANONYMIZER_H_

#include <cstddef>
#include <memory>
#include <string>

#include "core/partition.h"
#include "core/suppressor.h"
#include "data/table.h"
#include "util/run_context.h"

/// \file
/// Common interface of every k-anonymization algorithm in the library:
/// the paper's two approximation algorithms, the exact solvers and the
/// literature baselines. An algorithm produces a partition of the rows
/// into groups of size >= k; the canonical suppressor for that partition
/// (star each group's disagreeing columns) is the anonymization.
///
/// Every run is governed by a RunContext (util/run_context.h): solvers
/// poll `ctx->ShouldStop()` at cooperative checkpoints, so a deadline,
/// node budget or cancellation ends the run within one checkpoint
/// interval. A stopped solver either returns its best valid incumbent
/// (anytime solvers: branch & bound, the post-optimizers) or an *empty*
/// partition when it has nothing valid yet (the set-cover family,
/// exact_dp mid-sweep); `termination` records which happened. The
/// `resilient` FallbackAnonymizer (algo/fallback.h) builds on this to
/// always return a valid partition.

namespace kanon {

/// Output of one anonymization run.
struct AnonymizationResult {
  /// Row groups; every group has size >= k and each row appears once.
  /// Empty (only) when the run was stopped before any valid partition
  /// existed — check `termination` before consuming.
  Partition partition;
  /// Stars inserted by the canonical suppressor of `partition` (the
  /// paper's objective value).
  size_t cost = 0;
  /// Diameter sum of the partition (the surrogate objective of §4.1).
  size_t diameter_sum = 0;
  /// Wall-clock seconds spent inside Run().
  double seconds = 0.0;
  /// Free-form counters (nodes explored, cover iterations, ...).
  std::string notes;
  /// Why the run ended: StopReason::kNone means it ran to completion;
  /// kDeadline/kBudget/kCancelled mean the RunContext stopped it (or
  /// the solver declined a structural cap on a lenient context).
  StopReason termination = StopReason::kNone;
  /// Chain stage that produced `partition` (filled by the resilient
  /// fallback anonymizer; empty for direct solver runs).
  std::string stage;

  /// True iff the run finished without tripping any limit.
  bool completed() const { return termination == StopReason::kNone; }

  /// Materializes the canonical suppressor.
  Suppressor MakeSuppressor(const Table& table) const;
};

/// Abstract k-anonymizer.
class Anonymizer {
 public:
  virtual ~Anonymizer() = default;

  /// Stable machine-readable identifier ("greedy_cover", "exact_dp", ...).
  virtual std::string name() const = 0;

  /// Runs on `table` with privacy parameter k under execution-control
  /// context `ctx` (never null). Requires 1 <= k <= table.num_rows() (a
  /// relation with n < k rows cannot be k-anonymized at all, per
  /// Definition 2.2). When the run completes, implementations return a
  /// valid partition with all groups >= k and fill `cost`,
  /// `diameter_sum` and `seconds`; when `ctx` stops the run they return
  /// either a valid incumbent or an empty partition, with `termination`
  /// set to the stop reason either way.
  virtual AnonymizationResult Run(const Table& table, size_t k,
                                  RunContext* ctx) = 0;

  /// Back-compat convenience: runs under a fresh unlimited, strict
  /// context. (Subclasses re-expose this via `using Anonymizer::Run;`.)
  AnonymizationResult Run(const Table& table, size_t k);
};

/// Validates a result against `table`/`k` and dies on violations; returns
/// the result by value for chaining. Used by tests and the harness.
AnonymizationResult ValidateResult(const Table& table, size_t k,
                                   AnonymizationResult result);

/// Fills cost/diameter_sum of `result` from its partition.
void FinalizeResult(const Table& table, AnonymizationResult* result);

/// The "run stopped before any valid partition existed" result: empty
/// partition, termination = ctx->stop_reason(), cost fields zero.
AnonymizationResult StoppedResult(const RunContext& ctx, double seconds,
                                  std::string notes);

}  // namespace kanon

#endif  // KANON_ALGO_ANONYMIZER_H_
