#ifndef KANON_ALGO_ANONYMIZER_H_
#define KANON_ALGO_ANONYMIZER_H_

#include <cstddef>
#include <memory>
#include <string>

#include "core/partition.h"
#include "core/suppressor.h"
#include "data/table.h"

/// \file
/// Common interface of every k-anonymization algorithm in the library:
/// the paper's two approximation algorithms, the exact solvers and the
/// literature baselines. An algorithm produces a partition of the rows
/// into groups of size >= k; the canonical suppressor for that partition
/// (star each group's disagreeing columns) is the anonymization.

namespace kanon {

/// Output of one anonymization run.
struct AnonymizationResult {
  /// Row groups; every group has size >= k and each row appears once.
  Partition partition;
  /// Stars inserted by the canonical suppressor of `partition` (the
  /// paper's objective value).
  size_t cost = 0;
  /// Diameter sum of the partition (the surrogate objective of §4.1).
  size_t diameter_sum = 0;
  /// Wall-clock seconds spent inside Run().
  double seconds = 0.0;
  /// Free-form counters (nodes explored, cover iterations, ...).
  std::string notes;

  /// Materializes the canonical suppressor.
  Suppressor MakeSuppressor(const Table& table) const;
};

/// Abstract k-anonymizer.
class Anonymizer {
 public:
  virtual ~Anonymizer() = default;

  /// Stable machine-readable identifier ("greedy_cover", "exact_dp", ...).
  virtual std::string name() const = 0;

  /// Runs on `table` with privacy parameter k. Requires
  /// 1 <= k <= table.num_rows() (a relation with n < k rows cannot be
  /// k-anonymized at all, per Definition 2.2). Implementations must
  /// return a valid partition with all groups >= k and must fill `cost`,
  /// `diameter_sum` and `seconds`.
  virtual AnonymizationResult Run(const Table& table, size_t k) = 0;
};

/// Validates a result against `table`/`k` and dies on violations; returns
/// the result by value for chaining. Used by tests and the harness.
AnonymizationResult ValidateResult(const Table& table, size_t k,
                                   AnonymizationResult result);

/// Fills cost/diameter_sum of `result` from its partition.
void FinalizeResult(const Table& table, AnonymizationResult* result);

}  // namespace kanon

#endif  // KANON_ALGO_ANONYMIZER_H_
