#include "algo/cluster_greedy.h"

#include <algorithm>
#include <sstream>

#include "core/cost.h"
#include "core/distance_oracle.h"
#include "core/group_stats.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

AnonymizationResult ClusterGreedyAnonymizer::Run(const Table& table, size_t k,
                                                 RunContext* ctx) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);

  WallTimer timer;
  const StatusOr<std::shared_ptr<const DistanceOracle>> oracle =
      SharedDistanceOracle(table, ctx);
  if (!oracle.ok()) {
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: " + oracle.status().message());
  }
  const DistanceOracle& dm = **oracle;
  std::vector<bool> assigned(n, false);
  size_t unassigned = n;

  AnonymizationResult result;
  // Incremental stats of each finished group, kept in step with
  // result.partition.groups for the leftover fold below.
  std::vector<GroupStats> stats;
  RowId seed = 0;
  while (unassigned >= k) {
    // Seed: the unassigned row farthest from the previous seed (first
    // iteration: row 0).
    RowId far = n;
    ColId far_dist = 0;
    for (RowId r = 0; r < n; ++r) {
      if (assigned[r]) continue;
      const ColId d = result.partition.groups.empty() && r == 0
                          ? 0
                          : dm.at(seed, r);
      if (far == n || d > far_dist) {
        far = r;
        far_dist = d;
      }
    }
    KANON_CHECK_LT(far, n);
    seed = far;

    Group group = {seed};
    GroupStats group_stats(table);
    group_stats.Add(seed);
    assigned[seed] = true;
    --unassigned;
    while (group.size() < k) {
      // O(m) what-if probe per candidate instead of rescanning the
      // whole group; same integers, so ties resolve identically.
      RowId best = n;
      size_t best_cost = 0;
      for (RowId r = 0; r < n; ++r) {
        if (assigned[r]) continue;
        const size_t c = group_stats.CostWith(r);
        if (best == n || c < best_cost) {
          best = r;
          best_cost = c;
        }
      }
      KANON_CHECK_LT(best, n);
      group.push_back(best);
      group_stats.Add(best);
      assigned[best] = true;
      --unassigned;
    }
    result.partition.groups.push_back(std::move(group));
    stats.push_back(std::move(group_stats));
  }

  // Fold leftovers into the cheapest group.
  for (RowId r = 0; r < n; ++r) {
    if (assigned[r]) continue;
    size_t best_group = 0;
    size_t best_delta = 0;
    bool first = true;
    for (size_t g = 0; g < stats.size(); ++g) {
      const size_t delta = stats[g].CostWith(r) - stats[g].anon_cost();
      if (first || delta < best_delta) {
        first = false;
        best_group = g;
        best_delta = delta;
      }
    }
    KANON_CHECK(!first);
    result.partition.groups[best_group].push_back(r);
    stats[best_group].Add(r);
    assigned[r] = true;
  }

  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  std::ostringstream notes;
  notes << "groups=" << result.partition.num_groups();
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
