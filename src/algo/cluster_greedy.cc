#include "algo/cluster_greedy.h"

#include <algorithm>
#include <sstream>

#include "core/cost.h"
#include "core/distance.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

namespace {

/// ANON cost of `group` with `extra` appended (without mutating group).
size_t CostWith(const Table& table, const Group& group, RowId extra) {
  Group tmp = group;
  tmp.push_back(extra);
  return AnonCost(table, tmp);
}

}  // namespace

AnonymizationResult ClusterGreedyAnonymizer::Run(const Table& table, size_t k,
                                                 RunContext* /*ctx*/) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);

  WallTimer timer;
  const DistanceMatrix dm(table);
  std::vector<bool> assigned(n, false);
  size_t unassigned = n;

  AnonymizationResult result;
  RowId seed = 0;
  while (unassigned >= k) {
    // Seed: the unassigned row farthest from the previous seed (first
    // iteration: row 0).
    RowId far = n;
    ColId far_dist = 0;
    for (RowId r = 0; r < n; ++r) {
      if (assigned[r]) continue;
      const ColId d = result.partition.groups.empty() && r == 0
                          ? 0
                          : dm.at(seed, r);
      if (far == n || d > far_dist) {
        far = r;
        far_dist = d;
      }
    }
    KANON_CHECK_LT(far, n);
    seed = far;

    Group group = {seed};
    assigned[seed] = true;
    --unassigned;
    while (group.size() < k) {
      RowId best = n;
      size_t best_cost = 0;
      for (RowId r = 0; r < n; ++r) {
        if (assigned[r]) continue;
        const size_t c = CostWith(table, group, r);
        if (best == n || c < best_cost) {
          best = r;
          best_cost = c;
        }
      }
      KANON_CHECK_LT(best, n);
      group.push_back(best);
      assigned[best] = true;
      --unassigned;
    }
    result.partition.groups.push_back(std::move(group));
  }

  // Fold leftovers into the cheapest group.
  for (RowId r = 0; r < n; ++r) {
    if (assigned[r]) continue;
    size_t best_group = 0;
    size_t best_delta = 0;
    bool first = true;
    for (size_t g = 0; g < result.partition.groups.size(); ++g) {
      const Group& group = result.partition.groups[g];
      const size_t delta =
          CostWith(table, group, r) - AnonCost(table, group);
      if (first || delta < best_delta) {
        first = false;
        best_group = g;
        best_delta = delta;
      }
    }
    KANON_CHECK(!first);
    result.partition.groups[best_group].push_back(r);
    assigned[r] = true;
  }

  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  std::ostringstream notes;
  notes << "groups=" << result.partition.num_groups();
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
