#include "algo/attribute_exact.h"

#include <bit>
#include <sstream>

#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

namespace {

/// Enumerates all `s`-subsets of [0, m) as bitmasks in lexicographic
/// order of their member lists; returns false from `fn` to stop early.
template <typename Fn>
bool ForEachColumnSubset(ColId m, size_t s, Fn&& fn) {
  if (s > m) return true;
  if (s == 0) return fn(uint64_t{0});
  std::vector<ColId> idx(s);
  for (size_t i = 0; i < s; ++i) idx[i] = static_cast<ColId>(i);
  for (;;) {
    uint64_t mask = 0;
    for (const ColId c : idx) mask |= uint64_t{1} << c;
    if (!fn(mask)) return false;
    size_t i = s;
    bool advanced = false;
    while (i > 0) {
      --i;
      if (idx[i] + (s - i) < m) {
        ++idx[i];
        for (size_t j = i + 1; j < s; ++j) idx[j] = idx[j - 1] + 1;
        advanced = true;
        break;
      }
    }
    if (!advanced) return true;
  }
}

}  // namespace

ExactAttributeAnonymizer::ExactAttributeAnonymizer(
    ExactAttributeOptions options)
    : options_(options) {}

AttributeResult ExactAttributeAnonymizer::Solve(const Table& table,
                                                size_t k, RunContext* ctx) {
  const ColId m = table.num_columns();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(table.num_rows()), k);
  WallTimer timer;
  if (static_cast<size_t>(m) > options_.max_columns) {
    if (!ctx->lenient()) {
      KANON_CHECK_LE(static_cast<size_t>(m), options_.max_columns)
          << "attribute_exact is exponential in m";
    }
    ctx->MarkStopped(StopReason::kBudget);
  }

  size_t checked = 0;
  uint64_t best_kept = 0;
  bool found = false;
  bool stopped = ctx->ShouldStop();
  // Largest kept set first; the first feasible one is optimal by
  // downward monotonicity of feasibility.
  for (size_t kept_size = m; !found && !stopped; --kept_size) {
    ForEachColumnSubset(m, kept_size, [&](uint64_t kept) {
      ++checked;
      if ((checked & 0x1ff) == 0 && ctx->ShouldStop()) {
        stopped = true;
        return false;
      }
      if (KeptSetFeasible(table, kept, k)) {
        best_kept = kept;
        found = true;
        return false;  // stop enumeration at this size
      }
      return true;
    });
    if (kept_size == 0) break;
  }
  if (stopped) {
    // Degrade to the all-suppressed solution, which is feasible for any
    // n >= k (every projected row is the empty tuple).
    best_kept = 0;
    found = true;
  }
  KANON_CHECK(found);  // kept_size == 0 is always feasible for n >= k

  AttributeResult result;
  for (ColId c = 0; c < m; ++c) {
    if (!(best_kept & (uint64_t{1} << c))) result.suppressed.push_back(c);
  }
  result.partition = GroupByKeptColumns(table, best_kept);
  result.seconds = timer.Seconds();
  result.termination = ctx->stop_reason();
  std::ostringstream notes;
  notes << "kept_sets_checked=" << checked;
  if (stopped) notes << " degraded=all_suppressed";
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
