#ifndef KANON_ALGO_SHARD_PLAN_H_
#define KANON_ALGO_SHARD_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/partition.h"
#include "data/table.h"
#include "util/run_context.h"
#include "util/status.h"

/// \file
/// Shard planning: the first stage of the sharded solve pipeline.
///
/// Lemma 4.1 sandwiches the optimal suppression cost between diameter
/// sums of (k, 2k-1)-partitions, so a table cut into geometrically
/// coherent shards can be solved per-shard and merged with a bounded
/// quality penalty. `PlanShards` produces that cut with Mondrian-style
/// median splits over the columnar mirror: starting from one shard
/// holding every row, it repeatedly takes the largest shard, sorts its
/// rows by the column with the most distinct values inside the shard
/// (ties -> lowest column id; row-id tiebreak inside equal codes), and
/// splits at the median index, clamped so both halves keep at least
/// 2k-1 rows — the wlog group-size ceiling, so every shard can hold at
/// least one full group after the inner solver's own wlog step.
///
/// The plan is a pure function of (table, k, options): no randomness,
/// no wall clock, so a resumed run replans the identical cut and can
/// validate per-shard snapshots against `ShardPlan::Fingerprint()`.
/// Fault site `shard.plan` fires a typed budget decline for chaos
/// testing.

namespace kanon {

/// Default shard count when ShardOptions::shards == 0.
inline constexpr size_t kDefaultShardCount = 8;

/// Knobs for the sharded pipeline (planning + solve concurrency).
struct ShardOptions {
  /// Target shard count; 0 means kDefaultShardCount. The planner may
  /// produce fewer shards when n cannot feed `shards` shards of 2k-1
  /// rows each (never more).
  size_t shards = 0;
  /// Concurrent shard solves; 0 means the process parallelism cap
  /// (GetParallelism()). Clamped to the shard count and to the global
  /// cap, so a pool of workers cannot oversubscribe the machine.
  size_t shard_parallelism = 0;

  /// Stable fingerprint over every knob; keyed into the service result
  /// cache so runs with different knobs can never collide.
  uint64_t Fingerprint() const;
};

/// The planned cut: disjoint row-id lists covering [0, n), each sorted
/// ascending, ordered by their smallest member.
struct ShardPlan {
  std::vector<Group> shards;

  size_t num_shards() const { return shards.size(); }

  /// Digest of the cut (shard count, sizes, boundary rows) used to
  /// stamp per-shard resume snapshots: a snapshot taken under a
  /// different plan must never be restored.
  uint64_t Fingerprint() const;
};

/// Shard count PlanShards will actually target for an n-row table:
/// min(requested, n / (2k-1)), at least 1. When this returns 1 the
/// caller should run the inner solver directly — sharding would not
/// decompose the instance.
size_t ResolveShardCount(size_t n, size_t k, const ShardOptions& options);

/// Plans the cut. Typed failures: kCancelled/kDeadlineExceeded/
/// kResourceExhausted when `ctx` stops (the scratch row-order array is
/// charged against the memory budget), kInvalidArgument on an empty
/// table or k > n. Fault site `shard.plan` fires a typed budget
/// decline.
StatusOr<ShardPlan> PlanShards(const Table& table, size_t k,
                               const ShardOptions& options,
                               RunContext* ctx);

}  // namespace kanon

#endif  // KANON_ALGO_SHARD_PLAN_H_
