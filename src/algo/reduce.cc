#include "algo/reduce.h"

#include <algorithm>

#include "util/logging.h"

namespace kanon {

namespace {

/// Locates some row present in two different groups. Returns true and
/// fills (row, group_a, group_b) if found.
bool FindOverlap(const Partition& p, RowId n, RowId* row, size_t* group_a,
                 size_t* group_b) {
  // first_seen[r] = index of the first group containing r, or npos.
  constexpr size_t kNone = static_cast<size_t>(-1);
  std::vector<size_t> first_seen(n, kNone);
  for (size_t g = 0; g < p.groups.size(); ++g) {
    for (const RowId r : p.groups[g]) {
      if (first_seen[r] == kNone) {
        first_seen[r] = g;
      } else {
        *row = r;
        *group_a = first_seen[r];
        *group_b = g;
        return true;
      }
    }
  }
  return false;
}

void EraseRow(Group* g, RowId row) {
  const auto it = std::find(g->begin(), g->end(), row);
  KANON_CHECK(it != g->end());
  g->erase(it);
}

}  // namespace

Partition ReduceCoverToPartition(const Table& table, const Partition& cover,
                                 size_t k) {
  const RowId n = table.num_rows();
  KANON_CHECK(IsValidCover(cover, n, k, n));
  Partition p = cover;

  RowId row = 0;
  size_t ga = 0, gb = 0;
  while (FindOverlap(p, n, &row, &ga, &gb)) {
    Group& a = p.groups[ga];
    Group& b = p.groups[gb];
    if (a.size() > k || b.size() > k) {
      // Remove the shared row from the larger set (ties: from `a`).
      if (a.size() >= b.size()) {
        EraseRow(&a, row);
      } else {
        EraseRow(&b, row);
      }
    } else {
      // Both have exactly k members; merge. |a ∪ b| <= 2k-1 because they
      // share `row`.
      Group merged = a;
      for (const RowId r : b) {
        if (std::find(merged.begin(), merged.end(), r) == merged.end()) {
          merged.push_back(r);
        }
      }
      KANON_CHECK_LE(merged.size(), 2 * k - 1);
      // Replace group ga, delete group gb (order: erase the higher index
      // first so `ga` stays valid).
      KANON_CHECK_LT(ga, gb);
      p.groups[ga] = std::move(merged);
      p.groups.erase(p.groups.begin() + static_cast<ptrdiff_t>(gb));
    }
  }

  KANON_CHECK(IsValidPartition(p, n, k, n));
  return p;
}

}  // namespace kanon
