#include "algo/random_partition.h"

#include "core/cost.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace kanon {

AnonymizationResult RandomPartitionAnonymizer::Run(const Table& table, size_t k,
                                                   RunContext* /*ctx*/) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);

  WallTimer timer;
  Rng rng(seed_);
  Group all(n);
  for (RowId r = 0; r < n; ++r) all[r] = r;
  rng.Shuffle(&all);

  Partition shuffled;
  shuffled.groups.push_back(std::move(all));

  AnonymizationResult result;
  result.partition = SplitLargeGroups(shuffled, k);
  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace kanon
