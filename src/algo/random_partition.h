#ifndef KANON_ALGO_RANDOM_PARTITION_H_
#define KANON_ALGO_RANDOM_PARTITION_H_

#include <cstdint>

#include "algo/anonymizer.h"

/// \file
/// Sanity-floor baseline: shuffle the rows and chop them into consecutive
/// groups of k (remainder folded into the last group). Any algorithm
/// with a claim to intelligence must beat this on structured data; on
/// fully uniform data it is near-unbeatable, which E8 demonstrates.

namespace kanon {

/// Random chop baseline. Deterministic for a fixed seed.
class RandomPartitionAnonymizer : public Anonymizer {
 public:
  explicit RandomPartitionAnonymizer(uint64_t seed = 1)
      : seed_(seed) {}

  using Anonymizer::Run;
  std::string name() const override { return "random_partition"; }
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

 private:
  uint64_t seed_;
};

}  // namespace kanon

#endif  // KANON_ALGO_RANDOM_PARTITION_H_
