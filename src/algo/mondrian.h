#ifndef KANON_ALGO_MONDRIAN_H_
#define KANON_ALGO_MONDRIAN_H_

#include "algo/anonymizer.h"

/// \file
/// Mondrian-style multidimensional recursive partitioning baseline
/// (LeFevre, DeWitt & Ramakrishnan, ICDE 2006), adapted from
/// generalization to the paper's suppression model.
///
/// Recursively split the current row group on the attribute with the
/// widest dictionary-code span inside the group, at the median code, as
/// long as both sides keep >= k rows; leaves become the k-groups and are
/// suppressed canonically. This is the standard practical competitor the
/// paper's algorithms are benchmarked against in E8/E9.

namespace kanon {

/// Mondrian baseline.
class MondrianAnonymizer : public Anonymizer {
 public:
  using Anonymizer::Run;
  std::string name() const override { return "mondrian"; }
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;
};

}  // namespace kanon

#endif  // KANON_ALGO_MONDRIAN_H_
