#include "algo/greedy_cover.h"

#include <limits>
#include <sstream>

#include "algo/reduce.h"
#include "core/cost.h"
#include "core/distance_oracle.h"
#include "fault/fault.h"
#include "setcover/set_cover.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

namespace {

/// Saturating binomial coefficient.
size_t Binomial(size_t n, size_t r) {
  if (r > n) return 0;
  r = std::min(r, n - r);
  size_t result = 1;
  for (size_t i = 1; i <= r; ++i) {
    const size_t numer = n - r + i;
    if (result > std::numeric_limits<size_t>::max() / numer) {
      return std::numeric_limits<size_t>::max();
    }
    result = result * numer / i;
  }
  return result;
}

/// Enumerates all size-`s` subsets of [0, n) in lexicographic order,
/// invoking `fn` with each subset.
/// `fn` returns false to abort the enumeration early.
template <typename Fn>
void ForEachCombination(RowId n, size_t s, Fn&& fn) {
  if (s == 0 || s > n) return;
  std::vector<RowId> combo(s);
  for (size_t i = 0; i < s; ++i) combo[i] = static_cast<RowId>(i);
  for (;;) {
    if (!fn(combo)) return;
    // Advance to the next combination.
    size_t i = s;
    while (i > 0) {
      --i;
      if (combo[i] + (s - i) < n) {
        ++combo[i];
        for (size_t j = i + 1; j < s; ++j) combo[j] = combo[j - 1] + 1;
        break;
      }
      if (i == 0) return;
    }
  }
}

}  // namespace

GreedyCoverAnonymizer::GreedyCoverAnonymizer(GreedyCoverOptions options)
    : options_(options) {}

size_t GreedyCoverAnonymizer::FamilySize(size_t n, size_t k) {
  size_t total = 0;
  for (size_t s = k; s <= 2 * k - 1; ++s) {
    const size_t c = Binomial(n, s);
    if (c == std::numeric_limits<size_t>::max() ||
        total > std::numeric_limits<size_t>::max() - c) {
      return std::numeric_limits<size_t>::max();
    }
    total += c;
  }
  return total;
}

AnonymizationResult GreedyCoverAnonymizer::Run(const Table& table,
                                               size_t k,
                                               RunContext* ctx) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);
  WallTimer timer;
  const size_t family_size = FamilySize(n, k);
  if (family_size > options_.max_family_size) {
    if (!ctx->lenient()) {
      KANON_CHECK_LE(family_size, options_.max_family_size)
          << "family C too large for greedy_cover; use ball_cover";
    }
    ctx->MarkStopped(StopReason::kBudget);
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: family C exceeds max_family_size");
  }
  // Rough per-set footprint: the member list plus its weight. An
  // injected allocation failure declines exactly like a memory cap.
  const size_t family_bytes =
      family_size * (2 * k * sizeof(uint32_t) + sizeof(double));
  if (KANON_FAULT_POINT("greedy_cover.alloc")) {
    ctx->MarkStopped(StopReason::kBudget);
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: injected allocation failure");
  }
  if (!ctx->TryChargeMemory(family_bytes)) {
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: family C exceeds memory limit");
  }

  const StatusOr<std::shared_ptr<const DistanceOracle>> oracle =
      SharedDistanceOracle(table, ctx);
  if (!oracle.ok()) {
    ctx->ReleaseMemory(family_bytes);
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: " + oracle.status().message());
  }
  const DistanceOracle& dm = **oracle;

  // Phase 0: materialize C, the family of all subsets with cardinality in
  // [k, 2k-1], weighted by diameter.
  std::vector<std::vector<uint32_t>> sets;
  std::vector<double> weights;
  bool stopped = false;
  size_t enumerated = 0;
  for (size_t s = k; s <= 2 * k - 1 && s <= n && !stopped; ++s) {
    ForEachCombination(n, s, [&](const std::vector<RowId>& combo) {
      if ((++enumerated & 0xfff) == 0) {
        if (KANON_FAULT_POINT("greedy_cover.family")) {
          ctx->MarkStopped(StopReason::kDeadline);
        }
        if (ctx->ShouldStop()) {
          stopped = true;
          return false;
        }
      }
      sets.emplace_back(combo.begin(), combo.end());
      weights.push_back(static_cast<double>(dm.Diameter(combo)));
      return true;
    });
  }
  if (stopped) {
    ctx->ReleaseMemory(family_bytes);
    return StoppedResult(*ctx, timer.Seconds(),
                         "stopped while materializing family C");
  }
  const VectorSetFamily family(n, std::move(sets), std::move(weights));

  // Phase 1: greedy cover.
  const SetCoverResult cover_result = GreedySetCover(family, ctx);
  if (!cover_result.complete) {
    KANON_CHECK(ctx->stop_reason() != StopReason::kNone)
        << "family C always covers the universe";
    ctx->ReleaseMemory(family_bytes);
    return StoppedResult(*ctx, timer.Seconds(),
                         "stopped during greedy cover");
  }
  Partition cover;
  cover.groups.reserve(cover_result.chosen.size());
  for (const size_t s : cover_result.chosen) {
    const std::vector<uint32_t> members = family.Members(s);
    cover.groups.emplace_back(members.begin(), members.end());
  }

  // Phase 2: cover -> partition (diameter sum does not increase).
  AnonymizationResult result;
  result.partition = ReduceCoverToPartition(table, cover, k);

  // Phase 3: the canonical suppressor cost.
  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  std::ostringstream notes;
  notes << "family=" << family.NumSets()
        << " cover_sets=" << cover_result.chosen.size()
        << " cover_weight=" << cover_result.total_weight;
  result.notes = notes.str();
  ctx->ReleaseMemory(family_bytes);
  return result;
}

}  // namespace kanon
