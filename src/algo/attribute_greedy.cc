#include "algo/attribute_greedy.h"

#include <sstream>

#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

AttributeResult GreedyAttributeAnonymizer::Solve(const Table& table,
                                                 size_t k, RunContext* ctx) {
  const ColId m = table.num_columns();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(table.num_rows()), k);
  KANON_CHECK_LE(m, 63u);

  WallTimer timer;
  uint64_t kept = (m == 0) ? 0 : ((uint64_t{1} << m) - 1);
  AttributeResult result;
  size_t checks = 0;

  bool stopped = false;
  while (true) {
    ++checks;
    if (ctx->ShouldStop()) {
      // Degrade: suppress every remaining kept column. The all-suppressed
      // projection is k-anonymous for any n >= k.
      stopped = true;
      for (ColId c = 0; c < m; ++c) {
        if (kept & (uint64_t{1} << c)) result.suppressed.push_back(c);
      }
      kept = 0;
      break;
    }
    if (KeptSetFeasible(table, kept, k)) break;
    // Pick the kept attribute whose suppression maximizes the projection
    // anonymity level.
    ColId best_col = m;
    size_t best_level = 0;
    size_t best_alphabet = 0;
    for (ColId c = 0; c < m; ++c) {
      const uint64_t bit = uint64_t{1} << c;
      if (!(kept & bit)) continue;
      ++checks;
      const size_t level = ProjectionAnonymityLevel(table, kept & ~bit);
      const size_t alphabet = table.schema().dictionary(c).size();
      if (best_col == m || level > best_level ||
          (level == best_level && alphabet > best_alphabet)) {
        best_col = c;
        best_level = level;
        best_alphabet = alphabet;
      }
    }
    KANON_CHECK_LT(best_col, m);  // kept nonempty while infeasible
    kept &= ~(uint64_t{1} << best_col);
    result.suppressed.push_back(best_col);
  }

  result.partition = GroupByKeptColumns(table, kept);
  result.seconds = timer.Seconds();
  result.termination = ctx->stop_reason();
  std::ostringstream notes;
  notes << "feasibility_checks=" << checks;
  if (stopped) notes << " degraded=all_suppressed";
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
