#ifndef KANON_ALGO_CLUSTER_GREEDY_H_
#define KANON_ALGO_CLUSTER_GREEDY_H_

#include "algo/anonymizer.h"

/// \file
/// k-member greedy clustering baseline (Byun et al., DASFAA 2007 style):
/// repeatedly open a group at the row farthest from the previous group's
/// seed, then greedily add the unassigned row whose inclusion increases
/// the group's ANON cost the least, until the group has k members.
/// Leftover rows (< k of them) are folded into the group whose cost
/// grows least. A strong practical competitor on clustered data.

namespace kanon {

/// Greedy k-member clustering baseline.
class ClusterGreedyAnonymizer : public Anonymizer {
 public:
  using Anonymizer::Run;
  std::string name() const override { return "cluster_greedy"; }
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;
};

}  // namespace kanon

#endif  // KANON_ALGO_CLUSTER_GREEDY_H_
