#include "algo/local_search.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <sstream>

#include "ckpt/checkpoint.h"
#include "core/cost.h"
#include "core/group_stats.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

size_t ImprovePartition(const Table& table, size_t k,
                        const LocalSearchOptions& options,
                        Partition* partition, RunContext* ctx) {
  size_t start_pass = 0;
  size_t applied = 0;
  if (ctx != nullptr) {
    if (const std::optional<std::string> state =
            ctx->resume_payload("local_search")) {
      // Snapshots are taken only at pass boundaries, so restoring the
      // partition and re-entering the loop at the saved pass replays
      // the identical deterministic pass sequence. The snapshot crossed
      // a crash: re-verify everything and ignore it on any mismatch.
      CheckpointReader r(*state);
      const size_t pass = r.GetU64();
      const size_t saved_applied = r.GetU64();
      const size_t saved_cost = r.GetU64();
      Partition saved = r.GetPartition();
      if (!r.failed() && r.AtEnd() && pass <= options.max_passes &&
          IsValidPartition(saved, table.num_rows(), k, table.num_rows()) &&
          PartitionCost(table, saved) == saved_cost &&
          saved_cost <= PartitionCost(table, *partition)) {
        *partition = std::move(saved);
        start_pass = pass;
        applied = saved_applied;
      }
    }
  }
  KANON_CHECK(IsValidPartition(*partition, table.num_rows(), k,
                               table.num_rows()));
  std::vector<Group>& groups = partition->groups;
  // Incremental per-group statistics: every candidate probe below is an
  // O(m) GroupStats what-if instead of an O(|group| m) rescan, and the
  // probes return the exact AnonCost integers, so accept/reject
  // decisions and tie-breaks match the rescanning implementation
  // move-for-move.
  std::vector<GroupStats> stats;
  stats.reserve(groups.size());
  std::vector<size_t> cost(groups.size());
  for (size_t g = 0; g < groups.size(); ++g) {
    stats.emplace_back(table, groups[g]);
    cost[g] = stats[g].anon_cost();
  }

  const auto stop = [&] {
    if (ctx == nullptr) return false;
    // Each stop probe charges one node so iteration budgets can
    // interrupt a pass mid-scan, deterministically.
    ctx->ChargeNodes();
    return ctx->ShouldStop();
  };
  for (size_t pass = start_pass; pass < options.max_passes && !stop();
       ++pass) {
    if (ctx != nullptr && ctx->CheckpointDue()) {
      CheckpointWriter w;
      w.PutU64(pass);
      w.PutU64(applied);
      w.PutU64(std::accumulate(cost.begin(), cost.end(), size_t{0}));
      w.PutPartition(*partition);
      (void)ctx->EmitCheckpoint("local_search", w.bytes());
    }
    bool improved = false;
    // MOVE: row out of an oversized group.
    for (size_t a = 0; a < groups.size() && !stop(); ++a) {
      if (groups[a].size() <= k) continue;
      for (size_t i = 0; i < groups[a].size(); ++i) {
        const RowId row = groups[a][i];
        const size_t a_without = stats[a].CostWithout(row);
        size_t best_b = groups.size();
        size_t best_delta_gain = 0;
        for (size_t b = 0; b < groups.size(); ++b) {
          if (b == a) continue;
          const size_t b_with = stats[b].CostWith(row);
          const size_t before = cost[a] + cost[b];
          const size_t after = a_without + b_with;
          if (after < before) {
            const size_t gain = before - after;
            if (best_b == groups.size() || gain > best_delta_gain) {
              best_b = b;
              best_delta_gain = gain;
            }
          }
        }
        if (best_b != groups.size()) {
          groups[best_b].push_back(row);
          groups[a].erase(groups[a].begin() + static_cast<ptrdiff_t>(i));
          stats[best_b].Add(row);
          stats[a].Remove(row);
          cost[a] = stats[a].anon_cost();
          cost[best_b] = stats[best_b].anon_cost();
          ++applied;
          improved = true;
          if (groups[a].size() <= k) break;
          --i;  // re-examine this slot, now holding a different row
        }
      }
    }
    // SWAP: exchange rows between two groups.
    for (size_t a = 0; a < groups.size() && !stop(); ++a) {
      for (size_t b = a + 1; b < groups.size(); ++b) {
        for (size_t i = 0; i < groups[a].size(); ++i) {
          for (size_t j = 0; j < groups[b].size(); ++j) {
            const RowId row_a = groups[a][i];
            const RowId row_b = groups[b][j];
            const size_t a_new = stats[a].CostReplacing(row_a, row_b);
            const size_t b_new = stats[b].CostReplacing(row_b, row_a);
            if (a_new + b_new < cost[a] + cost[b]) {
              std::swap(groups[a][i], groups[b][j]);
              stats[a].Remove(row_a);
              stats[a].Add(row_b);
              stats[b].Remove(row_b);
              stats[b].Add(row_a);
              cost[a] = a_new;
              cost[b] = b_new;
              ++applied;
              improved = true;
            }
          }
        }
      }
    }
    if (!improved) break;
  }

  KANON_CHECK(IsValidPartition(*partition, table.num_rows(), k,
                               table.num_rows()));
  return applied;
}

LocalSearchAnonymizer::LocalSearchAnonymizer(
    std::unique_ptr<Anonymizer> base, LocalSearchOptions options)
    : base_(std::move(base)), options_(options) {
  KANON_CHECK(base_ != nullptr);
}

std::string LocalSearchAnonymizer::name() const {
  return base_->name() + "+local_search";
}

AnonymizationResult LocalSearchAnonymizer::Run(const Table& table,
                                               size_t k, RunContext* ctx) {
  WallTimer timer;
  AnonymizationResult result = base_->Run(table, k, ctx);
  if (result.partition.groups.empty()) {
    // Base declined or was stopped before producing anything usable;
    // there is nothing to improve.
    result.seconds = timer.Seconds();
    return result;
  }
  const size_t base_cost = result.cost;
  const size_t moves =
      ImprovePartition(table, k, options_, &result.partition, ctx);
  FinalizeResult(table, &result);
  KANON_CHECK_LE(result.cost, base_cost);
  result.seconds = timer.Seconds();
  result.termination = ctx->stop_reason();
  std::ostringstream notes;
  notes << "base_cost=" << base_cost << " moves=" << moves << " ["
        << result.notes << "]";
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
