#ifndef KANON_ALGO_REDUCE_H_
#define KANON_ALGO_REDUCE_H_

#include <cstddef>

#include "core/partition.h"
#include "data/table.h"

/// \file
/// Phase 2 of both approximation algorithms (Section 4.2.2): convert a
/// (k, 2k-1)-cover into a (k, 2k-1)-partition without increasing the
/// diameter sum. Repeatedly find a row in two sets; if either set has
/// more than k members remove the row from the larger one (diameter can
/// only shrink), otherwise replace both size-k sets by their union (size
/// <= 2k-1 since they share the row; d(S_i ∪ S_j) <= d(S_i) + d(S_j) by
/// the triangle inequality, cf. the paper's Figure 1).

namespace kanon {

/// Applies the reduction until fixpoint. Requires `cover` to be a valid
/// (k, n)-cover of table's rows; returns a valid (k, max(2k-1,
/// max-input-group))-partition whose diameter sum is <= the cover's.
/// When the input groups all have size <= 2k-1 (the Theorem 4.1 family)
/// so does the output; ball covers (Theorem 4.2) may keep larger groups,
/// which callers split afterwards via SplitLargeGroups. Terminates in at
/// most n applications (each removes one row-occurrence or one set).
Partition ReduceCoverToPartition(const Table& table, const Partition& cover,
                                 size_t k);

}  // namespace kanon

#endif  // KANON_ALGO_REDUCE_H_
