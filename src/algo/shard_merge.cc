#include "algo/shard_merge.h"

#include <cstdint>
#include <limits>
#include <utility>

#include "fault/fault.h"
#include "util/logging.h"

namespace kanon {

namespace {

/// Weight-aware per-column mode of a table-coordinate group (ties ->
/// lowest code) — the same centroid the coreset repair pass uses, so
/// both repair planes degrade identically on the same shapes.
std::vector<ValueCode> ModeCentroid(const Table& table,
                                    const Group& group) {
  const ColId m = table.num_columns();
  std::vector<ValueCode> centroid(m);
  std::vector<std::pair<ValueCode, uint64_t>> counts;
  for (ColId c = 0; c < m; ++c) {
    counts.clear();
    for (const RowId r : group) {
      const ValueCode code = table.at(r, c);
      bool found = false;
      for (auto& [existing, count] : counts) {
        if (existing == code) {
          count += table.row_weight(r);
          found = true;
          break;
        }
      }
      if (!found) counts.emplace_back(code, table.row_weight(r));
    }
    ValueCode best_code = 0;
    uint64_t best_count = 0;
    for (const auto& [code, count] : counts) {
      if (count > best_count || (count == best_count && code < best_code)) {
        best_code = code;
        best_count = count;
      }
    }
    centroid[c] = best_code;
  }
  return centroid;
}

uint32_t CentroidDistance(const std::vector<ValueCode>& a,
                          const std::vector<ValueCode>& b) {
  uint32_t d = 0;
  for (size_t c = 0; c < a.size(); ++c) d += (a[c] != b[c]);
  return d;
}

}  // namespace

StatusOr<ShardMergeOutcome> MergeShardPartitions(
    const Table& table, const ShardPlan& plan,
    const std::vector<Partition>& shard_partitions, size_t k,
    RunContext* ctx) {
  KANON_CHECK(ctx != nullptr);
  const size_t n = table.num_rows();
  if (k > n) return Status::InvalidArgument("k exceeds the row count");
  if (shard_partitions.size() != plan.num_shards()) {
    return Status::InvalidArgument(
        "shard partition count does not match the plan");
  }
  if (KANON_FAULT_POINT("shard.merge")) {
    ctx->MarkStopped(StopReason::kBudget);
    return StopReasonToStatus(ctx->stop_reason());
  }
  if (ctx->ShouldStop()) return StopReasonToStatus(ctx->stop_reason());

  // Reindex shard-local groups into table coordinates, validating that
  // each shard partition is exactly a partition of its shard (every
  // local index used once). Undersized groups are legal here — repair
  // below is their path back to validity.
  ShardMergeOutcome outcome;
  for (size_t s = 0; s < plan.num_shards(); ++s) {
    const Group& rows = plan.shards[s];
    const Partition& local = shard_partitions[s];
    std::vector<bool> used(rows.size(), false);
    size_t covered = 0;
    for (const Group& group : local.groups) {
      if (group.empty()) {
        return Status::InvalidArgument("empty group in a shard partition");
      }
      Group global;
      global.reserve(group.size());
      for (const RowId local_id : group) {
        if (local_id >= rows.size() || used[local_id]) {
          return Status::InvalidArgument(
              "shard partition is not a partition of its shard");
        }
        used[local_id] = true;
        ++covered;
        global.push_back(rows[local_id]);
      }
      outcome.partition.groups.push_back(std::move(global));
    }
    if (covered != rows.size()) {
      return Status::InvalidArgument(
          "shard partition does not cover its shard");
    }
  }
  ctx->ChargeNodes(n);
  if (ctx->ShouldStop()) return StopReasonToStatus(ctx->stop_reason());

  // Repair: merge every undersized boundary group (smallest first,
  // ties -> lowest id) into its nearest surviving neighbor by centroid
  // distance. Each merge removes one group, so this terminates; with
  // n >= k the final state — possibly one group of all n rows — is
  // always valid.
  std::vector<std::vector<ValueCode>> centroids;
  const bool multi_group = outcome.partition.num_groups() > 1;
  while (outcome.partition.num_groups() > 1) {
    size_t victim = outcome.partition.num_groups();
    for (size_t i = 0; i < outcome.partition.num_groups(); ++i) {
      const size_t size = outcome.partition.groups[i].size();
      if (size >= k) continue;
      if (victim == outcome.partition.num_groups() ||
          size < outcome.partition.groups[victim].size()) {
        victim = i;
      }
    }
    if (victim == outcome.partition.num_groups()) break;  // all >= k
    if (centroids.empty()) {
      // Centroids are only needed once a repair is actually due — the
      // common all-shards-valid merge never pays for them.
      centroids.resize(outcome.partition.num_groups());
      for (size_t i = 0; i < outcome.partition.num_groups(); ++i) {
        centroids[i] = ModeCentroid(table, outcome.partition.groups[i]);
      }
    }
    size_t target = victim == 0 ? 1 : 0;
    uint32_t best_d = CentroidDistance(centroids[victim],
                                       centroids[target]);
    for (size_t i = 0; i < outcome.partition.num_groups(); ++i) {
      if (i == victim) continue;
      const uint32_t d = CentroidDistance(centroids[victim], centroids[i]);
      if (d < best_d || (d == best_d && i < target)) {
        best_d = d;
        target = i;
      }
    }
    Group& dst = outcome.partition.groups[target];
    Group& src = outcome.partition.groups[victim];
    dst.insert(dst.end(), src.begin(), src.end());
    centroids[target] = ModeCentroid(table, dst);
    outcome.partition.groups.erase(outcome.partition.groups.begin() +
                                   static_cast<long>(victim));
    centroids.erase(centroids.begin() + static_cast<long>(victim));
    ++outcome.repair_merges;
    ctx->ChargeNodes();
  }
  outcome.repair_suppressed = outcome.repair_merges > 0 && multi_group &&
                              outcome.partition.num_groups() == 1;
  if (!IsValidPartition(outcome.partition, static_cast<RowId>(n), k, n)) {
    // Only reachable when a single shard held fewer than k rows in
    // total — the planner never produces one, so arriving here means
    // the caller handed in a foreign plan.
    return Status::InvalidArgument(
        "merged shard partitions do not form a valid k-anonymous "
        "partition");
  }
  return outcome;
}

}  // namespace kanon
