#include "algo/anonymizer.h"

#include "core/anonymity.h"
#include "core/cost.h"
#include "core/distance.h"
#include "util/logging.h"

namespace kanon {

Suppressor AnonymizationResult::MakeSuppressor(const Table& table) const {
  return SuppressorForPartition(table, partition);
}

AnonymizationResult Anonymizer::Run(const Table& table, size_t k) {
  RunContext unlimited;
  return Run(table, k, &unlimited);
}

void FinalizeResult(const Table& table, AnonymizationResult* result) {
  result->cost = PartitionCost(table, result->partition);
  result->diameter_sum = DiameterSum(table, result->partition);
}

AnonymizationResult StoppedResult(const RunContext& ctx, double seconds,
                                  std::string notes) {
  AnonymizationResult result;
  result.termination = ctx.stop_reason();
  KANON_CHECK(result.termination != StopReason::kNone)
      << "StoppedResult on a context that did not stop";
  result.seconds = seconds;
  result.notes = std::move(notes);
  return result;
}

AnonymizationResult ValidateResult(const Table& table, size_t k,
                                   AnonymizationResult result) {
  KANON_CHECK(IsValidPartition(result.partition, table.num_rows(), k,
                               table.num_rows()))
      << "invalid partition: " << result.partition.ToString();
  KANON_CHECK_EQ(result.cost, PartitionCost(table, result.partition));
  const Suppressor t = result.MakeSuppressor(table);
  KANON_CHECK_EQ(t.Stars(), result.cost);
  KANON_CHECK(IsKAnonymizer(t, table, k));
  return result;
}

}  // namespace kanon
