#include "algo/mdav.h"

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>

#include "ckpt/checkpoint.h"
#include "core/cost.h"
#include "core/distance_oracle.h"
#include "data/packed_table.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

namespace {

/// Per-column mode over the rows flagged unassigned, computed off the
/// columnar mirror (one contiguous scan per attribute). Ties break to
/// the lowest code: the map iterates codes ascending and the comparison
/// is strict.
std::vector<ValueCode> ModeCentroid(const PackedTable& packed,
                                    const std::vector<bool>& assigned) {
  std::vector<ValueCode> centroid(packed.num_columns(), 0);
  for (ColId c = 0; c < packed.num_columns(); ++c) {
    const std::span<const ValueCode> column = packed.column(c);
    std::map<ValueCode, size_t> counts;
    for (RowId r = 0; r < packed.num_rows(); ++r) {
      if (!assigned[r]) ++counts[column[r]];
    }
    size_t best = 0;
    for (const auto& [code, count] : counts) {
      if (count > best) {
        best = count;
        centroid[c] = code;
      }
    }
  }
  return centroid;
}

/// Hamming distance of row r to an explicit centroid vector.
ColId DistanceToCentroid(const Table& table, RowId r,
                         const std::vector<ValueCode>& centroid) {
  ColId d = 0;
  for (ColId c = 0; c < table.num_columns(); ++c) {
    if (table.at(r, c) != centroid[c]) ++d;
  }
  return d;
}

/// Farthest unassigned row from `centroid` (lowest id on ties).
RowId FarthestFromCentroid(const Table& table,
                           const std::vector<bool>& assigned,
                           const std::vector<ValueCode>& centroid) {
  RowId best = table.num_rows();
  ColId best_d = 0;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (assigned[r]) continue;
    const ColId d = DistanceToCentroid(table, r, centroid);
    if (best == table.num_rows() || d > best_d) {
      best = r;
      best_d = d;
    }
  }
  return best;
}

/// Groups `seed` with its k-1 nearest unassigned rows; marks them
/// assigned and returns the group.
Group TakeGroupAround(const Table& table, const DistanceOracle& dm,
                      RowId seed, size_t k, std::vector<bool>* assigned,
                      size_t* unassigned) {
  Group group = {seed};
  (*assigned)[seed] = true;
  --*unassigned;
  // k-1 nearest by (distance, id).
  std::vector<std::pair<ColId, RowId>> near;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    if (!(*assigned)[r]) near.emplace_back(dm.at(seed, r), r);
  }
  std::sort(near.begin(), near.end());
  for (size_t i = 0; i < k - 1; ++i) {
    group.push_back(near[i].second);
    (*assigned)[near[i].second] = true;
    --*unassigned;
  }
  return group;
}

}  // namespace

AnonymizationResult MdavAnonymizer::Run(const Table& table, size_t k,
                                        RunContext* ctx) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);

  WallTimer timer;
  const StatusOr<std::shared_ptr<const DistanceOracle>> oracle =
      SharedDistanceOracle(table, ctx);
  if (!oracle.ok()) {
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: " + oracle.status().message());
  }
  const DistanceOracle& dm = **oracle;
  const PackedTable packed(table);
  std::vector<bool> assigned(n, false);
  size_t unassigned = n;
  bool resumed = false;

  AnonymizationResult result;
  if (const std::optional<std::string> state = ctx->resume_payload("mdav")) {
    // Snapshots are taken at the top of the main loop, where the whole
    // phase state is (assigned bitmap, groups so far). Both halves must
    // agree exactly — the bitmap rows are precisely the grouped rows,
    // every group has size k — or the snapshot is ignored (it crossed a
    // crash and is not trusted).
    CheckpointReader r(*state);
    const uint64_t saved_n = r.GetU64();
    const std::string_view bitmap = r.GetBytes();
    Partition saved = r.GetPartition();
    bool usable = !r.failed() && r.AtEnd() && saved_n == n &&
                  bitmap.size() == n;
    if (usable) {
      std::vector<bool> saved_assigned(n, false);
      size_t saved_count = 0;
      for (RowId row = 0; row < n && usable; ++row) {
        const char bit = bitmap[row];
        if (bit != 0 && bit != 1) usable = false;
        saved_assigned[row] = bit == 1;
        saved_count += bit == 1 ? 1u : 0u;
      }
      size_t grouped = 0;
      std::vector<bool> seen(n, false);
      for (const Group& group : saved.groups) {
        if (group.size() != k) usable = false;
        for (const RowId row : group) {
          if (!usable) break;
          if (row >= n || seen[row] || !saved_assigned[row]) usable = false;
          if (row < n) seen[row] = true;
          ++grouped;
        }
      }
      if (usable && grouped == saved_count) {
        assigned = std::move(saved_assigned);
        unassigned = n - saved_count;
        result.partition = std::move(saved);
        resumed = true;
      }
    }
  }
  while (unassigned >= 3 * k) {
    ctx->ChargeNodes();
    if (ctx->ShouldStop()) {
      // The partial grouping is not a valid partition (unassigned rows
      // remain), so an interrupted MDAV declines like the other anytime
      // stages; its checkpoint carries the progress forward instead.
      return StoppedResult(*ctx, timer.Seconds(),
                           "stopped mid-phase with " +
                               std::to_string(unassigned) +
                               " rows unassigned");
    }
    if (ctx->CheckpointDue()) {
      CheckpointWriter w;
      w.PutU64(n);
      std::string bitmap(n, '\0');
      for (RowId row = 0; row < n; ++row) {
        bitmap[row] = assigned[row] ? 1 : 0;
      }
      w.PutBytes(bitmap);
      w.PutPartition(result.partition);
      (void)ctx->EmitCheckpoint("mdav", w.bytes());
    }
    const std::vector<ValueCode> centroid = ModeCentroid(packed, assigned);
    const RowId r = FarthestFromCentroid(table, assigned, centroid);
    result.partition.groups.push_back(
        TakeGroupAround(table, dm, r, k, &assigned, &unassigned));
    const RowId s = FarthestFromCentroid(
        table, assigned, std::vector<ValueCode>(table.row(r).begin(),
                                                table.row(r).end()));
    result.partition.groups.push_back(
        TakeGroupAround(table, dm, s, k, &assigned, &unassigned));
  }
  if (unassigned >= 2 * k) {
    const std::vector<ValueCode> centroid = ModeCentroid(packed, assigned);
    const RowId r = FarthestFromCentroid(table, assigned, centroid);
    result.partition.groups.push_back(
        TakeGroupAround(table, dm, r, k, &assigned, &unassigned));
  }
  if (unassigned > 0) {
    Group rest;
    for (RowId r = 0; r < n; ++r) {
      if (!assigned[r]) rest.push_back(r);
    }
    unassigned = 0;
    result.partition.groups.push_back(std::move(rest));
  }

  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  std::ostringstream notes;
  notes << "groups=" << result.partition.num_groups()
        << (resumed ? " RESUMED" : "");
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
