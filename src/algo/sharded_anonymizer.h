#ifndef KANON_ALGO_SHARDED_ANONYMIZER_H_
#define KANON_ALGO_SHARDED_ANONYMIZER_H_

#include <functional>
#include <memory>
#include <string>

#include "algo/anonymizer.h"
#include "algo/shard_plan.h"

/// \file
/// `sharded_<inner>`: the shard-plan / shard-solve / merge-repair
/// pipeline as a composable anonymizer. Three stages, each resumable
/// and typed on failure:
///
///   1. **plan** — PlanShards cuts the table into geometrically
///      coherent shards of >= 2k-1 rows with Mondrian-style median
///      splits (deterministic from the table, so a resumed run replans
///      the identical cut);
///   2. **solve** — a fresh inner instance runs on each shard's
///      SelectRows view under a lenient child RunContext carrying a
///      deadline slice, an equal share of the node budget, and a
///      ScopedMemoryBudget slice of the memory ceiling. Shards solve
///      concurrently on up to `shard_parallelism` threads, bounded by a
///      process-wide token pool so stacked jobs (a worker pool running
///      several sharded jobs) never oversubscribe the machine; results
///      are indexed by shard, so the outcome is independent of thread
///      interleaving;
///   3. **merge** — MergeShardPartitions reindexes the shard-local
///      partitions into table coordinates and repairs undersized
///      boundary groups smallest-first, so the output is always a valid
///      k-anonymous partition of the full table.
///
/// When the resolved shard count is 1 the inner solver runs directly on
/// the full table under the caller's own context — that path is
/// bit-identical to the unsharded solver (golden cost + partition-hash
/// tests hold it there). Any stage that stops (fault site, deadline,
/// budget, cancel) returns a typed StoppedResult, which the resilient
/// fallback chain turns into graceful degradation — a killed or faulted
/// shard resumes or degrades typed, never corrupts the merged
/// partition. Wrapper snapshots (the set of completed shard partitions,
/// stamped with the plan fingerprint) ride the standard checkpoint
/// cadence under the name "sharded_<inner>".

namespace kanon {

class ShardedAnonymizer : public Anonymizer {
 public:
  /// Builds fresh inner instances: one per shard solve, so concurrent
  /// shards never share solver state. Must never return null, and the
  /// inner must not itself be "resilient" or a sharded_* wrapper.
  using InnerFactory = std::function<std::unique_ptr<Anonymizer>()>;

  explicit ShardedAnonymizer(InnerFactory factory,
                             ShardOptions options = {});

  using Anonymizer::Run;
  std::string name() const override;
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

  const ShardOptions& options() const { return options_; }

 private:
  InnerFactory factory_;
  /// One pre-built instance: names the wrapper and serves the
  /// shards=1 direct path.
  std::unique_ptr<Anonymizer> proto_;
  ShardOptions options_;
};

}  // namespace kanon

#endif  // KANON_ALGO_SHARDED_ANONYMIZER_H_
