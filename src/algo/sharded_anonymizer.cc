#include "algo/sharded_anonymizer.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>
#include <vector>

#include "algo/shard_merge.h"
#include "algo/shard_metrics.h"
#include "ckpt/checkpoint.h"
#include "core/partition.h"
#include "fault/fault.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace kanon {
namespace {

constexpr uint32_t kSnapshotVersion = 1;

/// Extra solver threads in flight across every sharded job in the
/// process. A job always keeps its calling thread, so the pool only
/// meters the *additional* threads; with the pool capped at
/// GetParallelism() - 1 a worker pool running several sharded jobs at
/// once degrades each job toward serial instead of oversubscribing.
std::atomic<long> g_extra_threads{0};

size_t AcquireExtraThreads(size_t want) {
  const long cap = static_cast<long>(GetParallelism()) - 1;
  if (cap <= 0 || want == 0) return 0;
  long current = g_extra_threads.load(std::memory_order_relaxed);
  for (;;) {
    const long room = cap - current;
    if (room <= 0) return 0;
    const long grant = std::min<long>(room, static_cast<long>(want));
    if (g_extra_threads.compare_exchange_weak(current, current + grant,
                                              std::memory_order_relaxed)) {
      return static_cast<size_t>(grant);
    }
  }
}

void ReleaseExtraThreads(size_t granted) {
  if (granted > 0) {
    g_extra_threads.fetch_sub(static_cast<long>(granted),
                              std::memory_order_relaxed);
  }
}

/// Wrapper snapshot: the set of completed shard partitions, stamped
/// with (options, n, k, plan fingerprint) so a snapshot taken under a
/// different cut can never be restored.
struct WrapperState {
  std::vector<char> done;
  std::vector<Partition> partitions;
};

std::string EncodeWrapperState(uint64_t options_fp, size_t n, size_t k,
                               uint64_t plan_fp,
                               const WrapperState& state) {
  CheckpointWriter w;
  w.PutU32(kSnapshotVersion);
  w.PutU64(options_fp);
  w.PutU64(n);
  w.PutU64(k);
  w.PutU64(plan_fp);
  w.PutU64(state.done.size());
  for (size_t i = 0; i < state.done.size(); ++i) {
    w.PutU32(state.done[i] ? 1 : 0);
    if (state.done[i]) w.PutPartition(state.partitions[i]);
  }
  return w.TakeBytes();
}

/// Decodes and fully validates a wrapper snapshot against this run's
/// stamp and the (re-planned, deterministic) cut. Any mismatch —
/// hostile bytes, different knobs, a different table, a shard
/// partition that is not a valid k-anonymization of its shard —
/// returns false and the caller cold-starts.
bool DecodeWrapperState(const std::string& payload, uint64_t options_fp,
                        size_t n, size_t k, const ShardPlan& plan,
                        WrapperState* state) {
  CheckpointReader r(payload);
  if (r.GetU32() != kSnapshotVersion) return false;
  if (r.GetU64() != options_fp) return false;
  if (r.GetU64() != n || r.GetU64() != k) return false;
  if (r.GetU64() != plan.Fingerprint()) return false;
  const uint64_t count = r.GetU64();
  if (r.failed() || count != plan.num_shards()) return false;
  state->done.assign(count, 0);
  state->partitions.assign(count, Partition{});
  bool any = false;
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t flag = r.GetU32();
    if (r.failed() || flag > 1) return false;
    if (flag == 0) continue;
    Partition local = r.GetPartition();
    const size_t shard_n = plan.shards[i].size();
    if (r.failed() ||
        !IsValidPartition(local, static_cast<RowId>(shard_n), k,
                          shard_n)) {
      return false;
    }
    state->done[i] = 1;
    state->partitions[i] = std::move(local);
    any = true;
  }
  if (!r.AtEnd()) return false;
  return any;
}

}  // namespace

ShardedAnonymizer::ShardedAnonymizer(InnerFactory factory,
                                     ShardOptions options)
    : factory_(std::move(factory)), options_(options) {
  KANON_CHECK(factory_ != nullptr) << "sharded wrapper needs a factory";
  proto_ = factory_();
  KANON_CHECK(proto_ != nullptr)
      << "sharded wrapper factory returned null";
  const std::string inner_name = proto_->name();
  KANON_CHECK(inner_name != "resilient" &&
              inner_name.rfind("sharded_", 0) != 0)
      << "sharded wrapper cannot nest '" << inner_name << "'";
}

std::string ShardedAnonymizer::name() const {
  return "sharded_" + proto_->name();
}

AnonymizationResult ShardedAnonymizer::Run(const Table& table, size_t k,
                                           RunContext* ctx) {
  KANON_CHECK(ctx != nullptr);
  const size_t n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(n, k);
  WallTimer timer;

  if (ResolveShardCount(n, k, options_) <= 1) {
    // One shard would just be the whole table: run the inner solver on
    // the caller's own context so this path stays bit-identical to the
    // unsharded solver.
    AnonymizationResult direct = proto_->Run(table, k, ctx);
    direct.notes = "sharded=direct(shards<=1) [" + direct.notes + "]";
    return direct;
  }

  StatusOr<ShardPlan> planned = PlanShards(table, k, options_, ctx);
  if (!planned.ok()) {
    if (ctx->stop_reason() == StopReason::kNone) {
      ctx->MarkStopped(StopReason::kBudget);
    }
    return StoppedResult(
        *ctx, timer.Seconds(),
        "declined: " + std::string(planned.status().message()));
  }
  const ShardPlan& plan = planned.value();
  const size_t num_shards = plan.num_shards();
  ShardMetrics::Instance().RecordPlan(num_shards);
  if (num_shards <= 1) {
    AnonymizationResult direct = proto_->Run(table, k, ctx);
    direct.notes = "sharded=direct(shards<=1) [" + direct.notes + "]";
    return direct;
  }

  const uint64_t options_fp = options_.Fingerprint();
  WrapperState state;
  state.done.assign(num_shards, 0);
  state.partitions.assign(num_shards, Partition{});
  bool resumed = false;
  if (const auto payload = ctx->resume_payload(name())) {
    WrapperState loaded;
    if (DecodeWrapperState(*payload, options_fp, n, k, plan, &loaded)) {
      state = std::move(loaded);
      resumed = true;
      ShardMetrics::Instance().RecordResume();
    }
  }

  // Fixed per-shard budget slices, computed once so the split is
  // independent of solve order: every shard gets an equal share of the
  // node budget left after planning and of the memory ceiling. Unspent
  // slices return to the parent via back-charging (nodes) and
  // ScopedMemoryBudget's destructor (memory).
  uint64_t node_slice = 0;
  if (ctx->node_budget() > 0) {
    const uint64_t used = ctx->nodes_charged();
    const uint64_t left =
        ctx->node_budget() > used ? ctx->node_budget() - used : 1;
    node_slice = std::max<uint64_t>(1, left / num_shards);
  }
  size_t mem_slice = 0;
  if (ctx->memory_limit_bytes() > 0) {
    mem_slice =
        std::max<size_t>(1, ctx->memory_limit_bytes() / num_shards);
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::vector<StopReason> shard_stop(num_shards, StopReason::kNone);
  std::mutex state_mu;  // guards `state` writes + checkpoint encoding

  auto solve_shard = [&](size_t i) {
    if (KANON_FAULT_POINT("shard.solve")) {
      shard_stop[i] = StopReason::kBudget;
      failed.store(true, std::memory_order_relaxed);
      ShardMetrics::Instance().RecordShardDecline();
      return;
    }
    const Group& rows = plan.shards[i];
    Table shard_table = table.SelectRows(rows);
    RunContext child(ctx);
    child.set_lenient(true);
    // Isolate the shard from the job's checkpoint/resume chain: the
    // wrapper (under state_mu) is the single snapshot writer — shard
    // threads must not race inner-solver snapshots into the job sink —
    // and an inner solver must never restore a job-root payload, which
    // on same-sized shards would pass its size validation while
    // carrying another shard's (or the whole table's) grouping.
    child.set_checkpoint_isolated(true);
    if (ctx->has_deadline()) {
      child.set_deadline_after_millis(ctx->remaining_millis() * 0.7);
    }
    if (node_slice > 0) child.set_node_budget(node_slice);
    ScopedMemoryBudget mem(ctx, &child, mem_slice);
    if (!mem.ok()) {
      shard_stop[i] = StopReason::kBudget;
      failed.store(true, std::memory_order_relaxed);
      ShardMetrics::Instance().RecordShardDecline();
      return;
    }
    std::unique_ptr<Anonymizer> inner = factory_();
    AnonymizationResult r = inner->Run(shard_table, k, &child);
    ctx->ChargeNodes(child.nodes_charged());
    const size_t shard_n = rows.size();
    const bool valid =
        r.completed() && !r.partition.groups.empty() &&
        IsValidPartition(r.partition, static_cast<RowId>(shard_n), k,
                         shard_n);
    if (!valid) {
      shard_stop[i] = child.stop_reason() != StopReason::kNone
                          ? child.stop_reason()
                          : StopReason::kBudget;
      failed.store(true, std::memory_order_relaxed);
      ShardMetrics::Instance().RecordShardDecline();
      return;
    }
    ShardMetrics::Instance().RecordShardSolve();
    std::lock_guard<std::mutex> lock(state_mu);
    state.done[i] = 1;
    state.partitions[i] = std::move(r.partition);
    if (ctx->CheckpointDue()) {
      (void)ctx->EmitCheckpoint(
          name(), EncodeWrapperState(options_fp, n, k, plan.Fingerprint(),
                                     state));
    }
  };

  auto worker = [&]() {
    for (;;) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= num_shards) return;
      if (state.done[i]) continue;  // restored from a snapshot
      if (failed.load(std::memory_order_relaxed) ||
          ctx->cancel_requested()) {
        // A shard already declined (or the job is cancelled): drain the
        // queue without spending budget — the decline below is typed
        // and deterministic on the lowest failed index either way.
        shard_stop[i] = StopReason::kCancelled;
        failed.store(true, std::memory_order_relaxed);
        continue;
      }
      solve_shard(i);
    }
  };

  size_t pending = 0;
  for (size_t i = 0; i < num_shards; ++i) pending += state.done[i] ? 0 : 1;
  size_t want = options_.shard_parallelism > 0
                    ? options_.shard_parallelism
                    : GetParallelism();
  want = std::min<size_t>({want, static_cast<size_t>(GetParallelism()),
                           std::max<size_t>(pending, 1)});
  const size_t extra =
      want > 1 ? AcquireExtraThreads(want - 1) : 0;
  if (extra == 0) {
    // Serial path: no threads, fully deterministic scheduling — this is
    // the path the chaos harness pins (parallelism 1).
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(extra);
    for (size_t t = 0; t < extra; ++t) threads.emplace_back(worker);
    worker();
    for (std::thread& t : threads) t.join();
    ReleaseExtraThreads(extra);
  }

  if (failed.load(std::memory_order_relaxed)) {
    size_t first = num_shards;
    for (size_t i = 0; i < num_shards; ++i) {
      if (shard_stop[i] != StopReason::kNone) {
        first = i;
        break;
      }
    }
    const StopReason reason =
        first < num_shards ? shard_stop[first] : StopReason::kBudget;
    if (ctx->stop_reason() == StopReason::kNone) ctx->MarkStopped(reason);
    std::ostringstream decline;
    decline << "declined: shard " << first << "/" << num_shards
            << " failed (" << StopReasonName(reason) << ")";
    return StoppedResult(*ctx, timer.Seconds(), decline.str());
  }

  StatusOr<ShardMergeOutcome> merged = MergeShardPartitions(
      table, plan, state.partitions, k, ctx);
  if (!merged.ok()) {
    if (ctx->stop_reason() == StopReason::kNone) {
      ctx->MarkStopped(StopReason::kBudget);
    }
    return StoppedResult(
        *ctx, timer.Seconds(),
        "declined: " + std::string(merged.status().message()));
  }
  ShardMergeOutcome& outcome = merged.value();
  ShardMetrics::Instance().RecordMerge(outcome.repair_merges);

  AnonymizationResult result;
  result.partition = std::move(outcome.partition);
  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  // `extra + 1` is the concurrency the job actually ran with (its own
  // thread plus the granted pool threads); `want` is only the request.
  std::ostringstream notes;
  notes << "sharded shards=" << num_shards << " parallelism=" << (extra + 1)
        << " inner=" << proto_->name()
        << " groups=" << result.partition.num_groups()
        << " repairs=" << outcome.repair_merges;
  if (outcome.repair_suppressed) notes << " degraded=repair_suppressed";
  if (resumed) notes << " resumed=1";
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
