#include "algo/streaming.h"

#include <algorithm>
#include <sstream>
#include <vector>

#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

StreamingAnonymizer::StreamingAnonymizer(std::unique_ptr<Anonymizer> base,
                                         StreamingOptions options)
    : base_(std::move(base)), options_(options) {
  KANON_CHECK(base_ != nullptr);
  KANON_CHECK_GE(options_.batch_size, 1u);
}

std::string StreamingAnonymizer::name() const {
  return base_->name() + "@stream";
}

AnonymizationResult StreamingAnonymizer::Run(const Table& table,
                                             size_t k, RunContext* ctx) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);
  KANON_CHECK_GE(options_.batch_size, k)
      << "batch_size must be at least k";

  WallTimer timer;
  // Batch boundaries: size batch_size each; if the final remainder is
  // shorter than k it is folded into the previous batch.
  std::vector<std::pair<RowId, RowId>> batches;
  RowId begin = 0;
  while (begin < n) {
    RowId end = static_cast<RowId>(
        std::min<size_t>(n, begin + options_.batch_size));
    if (n - end < k && end < n) end = n;  // fold short tail
    batches.emplace_back(begin, end);
    begin = end;
  }

  AnonymizationResult result;
  size_t batch_count = 0;
  size_t lumped = 0;
  for (const auto& [lo, hi] : batches) {
    // Cooperative checkpoint between batches. Every remaining batch has
    // >= k rows (construction folds short tails), so lumping all
    // unprocessed rows into one group keeps the output k-anonymous.
    bool lump_rest = ctx->ShouldStop();
    AnonymizationResult local;
    if (!lump_rest) {
      std::vector<RowId> ids(hi - lo);
      for (RowId r = lo; r < hi; ++r) ids[r - lo] = r;
      const Table batch = table.SelectRows(ids);
      local = base_->Run(batch, k, ctx);
      // A stopped base may yield no partition for the batch; fold the
      // batch (and everything after) into the terminal group instead.
      lump_rest = local.partition.groups.empty();
    }
    if (lump_rest) {
      Group rest;
      rest.reserve(n - lo);
      for (RowId r = lo; r < n; ++r) rest.push_back(r);
      lumped = rest.size();
      result.partition.groups.push_back(std::move(rest));
      break;
    }
    for (const Group& g : local.partition.groups) {
      Group global;
      global.reserve(g.size());
      for (const RowId r : g) global.push_back(lo + r);
      result.partition.groups.push_back(std::move(global));
    }
    ++batch_count;
  }

  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  result.termination = ctx->stop_reason();
  std::ostringstream notes;
  notes << "batches=" << batch_count
        << " batch_size=" << options_.batch_size;
  if (lumped > 0) notes << " lumped_rows=" << lumped;
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
