#include "algo/shard_plan.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "data/packed_table.h"
#include "fault/fault.h"
#include "util/fingerprint.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace kanon {

namespace {

/// Number of distinct codes the rows of `shard` take in `column`.
size_t DistinctInShard(std::span<const ValueCode> column,
                       const Group& shard) {
  std::unordered_set<ValueCode> seen;
  seen.reserve(shard.size());
  for (const RowId r : shard) seen.insert(column[r]);
  return seen.size();
}

/// Widest column inside `shard` (most distinct codes, ties -> lowest
/// column id); returns num_columns when every column is constant.
ColId WidestColumn(const PackedTable& packed, const Group& shard) {
  ColId best = packed.num_columns();
  size_t best_distinct = 1;
  for (ColId c = 0; c < packed.num_columns(); ++c) {
    const size_t distinct = DistinctInShard(packed.column(c), shard);
    if (distinct > best_distinct) {
      best = c;
      best_distinct = distinct;
    }
  }
  return best;
}

}  // namespace

uint64_t ShardOptions::Fingerprint() const {
  uint64_t fp = kFingerprintSeed;
  fp = FingerprintInt(fp, shards);
  fp = FingerprintInt(fp, shard_parallelism);
  return fp;
}

uint64_t ShardPlan::Fingerprint() const {
  uint64_t fp = kFingerprintSeed;
  fp = FingerprintInt(fp, shards.size());
  for (const Group& shard : shards) {
    fp = FingerprintInt(fp, shard.size());
    if (!shard.empty()) {
      fp = FingerprintInt(fp, shard.front());
      fp = FingerprintInt(fp, shard.back());
    }
  }
  return fp;
}

size_t ResolveShardCount(size_t n, size_t k,
                         const ShardOptions& options) {
  const size_t requested =
      options.shards > 0 ? options.shards : kDefaultShardCount;
  const size_t floor = 2 * k - 1;  // the wlog per-shard minimum
  const size_t feasible = floor == 0 ? n : n / floor;
  return std::max<size_t>(1, std::min(requested, feasible));
}

StatusOr<ShardPlan> PlanShards(const Table& table, size_t k,
                               const ShardOptions& options,
                               RunContext* ctx) {
  KANON_CHECK(ctx != nullptr);
  const size_t n = table.num_rows();
  if (n == 0) return Status::InvalidArgument("cannot shard an empty table");
  if (k < 1 || k > n) {
    return Status::InvalidArgument("k outside [1, rows] in shard planning");
  }
  if (KANON_FAULT_POINT("shard.plan")) {
    ctx->MarkStopped(StopReason::kBudget);
    return StopReasonToStatus(ctx->stop_reason());
  }
  if (ctx->ShouldStop()) return StopReasonToStatus(ctx->stop_reason());

  const size_t target = ResolveShardCount(n, k, options);
  ShardPlan plan;
  plan.shards.reserve(target);

  // The working set (one row-id vector per shard) is the planner's only
  // superlinear transient: account it like the DistanceOracle does.
  const size_t scratch_bytes = n * sizeof(RowId);
  if (!ctx->TryChargeMemory(scratch_bytes)) {
    return Status::ResourceExhausted(
        "shard planner row scratch exceeds memory limit");
  }

  Group all(n);
  for (RowId r = 0; r < static_cast<RowId>(n); ++r) all[r] = r;
  plan.shards.push_back(std::move(all));

  const PackedTable packed(table);
  const size_t min_rows = 2 * k - 1;
  // Median cuts, largest shard first: each split removes the largest
  // shard and adds two halves of >= min_rows rows, so the loop adds one
  // shard per iteration and runs at most target-1 times.
  while (plan.shards.size() < target) {
    ctx->ChargeNodes();
    if (ctx->ShouldStop()) {
      ctx->ReleaseMemory(scratch_bytes);
      return StopReasonToStatus(ctx->stop_reason());
    }
    // Largest shard, ties -> lowest index (deterministic).
    size_t victim = 0;
    for (size_t i = 1; i < plan.shards.size(); ++i) {
      if (plan.shards[i].size() > plan.shards[victim].size()) victim = i;
    }
    Group& shard = plan.shards[victim];
    if (shard.size() < 2 * min_rows) break;  // nothing left to split
    const ColId column = WidestColumn(packed, shard);
    if (column < packed.num_columns()) {
      // Mondrian median cut: order by (code, row id) so equal codes
      // stay in a deterministic order, then split at the midpoint.
      const std::span<const ValueCode> codes = packed.column(column);
      std::sort(shard.begin(), shard.end(),
                [codes](RowId a, RowId b) {
                  return codes[a] != codes[b] ? codes[a] < codes[b]
                                              : a < b;
                });
    }
    // A constant shard (no widest column) still splits at the index
    // median — the halves are equally coherent either way.
    const size_t cut = std::clamp(shard.size() / 2, min_rows,
                                  shard.size() - min_rows);
    Group right(shard.begin() + static_cast<long>(cut), shard.end());
    shard.resize(cut);
    std::sort(shard.begin(), shard.end());
    std::sort(right.begin(), right.end());
    plan.shards.push_back(std::move(right));
  }

  // Canonical order: shards by their smallest member, so the plan (and
  // every per-shard snapshot stamped with its fingerprint) is invariant
  // to the split sequence.
  std::sort(plan.shards.begin(), plan.shards.end(),
            [](const Group& a, const Group& b) {
              return a.front() < b.front();
            });
  ctx->ChargeNodes(n);
  ctx->ReleaseMemory(scratch_bytes);
  return plan;
}

}  // namespace kanon
