#include "algo/suppress_all.h"

#include "core/cost.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

AnonymizationResult SuppressAllAnonymizer::Run(const Table& table, size_t k,
                                               RunContext* /*ctx*/) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);

  WallTimer timer;
  AnonymizationResult result;
  Group all(n);
  for (RowId r = 0; r < n; ++r) all[r] = r;
  result.partition.groups.push_back(std::move(all));
  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace kanon
