#include "algo/annealing.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>

#include "ckpt/checkpoint.h"
#include "core/cost.h"
#include "core/group_stats.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/timer.h"

namespace kanon {

namespace {

/// Mutable annealing state: groups plus incrementally-maintained
/// per-group statistics. Every proposal recosts the touched groups in
/// O(m) (or O(edit * m) for merge/split) via GroupStats instead of
/// rescanning them, and the recost yields the exact AnonCost integers,
/// so the accept/reject trajectory is unchanged move-for-move.
class State {
 public:
  State(const Table& table, Partition partition, size_t k)
      : table_(table), k_(k), groups_(std::move(partition.groups)) {
    costs_.resize(groups_.size());
    stats_.reserve(groups_.size());
    for (size_t g = 0; g < groups_.size(); ++g) {
      stats_.emplace_back(table_, groups_[g]);
      costs_[g] = stats_[g].anon_cost();
    }
  }

  size_t TotalCost() const {
    size_t total = 0;
    for (const size_t c : costs_) total += c;
    return total;
  }

  Partition ToPartition() const {
    Partition p;
    p.groups = groups_;
    return p;
  }

  /// Proposes one random perturbation; returns the cost delta it would
  /// apply and fills `undo` state. Applies the move immediately; call
  /// Revert() to roll back. Returns false if no applicable move was
  /// found for this draw.
  bool Propose(Rng* rng, long long* delta) {
    const uint32_t kind = rng->Uniform(4);
    switch (kind) {
      case 0:
        return ProposeMove(rng, delta);
      case 1:
        return ProposeSwap(rng, delta);
      case 2:
        return ProposeMerge(rng, delta);
      default:
        return ProposeSplit(rng, delta);
    }
  }

  void Revert() {
    switch (last_.kind) {
      case LastMove::kNone:
        break;
      case LastMove::kTwoGroups:
        groups_[last_.a] = std::move(last_.saved_a);
        groups_[last_.b] = std::move(last_.saved_b);
        stats_[last_.a] = std::move(*last_.saved_stats_a);
        stats_[last_.b] = std::move(*last_.saved_stats_b);
        costs_[last_.a] = last_.cost_a;
        costs_[last_.b] = last_.cost_b;
        break;
      case LastMove::kMerge:
        // groups_[a] became the merge; b was emptied (swap-with-back
        // trick not used — we kept b in place but empty).
        groups_[last_.a] = std::move(last_.saved_a);
        groups_[last_.b] = std::move(last_.saved_b);
        stats_[last_.a] = std::move(*last_.saved_stats_a);
        stats_[last_.b] = std::move(*last_.saved_stats_b);
        costs_[last_.a] = last_.cost_a;
        costs_[last_.b] = last_.cost_b;
        break;
      case LastMove::kSplit:
        groups_[last_.a] = std::move(last_.saved_a);
        stats_[last_.a] = std::move(*last_.saved_stats_a);
        costs_[last_.a] = last_.cost_a;
        groups_.pop_back();
        stats_.pop_back();
        costs_.pop_back();
        break;
    }
    last_.kind = LastMove::kNone;
  }

  /// Drops empty groups left behind by accepted merges.
  void Compact() {
    for (size_t g = groups_.size(); g > 0; --g) {
      if (groups_[g - 1].empty()) {
        groups_.erase(groups_.begin() + static_cast<ptrdiff_t>(g - 1));
        stats_.erase(stats_.begin() + static_cast<ptrdiff_t>(g - 1));
        costs_.erase(costs_.begin() + static_cast<ptrdiff_t>(g - 1));
      }
    }
  }

 private:
  struct LastMove {
    enum Kind { kNone, kTwoGroups, kMerge, kSplit } kind = kNone;
    size_t a = 0, b = 0;
    Group saved_a, saved_b;
    std::optional<GroupStats> saved_stats_a, saved_stats_b;
    size_t cost_a = 0, cost_b = 0;
  };

  size_t NonEmptyGroupCount() const {
    size_t count = 0;
    for (const Group& g : groups_) {
      if (!g.empty()) ++count;
    }
    return count;
  }

  bool PickTwoDistinctGroups(Rng* rng, size_t* a, size_t* b) {
    if (NonEmptyGroupCount() < 2) return false;
    for (int attempt = 0; attempt < 32; ++attempt) {
      *a = rng->Uniform(static_cast<uint32_t>(groups_.size()));
      *b = rng->Uniform(static_cast<uint32_t>(groups_.size()));
      if (*a != *b && !groups_[*a].empty() && !groups_[*b].empty()) {
        return true;
      }
    }
    return false;
  }

  void SaveTwo(size_t a, size_t b, LastMove::Kind kind) {
    last_.kind = kind;
    last_.a = a;
    last_.b = b;
    last_.saved_a = groups_[a];
    last_.saved_b = groups_[b];
    last_.saved_stats_a = stats_[a];
    last_.saved_stats_b = stats_[b];
    last_.cost_a = costs_[a];
    last_.cost_b = costs_[b];
  }

  long long Recost(size_t a, size_t b) {
    const size_t before = last_.cost_a + last_.cost_b;
    costs_[a] = stats_[a].anon_cost();
    costs_[b] = stats_[b].anon_cost();
    return static_cast<long long>(costs_[a] + costs_[b]) -
           static_cast<long long>(before);
  }

  bool ProposeMove(Rng* rng, long long* delta) {
    size_t a = 0, b = 0;
    if (!PickTwoDistinctGroups(rng, &a, &b)) return false;
    if (groups_[a].size() <= k_) return false;
    SaveTwo(a, b, LastMove::kTwoGroups);
    const size_t i = rng->Uniform(static_cast<uint32_t>(groups_[a].size()));
    const RowId row = groups_[a][i];
    groups_[b].push_back(row);
    groups_[a].erase(groups_[a].begin() + static_cast<ptrdiff_t>(i));
    stats_[b].Add(row);
    stats_[a].Remove(row);
    *delta = Recost(a, b);
    return true;
  }

  bool ProposeSwap(Rng* rng, long long* delta) {
    size_t a = 0, b = 0;
    if (!PickTwoDistinctGroups(rng, &a, &b)) return false;
    SaveTwo(a, b, LastMove::kTwoGroups);
    const size_t i = rng->Uniform(static_cast<uint32_t>(groups_[a].size()));
    const size_t j = rng->Uniform(static_cast<uint32_t>(groups_[b].size()));
    const RowId row_a = groups_[a][i];
    const RowId row_b = groups_[b][j];
    std::swap(groups_[a][i], groups_[b][j]);
    stats_[a].Remove(row_a);
    stats_[a].Add(row_b);
    stats_[b].Remove(row_b);
    stats_[b].Add(row_a);
    *delta = Recost(a, b);
    return true;
  }

  bool ProposeMerge(Rng* rng, long long* delta) {
    size_t a = 0, b = 0;
    if (!PickTwoDistinctGroups(rng, &a, &b)) return false;
    SaveTwo(a, b, LastMove::kMerge);
    for (const RowId r : groups_[b]) stats_[a].Add(r);
    stats_[b].Clear();
    groups_[a].insert(groups_[a].end(), groups_[b].begin(),
                      groups_[b].end());
    groups_[b].clear();
    *delta = Recost(a, b);
    return true;
  }

  bool ProposeSplit(Rng* rng, long long* delta) {
    // Pick a group with >= 2k members, shuffle, cut at a random point
    // leaving >= k on both sides; the right part becomes a new group.
    std::vector<size_t> eligible;
    for (size_t g = 0; g < groups_.size(); ++g) {
      if (groups_[g].size() >= 2 * k_) eligible.push_back(g);
    }
    if (eligible.empty()) return false;
    const size_t a =
        eligible[rng->Uniform(static_cast<uint32_t>(eligible.size()))];
    last_.kind = LastMove::kSplit;
    last_.a = a;
    last_.saved_a = groups_[a];
    last_.saved_stats_a = stats_[a];
    last_.cost_a = costs_[a];

    Group shuffled = groups_[a];
    rng->Shuffle(&shuffled);
    const size_t max_left = shuffled.size() - k_;
    const size_t cut =
        k_ + rng->Uniform(static_cast<uint32_t>(max_left - k_ + 1));
    Group left(shuffled.begin(),
               shuffled.begin() + static_cast<ptrdiff_t>(cut));
    Group right(shuffled.begin() + static_cast<ptrdiff_t>(cut),
                shuffled.end());
    const size_t before = costs_[a];
    groups_[a] = std::move(left);
    stats_[a] = GroupStats(table_, groups_[a]);
    costs_[a] = stats_[a].anon_cost();
    groups_.push_back(std::move(right));
    stats_.emplace_back(table_, groups_.back());
    costs_.push_back(stats_.back().anon_cost());
    *delta = static_cast<long long>(costs_[a] + costs_.back()) -
             static_cast<long long>(before);
    return true;
  }

  const Table& table_;
  const size_t k_;
  std::vector<Group> groups_;
  std::vector<GroupStats> stats_;
  std::vector<size_t> costs_;
  LastMove last_;
};

}  // namespace

AnnealingAnonymizer::AnnealingAnonymizer(std::unique_ptr<Anonymizer> base,
                                         AnnealingOptions options)
    : base_(std::move(base)), options_(options) {
  KANON_CHECK(base_ != nullptr);
}

std::string AnnealingAnonymizer::name() const {
  return base_->name() + "+annealing";
}

AnonymizationResult AnnealingAnonymizer::Run(const Table& table,
                                             size_t k, RunContext* ctx) {
  WallTimer timer;
  AnonymizationResult seed_result = base_->Run(table, k, ctx);
  if (seed_result.partition.groups.empty()) {
    // Base declined or was stopped before producing a seed partition.
    seed_result.seconds = timer.Seconds();
    return seed_result;
  }
  const size_t base_cost = seed_result.cost;

  Rng rng(options_.seed);
  Partition start_partition = seed_result.partition;
  size_t start_iter = 0;
  size_t accepted = 0;
  double temperature = options_.initial_temperature;
  std::optional<Partition> resumed_best;
  size_t resumed_best_cost = 0;

  if (const std::optional<std::string> ck =
          ctx->resume_payload("annealing")) {
    // Snapshots are taken at the (iter & 63) == 0 poll boundary, where
    // no proposal is in flight. Restoring the current groups (in saved
    // order), the incumbent, the temperature's exact bit pattern, and
    // the raw PCG32 state replays the identical stochastic trajectory.
    // The snapshot crossed a crash: every claim is re-verified, and any
    // mismatch falls back to a cold start from the base partition.
    CheckpointReader r(*ck);
    const size_t iter = r.GetU64();
    const size_t saved_accepted = r.GetU64();
    const double saved_temp = r.GetDouble();
    const uint64_t rng_state = r.GetU64();
    const uint64_t rng_inc = r.GetU64();
    const size_t saved_current = r.GetU64();
    const size_t saved_best = r.GetU64();
    Partition cur_p = r.GetPartition();
    Partition best_p = r.GetPartition();
    const RowId n = table.num_rows();
    if (!r.failed() && r.AtEnd() && iter <= options_.iterations &&
        std::isfinite(saved_temp) && saved_temp >= 0.0 &&
        IsValidPartition(cur_p, n, k, static_cast<size_t>(n)) &&
        IsValidPartition(best_p, n, k, static_cast<size_t>(n)) &&
        saved_best <= saved_current && saved_best <= base_cost &&
        PartitionCost(table, cur_p) == saved_current &&
        PartitionCost(table, best_p) == saved_best) {
      start_partition = std::move(cur_p);
      start_iter = iter;
      accepted = saved_accepted;
      temperature = saved_temp;
      rng.Restore(rng_state, rng_inc);
      resumed_best = std::move(best_p);
      resumed_best_cost = saved_best;
    }
  }

  State state(table, std::move(start_partition), k);
  size_t current = state.TotalCost();
  size_t best = resumed_best ? resumed_best_cost : current;
  Partition best_partition =
      resumed_best ? *std::move(resumed_best) : state.ToPartition();

  for (size_t iter = start_iter; iter < options_.iterations; ++iter) {
    if ((iter & 63) == 0) {
      // Each 64-iteration stride charges its iterations so node budgets
      // can interrupt the walk deterministically.
      ctx->ChargeNodes(64);
      if (ctx->ShouldStop()) break;
      if (ctx->CheckpointDue()) {
        CheckpointWriter w;
        w.PutU64(iter);
        w.PutU64(accepted);
        w.PutDouble(temperature);
        w.PutU64(rng.state());
        w.PutU64(rng.stream_inc());
        w.PutU64(current);
        w.PutU64(best);
        w.PutPartition(state.ToPartition());
        w.PutPartition(best_partition);
        (void)ctx->EmitCheckpoint("annealing", w.bytes());
      }
    }
    long long delta = 0;
    if (!state.Propose(&rng, &delta)) continue;
    const bool accept =
        delta <= 0 ||
        rng.UniformDouble() <
            std::exp(-static_cast<double>(delta) /
                     std::max(temperature, 1e-9));
    if (accept) {
      ++accepted;
      current = static_cast<size_t>(
          static_cast<long long>(current) + delta);
      state.Compact();
      if (current < best) {
        best = current;
        best_partition = state.ToPartition();
      }
    } else {
      state.Revert();
    }
    if ((iter + 1) % options_.cooling_interval == 0) {
      temperature *= options_.cooling;
    }
  }

  AnonymizationResult result;
  result.partition = std::move(best_partition);
  FinalizeResult(table, &result);
  KANON_CHECK_LE(result.cost, base_cost);
  KANON_CHECK_EQ(result.cost, best);
  result.seconds = timer.Seconds();
  result.termination = ctx->stop_reason();
  std::ostringstream notes;
  notes << "base_cost=" << base_cost << " accepted=" << accepted << "/"
        << options_.iterations;
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
