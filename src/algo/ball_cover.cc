#include "algo/ball_cover.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "algo/reduce.h"
#include "core/cost.h"
#include "core/distance_oracle.h"
#include "setcover/set_cover.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace kanon {

namespace {

/// Lazily-materialized ball family. All balls around one center are
/// prefixes of that center's distance-sorted row order, so the family
/// stores one sorted order per center (O(n^2) memory total) plus a
/// (center, prefix_len, weight) triple per set.
class BallFamily : public SetFamily {
 public:
  BallFamily(const Table& table, const DistanceOracle& dm, size_t k,
             BallFamilyMode mode, BallWeightMode weight_mode,
             RunContext* ctx)
      : n_(table.num_rows()) {
    const ColId m = table.num_columns();
    // Resolve kAuto per the paper's advice: the radius family has
    // (m+1)*n sets, the pair family n^2; pick the smaller.
    mode_ = mode;
    if (mode_ == BallFamilyMode::kAuto) {
      mode_ = (static_cast<size_t>(m) + 1 <= n_) ? BallFamilyMode::kRadius
                                                 : BallFamilyMode::kPairwise;
    }

    order_.resize(n_);
    dist_.resize(n_);
    prefix_diam_.resize(n_);
    // Per-center state is disjoint, so centers parallelize cleanly; the
    // O(n^2)-per-center prefix-diameter scan dominates Phase 1.
    ParallelFor(0, n_, /*min_chunk=*/16, [&](size_t lo, size_t hi) {
      for (RowId c = static_cast<RowId>(lo); c < hi; ++c) {
        // Sort rows by distance from c (stable on row id for
        // determinism).
        std::vector<RowId>& order = order_[c];
        order.resize(n_);
        std::iota(order.begin(), order.end(), 0u);
        std::sort(order.begin(), order.end(), [&](RowId a, RowId b) {
          const ColId da = dm.at(c, a), db = dm.at(c, b);
          if (da != db) return da < db;
          return a < b;
        });
        std::vector<ColId>& dist = dist_[c];
        dist.resize(n_);
        for (RowId i = 0; i < n_; ++i) dist[i] = dm.at(c, order[i]);
        // prefix_diam_[c][t] = diameter of the first t+1 rows of
        // `order`.
        std::vector<ColId>& pd = prefix_diam_[c];
        pd.resize(n_);
        ColId diam = 0;
        for (RowId t = 0; t < n_; ++t) {
          for (RowId j = 0; j < t; ++j) {
            diam = std::max(diam, dm.at(order[j], order[t]));
          }
          pd[t] = diam;
        }
      }
    });

    if (ctx->ShouldStop()) return;  // partial per-center state discarded

    auto prefix_for_radius = [&](RowId c, ColId radius) {
      // Number of rows within `radius` of c.
      return static_cast<size_t>(
          std::upper_bound(dist_[c].begin(), dist_[c].end(), radius) -
          dist_[c].begin());
    };
    auto weight_for = [&](RowId c, size_t len, ColId radius) {
      return weight_mode == BallWeightMode::kExactDiameter
                 ? static_cast<double>(prefix_diam_[c][len - 1])
                 : 2.0 * static_cast<double>(radius);
    };

    if (mode_ == BallFamilyMode::kRadius) {
      for (RowId c = 0; c < n_; ++c) {
        if (ctx->ShouldStop()) return;
        for (ColId i = 0; i <= m; ++i) {
          const size_t len = prefix_for_radius(c, i);
          if (len < k) continue;
          sets_.push_back({c, len, weight_for(c, len, i)});
        }
      }
    } else {
      for (RowId c = 0; c < n_; ++c) {
        if (ctx->ShouldStop()) return;
        for (RowId peer = 0; peer < n_; ++peer) {
          const ColId radius = dm.at(c, peer);
          const size_t len = prefix_for_radius(c, radius);
          if (len < k) continue;
          sets_.push_back({c, len, weight_for(c, len, radius)});
        }
      }
    }
  }

  size_t NumElements() const override { return n_; }
  size_t NumSets() const override { return sets_.size(); }

  std::vector<uint32_t> Members(size_t s) const override {
    KANON_CHECK_LT(s, sets_.size());
    const BallSet& b = sets_[s];
    const std::vector<RowId>& order = order_[b.center];
    return std::vector<uint32_t>(order.begin(),
                                 order.begin() + static_cast<ptrdiff_t>(b.len));
  }

  double Weight(size_t s) const override {
    KANON_CHECK_LT(s, sets_.size());
    return sets_[s].weight;
  }

  BallFamilyMode resolved_mode() const { return mode_; }

 private:
  struct BallSet {
    RowId center;
    size_t len;
    double weight;
  };

  size_t n_;
  BallFamilyMode mode_;
  std::vector<std::vector<RowId>> order_;
  std::vector<std::vector<ColId>> dist_;
  std::vector<std::vector<ColId>> prefix_diam_;
  std::vector<BallSet> sets_;
};

}  // namespace

BallCoverAnonymizer::BallCoverAnonymizer(BallCoverOptions options)
    : options_(options) {}

std::string BallCoverAnonymizer::name() const {
  switch (options_.family_mode) {
    case BallFamilyMode::kRadius:
      return "ball_cover_radius";
    case BallFamilyMode::kPairwise:
      return "ball_cover_pairwise";
    case BallFamilyMode::kAuto:
      return "ball_cover";
  }
  return "ball_cover";
}

AnonymizationResult BallCoverAnonymizer::Run(const Table& table, size_t k,
                                             RunContext* ctx) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);

  WallTimer timer;
  // The per-center sorted orders, distances and prefix diameters are the
  // O(n^2) footprint; account them before building.
  const size_t family_bytes =
      static_cast<size_t>(n) * n * (sizeof(RowId) + 2 * sizeof(ColId));
  if (!ctx->TryChargeMemory(family_bytes)) {
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: ball family exceeds memory limit");
  }
  const StatusOr<std::shared_ptr<const DistanceOracle>> oracle =
      SharedDistanceOracle(table, ctx);
  if (!oracle.ok()) {
    ctx->ReleaseMemory(family_bytes);
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: " + oracle.status().message());
  }
  const DistanceOracle& dm = **oracle;
  const BallFamily family(table, dm, k, options_.family_mode,
                          options_.weight_mode, ctx);
  if (ctx->ShouldStop()) {
    ctx->ReleaseMemory(family_bytes);
    return StoppedResult(*ctx, timer.Seconds(),
                         "stopped while building ball family");
  }

  // Phase 1: greedy cover over the ball family. Coverage is guaranteed:
  // the radius-m ball around any center contains all n >= k rows.
  const SetCoverResult cover_result = GreedySetCover(family, ctx);
  if (!cover_result.complete) {
    KANON_CHECK(ctx->stop_reason() != StopReason::kNone)
        << "ball family always covers the universe";
    ctx->ReleaseMemory(family_bytes);
    return StoppedResult(*ctx, timer.Seconds(),
                         "stopped during greedy cover");
  }

  Partition cover;
  cover.groups.reserve(cover_result.chosen.size());
  for (const size_t s : cover_result.chosen) {
    const std::vector<uint32_t> members = family.Members(s);
    cover.groups.emplace_back(members.begin(), members.end());
  }

  // Phase 2: cover -> partition, then the wlog split to [k, 2k-1]
  // (splitting never increases the suppression cost).
  AnonymizationResult result;
  result.partition = SplitLargeGroups(
      ReduceCoverToPartition(table, cover, k), k);

  FinalizeResult(table, &result);
  result.seconds = timer.Seconds();
  std::ostringstream notes;
  notes << "family=" << family.NumSets()
        << " mode="
        << (family.resolved_mode() == BallFamilyMode::kRadius ? "radius"
                                                              : "pairwise")
        << " cover_sets=" << cover_result.chosen.size()
        << " cover_weight=" << cover_result.total_weight;
  result.notes = notes.str();
  ctx->ReleaseMemory(family_bytes);
  return result;
}

}  // namespace kanon
