#include "algo/registry.h"

#include "algo/annealing.h"
#include "algo/attribute_adapter.h"
#include "algo/attribute_exact.h"
#include "algo/attribute_greedy.h"
#include "algo/ball_cover.h"
#include "algo/branch_bound.h"
#include "algo/cluster_greedy.h"
#include "algo/exact_dp.h"
#include "algo/fallback.h"
#include "algo/greedy_cover.h"
#include "algo/local_search.h"
#include "algo/mdav.h"
#include "algo/mondrian.h"
#include "algo/random_partition.h"
#include "algo/sharded_anonymizer.h"
#include "algo/suppress_all.h"
#include "coreset/coreset_anonymizer.h"

namespace kanon {

std::vector<std::string> KnownAnonymizers() {
  return {
      "greedy_cover",     "ball_cover",    "ball_cover_radius",
      "ball_cover_pairwise", "exact_dp",   "branch_bound",
      "mondrian",         "cluster_greedy", "mdav",
      "random_partition",
      "coreset_mdav",     "coreset_cluster_greedy", "coreset_ball_cover",
      "sharded_mdav",     "sharded_cluster_greedy",
      "suppress_all",     "attribute_greedy", "attribute_exact",
      "resilient",
  };
}

std::unique_ptr<Anonymizer> MakeAnonymizer(const std::string& name) {
  constexpr std::string_view kShardedPrefix = "sharded_";
  if (name.size() > kShardedPrefix.size() &&
      name.starts_with(kShardedPrefix)) {
    const std::string inner_name = name.substr(kShardedPrefix.size());
    // The wrapper cannot nest itself or the fallback chain (a coreset
    // inner is fine: sharded_coreset_mdav shards, then samples).
    if (inner_name == "resilient" ||
        inner_name.starts_with(kShardedPrefix)) {
      return nullptr;
    }
    // Probe once so an unknown inner fails here, not inside a factory
    // call mid-run.
    if (MakeAnonymizer(inner_name) == nullptr) return nullptr;
    return std::make_unique<ShardedAnonymizer>(
        [inner_name] { return MakeAnonymizer(inner_name); });
  }
  constexpr std::string_view kCoresetPrefix = "coreset_";
  if (name.size() > kCoresetPrefix.size() &&
      name.starts_with(kCoresetPrefix)) {
    const std::string inner_name = name.substr(kCoresetPrefix.size());
    // The wrapper cannot nest itself or the fallback chain.
    if (inner_name == "resilient" ||
        inner_name.starts_with(kCoresetPrefix)) {
      return nullptr;
    }
    auto inner = MakeAnonymizer(inner_name);
    if (inner == nullptr) return nullptr;
    return std::make_unique<CoresetAnonymizer>(std::move(inner));
  }
  constexpr std::string_view kLocalSearchSuffix = "+local_search";
  if (name.size() > kLocalSearchSuffix.size() &&
      name.ends_with(kLocalSearchSuffix)) {
    auto base = MakeAnonymizer(
        name.substr(0, name.size() - kLocalSearchSuffix.size()));
    if (base == nullptr) return nullptr;
    return std::make_unique<LocalSearchAnonymizer>(std::move(base));
  }
  constexpr std::string_view kAnnealingSuffix = "+annealing";
  if (name.size() > kAnnealingSuffix.size() &&
      name.ends_with(kAnnealingSuffix)) {
    auto base = MakeAnonymizer(
        name.substr(0, name.size() - kAnnealingSuffix.size()));
    if (base == nullptr) return nullptr;
    return std::make_unique<AnnealingAnonymizer>(std::move(base));
  }
  if (name == "greedy_cover") {
    return std::make_unique<GreedyCoverAnonymizer>();
  }
  if (name == "ball_cover") {
    return std::make_unique<BallCoverAnonymizer>();
  }
  if (name == "ball_cover_radius") {
    BallCoverOptions options;
    options.family_mode = BallFamilyMode::kRadius;
    return std::make_unique<BallCoverAnonymizer>(options);
  }
  if (name == "ball_cover_pairwise") {
    BallCoverOptions options;
    options.family_mode = BallFamilyMode::kPairwise;
    return std::make_unique<BallCoverAnonymizer>(options);
  }
  if (name == "exact_dp") {
    return std::make_unique<ExactDpAnonymizer>();
  }
  if (name == "branch_bound") {
    return std::make_unique<BranchBoundAnonymizer>();
  }
  if (name == "mondrian") {
    return std::make_unique<MondrianAnonymizer>();
  }
  if (name == "cluster_greedy") {
    return std::make_unique<ClusterGreedyAnonymizer>();
  }
  if (name == "mdav") {
    return std::make_unique<MdavAnonymizer>();
  }
  if (name == "random_partition") {
    return std::make_unique<RandomPartitionAnonymizer>();
  }
  if (name == "suppress_all") {
    return std::make_unique<SuppressAllAnonymizer>();
  }
  if (name == "resilient") {
    return std::make_unique<FallbackAnonymizer>();
  }
  if (name == "attribute_greedy") {
    return std::make_unique<AttributeAdapterAnonymizer>(
        std::make_unique<GreedyAttributeAnonymizer>());
  }
  if (name == "attribute_exact") {
    return std::make_unique<AttributeAdapterAnonymizer>(
        std::make_unique<ExactAttributeAnonymizer>());
  }
  return nullptr;
}

StatusOr<std::unique_ptr<Anonymizer>> MakeAnonymizerOr(
    const std::string& name) {
  auto algo = MakeAnonymizer(name);
  if (algo != nullptr) return algo;
  std::string message = "unknown algorithm '" + name + "'; known:";
  for (const std::string& known : KnownAnonymizers()) {
    message += " " + known;
  }
  message +=
      " (composition suffixes: +local_search, +annealing;"
      " prefixes: coreset_<inner>, sharded_<inner>)";
  return Status::NotFound(std::move(message));
}

}  // namespace kanon
