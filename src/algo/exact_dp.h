#ifndef KANON_ALGO_EXACT_DP_H_
#define KANON_ALGO_EXACT_DP_H_

#include <cstddef>

#include "algo/anonymizer.h"

/// \file
/// Exact optimal k-anonymity by dynamic programming over row subsets.
///
/// OPT(V) = min over partitions into groups of size >= k of sum ANON(S);
/// wlog groups have size <= 2k-1 (the paper's split argument), so
///
///   dp[mask] = min over S ⊆ mask, k <= |S| <= 2k-1, lowest-bit(mask) ∈ S
///              of ANON(S) + dp[mask \ S],
///
/// anchoring each group at the lowest uncovered row to avoid counting
/// permutations of the same partition. Exponential in n (feasible to
/// n ~ 20); this is the OPT oracle for approximation-ratio experiments
/// and stands in for the unpublished exact algorithm of [Sweeney 03]
/// referenced by the paper.

namespace kanon {

/// Configuration for ExactDpAnonymizer.
struct ExactDpOptions {
  /// Run() dies if table.num_rows() exceeds this (2^n dp states).
  size_t max_rows = 22;
};

/// Exact solver; result.cost == OPT(V).
class ExactDpAnonymizer : public Anonymizer {
 public:
  explicit ExactDpAnonymizer(ExactDpOptions options = {});

  using Anonymizer::Run;
  std::string name() const override { return "exact_dp"; }
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

 private:
  ExactDpOptions options_;
};

}  // namespace kanon

#endif  // KANON_ALGO_EXACT_DP_H_
