#ifndef KANON_ALGO_STREAMING_H_
#define KANON_ALGO_STREAMING_H_

#include <cstddef>
#include <memory>

#include "algo/anonymizer.h"

/// \file
/// Batched ("streaming") anonymization: process the relation in
/// consecutive batches of bounded size, running the wrapped algorithm
/// on each batch independently and translating the per-batch partitions
/// back to global row ids. This bounds peak memory and (for
/// superlinear bases like ball_cover's O(n^3)) total time, at a
/// measurable utility cost because groups can never span batches —
/// the scalability lever a production deployment of the paper's
/// algorithm would actually use (cf. CASTLE-style stream k-anonymity).
///
/// Correctness: each batch has >= k rows (a final short batch is folded
/// into its predecessor), so the union of per-batch partitions is a
/// valid global partition with all groups >= k.

namespace kanon {

/// Configuration for StreamingAnonymizer.
struct StreamingOptions {
  /// Target rows per batch; must be >= k at Run time.
  size_t batch_size = 256;
};

/// Batched adapter around any base algorithm.
class StreamingAnonymizer : public Anonymizer {
 public:
  StreamingAnonymizer(std::unique_ptr<Anonymizer> base,
                      StreamingOptions options = {});

  using Anonymizer::Run;
  std::string name() const override;
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

 private:
  std::unique_ptr<Anonymizer> base_;
  StreamingOptions options_;
};

}  // namespace kanon

#endif  // KANON_ALGO_STREAMING_H_
