#ifndef KANON_ALGO_SHARD_MERGE_H_
#define KANON_ALGO_SHARD_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "algo/shard_plan.h"
#include "core/partition.h"
#include "data/table.h"
#include "util/run_context.h"
#include "util/status.h"

/// \file
/// MergeRepair: the third stage of the sharded solve pipeline.
///
/// Each shard solver returns a partition in *shard-local* coordinates
/// (indices into its shard's row list). `MergeShardPartitions` reindexes
/// every group into table coordinates and concatenates them — the union
/// of per-shard partitions over a disjoint cover is a partition of the
/// whole table. Groups that arrive undersized (below k) are repaired
/// smallest-first, ties -> lowest group id, by merging into the nearest
/// surviving group by mode-centroid Hamming distance — the same repair
/// discipline as the coreset assignment pass, so degradation is
/// predictable across both pipelines. With n >= k the final state is
/// always a valid k-anonymous partition; `repair_suppressed` flags the
/// fully-collapsed worst case.
///
/// The quality contract is Lemma 4.1's sandwich: the merged partition's
/// cost sits between HalfDiameterVolumeBound and
/// DiameterVolumeUpperBound of its own diameter profile (see
/// core/bounds.h), which the property tests assert on random instances.
/// Fault site `shard.merge` fires a typed budget decline for chaos
/// testing.

namespace kanon {

/// Outcome of the merge: a valid k-anonymous partition of the full
/// table plus the repair ledger.
struct ShardMergeOutcome {
  Partition partition;
  /// Undersized boundary groups folded into a neighbor.
  uint64_t repair_merges = 0;
  /// True when repair collapsed a multi-group merge to one group.
  bool repair_suppressed = false;
};

/// Merges `shard_partitions[i]` (a partition of plan.shards[i] in
/// shard-local indices, every group non-empty and no index out of
/// range; groups may be undersized — that is what repair is for) into
/// one table-coordinate partition. Typed failures:
/// kInvalidArgument when a shard partition is not a partition of its
/// shard's rows, kCancelled/kDeadlineExceeded/kResourceExhausted when
/// `ctx` stops. Fault site `shard.merge` fires a typed budget decline.
StatusOr<ShardMergeOutcome> MergeShardPartitions(
    const Table& table, const ShardPlan& plan,
    const std::vector<Partition>& shard_partitions, size_t k,
    RunContext* ctx);

}  // namespace kanon

#endif  // KANON_ALGO_SHARD_MERGE_H_
