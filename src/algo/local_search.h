#ifndef KANON_ALGO_LOCAL_SEARCH_H_
#define KANON_ALGO_LOCAL_SEARCH_H_

#include <memory>

#include "algo/anonymizer.h"

/// \file
/// Local-search post-optimizer, implementing the improvement direction
/// the paper leaves open ("we are confident this bound can be improved
/// ... beyond the scope of this work"): take any valid partition and
/// apply cost-decreasing moves until a local optimum:
///
///   * MOVE  — relocate a row from a group with > k members to another
///     group;
///   * SWAP  — exchange two rows between different groups.
///
/// Both preserve the >= k group-size invariant, so every intermediate
/// state is a valid k-anonymization and the final cost is <= the input
/// cost. Used standalone (wrapping a base algorithm) and as the
/// `+local_search` ablation arm of E8.

namespace kanon {

/// Configuration for LocalSearchAnonymizer and ImprovePartition.
struct LocalSearchOptions {
  /// Max full passes over all (row, group) pairs; each pass is
  /// O(n * groups * k * m). 0 disables improvement entirely.
  size_t max_passes = 64;
};

/// Improves `partition` in place; returns the number of applied moves.
/// Requires a valid partition with all groups >= k. Every intermediate
/// state is valid, so a stop via `ctx` (checked between improvement
/// scans) simply keeps the best-so-far partition.
size_t ImprovePartition(const Table& table, size_t k,
                        const LocalSearchOptions& options,
                        Partition* partition, RunContext* ctx = nullptr);

/// Anonymizer adapter: runs `base`, then improves its partition.
class LocalSearchAnonymizer : public Anonymizer {
 public:
  LocalSearchAnonymizer(std::unique_ptr<Anonymizer> base,
                        LocalSearchOptions options = {});

  using Anonymizer::Run;
  std::string name() const override;
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;

 private:
  std::unique_ptr<Anonymizer> base_;
  LocalSearchOptions options_;
};

}  // namespace kanon

#endif  // KANON_ALGO_LOCAL_SEARCH_H_
