#ifndef KANON_ALGO_SHARD_METRICS_H_
#define KANON_ALGO_SHARD_METRICS_H_

#include <atomic>
#include <cstdint>

/// \file
/// Process-wide counters for the sharded solve pipeline, surfaced in
/// kanond `stats` (always present, zero when sharding is disabled) and
/// folded into the chaos replay fingerprint — a seed replay that plans,
/// solves or repairs shards differently is a different schedule. Plain
/// relaxed atomics, mirroring CoresetMetrics: the counters are
/// diagnostics, not synchronization.

namespace kanon {

struct ShardMetricsSnapshot {
  uint64_t plans = 0;
  uint64_t shards_planned = 0;
  uint64_t shard_solves = 0;
  uint64_t shard_declines = 0;
  uint64_t merges = 0;
  uint64_t repair_merges = 0;
  uint64_t resumed = 0;
};

class ShardMetrics {
 public:
  static ShardMetrics& Instance();

  void RecordPlan(uint64_t shards) {
    plans_.fetch_add(1, std::memory_order_relaxed);
    shards_planned_.fetch_add(shards, std::memory_order_relaxed);
  }
  void RecordShardSolve() {
    shard_solves_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordShardDecline() {
    shard_declines_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordMerge(uint64_t repair_merges) {
    merges_.fetch_add(1, std::memory_order_relaxed);
    repair_merges_.fetch_add(repair_merges, std::memory_order_relaxed);
  }
  void RecordResume() { resumed_.fetch_add(1, std::memory_order_relaxed); }

  ShardMetricsSnapshot Snapshot() const;

  /// Zeroes every counter; the chaos harness calls this at the start of
  /// each schedule so fingerprints are per-schedule.
  void Reset();

 private:
  ShardMetrics() = default;

  std::atomic<uint64_t> plans_{0};
  std::atomic<uint64_t> shards_planned_{0};
  std::atomic<uint64_t> shard_solves_{0};
  std::atomic<uint64_t> shard_declines_{0};
  std::atomic<uint64_t> merges_{0};
  std::atomic<uint64_t> repair_merges_{0};
  std::atomic<uint64_t> resumed_{0};
};

}  // namespace kanon

#endif  // KANON_ALGO_SHARD_METRICS_H_
