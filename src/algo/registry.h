#ifndef KANON_ALGO_REGISTRY_H_
#define KANON_ALGO_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "algo/anonymizer.h"
#include "util/status.h"

/// \file
/// Name -> algorithm factory, so example binaries and the experiment
/// harness can select algorithms from the command line.

namespace kanon {

/// Known algorithm names, in presentation order.
std::vector<std::string> KnownAnonymizers();

/// Instantiates the algorithm registered under `name` (see
/// KnownAnonymizers); returns nullptr for unknown names. Composite names
/// of the form "<base>+local_search" wrap the base algorithm in the
/// local-search post-optimizer.
std::unique_ptr<Anonymizer> MakeAnonymizer(const std::string& name);

/// Diagnosing variant for input boundaries (CLIs, the service layer):
/// unknown names come back as kNotFound with a message that lists every
/// registered name and the composition suffixes, so the caller can print
/// it verbatim instead of reconstructing the list.
StatusOr<std::unique_ptr<Anonymizer>> MakeAnonymizerOr(
    const std::string& name);

}  // namespace kanon

#endif  // KANON_ALGO_REGISTRY_H_
