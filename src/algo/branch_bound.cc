#include "algo/branch_bound.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "ckpt/checkpoint.h"
#include "core/bounds.h"
#include "core/cost.h"
#include "core/distance_oracle.h"
#include "fault/fault.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

namespace {

/// DFS state for the exact search.
class Search {
 public:
  Search(const Table& table, const DistanceOracle& dm, size_t k,
         size_t max_nodes, RunContext* ctx)
      : table_(table), k_(k), max_nodes_(max_nodes), ctx_(ctx) {
    const RowId n = table.num_rows();
    assigned_.assign(n, false);
    row_lb_.resize(n);
    for (RowId r = 0; r < n; ++r) {
      row_lb_[r] = (k >= 2) ? dm.KthNearestDistance(
                                  r, static_cast<RowId>(k - 1))
                            : 0;
      remaining_lb_ += row_lb_[r];
    }
  }

  /// Runs the search starting from an incumbent partition/cost.
  void Run(Partition incumbent, size_t incumbent_cost) {
    best_partition_ = std::move(incumbent);
    best_cost_ = incumbent_cost;
    current_.groups.clear();
    Assign(0);
  }

  const Partition& best_partition() const { return best_partition_; }
  size_t best_cost() const { return best_cost_; }
  size_t nodes() const { return nodes_; }
  bool truncated() const { return truncated_; }

 private:
  bool NodeBudgetExceeded() {
    if (max_nodes_ != 0 && nodes_ >= max_nodes_) {
      truncated_ = true;
      return true;
    }
    // Cooperative checkpoint: one per search node, with the clock read
    // strided so pruning-heavy searches stay cheap. An injected fault
    // expires the deadline: the anytime incumbent is still returned.
    ctx_->ChargeNodes();
    if ((nodes_ & 0x3f) == 0) {
      if (KANON_FAULT_POINT("branch_bound.node")) {
        ctx_->MarkStopped(StopReason::kDeadline);
      }
      if (ctx_->ShouldStop()) {
        truncated_ = true;
        return true;
      }
      if (ctx_->CheckpointDue()) {
        // The incumbent is the whole resumable state: restarting the
        // DFS from the root with this incumbent prunes (>=) everything
        // the original run pruned plus everything it already improved
        // past, and incumbent updates are strict improvements visited
        // in the same deterministic order — so a resumed run lands on
        // the bit-identical final partition.
        CheckpointWriter w;
        w.PutU64(best_cost_);
        w.PutU64(nodes_);
        w.PutPartition(best_partition_);
        (void)ctx_->EmitCheckpoint("branch_bound", w.bytes());
      }
    }
    return false;
  }

  /// Outer recursion: all rows < `from_hint` are known-assigned.
  void Assign(RowId from_hint) {
    if (truncated_) return;
    ++nodes_;
    if (NodeBudgetExceeded()) return;
    // Find the anchor: lowest unassigned row.
    RowId anchor = from_hint;
    const RowId n = table_.num_rows();
    while (anchor < n && assigned_[anchor]) ++anchor;
    if (anchor == n) {
      if (current_cost_ < best_cost_) {
        best_cost_ = current_cost_;
        best_partition_ = current_;
      }
      return;
    }
    // Candidates for the anchor's group.
    std::vector<RowId> candidates;
    for (RowId r = anchor + 1; r < n; ++r) {
      if (!assigned_[r]) candidates.push_back(r);
    }
    if (candidates.size() + 1 < k_) return;  // cannot form a group
    Group group = {anchor};
    Extend(&group, candidates, 0, anchor);
  }

  /// Inner recursion: grow `group` (which contains the anchor) with
  /// candidates[pos..]; every subset of size in [k, 2k-1] is tried.
  void Extend(Group* group, const std::vector<RowId>& candidates,
              size_t pos, RowId anchor) {
    if (truncated_) return;
    if (group->size() >= k_) TryGroup(*group, anchor);
    if (group->size() == 2 * k_ - 1) return;
    for (size_t i = pos; i < candidates.size(); ++i) {
      group->push_back(candidates[i]);
      Extend(group, candidates, i + 1, anchor);
      group->pop_back();
      if (truncated_) return;
    }
  }

  /// Commits `group`, recurses, rolls back.
  void TryGroup(const Group& group, RowId anchor) {
    const size_t group_cost = AnonCost(table_, group);
    size_t group_lb = 0;
    for (const RowId r : group) group_lb += row_lb_[r];
    // Prune: committed cost + this group + LB of what remains.
    const size_t projected =
        current_cost_ + group_cost + (remaining_lb_ - group_lb);
    if (projected >= best_cost_) return;

    for (const RowId r : group) assigned_[r] = true;
    current_cost_ += group_cost;
    remaining_lb_ -= group_lb;
    current_.groups.push_back(group);

    Assign(anchor + 1);

    current_.groups.pop_back();
    remaining_lb_ += group_lb;
    current_cost_ -= group_cost;
    for (const RowId r : group) assigned_[r] = false;
  }

  const Table& table_;
  const size_t k_;
  const size_t max_nodes_;
  RunContext* const ctx_;

  std::vector<bool> assigned_;
  std::vector<ColId> row_lb_;
  size_t remaining_lb_ = 0;

  Partition current_;
  size_t current_cost_ = 0;

  Partition best_partition_;
  size_t best_cost_ = 0;
  size_t nodes_ = 0;
  bool truncated_ = false;
};

/// Quick incumbent: consecutive chunks of size k (remainder folded into
/// the final chunk).
Partition ChunkPartition(RowId n, size_t k) {
  Partition p;
  Group all(n);
  for (RowId r = 0; r < n; ++r) all[r] = r;
  p.groups.push_back(std::move(all));
  return SplitLargeGroups(p, k);
}

}  // namespace

BranchBoundAnonymizer::BranchBoundAnonymizer(BranchBoundOptions options)
    : options_(options) {}

AnonymizationResult BranchBoundAnonymizer::Run(const Table& table,
                                               size_t k,
                                               RunContext* ctx) {
  const RowId n = table.num_rows();
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(n), k);
  WallTimer timer;
  if (static_cast<size_t>(n) > options_.max_rows) {
    if (!ctx->lenient()) {
      KANON_CHECK_LE(static_cast<size_t>(n), options_.max_rows)
          << "branch_bound is exponential in n";
    }
    ctx->MarkStopped(StopReason::kBudget);
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: n exceeds branch_bound max_rows");
  }

  const StatusOr<std::shared_ptr<const DistanceOracle>> oracle =
      SharedDistanceOracle(table, ctx);
  if (!oracle.ok()) {
    return StoppedResult(*ctx, timer.Seconds(),
                         "declined: " + oracle.status().message());
  }
  Search search(table, **oracle, k, options_.max_nodes, ctx);
  // The chunk partition seeds a finite incumbent; the search only
  // replaces it on strict improvement, so its cost is an upper bound
  // throughout and pruning with >= is safe.
  Partition incumbent = ChunkPartition(n, k);
  size_t incumbent_cost = PartitionCost(table, incumbent);
  bool resumed = false;
  if (const std::optional<std::string> state =
          ctx->resume_payload("branch_bound")) {
    // A checkpointed incumbent replaces the chunk seed. It is hostile
    // input (it crossed a crash): every claim is re-verified and a bad
    // snapshot falls back to the cold seed.
    CheckpointReader r(*state);
    const size_t saved_cost = r.GetU64();
    r.GetU64();  // nodes at save time; informational only
    Partition saved = r.GetPartition();
    if (!r.failed() && r.AtEnd() &&
        IsValidPartition(saved, n, k, static_cast<size_t>(n)) &&
        PartitionCost(table, saved) == saved_cost &&
        saved_cost <= incumbent_cost) {
      incumbent = std::move(saved);
      incumbent_cost = saved_cost;
      resumed = true;
    }
  }
  search.Run(incumbent, incumbent_cost);

  // Even a truncated search holds a valid incumbent (seeded above), so
  // a deadline/budget stop degrades to "best found so far" rather than
  // nothing — branch & bound is the chain's anytime stage.
  AnonymizationResult result;
  result.partition = search.best_partition();
  FinalizeResult(table, &result);
  KANON_CHECK_EQ(result.cost, search.best_cost());
  result.seconds = timer.Seconds();
  result.termination = ctx->stop_reason();
  std::ostringstream notes;
  notes << "nodes=" << search.nodes() << (resumed ? " RESUMED" : "")
        << (search.truncated() ? " TRUNCATED" : "");
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
