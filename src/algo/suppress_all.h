#ifndef KANON_ALGO_SUPPRESS_ALL_H_
#define KANON_ALGO_SUPPRESS_ALL_H_

#include "algo/anonymizer.h"

/// \file
/// The trivial k-anonymizer: one group containing every row, i.e. star
/// every entry of every disagreeing column. Always feasible (for n >= k)
/// and the worst-case ceiling n*m on the objective; appears in reports as
/// the "suppress everything" upper reference line.

namespace kanon {

/// Trivial single-group anonymizer.
class SuppressAllAnonymizer : public Anonymizer {
 public:
  using Anonymizer::Run;
  std::string name() const override { return "suppress_all"; }
  AnonymizationResult Run(const Table& table, size_t k,
                          RunContext* ctx) override;
};

}  // namespace kanon

#endif  // KANON_ALGO_SUPPRESS_ALL_H_
