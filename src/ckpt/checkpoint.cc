#include "ckpt/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "fault/fault.h"
#include "util/fingerprint.h"

namespace kanon {
namespace {

constexpr char kMagic[4] = {'K', 'C', 'K', 'P'};
constexpr uint32_t kVersion = 1;

void AppendLE(std::string* out, uint64_t v, size_t width) {
  for (size_t i = 0; i < width; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t ReadLE(const char* p, size_t width) {
  uint64_t v = 0;
  for (size_t i = 0; i < width; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

// --- Writer -----------------------------------------------------------

void CheckpointWriter::PutU32(uint32_t v) { AppendLE(&bytes_, v, 4); }

void CheckpointWriter::PutU64(uint64_t v) { AppendLE(&bytes_, v, 8); }

void CheckpointWriter::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void CheckpointWriter::PutBytes(std::string_view bytes) {
  PutU64(bytes.size());
  bytes_.append(bytes.data(), bytes.size());
}

void CheckpointWriter::PutPartition(const Partition& partition) {
  PutU64(partition.groups.size());
  for (const Group& group : partition.groups) {
    PutU64(group.size());
    for (const RowId row : group) PutU32(row);
  }
}

// --- Reader -----------------------------------------------------------

bool CheckpointReader::Need(size_t n) {
  if (failed_ || bytes_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

uint32_t CheckpointReader::GetU32() {
  if (!Need(4)) return 0;
  const uint64_t v = ReadLE(bytes_.data() + pos_, 4);
  pos_ += 4;
  return static_cast<uint32_t>(v);
}

uint64_t CheckpointReader::GetU64() {
  if (!Need(8)) return 0;
  const uint64_t v = ReadLE(bytes_.data() + pos_, 8);
  pos_ += 8;
  return v;
}

double CheckpointReader::GetDouble() {
  const uint64_t bits = GetU64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string_view CheckpointReader::GetBytes() {
  const uint64_t len = GetU64();
  // The length came off the wire: cap it by what is actually left so a
  // hostile value cannot index past the buffer.
  if (failed_ || len > bytes_.size() - pos_) {
    failed_ = true;
    return std::string_view();
  }
  const std::string_view out = bytes_.substr(pos_, len);
  pos_ += len;
  return out;
}

Partition CheckpointReader::GetPartition() {
  Partition partition;
  const uint64_t num_groups = GetU64();
  // Every group costs at least its 8-byte length prefix, so a count
  // larger than remaining()/8 is provably corrupt — reject before
  // reserving anything.
  if (failed_ || num_groups > remaining() / 8) {
    failed_ = true;
    return partition;
  }
  partition.groups.reserve(num_groups);
  for (uint64_t g = 0; g < num_groups; ++g) {
    const uint64_t size = GetU64();
    if (failed_ || size > remaining() / 4) {
      failed_ = true;
      return partition;
    }
    Group group;
    group.reserve(size);
    for (uint64_t i = 0; i < size; ++i) group.push_back(GetU32());
    if (failed_) return partition;
    partition.groups.push_back(std::move(group));
  }
  return partition;
}

// --- Envelope ---------------------------------------------------------

std::string EncodeSnapshot(const SolverSnapshot& snapshot) {
  CheckpointWriter body;
  body.PutBytes(snapshot.solver);
  body.PutU64(snapshot.table_fp);
  body.PutU64(snapshot.k);
  body.PutU64(snapshot.seq);
  body.PutBytes(snapshot.payload);

  std::string out(kMagic, sizeof(kMagic));
  AppendLE(&out, kVersion, 4);
  AppendLE(&out, body.bytes().size(), 8);
  out += body.bytes();
  AppendLE(&out, Fingerprint(out), 8);
  return out;
}

StatusOr<SolverSnapshot> DecodeSnapshot(std::string_view bytes) {
  // Header (magic + version + length) plus trailing checksum is the
  // minimum a complete envelope can occupy.
  constexpr size_t kHeader = 4 + 4 + 8;
  if (bytes.size() < kHeader + 8) {
    return Status::DataLoss("checkpoint truncated: " +
                            std::to_string(bytes.size()) + " bytes");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::ParseError("checkpoint has wrong magic");
  }
  const uint32_t version =
      static_cast<uint32_t>(ReadLE(bytes.data() + 4, 4));
  const uint64_t body_len = ReadLE(bytes.data() + 8, 8);
  if (body_len != bytes.size() - kHeader - 8) {
    // A short file is torn (data loss); a long one is malformed.
    if (body_len > bytes.size() - kHeader - 8) {
      return Status::DataLoss("checkpoint body truncated: have " +
                              std::to_string(bytes.size() - kHeader - 8) +
                              " of " + std::to_string(body_len) + " bytes");
    }
    return Status::ParseError("checkpoint has trailing bytes");
  }
  const uint64_t stored_check =
      ReadLE(bytes.data() + bytes.size() - 8, 8);
  const uint64_t computed_check =
      Fingerprint(bytes.substr(0, bytes.size() - 8));
  if (stored_check != computed_check) {
    return Status::DataLoss("checkpoint checksum mismatch");
  }
  // Checksum verified: the bytes survived. Anything wrong from here on
  // is a format problem, not a storage problem.
  if (version != kVersion) {
    return Status::ParseError("unsupported checkpoint version " +
                              std::to_string(version));
  }

  CheckpointReader body(bytes.substr(kHeader, body_len));
  SolverSnapshot snapshot;
  snapshot.solver = std::string(body.GetBytes());
  snapshot.table_fp = body.GetU64();
  snapshot.k = body.GetU64();
  snapshot.seq = body.GetU64();
  snapshot.payload = std::string(body.GetBytes());
  if (body.failed() || !body.AtEnd()) {
    return Status::ParseError("checkpoint body failed to decode");
  }
  return snapshot;
}

// --- Store ------------------------------------------------------------

CheckpointStore::CheckpointStore(std::string dir) : dir_(std::move(dir)) {
  ::mkdir(dir_.c_str(), 0755);  // EEXIST is fine; other errors surface
                                // on the first Save.
}

std::string CheckpointStore::PathFor(uint64_t id) const {
  return dir_ + "/job_" + std::to_string(id) + ".ckpt";
}

Status CheckpointStore::Save(uint64_t id, const SolverSnapshot& snapshot) {
  const std::string encoded = EncodeSnapshot(snapshot);
  const std::string path = PathFor(id);

  if (KANON_FAULT_POINT("ckpt.save")) {
    return Status::Internal("injected fault: ckpt.save");
  }
  if (KANON_FAULT_POINT("ckpt.torn")) {
    // A lying disk: half the bytes land in the *final* path and the
    // write reports success. The decoder's checksum must catch this on
    // the next Load.
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      const size_t half = encoded.size() / 2;
      (void)!::write(fd, encoded.data(), half);
      ::close(fd);
    }
    return Status::Ok();
  }

  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("open(" + tmp + "): " +
                            std::string(std::strerror(errno)));
  }
  size_t written = 0;
  while (written < encoded.size()) {
    const ssize_t n =
        ::write(fd, encoded.data() + written, encoded.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      ::unlink(tmp.c_str());
      return Status::Internal("write(" + tmp + "): " +
                              std::string(std::strerror(saved)));
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Internal("fsync(" + tmp + "): " +
                            std::string(std::strerror(saved)));
  }
  if (::close(fd) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("close(" + tmp + "): " +
                            std::string(std::strerror(saved)));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return Status::Internal("rename(" + tmp + "): " +
                            std::string(std::strerror(saved)));
  }
  // Durability of the rename itself needs the directory entry flushed;
  // best-effort (some filesystems reject O_RDONLY dir fsync).
  const int dirfd = ::open(dir_.c_str(), O_RDONLY | O_DIRECTORY);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
  return Status::Ok();
}

StatusOr<SolverSnapshot> CheckpointStore::Load(uint64_t id) const {
  const std::string path = PathFor(id);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no checkpoint for job " + std::to_string(id));
    }
    return Status::Internal("open(" + path + "): " +
                            std::string(std::strerror(errno)));
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      ::close(fd);
      return Status::Internal("read(" + path + "): " +
                              std::string(std::strerror(saved)));
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return DecodeSnapshot(bytes);
}

Status CheckpointStore::Remove(uint64_t id) {
  const std::string path = PathFor(id);
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal("unlink(" + path + "): " +
                            std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

Status CheckpointStore::Clear() {
  for (const uint64_t id : List()) {
    const Status status = Remove(id);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

std::vector<uint64_t> CheckpointStore::List() const {
  std::vector<uint64_t> ids;
  DIR* dir = ::opendir(dir_.c_str());
  if (dir == nullptr) return ids;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() <= 9 || name.compare(0, 4, "job_") != 0 ||
        name.compare(name.size() - 5, 5, ".ckpt") != 0) {
      continue;
    }
    const std::string digits = name.substr(4, name.size() - 9);
    uint64_t id = 0;
    bool valid = !digits.empty();
    for (const char c : digits) {
      if (c < '0' || c > '9') {
        valid = false;
        break;
      }
      id = id * 10 + static_cast<uint64_t>(c - '0');
    }
    if (valid) ids.push_back(id);
  }
  ::closedir(dir);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace kanon
