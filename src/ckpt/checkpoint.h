#ifndef KANON_CKPT_CHECKPOINT_H_
#define KANON_CKPT_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/partition.h"
#include "util/status.h"

/// \file
/// Durable solver snapshots: the wire format and the on-disk store.
///
/// The anytime solvers (local search, annealing, branch-and-bound, MDAV)
/// periodically encode their in-flight state — an incumbent partition, a
/// pass counter, an RNG state — and hand it to a `CheckpointSink` (see
/// util/run_context.h). This file supplies the two halves below the
/// sink: a tiny length-prefixed binary codec, and `CheckpointStore`, a
/// directory of one-snapshot-per-job files written with the full
/// fsync + atomic-rename discipline.
///
/// **Trust model.** A snapshot read back after a crash is *hostile*
/// input: the write may have torn, the disk may have lied, a stray tool
/// may have truncated the file. Decoding therefore never KANON_CHECKs on
/// content; every violation comes back as a typed error —
/// `kDataLoss` when the bytes themselves did not survive (short file,
/// checksum mismatch), `kParseError` when intact bytes fail to decode
/// (bad magic, unsupported version, inconsistent lengths). Callers fall
/// back to a cold start on any non-OK load; a bad snapshot must never be
/// silently restored.
///
/// **Format** (all integers little-endian):
///
///     magic   "KCKP"                      4 bytes
///     version u32 (currently 1)           4 bytes
///     length  u64 = len(body)             8 bytes
///     body    solver name (len-prefixed), table fingerprint u64,
///             k u64, sequence u64, payload (len-prefixed)
///     check   u64 FNV-1a over everything above
///
/// The payload is the solver's own sub-encoding (same Writer/Reader
/// helpers); the envelope's stamp fields (table fingerprint, k) let the
/// service reject a snapshot that does not match the job it is being
/// resumed for ("stale" in the journal-replay sense).

namespace kanon {

/// Appends fixed-width and length-prefixed fields to a byte string.
/// Used for both the envelope and the solver payloads.
class CheckpointWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// Stores the exact bit pattern; round-trips NaNs and signed zeros.
  void PutDouble(double v);
  /// u64 length prefix, then the raw bytes.
  void PutBytes(std::string_view bytes);
  /// Group count, then each group as a length-prefixed RowId list.
  void PutPartition(const Partition& partition);

  const std::string& bytes() const { return bytes_; }
  std::string TakeBytes() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked reader over an encoded byte string. Any out-of-range
/// read sets `failed()` and returns a zero value; callers check once at
/// the end instead of after every field. Sizes decoded from the input
/// (group counts, byte lengths) are validated against the bytes that
/// remain, so a hostile length can never drive a large allocation.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view bytes) : bytes_(bytes) {}

  uint32_t GetU32();
  uint64_t GetU64();
  double GetDouble();
  std::string_view GetBytes();
  Partition GetPartition();

  /// True once any read ran past the input or saw an impossible length.
  bool failed() const { return failed_; }
  /// True when every byte has been consumed (trailing garbage is an
  /// error for fixed-layout payloads).
  bool AtEnd() const { return pos_ == bytes_.size(); }
  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  bool Need(size_t n);

  std::string_view bytes_;
  size_t pos_ = 0;
  bool failed_ = false;
};

/// One solver snapshot plus the stamp identifying the job it belongs to.
struct SolverSnapshot {
  std::string solver;  ///< Anonymizer name that produced the payload.
  uint64_t table_fp = 0;  ///< Content fingerprint of the input table.
  uint64_t k = 0;         ///< The job's k.
  uint64_t seq = 0;       ///< Monotonic per-job snapshot sequence number.
  std::string payload;    ///< Solver-private encoded state.
};

/// Serializes `snapshot` into the envelope format described above.
std::string EncodeSnapshot(const SolverSnapshot& snapshot);

/// Decodes and verifies an envelope. Returns typed errors only (see the
/// trust model in the file comment) — never aborts on bad input.
StatusOr<SolverSnapshot> DecodeSnapshot(std::string_view bytes);

/// A directory of snapshot files, one per job id ("job_<id>.ckpt").
/// Saves replace atomically (write temp, fsync, rename), so a reader —
/// including a post-crash replay — observes either the previous complete
/// snapshot or the new one, never a mix. Methods are thread-safe for
/// distinct ids; per-id callers are expected to be serialized (one
/// worker owns a job).
class CheckpointStore {
 public:
  /// Creates `dir` if needed. Failures surface on the first Save.
  explicit CheckpointStore(std::string dir);

  /// Durably replaces job `id`'s snapshot.
  Status Save(uint64_t id, const SolverSnapshot& snapshot);

  /// Loads and verifies job `id`'s snapshot. kNotFound when absent;
  /// kDataLoss / kParseError per the codec's trust model.
  StatusOr<SolverSnapshot> Load(uint64_t id) const;

  /// Removes job `id`'s snapshot, if any. Missing files are OK.
  Status Remove(uint64_t id);

  /// Removes every snapshot file in the directory.
  Status Clear();

  /// Ids that currently have a snapshot file, in ascending order.
  std::vector<uint64_t> List() const;

  const std::string& dir() const { return dir_; }
  std::string PathFor(uint64_t id) const;

 private:
  std::string dir_;
};

}  // namespace kanon

#endif  // KANON_CKPT_CHECKPOINT_H_
