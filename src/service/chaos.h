#ifndef KANON_SERVICE_CHAOS_H_
#define KANON_SERVICE_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Seeded chaos schedules against a live queue/pool/cache stack.
///
/// One schedule = one seed. From the seed the harness derives a fault
/// plan (which sites misbehave, how often), a mixed workload (tables,
/// algorithms, k, priorities, budgets, cancellations), and runs it
/// end-to-end on a real JobQueue + WorkerPool + ResultCache (+ JobJournal),
/// then checks the service layer's robustness invariants (1-6, plus 10;
/// 7-9 belong to the network layer, see net/net_chaos.h):
///
///   1. every admitted job terminates — with a *valid* k-anonymous
///      answer (every distinct output row appears >= k times) or a
///      typed error; no hangs, no untyped failures;
///   2. the cache never serves a fault-tainted result (a cache hit's
///      termination is always kNone or kBudget);
///   3. the job journal replays to a consistent state from *any* crash
///      prefix (intact records + at most one torn tail line);
///   4. a crash never loses a checkpointed job's validity: every
///      snapshot left in the store either loads as a stamp-matched
///      state for its own job or fails with a typed kDataLoss /
///      kParseError — even under injected save failures and torn
///      writes, a bad snapshot is never silently restorable;
///   5. resume is deterministic: re-running a job from its snapshot
///      twice (fresh contexts, faults disarmed) yields bit-identical
///      answers — same cost, same output CSV, same producing stage;
///   6. the watchdog preempts exactly the stalled: every injected
///      `worker.stall` fire is answered by exactly one preemption and
///      one typed watchdog_preempted response, and jobs that are slow
///      but heartbeating (`worker.slow`) are never preempted;
///  10. a killed or faulted shard never corrupts the merged partition:
///      `sharded_*` jobs hit by `shard.plan` / `shard.solve` /
///      `shard.merge` faults either resume from a wrapper snapshot or
///      degrade through the typed decline path — every OK answer they
///      produce is still a valid k-anonymization (checked by the same
///      invariant-1 predicate), and resumed sharded jobs stay
///      bit-deterministic under invariant 5.
///
/// Determinism: all jobs are submitted (and cancels issued) before the
/// single worker starts, solver parallelism is pinned to 1, jobs carry
/// node budgets instead of wall-clock deadlines, and breaker cooldowns
/// are effectively infinite — so the entire schedule, including every
/// fault decision, is a pure function of the seed. Same seed ⇒ same
/// `outcome_fingerprint`, same violations, on any machine.

namespace kanon {

struct ChaosScheduleOptions {
  uint64_t seed = 0;
  /// Requests generated per schedule.
  size_t jobs = 24;
  /// Journal the schedule and check invariant 3. Requires `scratch_dir`
  /// to be writable.
  bool with_journal = true;
  /// Arm a durable CheckpointStore (cadence: every 2 polls) and check
  /// invariants 4 and 5. Requires `scratch_dir` to be writable.
  bool with_checkpoints = true;
  /// Run a stall watchdog over the pool and check invariant 6 (injected
  /// `worker.stall` faults are only drawn when this is on).
  bool with_watchdog = true;
  /// Directory for the schedule's journal file and checkpoint store.
  std::string scratch_dir = "/tmp";
  /// Echo per-job outcomes to stderr.
  bool verbose = false;
};

struct ChaosReport {
  uint64_t seed = 0;
  size_t submitted = 0;
  /// Admission-time typed rejections (queue full, shed, injected).
  size_t rejected = 0;
  size_t answered_ok = 0;
  size_t answered_error = 0;
  /// Fault-site fires across the schedule.
  uint64_t fires = 0;
  /// Worker retries attempted / exhausted.
  uint64_t retries = 0;
  uint64_t retries_exhausted = 0;
  /// Jobs shed at admission.
  uint64_t shed = 0;
  /// Tainted cache inserts refused by the guard.
  uint64_t cache_rejected = 0;
  /// Checkpoint sink activity across the schedule.
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_failures = 0;
  /// Jobs answered with the typed watchdog_preempted error.
  uint64_t watchdog_preempted = 0;
  /// Snapshots examined for invariant 4 / resumed twice for invariant 5.
  uint64_t snapshots_checked = 0;
  uint64_t resumes_verified = 0;
  /// Invariant violations; empty means the schedule passed.
  std::vector<std::string> violations;
  /// Deterministic digest of every per-job outcome plus the fault-site
  /// hit/fire ledger; equal across runs with the same seed.
  uint64_t outcome_fingerprint = 0;

  bool passed() const { return violations.empty(); }
};

/// Runs one seeded schedule. Arms the process-wide FaultRegistry for
/// its duration (disarmed on return), so do not run schedules
/// concurrently in one process.
ChaosReport RunChaosSchedule(const ChaosScheduleOptions& options);

}  // namespace kanon

#endif  // KANON_SERVICE_CHAOS_H_
