#ifndef KANON_SERVICE_CHAOS_H_
#define KANON_SERVICE_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Seeded chaos schedules against a live queue/pool/cache stack.
///
/// One schedule = one seed. From the seed the harness derives a fault
/// plan (which sites misbehave, how often), a mixed workload (tables,
/// algorithms, k, priorities, budgets, cancellations), and runs it
/// end-to-end on a real JobQueue + WorkerPool + ResultCache (+ JobJournal),
/// then checks the service layer's three robustness invariants:
///
///   1. every admitted job terminates — with a *valid* k-anonymous
///      answer (every distinct output row appears >= k times) or a
///      typed error; no hangs, no untyped failures;
///   2. the cache never serves a fault-tainted result (a cache hit's
///      termination is always kNone or kBudget);
///   3. the job journal replays to a consistent state from *any* crash
///      prefix (intact records + at most one torn tail line).
///
/// Determinism: all jobs are submitted (and cancels issued) before the
/// single worker starts, solver parallelism is pinned to 1, jobs carry
/// node budgets instead of wall-clock deadlines, and breaker cooldowns
/// are effectively infinite — so the entire schedule, including every
/// fault decision, is a pure function of the seed. Same seed ⇒ same
/// `outcome_fingerprint`, same violations, on any machine.

namespace kanon {

struct ChaosScheduleOptions {
  uint64_t seed = 0;
  /// Requests generated per schedule.
  size_t jobs = 24;
  /// Journal the schedule and check invariant 3. Requires `scratch_dir`
  /// to be writable.
  bool with_journal = true;
  /// Directory for the schedule's journal file.
  std::string scratch_dir = "/tmp";
  /// Echo per-job outcomes to stderr.
  bool verbose = false;
};

struct ChaosReport {
  uint64_t seed = 0;
  size_t submitted = 0;
  /// Admission-time typed rejections (queue full, shed, injected).
  size_t rejected = 0;
  size_t answered_ok = 0;
  size_t answered_error = 0;
  /// Fault-site fires across the schedule.
  uint64_t fires = 0;
  /// Worker retries attempted / exhausted.
  uint64_t retries = 0;
  uint64_t retries_exhausted = 0;
  /// Jobs shed at admission.
  uint64_t shed = 0;
  /// Tainted cache inserts refused by the guard.
  uint64_t cache_rejected = 0;
  /// Invariant violations; empty means the schedule passed.
  std::vector<std::string> violations;
  /// Deterministic digest of every per-job outcome plus the fault-site
  /// hit/fire ledger; equal across runs with the same seed.
  uint64_t outcome_fingerprint = 0;

  bool passed() const { return violations.empty(); }
};

/// Runs one seeded schedule. Arms the process-wide FaultRegistry for
/// its duration (disarmed on return), so do not run schedules
/// concurrently in one process.
ChaosReport RunChaosSchedule(const ChaosScheduleOptions& options);

}  // namespace kanon

#endif  // KANON_SERVICE_CHAOS_H_
