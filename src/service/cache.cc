#include "service/cache.h"

#include <vector>

#include "data/packed_table.h"

namespace kanon {

uint64_t TableFingerprint(const Table& table) {
  const RowId n = table.num_rows();
  const ColId m = table.num_columns();
  uint64_t fp = kFingerprintSeed;
  fp = FingerprintInt(fp, n);
  fp = FingerprintInt(fp, m);
  for (ColId j = 0; j < m; ++j) {
    fp = FingerprintPiece(fp, table.schema().attribute_name(j));
  }
  // Column-major over the packed mirror: hash each attribute's decoded
  // alphabet once (O(|Σ_j|) string work), then fold the precomputed
  // hashes over the contiguous code array. Folding the *decoded* value
  // hashes keeps the fingerprint independent of dictionary-code
  // assignment order; the fixed (column, row) fold order keeps it
  // sensitive to row order.
  const PackedTable packed(table);
  for (ColId j = 0; j < m; ++j) {
    const Dictionary& dict = table.schema().dictionary(j);
    std::vector<uint64_t> code_hash(dict.size() + 1);
    for (size_t code = 0; code < dict.size(); ++code) {
      code_hash[code] = Fingerprint(dict.values()[code]);
    }
    code_hash[dict.size()] = Fingerprint("*");  // suppressed slot
    for (const ValueCode code : packed.column(j)) {
      fp = FingerprintInt(fp, code == kSuppressedCode
                                  ? code_hash[dict.size()]
                                  : code_hash[code]);
    }
  }
  return fp;
}

std::optional<CachedResult> ResultCache::Lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::Insert(const CacheKey& key, CachedResult result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (result.termination != StopReason::kNone &&
      result.termination != StopReason::kBudget) {
    ++rejected_;  // tainted: per-request artifact, not a solved instance
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(result));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.rejected = rejected_;
  stats.size = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace kanon
