#include "service/cache.h"

namespace kanon {

uint64_t TableFingerprint(const Table& table) {
  const RowId n = table.num_rows();
  const ColId m = table.num_columns();
  uint64_t fp = kFingerprintSeed;
  fp = FingerprintInt(fp, n);
  fp = FingerprintInt(fp, m);
  for (ColId j = 0; j < m; ++j) {
    fp = FingerprintPiece(fp, table.schema().attribute_name(j));
  }
  for (RowId r = 0; r < n; ++r) {
    for (const std::string& cell : table.DecodeRow(r)) {
      fp = FingerprintPiece(fp, cell);
    }
  }
  return fp;
}

std::optional<CachedResult> ResultCache::Lookup(const CacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->second;
}

void ResultCache::Insert(const CacheKey& key, CachedResult result) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (result.termination != StopReason::kNone &&
      result.termination != StopReason::kBudget) {
    ++rejected_;  // tainted: per-request artifact, not a solved instance
    return;
  }
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(result);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(result));
  index_.emplace(key, lru_.begin());
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  CacheStats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.rejected = rejected_;
  stats.size = lru_.size();
  stats.capacity = capacity_;
  return stats;
}

}  // namespace kanon
