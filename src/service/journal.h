#ifndef KANON_SERVICE_JOURNAL_H_
#define KANON_SERVICE_JOURNAL_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "service/queue.h"
#include "util/status.h"

/// \file
/// Crash-consistent append-only job journal for `kanond`.
///
/// The daemon promises that every *admitted* job gets an answer — a
/// promise a SIGKILL would otherwise break silently. The journal makes
/// it survivable: each lifecycle transition (admit / start / cancel /
/// done) is appended as one checksummed line and fsync'd before the
/// transition takes effect downstream (admit is written before the job
/// becomes poppable). At restart, ReplayFile reconstructs the set of
/// admitted-but-unfinished jobs: those never started are resubmitted
/// verbatim; a job that had started when the process died is reported
/// with the typed `interrupted` error instead of being retried blindly
/// (it may have been the input that killed the daemon).
///
/// Record format — one line per transition:
///
///   <fnv64-hex16> admit <id> algo=<s> k=<n> deadline_ms=<f> budget=<n>
///                 priority=<n> emit=<0|1> csv=<inline-csv...>
///   <fnv64-hex16> start <id>
///   <fnv64-hex16> ckpt <id> <seq>
///   <fnv64-hex16> cancel <id>
///   <fnv64-hex16> done <id> <ok|error-name>
///
/// `ckpt` records that snapshot `seq` of the job reached the checkpoint
/// store durably *before* the record was appended, so replay may trust
/// that a recorded checkpoint exists on disk (the converse tear — store
/// write landed, record did not — only costs the resume, degrading to
/// the typed `interrupted` path).
///
/// The checksum covers the payload after the first space. A crash can
/// tear at most the final line (appends are single write() calls);
/// replay drops a torn *tail* and counts it, while a corrupt line
/// *before* the tail means the file was tampered with or the disk lies,
/// and replay fails with kParseError rather than trusting it.

namespace kanon {

/// One admitted-but-unfinished job recovered from a journal.
struct ReplayedJob {
  /// Id under the previous daemon incarnation (ids restart at 1 after
  /// replay; responses echo the old id as `old_id`).
  uint64_t old_id = 0;
  AnonymizeRequest request;
  /// True when a `start` record was found (job was on a worker).
  bool started = false;
  /// True when a `cancel` record was found.
  bool cancelled = false;
  /// Highest checkpoint sequence recorded for the job; 0 = none.
  uint64_t checkpoint_seq = 0;
};

/// Outcome of replaying a journal file.
struct JournalReplay {
  /// Admitted jobs with no `done` record, in admission order.
  std::vector<ReplayedJob> pending;
  /// Jobs with a `done` record (finished before the crash).
  uint64_t completed = 0;
  /// Torn trailing lines dropped (0 or 1).
  uint64_t torn_records = 0;
};

/// Append-side of the journal; plugs into JobQueue/WorkerPool as their
/// JobObserver. Thread-safe. Opens `path` in append mode at
/// construction; Open() reports whether that worked (a dead journal
/// no-ops every append so the service itself keeps serving).
class JobJournal : public JobObserver {
 public:
  explicit JobJournal(std::string path);
  ~JobJournal() override;

  JobJournal(const JobJournal&) = delete;
  JobJournal& operator=(const JobJournal&) = delete;

  /// OK when the journal file is open and healthy.
  Status Open() const;

  void OnAdmit(const Job& job) override;
  void OnStart(uint64_t id) override;
  void OnDone(uint64_t id, const AnonymizeResponse& response) override;
  void OnCancel(uint64_t id) override;
  void OnCheckpoint(uint64_t id, uint64_t seq) override;

  /// Records appended since construction (fsync'd).
  uint64_t appends() const;

  /// Parses `path` into a replay summary. A missing file is an empty
  /// (OK) replay: first boot. See the file comment for torn-tail vs
  /// mid-file corruption semantics.
  static StatusOr<JournalReplay> ReplayFile(const std::string& path);

  /// Serializes one admit payload (exposed for tests).
  static std::string AdmitPayload(const Job& job);

  /// Truncates the file at `path` (after a successful replay, so the
  /// new incarnation journals from a clean slate). Creates it if absent.
  static Status Reset(const std::string& path);

 private:
  void Append(const std::string& payload);

  const std::string path_;
  mutable std::mutex mu_;
  int fd_ = -1;
  /// Set after an append error (or an injected torn write): the file's
  /// tail is no longer trustworthy, so further appends are dropped —
  /// exactly what a crashed process would have written.
  bool dead_ = false;
  uint64_t appends_ = 0;
};

}  // namespace kanon

#endif  // KANON_SERVICE_JOURNAL_H_
