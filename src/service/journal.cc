#include "service/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "data/csv_table.h"
#include "fault/fault.h"
#include "util/fingerprint.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace kanon {

namespace {

/// 16-hex-digit rendering of a payload checksum.
std::string ChecksumHex(std::string_view payload) {
  static const char* kDigits = "0123456789abcdef";
  uint64_t fp = Fingerprint(payload);
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<size_t>(i)] = kDigits[fp & 0xf];
    fp >>= 4;
  }
  return out;
}

/// Splits a journal line into its payload, verifying the checksum.
/// Returns false on any structural or checksum mismatch.
bool ExtractPayload(const std::string& line, std::string_view* payload) {
  if (line.size() < 18 || line[16] != ' ') return false;
  const std::string_view checksum(line.data(), 16);
  *payload = std::string_view(line).substr(17);
  return ChecksumHex(*payload) == checksum;
}

/// Parses the tail of an `admit` payload (after "admit <id> ") back
/// into a request. Fields are written in a fixed order with csv= last,
/// so the CSV may contain anything but newlines.
bool ParseAdmitFields(std::string_view tail, AnonymizeRequest* request) {
  const size_t csv_pos = tail.find("csv=");
  if (csv_pos == std::string_view::npos) return false;
  request->csv_text = InlineToCsv(std::string(tail.substr(csv_pos + 4)));
  std::istringstream head{std::string(tail.substr(0, csv_pos))};
  std::string token;
  while (head >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) return false;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    long long parsed = 0;
    if (key == "algo") {
      request->algorithm = value;
    } else if (key == "k") {
      if (!ParseInt(value, &parsed) || parsed < 0) return false;
      request->k = static_cast<size_t>(parsed);
    } else if (key == "deadline_ms") {
      double ms = 0.0;
      if (!ParseDouble(value, &ms)) return false;
      request->deadline_ms = ms;
    } else if (key == "budget") {
      if (!ParseInt(value, &parsed) || parsed < 0) return false;
      request->node_budget = static_cast<uint64_t>(parsed);
    } else if (key == "priority") {
      if (!ParseInt(value, &parsed)) return false;
      request->priority = static_cast<int>(parsed);
    } else if (key == "emit") {
      request->emit_csv = value != "0";
    } else {
      return false;
    }
  }
  return true;
}

}  // namespace

JobJournal::JobJournal(std::string path) : path_(std::move(path)) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) dead_ = true;
}

JobJournal::~JobJournal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status JobJournal::Open() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0 || dead_) {
    return Status::Internal("journal '" + path_ + "' is not writable");
  }
  return Status::Ok();
}

void JobJournal::Append(const std::string& payload) {
  std::string line = ChecksumHex(payload);
  line += ' ';
  line += payload;
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_ || fd_ < 0) return;
  // An injected fault tears this append: only a prefix reaches the file
  // and the journal goes dead, exactly as if the process crashed mid
  // write(). Replay must treat the torn tail as absent.
  if (KANON_FAULT_POINT("journal.append")) {
    const size_t torn = line.size() / 2;
    (void)::write(fd_, line.data(), torn);
    dead_ = true;
    return;
  }
  const ssize_t written =
      ::write(fd_, line.data(), static_cast<size_t>(line.size()));
  if (written != static_cast<ssize_t>(line.size()) || ::fsync(fd_) != 0) {
    dead_ = true;
    return;
  }
  ++appends_;
}

std::string JobJournal::AdmitPayload(const Job& job) {
  std::ostringstream out;
  out << "admit " << job.id << " algo=" << job.request.algorithm
      << " k=" << job.request.k
      << " deadline_ms=" << FormatDouble(job.request.deadline_ms, 3)
      << " budget=" << job.request.node_budget
      << " priority=" << job.request.priority
      << " emit=" << (job.request.emit_csv ? 1 : 0) << " csv=";
  // ValidateAndPrepare has parsed the table by admission time; write it
  // back out so replay re-validates from first principles.
  if (job.request.table.has_value()) {
    out << CsvToInline(TableToCsv(*job.request.table));
  } else {
    out << CsvToInline(job.request.csv_text);
  }
  return out.str();
}

void JobJournal::OnAdmit(const Job& job) { Append(AdmitPayload(job)); }

void JobJournal::OnStart(uint64_t id) {
  Append("start " + std::to_string(id));
}

void JobJournal::OnDone(uint64_t id, const AnonymizeResponse& response) {
  Append("done " + std::to_string(id) + " " +
         (response.ok() ? "ok" : ServiceErrorName(response.error)));
}

void JobJournal::OnCancel(uint64_t id) {
  Append("cancel " + std::to_string(id));
}

void JobJournal::OnCheckpoint(uint64_t id, uint64_t seq) {
  Append("ckpt " + std::to_string(id) + " " + std::to_string(seq));
}

uint64_t JobJournal::appends() const {
  std::lock_guard<std::mutex> lock(mu_);
  return appends_;
}

Status JobJournal::Reset(const std::string& path) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot reset journal '" + path + "'");
  }
  ::close(fd);
  return Status::Ok();
}

StatusOr<JournalReplay> JobJournal::ReplayFile(const std::string& path) {
  JournalReplay replay;
  std::ifstream in(path);
  if (!in.is_open()) return replay;  // first boot: nothing to replay

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);

  // pending jobs in admission order; index into replay.pending by id.
  std::vector<uint64_t> order;
  std::unordered_map<uint64_t, ReplayedJob> open;

  for (size_t i = 0; i < lines.size(); ++i) {
    const bool is_tail = (i + 1 == lines.size());
    std::string_view payload;
    bool valid = ExtractPayload(lines[i], &payload);
    std::istringstream tokens{std::string(payload)};
    std::string verb;
    uint64_t id = 0;
    if (valid) {
      long long parsed_id = 0;
      std::string id_token;
      valid = static_cast<bool>(tokens >> verb >> id_token) &&
              ParseInt(id_token, &parsed_id) && parsed_id > 0;
      id = static_cast<uint64_t>(parsed_id);
    }
    if (valid) {
      if (verb == "admit") {
        ReplayedJob job;
        job.old_id = id;
        // Fields begin after the second space: "admit <id> <fields...>".
        const size_t id_space = payload.find(' ', 6);
        valid = id_space != std::string_view::npos &&
                ParseAdmitFields(payload.substr(id_space + 1),
                                 &job.request);
        if (valid && open.emplace(id, std::move(job)).second) {
          order.push_back(id);
        }
      } else if (verb == "start") {
        const auto it = open.find(id);
        if (it != open.end()) it->second.started = true;
      } else if (verb == "cancel") {
        const auto it = open.find(id);
        if (it != open.end()) it->second.cancelled = true;
      } else if (verb == "ckpt") {
        std::string seq_token;
        long long seq = 0;
        valid = static_cast<bool>(tokens >> seq_token) &&
                ParseInt(seq_token, &seq) && seq > 0;
        if (valid) {
          const auto it = open.find(id);
          if (it != open.end() &&
              static_cast<uint64_t>(seq) > it->second.checkpoint_seq) {
            it->second.checkpoint_seq = static_cast<uint64_t>(seq);
          }
        }
      } else if (verb == "done") {
        if (open.erase(id) > 0) ++replay.completed;
      } else {
        valid = false;
      }
    }
    if (!valid) {
      if (is_tail) {
        // A single torn line at EOF is the crash signature we are built
        // for; drop it. Its transition never "happened".
        ++replay.torn_records;
        break;
      }
      return Status::ParseError("journal '" + path +
                                "' is corrupt at record " +
                                std::to_string(i + 1) +
                                " (not a torn tail); refusing to replay");
    }
  }

  replay.pending.reserve(order.size());
  for (const uint64_t id : order) {
    const auto it = open.find(id);
    if (it != open.end()) replay.pending.push_back(std::move(it->second));
  }
  return replay;
}

}  // namespace kanon
