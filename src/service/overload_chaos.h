#ifndef KANON_SERVICE_OVERLOAD_CHAOS_H_
#define KANON_SERVICE_OVERLOAD_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file
/// Seeded chaos schedules for the overload-control plane
/// (service/overload/overload.h). One schedule = one seed, three legs,
/// three invariants (numbered after service/chaos.h's 1-6/10 and
/// net/net_chaos.h's 7-9):
///
///  11. **valid-or-typed under overload**: a live queue + worker pool
///      run with the overload plane armed and a seeded fault plan
///      forcing sheds (`overload.shed`), brownouts
///      (`overload.brownout`) and worker faults (`worker.dispatch`,
///      draining the retry budget) still answers every admitted job
///      with a *valid* k-anonymous result or a typed error; every
///      admission rejection carries a taxonomy bucket; forced sheds
///      reconcile exactly with typed `shed_overload` rejections; and
///      every browned-out answer is itself a valid k-anonymization.
///  12. **brownout decisions replay bit-identically from the seed**:
///      two HealthGovernor instances fed the same seeded synthetic
///      signal stream (delay random walk with bursts, breaker
///      openings, memory latches) produce identical level sequences,
///      identical rewrite decisions and identical transition counts.
///  13. **goodput is monotonically no worse governor-on vs off**: a
///      virtual-time single-server simulation replays one seeded
///      arrival sequence twice — once plain FIFO, once with the
///      governor + deadline reconciliation — and the number of jobs
///      finishing inside their deadline must not decrease. Service
///      costs are a deterministic function of the backend tier
///      (direct > sharded > coreset), so the win is attributable to
///      the control plane alone.
///
/// Determinism: the service leg pins one pool worker, submits every
/// job before the worker exists, disables the organic (wall-clock)
/// CoDel and governor thresholds — overload behavior is driven only by
/// the seeded fault plan — and the sim/governor legs use virtual time
/// throughout. Same seed => same `outcome_fingerprint` on any machine.

namespace kanon {

struct OverloadChaosOptions {
  uint64_t seed = 0;
  /// Jobs submitted to the live service leg (invariant 11).
  size_t jobs = 24;
  /// Arrivals in the virtual-time goodput simulation (invariant 13).
  size_t sim_arrivals = 400;
  /// Observations in the governor replay leg (invariant 12).
  size_t governor_signals = 256;
  /// Run the live service leg (the sim/replay legs always run).
  bool with_service = true;
  /// Echo per-job outcomes to stderr.
  bool verbose = false;
};

struct OverloadChaosReport {
  uint64_t seed = 0;
  /// Invariant 12 leg.
  size_t decisions_checked = 0;
  uint64_t governor_transitions = 0;
  /// Invariant 13 leg.
  size_t sim_arrivals = 0;
  size_t goodput_off = 0;
  size_t goodput_on = 0;
  size_t sim_brownouts = 0;
  size_t sim_infeasible = 0;
  /// Invariant 11 leg.
  size_t submitted = 0;
  size_t rejected = 0;
  size_t answered_ok = 0;
  size_t answered_error = 0;
  /// Typed shed_overload rejections / `overload.shed` fault fires
  /// (must reconcile exactly).
  uint64_t shed_typed = 0;
  uint64_t forced_shed_fires = 0;
  /// OK responses carrying a brownout stamp / pool rewrite counter.
  uint64_t brownout_responses = 0;
  uint64_t pool_brownouts = 0;
  /// Jobs degraded to the terminal stage by retry-budget exhaustion.
  uint64_t retry_degraded = 0;
  /// Fault-site fires across the service leg.
  uint64_t fires = 0;
  /// Invariant violations; empty means the schedule passed.
  std::vector<std::string> violations;
  /// Deterministic digest over all three legs; equal across runs with
  /// the same seed.
  uint64_t outcome_fingerprint = 0;

  bool passed() const { return violations.empty(); }
};

/// Runs one seeded schedule. The service leg arms the process-wide
/// FaultRegistry for its duration (disarmed on return), so do not run
/// schedules concurrently in one process.
OverloadChaosReport RunOverloadChaosSchedule(
    const OverloadChaosOptions& options);

}  // namespace kanon

#endif  // KANON_SERVICE_OVERLOAD_CHAOS_H_
