#ifndef KANON_SERVICE_RETRY_H_
#define KANON_SERVICE_RETRY_H_

#include <cstdint>

#include "util/random.h"

/// \file
/// Retry budget with decorrelated-jitter backoff.
///
/// Transient worker faults (an injected dispatch crash, a poisoned
/// result discarded before delivery) are retried in place by the worker
/// that holds the job, up to `max_attempts` total attempts. The backoff
/// between attempts uses decorrelated jitter — each wait is drawn
/// uniformly from [base, 3 * previous] and capped — which avoids the
/// synchronized retry storms fixed exponential schedules produce, while
/// still growing geometrically in expectation. Seeding the Rng from the
/// job id keeps every schedule reproducible under a chaos seed.

namespace kanon {

/// Per-job retry tuning.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  int max_attempts = 3;
  /// Lower bound and first wait, in milliseconds.
  double base_ms = 1.0;
  /// Upper cap on any single wait, in milliseconds.
  double cap_ms = 50.0;
};

/// Draws the next backoff wait: min(cap, uniform(base, prev * 3)),
/// where `prev_ms` is the previous wait (pass 0 before the first
/// retry). Mutates `rng`.
double NextBackoffMillis(const RetryPolicy& policy, double prev_ms,
                         Rng& rng);

/// Deterministic per-job retry Rng seed.
uint64_t RetrySeedForJob(uint64_t job_id);

}  // namespace kanon

#endif  // KANON_SERVICE_RETRY_H_
