#include "service/chaos.h"

#include <unistd.h>

#include <algorithm>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "algo/shard_metrics.h"
#include "ckpt/checkpoint.h"
#include "coreset/metrics.h"
#include "data/csv_table.h"
#include "data/generators/uniform.h"
#include "fault/fault.h"
#include "service/journal.h"
#include "service/queue.h"
#include "service/watchdog.h"
#include "service/worker_pool.h"
#include "util/fingerprint.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/string_util.h"

namespace kanon {

namespace {

/// Sites eligible for a schedule-specific probability override.
const char* const kOverridableSites[] = {
    "exact_dp.alloc",   "exact_dp.precompute", "exact_dp.sweep",
    "branch_bound.node", "greedy_cover.alloc", "greedy_cover.family",
    "parallel.worker",  "queue.admit",         "worker.dispatch",
    "worker.deliver",   "cache.lookup",        "cache.poison",
    "journal.append",   "ckpt.save",           "ckpt.torn",
    "coreset.sample",   "coreset.assign",
    "shard.plan",       "shard.solve",        "shard.merge",
};

/// Derives the schedule's fault plan from the seed stream.
FaultPlan DrawFaultPlan(uint64_t seed, bool allow_stall, Rng* rng) {
  FaultPlan plan;
  plan.seed = seed;
  // Every 4th schedule runs fault-free as a control.
  if (rng->Uniform(4) == 0) return plan;
  static const double kBackgrounds[] = {0.0, 0.01, 0.05};
  plan.default_probability = kBackgrounds[rng->Uniform(3)];
  const int overrides = rng->UniformInt(1, 4);
  for (int i = 0; i < overrides; ++i) {
    FaultSiteSpec spec;
    spec.site = kOverridableSites[rng->Uniform(
        sizeof(kOverridableSites) / sizeof(kOverridableSites[0]))];
    if (rng->Bernoulli(0.3)) {
      spec.first_n = static_cast<uint64_t>(rng->UniformInt(1, 3));
    } else {
      spec.probability = 0.05 + 0.45 * rng->UniformDouble();
    }
    plan.sites.push_back(std::move(spec));
  }
  // Stall/slow are drawn separately (never via the background
  // probability): a stall wedges the worker until the watchdog breaks
  // the loop, so it is only armed when a watchdog exists, and its
  // first_n count is what invariant 6 reconciles against. The draws are
  // always consumed so the downstream workload stream is identical
  // whether or not the watchdog is enabled.
  const bool stall = rng->Bernoulli(0.25);
  const auto stall_n = static_cast<uint64_t>(rng->UniformInt(1, 2));
  const bool slow = rng->Bernoulli(0.25);
  const auto slow_n = static_cast<uint64_t>(rng->UniformInt(1, 2));
  if (allow_stall && stall) {
    FaultSiteSpec spec;
    spec.site = "worker.stall";
    spec.first_n = stall_n;
    plan.sites.push_back(std::move(spec));
  }
  if (slow) {
    FaultSiteSpec spec;
    spec.site = "worker.slow";
    spec.first_n = slow_n;
    plan.sites.push_back(std::move(spec));
  }
  return plan;
}

/// One generated request (algorithms weighted toward the chains that
/// exercise the most fault sites).
AnonymizeRequest DrawRequest(Rng* rng) {
  static const char* const kAlgos[] = {
      "resilient", "resilient", "exact_dp", "branch_bound",
      "greedy_cover", "mondrian", "suppress_all",
      "mdav", "mdav+annealing",
      "coreset_mdav", "coreset_cluster_greedy",
      "sharded_mdav", "sharded_cluster_greedy",
  };
  AnonymizeRequest request;
  request.algorithm =
      kAlgos[rng->Uniform(sizeof(kAlgos) / sizeof(kAlgos[0]))];
  const bool coreset = request.algorithm.rfind("coreset_", 0) == 0;
  const bool sharded = request.algorithm.rfind("sharded_", 0) == 0;
  UniformTableOptions table;
  // Coreset jobs need enough rows that the sampler's min_sample floor
  // does not short-circuit to the direct path; sharded jobs need
  // shards * (2k-1) rows so planning actually cuts (k <= 4 below, so
  // 40 rows feed at least 2 shards of 7); other jobs stay tiny so
  // exact solvers finish fast.
  table.num_rows =
      coreset ? static_cast<uint32_t>(rng->UniformInt(72, 120))
      : sharded ? static_cast<uint32_t>(rng->UniformInt(40, 80))
                : static_cast<uint32_t>(rng->UniformInt(6, 14));
  table.num_columns = static_cast<uint32_t>(rng->UniformInt(2, 4));
  table.alphabet = static_cast<uint32_t>(rng->UniformInt(2, 4));
  request.csv_text = TableToCsv(UniformTable(table, rng));
  if (coreset) {
    request.coreset_rate = 0.25;
    // +1 keeps the drawn seed nonzero (0 means "use the default seed").
    request.coreset_seed = static_cast<uint64_t>(rng->Next()) + 1;
  }
  if (sharded) {
    // Parallelism stays at the schedule's pin (1): shard solves run
    // serially and the whole pipeline is a pure function of the seed.
    request.shards = static_cast<size_t>(rng->UniformInt(2, 4));
  }
  request.k = static_cast<size_t>(rng->UniformInt(2, 4));
  request.priority = rng->UniformInt(-2, 2);
  // Node budgets stand in for wall-clock deadlines: they trip at the
  // same node for every run, where a deadline would not. Some jobs get
  // one tight enough to force degradation.
  if (rng->Bernoulli(0.3)) {
    request.node_budget = static_cast<uint64_t>(rng->UniformInt(50, 5000));
  }
  request.emit_csv = true;
  return request;
}

/// Invariant 1 predicate: every distinct row of the anonymized output
/// appears at least k times (identical within-group rows after
/// suppression make this exactly the k-anonymity condition).
bool OutputIsKAnonymous(const std::string& csv, size_t k,
                        std::string* why) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) {
    *why = "empty output CSV";
    return false;
  }
  std::unordered_map<std::string, size_t> counts;
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) ++counts[line];
  }
  for (const auto& [row, count] : counts) {
    if (count < k) {
      *why = "output row '" + row + "' appears " + std::to_string(count) +
             " < k=" + std::to_string(k) + " times";
      return false;
    }
  }
  return true;
}

uint64_t FoldOutcome(uint64_t fp, const AnonymizeResponse& response) {
  fp = FingerprintInt(fp, response.id);
  fp = FingerprintInt(fp, response.ok() ? 1 : 0);
  fp = FingerprintPiece(fp, ServiceErrorName(response.error));
  fp = FingerprintInt(fp, response.cost);
  fp = FingerprintPiece(fp, response.stage);
  fp = FingerprintPiece(fp, response.chain);
  fp = FingerprintPiece(fp, StopReasonName(response.termination));
  fp = FingerprintInt(fp, response.cache_hit ? 1 : 0);
  return fp;
}

/// Invariant 5 runner: re-executes `prepared` from `snapshot` on a
/// fresh context. The node budget (no wall clock) keeps the re-run a
/// pure function of the snapshot, and the chain contract still
/// guarantees an answer if it trips.
AnonymizeResponse ResumeOnce(const AnonymizeRequest& prepared,
                             const SolverSnapshot& snapshot) {
  AnonymizeRequest request = prepared;
  request.resume_solver = snapshot.solver;
  request.resume_payload = snapshot.payload;
  RunContext ctx;
  ctx.set_node_budget(200000);
  return WorkerPool::Execute(request, &ctx, /*cache=*/nullptr);
}

/// Invariant 3: any byte prefix of the journal must replay cleanly
/// (intact records plus at most one torn tail).
void CheckCrashPrefixes(const std::string& path, Rng* rng,
                        std::vector<std::string>* violations) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string bytes = buffer.str();
  if (bytes.empty()) return;

  const std::string cut_path = path + ".cut";
  for (int i = 0; i < 4; ++i) {
    const size_t cut =
        1 + static_cast<size_t>(
                rng->Uniform(static_cast<uint32_t>(bytes.size())));
    {
      std::ofstream out(cut_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(cut));
    }
    const StatusOr<JournalReplay> replay = JobJournal::ReplayFile(cut_path);
    if (!replay.ok()) {
      violations->push_back(
          "journal prefix of " + std::to_string(cut) +
          " bytes does not replay: " + replay.status().message());
    }
  }
  ::unlink(cut_path.c_str());
}

}  // namespace

ChaosReport RunChaosSchedule(const ChaosScheduleOptions& options) {
  ChaosReport report;
  report.seed = options.seed;
  Rng rng(options.seed, /*stream=*/0x6368616f73ull);  // "chaos"

  // Pin every source of schedule nondeterminism: one pool worker, one
  // solver thread, submissions and cancels all issued before the worker
  // exists, breakers that never half-open mid-schedule.
  const unsigned prev_parallelism = GetParallelism();
  SetParallelism(1);
  // Coreset/shard counters are process-wide; reset so the replay
  // fingerprint reflects only this schedule's activity.
  CoresetMetrics::Instance().Reset();
  ShardMetrics::Instance().Reset();

  const FaultPlan plan =
      DrawFaultPlan(options.seed, options.with_watchdog, &rng);
  // Disarmed explicitly (reset) before the invariant 4/5 verification
  // pass, so snapshot loads and resume re-runs see a quiet fault layer.
  std::optional<ScopedFaultInjection> injection;
  injection.emplace(plan);

  const std::string scratch_tag =
      std::to_string(static_cast<unsigned long>(::getpid())) + "_" +
      std::to_string(options.seed);
  const std::string journal_path =
      options.scratch_dir + "/kanon_chaos_" + scratch_tag + ".journal";

  std::unique_ptr<CheckpointStore> store;
  if (options.with_checkpoints) {
    store = std::make_unique<CheckpointStore>(
        options.scratch_dir + "/kanon_chaos_" + scratch_tag + ".ckpt");
    (void)store->Clear();  // leftovers from a killed prior run
  }
  // Declared before the pool (below): workers Watch/Unwatch through it.
  std::unique_ptr<Watchdog> watchdog;
  if (options.with_watchdog) {
    watchdog = std::make_unique<Watchdog>(
        WatchdogOptions{.scan_interval_ms = 20.0, .stall_ms = 300.0});
  }
  // Prepared requests by ticket id: invariant 4 verifies snapshot
  // stamps against them, invariant 5 re-executes them.
  std::vector<AnonymizeRequest> admitted;
  std::unordered_map<uint64_t, size_t> job_index;
  uint64_t stall_fires = 0;
  uint64_t preempted_responses = 0;
  std::unique_ptr<JobJournal> journal;
  if (options.with_journal) {
    ::unlink(journal_path.c_str());
    journal = std::make_unique<JobJournal>(journal_path);
  }

  QueueOptions queue_options;
  queue_options.capacity = std::max<size_t>(4, options.jobs * 3 / 4);
  queue_options.observer = journal.get();
  JobQueue queue(queue_options);
  ResultCache cache(16);

  uint64_t fp = kFingerprintSeed;
  std::vector<JobQueue::Ticket> tickets;
  std::vector<size_t> expected_k;
  for (size_t i = 0; i < options.jobs; ++i) {
    AnonymizeRequest request = DrawRequest(&rng);
    const size_t k = request.k;
    ServiceError error = ServiceError::kNone;
    const Status prepared = ValidateAndPrepare(request, &error);
    if (!prepared.ok()) {
      report.violations.push_back("generated request failed validation: " +
                                  prepared.message());
      continue;
    }
    AnonymizeRequest keep = request;  // for invariant 4/5 verification
    StatusOr<JobQueue::Ticket> ticket =
        queue.Submit(std::move(request), &error);
    ++report.submitted;
    if (!ticket.ok()) {
      ++report.rejected;
      if (error == ServiceError::kNone) {
        report.violations.push_back(
            "admission rejection without a taxonomy bucket: " +
            ticket.status().message());
      }
      fp = FingerprintPiece(fp, "rejected");
      fp = FingerprintPiece(fp, ServiceErrorName(error));
      continue;
    }
    fp = FingerprintInt(fp, ticket->id);
    job_index[ticket->id] = admitted.size();
    admitted.push_back(std::move(keep));
    tickets.push_back(*std::move(ticket));
    expected_k.push_back(k);
  }

  // Cancels land before the worker starts, so the race they model is
  // queue-level (cancel vs dispatch), replayed identically every run.
  for (const JobQueue::Ticket& ticket : tickets) {
    if (rng.Bernoulli(0.15)) queue.Cancel(ticket.id);
  }

  WorkerPoolOptions pool_options;
  pool_options.workers = 1;
  pool_options.retry = RetryPolicy{.max_attempts = 3,
                                   .base_ms = 0.01,
                                   .cap_ms = 0.1};
  pool_options.breaker =
      BreakerOptions{.failure_threshold = 3, .open_ms = 1e12};
  // Tight poll cadence so short chaos jobs still emit snapshots; kept
  // on completion so invariants 4/5 can examine them afterwards.
  pool_options.checkpoints = store.get();
  pool_options.checkpoint_every_polls = 2;
  pool_options.keep_checkpoints = true;
  pool_options.watchdog = watchdog.get();
  {
    WorkerPool pool(&queue, &cache, pool_options);
    queue.Close();
    for (size_t i = 0; i < tickets.size(); ++i) {
      AnonymizeResponse response = tickets[i].result.get();
      const size_t k = expected_k[i];
      if (response.ok()) {
        ++report.answered_ok;
        std::string why;
        if (response.error != ServiceError::kNone) {
          report.violations.push_back(
              "job " + std::to_string(response.id) +
              ": ok response carries error bucket " +
              ServiceErrorName(response.error));
        }
        if (!OutputIsKAnonymous(response.anonymized_csv, k, &why)) {
          report.violations.push_back(
              "job " + std::to_string(response.id) + ": " + why);
        }
        if (response.cache_hit &&
            response.termination != StopReason::kNone &&
            response.termination != StopReason::kBudget) {
          report.violations.push_back(
              "job " + std::to_string(response.id) +
              ": cache served a tainted result (termination=" +
              StopReasonName(response.termination) + ")");
        }
      } else {
        ++report.answered_error;
        if (response.error == ServiceError::kWatchdogPreempted) {
          ++preempted_responses;
        }
        if (response.error == ServiceError::kNone) {
          report.violations.push_back(
              "job " + std::to_string(response.id) +
              ": failed without a taxonomy bucket: " +
              response.status.message());
        }
      }
      if (options.verbose) {
        std::cerr << "chaos seed=" << options.seed << " job="
                  << response.id << " ok=" << response.ok()
                  << " error=" << ServiceErrorName(response.error)
                  << " stage=" << response.stage << "\n";
      }
      fp = FoldOutcome(fp, response);
    }
    pool.Join();

    const WorkerPool::Counters workers = pool.counters();
    report.retries = workers.retries_attempted;
    report.retries_exhausted = workers.retries_exhausted;
    report.checkpoints_written = workers.checkpoints_written;
    report.checkpoint_failures = workers.checkpoint_failures;
    report.watchdog_preempted = workers.watchdog_preempted;
  }
  report.shed = queue.counters().shed;
  report.cache_rejected = cache.stats().rejected;

  // The fault ledger is part of the fingerprint: a schedule that fired
  // differently is a different schedule, even if outcomes matched.
  for (const FaultSiteSnapshot& site :
       FaultRegistry::Instance().Snapshot()) {
    fp = FingerprintPiece(fp, site.name);
    fp = FingerprintInt(fp, site.hits);
    fp = FingerprintInt(fp, site.fires);
    report.fires += site.fires;
    if (site.name == "worker.stall") stall_fires = site.fires;
  }
  // Checkpoint emission is poll-counted and preemption counts are
  // fault-plan driven, so both belong in the determinism digest.
  fp = FingerprintInt(fp, report.checkpoints_written);
  fp = FingerprintInt(fp, report.checkpoint_failures);
  fp = FingerprintInt(fp, report.watchdog_preempted);
  // Coreset activity (samples drawn, rows assigned, repairs) is seed-
  // deterministic under a pinned schedule, so it belongs in the digest:
  // a schedule whose coreset jobs sampled or repaired differently is a
  // different schedule.
  const CoresetMetricsSnapshot coreset =
      CoresetMetrics::Instance().Snapshot();
  fp = FingerprintInt(fp, coreset.sample_runs);
  fp = FingerprintInt(fp, coreset.samples_drawn);
  fp = FingerprintInt(fp, coreset.assigned_rows);
  fp = FingerprintInt(fp, coreset.repair_merges);
  fp = FingerprintInt(fp, coreset.repair_suppressed);
  fp = FingerprintInt(fp, coreset.resumed);
  // Shard-pipeline activity (invariant 10's ledger): plans cut, shard
  // solves/declines, merges and boundary repairs are seed-deterministic
  // under the pinned schedule, so they belong in the digest too.
  const ShardMetricsSnapshot shard = ShardMetrics::Instance().Snapshot();
  fp = FingerprintInt(fp, shard.plans);
  fp = FingerprintInt(fp, shard.shards_planned);
  fp = FingerprintInt(fp, shard.shard_solves);
  fp = FingerprintInt(fp, shard.shard_declines);
  fp = FingerprintInt(fp, shard.merges);
  fp = FingerprintInt(fp, shard.repair_merges);
  fp = FingerprintInt(fp, shard.resumed);
  report.outcome_fingerprint = fp;

  if (options.with_journal) {
    journal.reset();  // close the fd before reading
    const StatusOr<JournalReplay> replay =
        JobJournal::ReplayFile(journal_path);
    if (!replay.ok()) {
      report.violations.push_back("journal does not replay: " +
                                  replay.status().message());
    }
    CheckCrashPrefixes(journal_path, &rng, &report.violations);
    ::unlink(journal_path.c_str());
  }

  // Everything below runs with faults disarmed: the verification pass
  // itself must not be sabotaged by the plan it is auditing.
  injection.reset();
  if (watchdog != nullptr) watchdog->Stop();

  // Invariant 6: preemptions reconcile exactly with injected stalls —
  // one watchdog trip, one pool counter bump and one typed response per
  // fire; slow-but-heartbeating jobs contribute nothing to any of them.
  if (options.with_watchdog) {
    const uint64_t preemptions =
        watchdog != nullptr ? watchdog->preemptions() : 0;
    if (preemptions != stall_fires ||
        report.watchdog_preempted != stall_fires ||
        preempted_responses != stall_fires) {
      report.violations.push_back(
          "watchdog reconciliation failed: stall fires=" +
          std::to_string(stall_fires) +
          " preemptions=" + std::to_string(preemptions) +
          " pool counter=" + std::to_string(report.watchdog_preempted) +
          " typed responses=" + std::to_string(preempted_responses));
    }
  }

  // Invariants 4 and 5: audit what the schedule left in the store.
  if (store != nullptr) {
    for (const uint64_t id : store->List()) {
      ++report.snapshots_checked;
      StatusOr<SolverSnapshot> loaded = store->Load(id);
      if (!loaded.ok()) {
        // Injected torn writes leave garbage behind; the contract is a
        // *typed* refusal, never a crash or a silent restore.
        if (loaded.status().code() != StatusCode::kDataLoss &&
            loaded.status().code() != StatusCode::kParseError &&
            loaded.status().code() != StatusCode::kNotFound) {
          report.violations.push_back(
              "snapshot " + std::to_string(id) +
              " failed untyped: " + loaded.status().ToString());
        }
        continue;
      }
      const auto found = job_index.find(id);
      if (found == job_index.end()) {
        report.violations.push_back("snapshot " + std::to_string(id) +
                                    " does not belong to any job");
        continue;
      }
      const AnonymizeRequest& request = admitted[found->second];
      if (loaded->table_fp != TableFingerprint(*request.table) ||
          loaded->k != request.k) {
        report.violations.push_back(
            "snapshot " + std::to_string(id) +
            " carries a stamp for a different job");
        continue;
      }
      // Invariant 5, on a budget (resumes re-solve, so cap the count):
      // resuming twice from the same snapshot must agree bit-for-bit.
      if (report.resumes_verified >= 4) continue;
      ++report.resumes_verified;
      const AnonymizeResponse first = ResumeOnce(request, *loaded);
      const AnonymizeResponse second = ResumeOnce(request, *loaded);
      std::string why;
      if (!first.ok() || !second.ok()) {
        report.violations.push_back(
            "resume of snapshot " + std::to_string(id) + " failed: " +
            (first.ok() ? second : first).status.ToString());
      } else if (first.cost != second.cost ||
                 first.anonymized_csv != second.anonymized_csv ||
                 first.stage != second.stage ||
                 first.termination != second.termination) {
        report.violations.push_back(
            "resume of snapshot " + std::to_string(id) +
            " is nondeterministic (cost " + std::to_string(first.cost) +
            " vs " + std::to_string(second.cost) + ")");
      } else if (!OutputIsKAnonymous(first.anonymized_csv, request.k,
                                     &why)) {
        report.violations.push_back(
            "resumed snapshot " + std::to_string(id) + ": " + why);
      }
    }
    (void)store->Clear();
    ::rmdir(store->dir().c_str());
  }

  SetParallelism(prev_parallelism);
  return report;
}

}  // namespace kanon
