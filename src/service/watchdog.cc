#include "service/watchdog.h"

#include <chrono>
#include <utility>

namespace kanon {

Watchdog::Watchdog(WatchdogOptions options) : options_(options) {
  thread_ = std::thread([this] { Loop(); });
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Watchdog::Watch(uint64_t id, std::shared_ptr<RunContext> ctx) {
  Entry entry;
  entry.progress = Progress(*ctx);
  entry.since = RunContext::Clock::now();
  entry.ctx = std::move(ctx);
  std::lock_guard<std::mutex> lock(mu_);
  watched_[id] = std::move(entry);
}

void Watchdog::Unwatch(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  watched_.erase(id);
}

size_t Watchdog::watched() const {
  std::lock_guard<std::mutex> lock(mu_);
  return watched_.size();
}

void Watchdog::ScanOnce() {
  const RunContext::Clock::time_point now = RunContext::Clock::now();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, entry] : watched_) {
    if (entry.preempted) continue;
    const uint64_t progress = Progress(*entry.ctx);
    if (progress != entry.progress) {
      // Moving: restart the stall clock from this observation.
      entry.progress = progress;
      entry.since = now;
      continue;
    }
    const double flat_ms =
        std::chrono::duration<double, std::milli>(now - entry.since)
            .count();
    if (flat_ms >= options_.stall_ms) {
      entry.ctx->RequestPreempt();
      entry.preempted = true;  // one-shot per watched job
      preemptions_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void Watchdog::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock,
                 std::chrono::duration<double, std::milli>(
                     options_.scan_interval_ms));
    if (stopping_) break;
    lock.unlock();
    ScanOnce();
    lock.lock();
  }
}

}  // namespace kanon
