#ifndef KANON_SERVICE_OVERLOAD_OVERLOAD_H_
#define KANON_SERVICE_OVERLOAD_OVERLOAD_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "service/overload/codel.h"
#include "service/overload/estimator.h"
#include "service/overload/governor.h"
#include "service/overload/retry_budget.h"
#include "util/run_context.h"

/// \file
/// The adaptive overload-control plane, threaded from the TCP front end
/// down to RunContext. One OverloadControl instance per service wires
/// four coordinated mechanisms:
///
///   * **CoDel admission** (service/overload/codel.h): the queue asks
///     ShouldShed() at Submit; the worker feeds dequeue sojourns back.
///     Sustained above-target queue delay sheds arrivals with the typed
///     `shed_overload` error on an increasing-frequency schedule.
///   * **Deadline reconciliation** (service/overload/estimator.h): at
///     dispatch, a job whose remaining deadline budget cannot fit even
///     the *optimistic* solve-time estimate for its backend is answered
///     `deadline_infeasible` before any solve work burns a worker.
///   * **Retry budget** (service/overload/retry_budget.h): pool-wide
///     token bucket refilled by successes; exhaustion degrades faulted
///     jobs to the terminal stage instead of amplifying load.
///   * **Brownout ladder** (service/overload/governor.h): green/yellow/
///     red state machine rewriting admissible jobs to cheaper backends;
///     the rewrite lands in the request *before* execution, so the
///     result cache keys on the effective backend + knobs and a
///     browned-out result can never answer a full-fidelity request.
///
/// Fault sites `overload.shed` and `overload.brownout` force the shed /
/// rewrite paths deterministically under a chaos plan. Time is always an
/// explicit now_ms parameter (SteadyNowMillis() in production, virtual
/// time in the chaos harness), so every decision the plane makes is
/// replayable from a seed.

namespace kanon {

struct OverloadOptions {
  /// Master switch for the brownout governor ("--brownout=off|auto").
  /// CoDel admission, deadline reconciliation and the retry budget are
  /// active whenever an OverloadControl exists.
  bool governor_enabled = true;
  CoDelOptions codel;
  EstimatorOptions estimator;
  RetryBudgetOptions retry_budget;
  GovernorOptions governor;
  /// Dequeue observations a budget-trip latch keeps signalling red
  /// pressure for after the latching job completed.
  int memory_latch_updates = 16;
};

struct OverloadCounters {
  uint64_t shed = 0;
  uint64_t deadline_infeasible = 0;
  /// Jobs rewritten to a cheaper backend.
  uint64_t brownouts = 0;
  /// Governor level transitions.
  uint64_t transitions = 0;
  /// Retries refused by the pool-wide budget.
  uint64_t retry_denied = 0;
  /// Shedding-state entries of the CoDel controller.
  uint64_t shed_windows = 0;
  BrownoutLevel level = BrownoutLevel::kGreen;
  double retry_tokens = 0.0;
};

class OverloadControl {
 public:
  explicit OverloadControl(OverloadOptions options = {});

  OverloadControl(const OverloadControl&) = delete;
  OverloadControl& operator=(const OverloadControl&) = delete;

  /// Milliseconds on the process steady clock (production time source).
  static double SteadyNowMillis();

  /// Queue admission consult: true = reject this arrival with the typed
  /// shed_overload error. Consults the `overload.shed` fault site first
  /// (a forced shed under a chaos plan), then the CoDel controller.
  bool ShouldShed(double now_ms);

  /// Worker-side dequeue report: `sojourn_ms` is the popped job's queue
  /// wait, `open_breakers` the current count of open stage breakers.
  /// Feeds both the CoDel controller and the governor.
  void OnDequeue(double sojourn_ms, double now_ms, int open_breakers);

  /// Deadline reconciliation: true = the job cannot finish inside
  /// `remaining_ms` even optimistically and must be rejected typed.
  /// Never true for jobs without a deadline (`remaining_ms` < 0 means
  /// the deadline already passed — always infeasible).
  bool DeadlineInfeasible(const std::string& backend, double remaining_ms);

  /// Brownout consult for one admissible job. The `overload.brownout`
  /// fault site forces at least a yellow-level decision; otherwise the
  /// governor's current level applies. Counts rewrites.
  RewriteDecision MaybeRewrite(uint64_t job_id, const std::string& algorithm,
                               double requested_coreset_rate);

  /// Pool-wide retry consult: false = budget exhausted, degrade instead.
  bool AllowRetry();

  /// Outcome report: feeds the estimator (skipped for cache hits, whose
  /// near-zero times would poison the optimistic bound), refills the
  /// retry budget on success, and latches the resource-pressure signal
  /// when the job tripped its node budget (kBudget termination).
  void RecordOutcome(const std::string& backend, double run_ms, bool ok,
                     StopReason termination, bool cache_hit);

  OverloadCounters counters() const;
  BrownoutLevel level() const;
  const SolveTimeEstimator& estimator() const { return estimator_; }
  bool governor_enabled() const { return options_.governor_enabled; }

 private:
  const OverloadOptions options_;
  SolveTimeEstimator estimator_;
  CoDelAdmission codel_;
  RetryBudget retry_budget_;
  HealthGovernor governor_;
  std::atomic<int> memory_latch_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> deadline_infeasible_{0};
  std::atomic<uint64_t> brownouts_{0};
  std::atomic<uint64_t> retry_denied_{0};
};

}  // namespace kanon

#endif  // KANON_SERVICE_OVERLOAD_OVERLOAD_H_
