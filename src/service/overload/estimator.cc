#include "service/overload/estimator.h"

#include <algorithm>
#include <cmath>

namespace kanon {

SolveTimeEstimator::SolveTimeEstimator(EstimatorOptions options)
    : options_(options) {}

int SolveTimeEstimator::BucketFor(double ms) {
  if (!(ms > 1.0)) return 0;  // NaN and everything <= 1ms land in 0
  int bucket = 0;
  double edge = 1.0;
  while (bucket < kBuckets - 1 && ms > edge) {
    edge *= 2.0;
    ++bucket;
  }
  return bucket;
}

void SolveTimeEstimator::Record(const std::string& backend, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  Histogram& hist = histograms_[backend];
  ++hist.counts[static_cast<size_t>(BucketFor(ms))];
  ++hist.total;
  if (++hist.since_decay >= options_.decay_window &&
      options_.decay_window > 0) {
    hist.since_decay = 0;
    hist.total = 0;
    for (uint64_t& count : hist.counts) {
      count /= 2;
      hist.total += count;
    }
  }
}

double SolveTimeEstimator::QuantileMillis(const std::string& backend,
                                          double q) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(backend);
  if (it == histograms_.end() || it->second.total == 0) return 0.0;
  const Histogram& hist = it->second;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(
             std::ceil(clamped * static_cast<double>(hist.total))));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += hist.counts[static_cast<size_t>(b)];
    if (seen >= rank) return std::ldexp(1.0, b);  // upper edge 2^b
  }
  return std::ldexp(1.0, kBuckets - 1);
}

double SolveTimeEstimator::OptimisticMillis(const std::string& backend) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(backend);
  if (it == histograms_.end() || it->second.total == 0) return 0.0;
  const Histogram& hist = it->second;
  for (int b = 0; b < kBuckets; ++b) {
    if (hist.counts[static_cast<size_t>(b)] > 0) {
      // Lower edge: bucket 0 starts at 0 (=> "no opinion" for callers).
      return b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
    }
  }
  return 0.0;
}

uint64_t SolveTimeEstimator::Observations(const std::string& backend) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(backend);
  return it == histograms_.end() ? 0 : it->second.total;
}

}  // namespace kanon
