#include "service/overload/governor.h"

#include <algorithm>

#include "coreset/sampler.h"
#include "util/fingerprint.h"
#include "util/logging.h"

namespace kanon {

namespace {

constexpr std::string_view kCoresetPrefix = "coreset_";
constexpr std::string_view kShardedPrefix = "sharded_";

bool HasPrefix(const std::string& name, std::string_view prefix) {
  return name.size() > prefix.size() && name.rfind(prefix, 0) == 0;
}

/// True for registry bases with both a sharded_ and a coreset_ variant
/// worth degrading to (same objective, cheaper ladder rung).
bool LadderBase(const std::string& name) {
  return name == "mdav" || name == "cluster_greedy" ||
         name == "ball_cover";
}

/// The ladder's entry point for a *direct* algorithm: itself when it has
/// cheap variants, the workhorse heuristic for the exact solvers (which
/// have no variant of themselves a saturated server should run), empty
/// for everything the governor must leave alone (terminal/cheap stages,
/// composed names, the resilient chain).
std::string DirectBaseFor(const std::string& algorithm) {
  if (LadderBase(algorithm)) return algorithm;
  if (algorithm == "exact_dp" || algorithm == "branch_bound") {
    return "mdav";
  }
  return "";
}

}  // namespace

const char* BrownoutLevelName(BrownoutLevel level) {
  switch (level) {
    case BrownoutLevel::kGreen:
      return "green";
    case BrownoutLevel::kYellow:
      return "yellow";
    case BrownoutLevel::kRed:
      return "red";
  }
  KANON_CHECK(false) << "bad BrownoutLevel " << static_cast<int>(level);
  return "";
}

HealthGovernor::HealthGovernor(GovernorOptions options)
    : options_(options) {}

BrownoutLevel HealthGovernor::Pressure(const GovernorSignals& signals,
                                       const GovernorOptions& options) {
  if (signals.memory_latched ||
      signals.queue_delay_ms >= options.red_delay_ms) {
    return BrownoutLevel::kRed;
  }
  if (signals.queue_delay_ms >= options.yellow_delay_ms ||
      (options.open_breakers_yellow > 0 &&
       signals.open_breakers >= options.open_breakers_yellow)) {
    return BrownoutLevel::kYellow;
  }
  return BrownoutLevel::kGreen;
}

BrownoutLevel HealthGovernor::Update(const GovernorSignals& signals) {
  std::lock_guard<std::mutex> lock(mu_);
  const BrownoutLevel pressure = Pressure(signals, options_);
  // Red-escalation clock: sustained red pressure at red level deepens
  // the coreset degradation one epoch per `escalate_ticks`.
  if (pressure == BrownoutLevel::kRed && level_ == BrownoutLevel::kRed) {
    if (++red_streak_ >= std::max(options_.escalate_ticks, 1)) {
      red_streak_ = 0;
      ++red_epochs_;
    }
  } else {
    red_streak_ = 0;
  }
  if (pressure > level_) {
    down_streak_ = 0;
    if (++up_streak_ >= std::max(options_.up_ticks, 1)) {
      up_streak_ = 0;
      // One rung at a time: a single spike cannot catapult green -> red.
      level_ = static_cast<BrownoutLevel>(static_cast<int>(level_) + 1);
      ++transitions_;
    }
  } else if (pressure < level_) {
    up_streak_ = 0;
    if (++down_streak_ >= std::max(options_.down_ticks, 1)) {
      down_streak_ = 0;
      level_ = static_cast<BrownoutLevel>(static_cast<int>(level_) - 1);
      ++transitions_;
      if (level_ < BrownoutLevel::kRed) red_epochs_ = 0;
    }
  } else {
    up_streak_ = 0;
    down_streak_ = 0;
  }
  return level_;
}

bool HealthGovernor::AppliesTo(uint64_t job_id) const {
  if (options_.apply_fraction >= 1.0) return true;
  if (options_.apply_fraction <= 0.0) return false;
  const uint64_t hash = FingerprintInt(options_.seed, job_id);
  const double unit =
      static_cast<double>(hash >> 11) * 0x1.0p-53;  // uniform in [0,1)
  return unit < options_.apply_fraction;
}

double HealthGovernor::RedCoresetRateLocked() const {
  double rate = options_.red_coreset_rate;
  for (uint64_t i = 0; i < red_epochs_ && rate > options_.min_coreset_rate;
       ++i) {
    rate /= 2.0;
  }
  return std::max(rate, options_.min_coreset_rate);
}

double HealthGovernor::RedCoresetRate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return RedCoresetRateLocked();
}

RewriteDecision HealthGovernor::Decide(uint64_t job_id,
                                       const std::string& algorithm,
                                       double requested_coreset_rate,
                                       BrownoutLevel force_level) const {
  std::lock_guard<std::mutex> lock(mu_);
  RewriteDecision decision;
  decision.level = std::max(level_, force_level);
  if (decision.level == BrownoutLevel::kGreen) return decision;
  if (!AppliesTo(job_id)) return decision;
  // Composed names (+local_search, +annealing) are explicit quality
  // requests; leave them, the resilient chain, and the already-cheap
  // stages alone.
  if (algorithm.find('+') != std::string::npos) return decision;

  const double red_rate = RedCoresetRateLocked();
  if (HasPrefix(algorithm, kCoresetPrefix) ||
      (HasPrefix(algorithm, kShardedPrefix) &&
       HasPrefix(algorithm.substr(kShardedPrefix.size()),
                 kCoresetPrefix))) {
    // Already sampling: at red, clamp the rate down to the ladder's
    // current rung (never up — an explicit aggressive rate stands).
    if (decision.level == BrownoutLevel::kRed) {
      const double requested = requested_coreset_rate > 0.0
                                   ? requested_coreset_rate
                                   : kDefaultCoresetRate;
      if (red_rate < requested) {
        decision.rewritten = true;
        decision.effective = algorithm;
        decision.coreset_rate = red_rate;
      }
    }
    return decision;
  }
  if (HasPrefix(algorithm, kShardedPrefix)) {
    // Sharded already sheds one quality rung; red pushes it to coreset.
    if (decision.level == BrownoutLevel::kRed) {
      const std::string inner = algorithm.substr(kShardedPrefix.size());
      if (LadderBase(inner)) {
        decision.rewritten = true;
        decision.effective = std::string(kCoresetPrefix) + inner;
        decision.coreset_rate = red_rate;
      }
    }
    return decision;
  }
  const std::string base = DirectBaseFor(algorithm);
  if (base.empty()) return decision;
  decision.rewritten = true;
  if (decision.level == BrownoutLevel::kYellow) {
    decision.effective = std::string(kShardedPrefix) + base;
  } else {
    decision.effective = std::string(kCoresetPrefix) + base;
    decision.coreset_rate = red_rate;
  }
  return decision;
}

HealthGovernor::Snapshot HealthGovernor::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.level = level_;
  snap.transitions = transitions_;
  snap.red_epochs = red_epochs_;
  return snap;
}

BrownoutLevel HealthGovernor::level() const {
  std::lock_guard<std::mutex> lock(mu_);
  return level_;
}

}  // namespace kanon
