#ifndef KANON_SERVICE_OVERLOAD_RETRY_BUDGET_H_
#define KANON_SERVICE_OVERLOAD_RETRY_BUDGET_H_

#include <cstdint>
#include <mutex>

/// \file
/// Pool-wide retry budget (token bucket refilled by successes).
///
/// Per-job retry policies are individually reasonable and collectively
/// ruinous: during a fault storm every job retries, multiplying the very
/// load that caused the faults. The budget makes retries proportional to
/// *successful* work — each success refills `ratio` tokens, each retry
/// withdraws one — so in steady state retries are capped at `ratio` of
/// the success throughput, and during a storm the bucket drains and
/// further failures degrade straight to the terminal stage (a valid,
/// cheap answer) instead of amplifying.

namespace kanon {

struct RetryBudgetOptions {
  /// Tokens refilled per successful job (0.1 = retries may consume up to
  /// 10% of success throughput in steady state).
  double ratio = 0.1;
  /// Tokens available before any success (lets a cold pool retry at all).
  double initial = 8.0;
  /// Bucket cap: quiet periods cannot bank unlimited retry credit.
  double cap = 64.0;
};

class RetryBudget {
 public:
  struct Snapshot {
    double tokens = 0.0;
    uint64_t granted = 0;
    uint64_t denied = 0;
  };

  explicit RetryBudget(RetryBudgetOptions options = {});

  /// Takes one token if a whole one is available; false = budget
  /// exhausted, the caller must not retry.
  bool TryWithdraw();

  /// Refills `ratio` tokens (capped) after a successfully answered job.
  void OnSuccess();

  Snapshot snapshot() const;

 private:
  const RetryBudgetOptions options_;
  mutable std::mutex mu_;
  double tokens_;
  uint64_t granted_ = 0;
  uint64_t denied_ = 0;
};

}  // namespace kanon

#endif  // KANON_SERVICE_OVERLOAD_RETRY_BUDGET_H_
