#ifndef KANON_SERVICE_OVERLOAD_CODEL_H_
#define KANON_SERVICE_OVERLOAD_CODEL_H_

#include <cstdint>
#include <mutex>

/// \file
/// CoDel-style queue-delay admission control.
///
/// The fixed occupancy bar sheds on queue *depth*, which conflates "many
/// cheap jobs" with "few expensive ones". What clients actually feel is
/// queue *delay* — so, following CoDel (Nichols & Jacobson), the signal
/// here is the sojourn time of dequeued jobs: when the minimum sojourn
/// observed over a full interval stays above the target, the queue has a
/// *standing* backlog that depth-based admission would let persist at
/// whatever the capacity allows. The controller then sheds arriving work
/// on an increasing-frequency schedule (interval / sqrt(n), the same
/// control law CoDel uses to find the drop rate that matches the load)
/// until a dequeue again sees sojourn below target.
///
/// Time is an explicit parameter everywhere (milliseconds on any
/// monotonic axis): production feeds a steady clock, the chaos harness
/// feeds virtual time, making every decision a pure function of the
/// call sequence — replayable from a seed.

namespace kanon {

struct CoDelOptions {
  /// Acceptable standing queue delay. Sojourns persistently above this
  /// for `interval_ms` put the controller in the shedding state.
  double target_ms = 20.0;
  /// Sliding window over which the *minimum* sojourn must exceed the
  /// target before shedding starts; also the base of the shedding
  /// schedule.
  double interval_ms = 100.0;
};

class CoDelAdmission {
 public:
  struct Snapshot {
    bool shedding = false;
    /// Admissions refused while in the shedding state.
    uint64_t sheds = 0;
    /// Times the controller entered the shedding state.
    uint64_t shed_windows = 0;
  };

  explicit CoDelAdmission(CoDelOptions options = {});

  /// Feed one dequeue observation: the popped job waited `sojourn_ms`.
  void OnSojourn(double sojourn_ms, double now_ms);

  /// Admission-side check: true means shed this arrival (typed
  /// shed_overload). Advances the shedding schedule on each shed.
  bool ShouldShed(double now_ms);

  Snapshot snapshot() const;

 private:
  const CoDelOptions options_;
  mutable std::mutex mu_;
  /// Time at which a persistently-above-target sojourn stream flips the
  /// controller into shedding (0 = sojourn not currently above target).
  double first_above_ms_ = 0.0;
  bool shedding_ = false;
  /// Sheds within the current shedding state (drives the schedule).
  uint64_t count_ = 0;
  double shed_next_ms_ = 0.0;
  uint64_t sheds_ = 0;
  uint64_t shed_windows_ = 0;
};

}  // namespace kanon

#endif  // KANON_SERVICE_OVERLOAD_CODEL_H_
