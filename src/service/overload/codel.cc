#include "service/overload/codel.h"

#include <cmath>

namespace kanon {

CoDelAdmission::CoDelAdmission(CoDelOptions options) : options_(options) {}

void CoDelAdmission::OnSojourn(double sojourn_ms, double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sojourn_ms < options_.target_ms) {
    // One good dequeue ends the episode: the standing backlog drained.
    first_above_ms_ = 0.0;
    shedding_ = false;
    return;
  }
  if (first_above_ms_ == 0.0) {
    first_above_ms_ = now_ms + options_.interval_ms;
    return;
  }
  if (!shedding_ && now_ms >= first_above_ms_) {
    // The minimum sojourn stayed above target for a whole interval:
    // depth-based admission is not going to fix this — start shedding.
    shedding_ = true;
    ++shed_windows_;
    count_ = 0;
    shed_next_ms_ = now_ms;
  }
}

bool CoDelAdmission::ShouldShed(double now_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!shedding_) return false;
  if (now_ms < shed_next_ms_) return false;
  ++count_;
  ++sheds_;
  // CoDel's control law: shed more often the longer the overload holds,
  // closing in on the rate that actually balances the offered load.
  shed_next_ms_ =
      now_ms + options_.interval_ms / std::sqrt(static_cast<double>(count_));
  return true;
}

CoDelAdmission::Snapshot CoDelAdmission::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.shedding = shedding_;
  snap.sheds = sheds_;
  snap.shed_windows = shed_windows_;
  return snap;
}

}  // namespace kanon
