#ifndef KANON_SERVICE_OVERLOAD_GOVERNOR_H_
#define KANON_SERVICE_OVERLOAD_GOVERNOR_H_

#include <cstdint>
#include <mutex>
#include <string>

/// \file
/// Brownout ladder: a deterministic health-state machine that trades
/// solve quality for capacity under pressure.
///
/// The paper's NP-hardness result (Theorem 3.2) is usually read as bad
/// news, but for overload control it is an asset: the codebase owns a
/// ladder of progressively cheaper approximations of the same objective
/// (direct solve -> sharded solve -> coreset solve, with quality gaps
/// bounded by E16/E17), so a saturated server can *degrade* instead of
/// tail-dropping. The HealthGovernor watches queue delay, open circuit
/// breakers and memory-budget latches, and walks a green -> yellow ->
/// red ladder with hysteresis (escalate after `up_ticks` pressured
/// observations, relax after `down_ticks` calm ones). At yellow,
/// admissible jobs are rewritten to their sharded backend; at red, to
/// their coreset backend — at a sampling rate that *halves* for every
/// further `escalate_ticks` of sustained red pressure, down to a floor.
///
/// Everything is deterministic: Update() is a pure function of the
/// signal sequence, Decide() a pure function of (state, job id,
/// algorithm). The seed only enters through the per-job apply hash when
/// `apply_fraction < 1`, and the hash is a fixed mix of (seed, job id) —
/// so a chaos schedule replays every brownout decision bit-identically.

namespace kanon {

enum class BrownoutLevel { kGreen = 0, kYellow = 1, kRed = 2 };

/// "green" / "yellow" / "red".
const char* BrownoutLevelName(BrownoutLevel level);

struct GovernorOptions {
  /// Queue-delay thresholds (measured sojourn of dequeued jobs).
  double yellow_delay_ms = 50.0;
  double red_delay_ms = 200.0;
  /// Open breakers at or above this count signal yellow pressure.
  int open_breakers_yellow = 1;
  /// Consecutive pressured observations before escalating one level.
  int up_ticks = 2;
  /// Consecutive calm observations before relaxing one level.
  int down_ticks = 4;
  /// Sampling rate of red-level coreset rewrites, halved for every
  /// further `escalate_ticks` of sustained red pressure.
  double red_coreset_rate = 0.25;
  double min_coreset_rate = 0.05;
  int escalate_ticks = 8;
  /// Fraction of eligible jobs rewritten at a degraded level (1 = all).
  /// Below 1, the per-job choice hashes (seed, job id) — deterministic.
  double apply_fraction = 1.0;
  uint64_t seed = 0x6272776eull;  // "brwn"
};

/// One pressure observation, typically taken at job dequeue.
struct GovernorSignals {
  double queue_delay_ms = 0.0;
  int open_breakers = 0;
  /// A recent job latched its memory budget (kMemory termination).
  bool memory_latched = false;
};

/// The governor's verdict for one job.
struct RewriteDecision {
  BrownoutLevel level = BrownoutLevel::kGreen;
  bool rewritten = false;
  /// Backend to run instead (set iff `rewritten`).
  std::string effective;
  /// Coreset sampling rate to apply (> 0 iff `effective` samples).
  double coreset_rate = 0.0;
};

class HealthGovernor {
 public:
  struct Snapshot {
    BrownoutLevel level = BrownoutLevel::kGreen;
    uint64_t transitions = 0;
    /// Red-pressure escalation epochs (each halves the coreset rate).
    uint64_t red_epochs = 0;
  };

  explicit HealthGovernor(GovernorOptions options = {});

  /// Feeds one observation and returns the (possibly new) level.
  BrownoutLevel Update(const GovernorSignals& signals);

  /// The rewrite for a job requesting `algorithm` (with
  /// `requested_coreset_rate`, 0 = default) at the current level.
  /// `force_level`, when above the current level, stands in for it —
  /// the fault-injection hook uses this to exercise the rewrite path
  /// deterministically regardless of organic pressure.
  RewriteDecision Decide(uint64_t job_id, const std::string& algorithm,
                         double requested_coreset_rate,
                         BrownoutLevel force_level =
                             BrownoutLevel::kGreen) const;

  Snapshot snapshot() const;
  BrownoutLevel level() const;

  /// The coreset rate a red-level rewrite would apply right now.
  double RedCoresetRate() const;

 private:
  static BrownoutLevel Pressure(const GovernorSignals& signals,
                                const GovernorOptions& options);
  bool AppliesTo(uint64_t job_id) const;
  double RedCoresetRateLocked() const;

  const GovernorOptions options_;
  mutable std::mutex mu_;
  BrownoutLevel level_ = BrownoutLevel::kGreen;
  int up_streak_ = 0;
  int down_streak_ = 0;
  int red_streak_ = 0;
  uint64_t transitions_ = 0;
  uint64_t red_epochs_ = 0;
};

}  // namespace kanon

#endif  // KANON_SERVICE_OVERLOAD_GOVERNOR_H_
