#include "service/overload/retry_budget.h"

#include <algorithm>

namespace kanon {

RetryBudget::RetryBudget(RetryBudgetOptions options)
    : options_(options),
      tokens_(std::min(options.initial, options.cap)) {}

bool RetryBudget::TryWithdraw() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tokens_ < 1.0) {
    ++denied_;
    return false;
  }
  tokens_ -= 1.0;
  ++granted_;
  return true;
}

void RetryBudget::OnSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  tokens_ = std::min(options_.cap, tokens_ + options_.ratio);
}

RetryBudget::Snapshot RetryBudget::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.tokens = tokens_;
  snap.granted = granted_;
  snap.denied = denied_;
  return snap;
}

}  // namespace kanon
