#include "service/overload/overload.h"

#include <chrono>

#include "fault/fault.h"

namespace kanon {

OverloadControl::OverloadControl(OverloadOptions options)
    : options_(options),
      estimator_(options.estimator),
      codel_(options.codel),
      retry_budget_(options.retry_budget),
      governor_(options.governor) {}

double OverloadControl::SteadyNowMillis() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

bool OverloadControl::ShouldShed(double now_ms) {
  // The injected shed fires regardless of CoDel state so a chaos plan
  // can exercise the typed rejection deterministically.
  if (KANON_FAULT_POINT("overload.shed")) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (codel_.ShouldShed(now_ms)) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void OverloadControl::OnDequeue(double sojourn_ms, double now_ms,
                                int open_breakers) {
  codel_.OnSojourn(sojourn_ms, now_ms);
  if (!options_.governor_enabled) return;
  GovernorSignals signals;
  signals.queue_delay_ms = sojourn_ms;
  signals.open_breakers = open_breakers;
  // Consume one tick of any standing memory latch.
  int latch = memory_latch_.load(std::memory_order_relaxed);
  while (latch > 0 && !memory_latch_.compare_exchange_weak(
                          latch, latch - 1, std::memory_order_relaxed)) {
  }
  signals.memory_latched = latch > 0;
  governor_.Update(signals);
}

bool OverloadControl::DeadlineInfeasible(const std::string& backend,
                                         double remaining_ms) {
  if (remaining_ms < 0.0) {
    // Already past the deadline: any solve work is wasted.
    deadline_infeasible_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const double optimistic = estimator_.OptimisticMillis(backend);
  if (optimistic > 0.0 && remaining_ms < optimistic) {
    deadline_infeasible_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

RewriteDecision OverloadControl::MaybeRewrite(
    uint64_t job_id, const std::string& algorithm,
    double requested_coreset_rate) {
  if (!options_.governor_enabled) return RewriteDecision{};
  // An injected brownout forces at least one rung of degradation even
  // when the governor is green — the chaos harness uses it to exercise
  // the rewrite path on a deterministic schedule.
  const BrownoutLevel force = KANON_FAULT_POINT("overload.brownout")
                                  ? BrownoutLevel::kYellow
                                  : BrownoutLevel::kGreen;
  RewriteDecision decision =
      governor_.Decide(job_id, algorithm, requested_coreset_rate, force);
  if (decision.rewritten) {
    brownouts_.fetch_add(1, std::memory_order_relaxed);
  }
  return decision;
}

bool OverloadControl::AllowRetry() {
  if (retry_budget_.TryWithdraw()) return true;
  retry_denied_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void OverloadControl::RecordOutcome(const std::string& backend,
                                    double run_ms, bool ok,
                                    StopReason termination,
                                    bool cache_hit) {
  if (ok) retry_budget_.OnSuccess();
  if (termination == StopReason::kBudget) {
    memory_latch_.store(options_.memory_latch_updates,
                        std::memory_order_relaxed);
  }
  if (!cache_hit && ok) estimator_.Record(backend, run_ms);
}

OverloadCounters OverloadControl::counters() const {
  OverloadCounters counters;
  counters.shed = shed_.load(std::memory_order_relaxed);
  counters.deadline_infeasible =
      deadline_infeasible_.load(std::memory_order_relaxed);
  counters.brownouts = brownouts_.load(std::memory_order_relaxed);
  counters.retry_denied = retry_denied_.load(std::memory_order_relaxed);
  const HealthGovernor::Snapshot governor = governor_.snapshot();
  counters.transitions = governor.transitions;
  counters.level = governor.level;
  counters.shed_windows = codel_.snapshot().shed_windows;
  counters.retry_tokens = retry_budget_.snapshot().tokens;
  return counters;
}

BrownoutLevel OverloadControl::level() const { return governor_.level(); }

}  // namespace kanon
