#ifndef KANON_SERVICE_OVERLOAD_ESTIMATOR_H_
#define KANON_SERVICE_OVERLOAD_ESTIMATOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

/// \file
/// Per-backend solve-time estimator backed by decaying histograms.
///
/// Deadline reconciliation needs an answer to "how long does backend X
/// usually take?" that (a) adapts as the workload shifts, (b) never
/// blocks the dispatch path, and (c) errs on the *optimistic* side — an
/// estimate that is too high would reject jobs that could have finished,
/// which would break the goodput-monotonicity invariant the overload
/// plane promises. Each backend gets a small log2-bucketed histogram of
/// observed run times; every `decay_window` observations all counts are
/// halved, so the distribution tracks the recent past with O(1) memory
/// and no timestamps (which keeps it usable under virtual time in the
/// chaos harness).

namespace kanon {

struct EstimatorOptions {
  /// Observations per backend between halvings of its bucket counts.
  uint64_t decay_window = 256;
};

/// Thread-safe. Quantile queries on a backend with no observations
/// return 0, which callers must treat as "no opinion" (never reject).
class SolveTimeEstimator {
 public:
  explicit SolveTimeEstimator(EstimatorOptions options = {});

  /// Records one completed solve of `backend` taking `ms` milliseconds.
  void Record(const std::string& backend, double ms);

  /// The upper edge of the bucket holding quantile `q` (in [0, 1]) of
  /// the decayed observations; 0 when the backend has none.
  double QuantileMillis(const std::string& backend, double q) const;

  /// The *lower* edge of the fastest non-empty bucket — the most
  /// optimistic defensible estimate. A job is declared infeasible only
  /// when even this cannot fit its remaining deadline budget, so the
  /// reconciliation path only ever rejects clearly-doomed work. 0 when
  /// the backend has no observations (or its fastest observation was
  /// sub-millisecond, where rejection would be absurd anyway).
  double OptimisticMillis(const std::string& backend) const;

  /// Total decayed observations for `backend` (0 = never seen).
  uint64_t Observations(const std::string& backend) const;

 private:
  /// Bucket b >= 1 covers (2^(b-1), 2^b] ms; bucket 0 covers [0, 1] ms.
  static constexpr int kBuckets = 32;

  struct Histogram {
    std::array<uint64_t, kBuckets> counts{};
    uint64_t total = 0;
    uint64_t since_decay = 0;
  };

  static int BucketFor(double ms);

  const EstimatorOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace kanon

#endif  // KANON_SERVICE_OVERLOAD_ESTIMATOR_H_
