#include "service/server.h"

#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "algo/shard_metrics.h"
#include "coreset/metrics.h"
#include "data/csv_table.h"
#include "fault/fault.h"
#include "util/build_info.h"
#include "util/string_util.h"

namespace kanon {

namespace {

/// Error messages travel as the final quoted token; keep them one line
/// and quote-free so the response stays trivially tokenizable.
std::string QuoteMessage(std::string message) {
  for (char& c : message) {
    if (c == '"') c = '\'';
    if (c == '\n' || c == '\r') c = ' ';
  }
  return "\"" + message + "\"";
}

std::string FormatErrorLine(const std::string& verb, uint64_t id,
                            ServiceError error, const Status& status) {
  std::ostringstream out;
  out << "error verb=" << verb;
  if (id != 0) out << " id=" << id;
  out << " code=" << StatusCodeName(status.code())
      << " error=" << ServiceErrorName(error)
      << " message=" << QuoteMessage(status.message());
  return out.str();
}

std::string FormatAnonymizeResponse(const AnonymizeResponse& response) {
  if (!response.ok()) {
    return FormatErrorLine("anonymize", response.id, response.error,
                           response.status);
  }
  std::ostringstream out;
  out << "ok verb=anonymize id=" << response.id
      << " algo=" << response.algorithm << " k=" << response.k
      << " rows=" << response.rows << " cost=" << response.cost
      << " stage=" << response.stage
      << " termination=" << StopReasonName(response.termination)
      << " chain=" << (response.chain.empty() ? "-" : response.chain)
      << " cache=" << (response.cache_hit ? "hit" : "miss")
      << " queue_ms=" << FormatDouble(response.queue_ms, 3)
      << " run_ms=" << FormatDouble(response.run_ms, 3);
  if (!response.effective_algorithm.empty() &&
      response.effective_algorithm != response.algorithm) {
    out << " effective=" << response.effective_algorithm;
  }
  if (response.brownout > 0) {
    out << " brownout=" << response.brownout;
  }
  if (!response.anonymized_csv.empty()) {
    out << " csv=" << CsvToInline(response.anonymized_csv);
  }
  return out.str();
}

}  // namespace

std::string FormatStatsLine(const ServiceStats& stats) {
  std::ostringstream out;
  out << "ok verb=stats workers=" << stats.workers
      << " queue_depth=" << stats.queue_depth
      << " accepted=" << stats.accepted << " rejected=" << stats.rejected
      << " shed=" << stats.shed << " completed=" << stats.completed
      << " cache_served=" << stats.cache_served
      << " cancelled=" << stats.cancelled
      << " retries=" << stats.retries_attempted
      << " retries_exhausted=" << stats.retries_exhausted
      << " journal_replays=" << stats.journal_replays
      << " resumed=" << stats.resumed
      << " resume_degraded=" << stats.resume_degraded
      << " checkpoints=" << stats.checkpoints_written
      << " checkpoint_failures=" << stats.checkpoint_failures
      << " watchdog_preempted=" << stats.watchdog_preempted
      << " breakers=" << (stats.breakers.empty() ? "-" : stats.breakers)
      << " cache_hits=" << stats.cache.hits
      << " cache_misses=" << stats.cache.misses
      << " cache_evictions=" << stats.cache.evictions
      << " cache_rejected=" << stats.cache.rejected
      << " cache_size=" << stats.cache.size
      << " cache_capacity=" << stats.cache.capacity
      << " coreset_samples=" << stats.coreset_samples
      << " coreset_rows_sampled=" << stats.coreset_rows_sampled
      << " coreset_assigned_rows=" << stats.coreset_assigned_rows
      << " coreset_repairs=" << stats.coreset_repairs
      << " coreset_repair_suppressed=" << stats.coreset_repair_suppressed
      << " coreset_resumed=" << stats.coreset_resumed
      << " shard_plans=" << stats.shard_plans
      << " shards_planned=" << stats.shards_planned
      << " shard_solves=" << stats.shard_solves
      << " shard_declines=" << stats.shard_declines
      << " shard_merges=" << stats.shard_merges
      << " shard_repairs=" << stats.shard_repairs
      << " shard_resumed=" << stats.shard_resumed
      << " overload_shed=" << stats.overload_shed
      << " overload_infeasible=" << stats.overload_infeasible
      << " overload_brownouts=" << stats.overload_brownouts
      << " overload_transitions=" << stats.overload_transitions
      << " overload_retry_denied=" << stats.overload_retry_denied
      << " overload_retry_degraded=" << stats.overload_retry_degraded
      << " overload_level="
      << (stats.overload_level.empty() ? "off" : stats.overload_level)
      << " build=" << BuildInfoToken();
  return out.str();
}

AnonymizationService::AnonymizationService(ServiceOptions options)
    : cache_(options.cache_capacity),
      overload_(options.overload_enabled
                    ? std::make_unique<OverloadControl>(options.overload)
                    : nullptr),
      queue_(QueueOptions{.capacity = options.queue_capacity,
                          .shed_start_fraction = options.shed_start_fraction,
                          .shed_levels = options.shed_levels,
                          .observer = options.observer,
                          .overload = overload_.get()}),
      watchdog_(options.watchdog_stall_ms > 0.0
                    ? std::make_unique<Watchdog>(WatchdogOptions{
                          .scan_interval_ms =
                              options.watchdog_scan_interval_ms,
                          .stall_ms = options.watchdog_stall_ms})
                    : nullptr),
      pool_(&queue_, &cache_,
            {.workers = options.workers,
             .retry = options.retry,
             .breaker = options.breaker,
             .checkpoints = options.checkpoints,
             .checkpoint_every_polls = options.checkpoint_every_polls,
             .checkpoint_every_ms = options.checkpoint_every_ms,
             .keep_checkpoints = options.keep_checkpoints,
             .watchdog = watchdog_.get(),
             .overload = overload_.get()}) {}

AnonymizationService::~AnonymizationService() { Shutdown(); }

StatusOr<JobQueue::Ticket> AnonymizationService::Submit(
    AnonymizeRequest request, ServiceError* error) {
  const Status prepared = ValidateAndPrepare(request, error);
  if (!prepared.ok()) return prepared;
  return queue_.Submit(std::move(request), error);
}

StatusOr<uint64_t> AnonymizationService::SubmitAsync(
    AnonymizeRequest request, ServiceError* error,
    std::function<void(const AnonymizeResponse&)> on_done) {
  const Status prepared = ValidateAndPrepare(request, error);
  if (!prepared.ok()) return prepared;
  StatusOr<JobQueue::Ticket> ticket =
      queue_.Submit(std::move(request), error, std::move(on_done));
  if (!ticket.ok()) return ticket.status();
  // The future is deliberately dropped: the callback is the delivery
  // path, and a promise fulfilled with no waiter is harmless.
  return ticket->id;
}

AnonymizeResponse AnonymizationService::Handle(AnonymizeRequest request) {
  AnonymizeResponse rejection;
  rejection.algorithm = request.algorithm;
  rejection.k = request.k;

  ServiceError error = ServiceError::kNone;
  StatusOr<JobQueue::Ticket> ticket = Submit(std::move(request), &error);
  if (!ticket.ok()) {
    rejection.status = ticket.status();
    rejection.error = error;
    return rejection;
  }
  return ticket->result.get();
}

ServiceStats AnonymizationService::Stats() const {
  ServiceStats stats;
  stats.workers = pool_.num_workers();
  stats.queue_depth = queue_.depth();
  const JobQueue::Counters queue = queue_.counters();
  stats.accepted = queue.accepted;
  stats.rejected = queue.rejected;
  stats.shed = queue.shed;
  const WorkerPool::Counters pool = pool_.counters();
  stats.completed = pool.completed;
  stats.cache_served = pool.cache_served;
  stats.cancelled = pool.cancelled;
  stats.retries_attempted = pool.retries_attempted;
  stats.retries_exhausted = pool.retries_exhausted;
  stats.journal_replays = journal_replays_.load(std::memory_order_relaxed);
  stats.resumed = resumed_.load(std::memory_order_relaxed);
  stats.resume_degraded = resume_degraded_.load(std::memory_order_relaxed);
  stats.checkpoints_written = pool.checkpoints_written;
  stats.checkpoint_failures = pool.checkpoint_failures;
  stats.watchdog_preempted = pool.watchdog_preempted;
  stats.breakers = pool_.breakers().Describe();
  stats.cache = cache_.stats();
  const CoresetMetricsSnapshot coreset =
      CoresetMetrics::Instance().Snapshot();
  stats.coreset_samples = coreset.sample_runs;
  stats.coreset_rows_sampled = coreset.samples_drawn;
  stats.coreset_assigned_rows = coreset.assigned_rows;
  stats.coreset_repairs = coreset.repair_merges;
  stats.coreset_repair_suppressed = coreset.repair_suppressed;
  stats.coreset_resumed = coreset.resumed;
  if (overload_ != nullptr) {
    const OverloadCounters overload = overload_->counters();
    stats.overload_shed = overload.shed;
    stats.overload_infeasible = overload.deadline_infeasible;
    stats.overload_brownouts = overload.brownouts;
    stats.overload_transitions = overload.transitions;
    stats.overload_retry_denied = overload.retry_denied;
    stats.overload_retry_degraded = pool.retry_budget_degraded;
    stats.overload_level = overload_->governor_enabled()
                               ? BrownoutLevelName(overload.level)
                               : "off";
  }
  const ShardMetricsSnapshot shard = ShardMetrics::Instance().Snapshot();
  stats.shard_plans = shard.plans;
  stats.shards_planned = shard.shards_planned;
  stats.shard_solves = shard.shard_solves;
  stats.shard_declines = shard.shard_declines;
  stats.shard_merges = shard.merges;
  stats.shard_repairs = shard.repair_merges;
  stats.shard_resumed = shard.resumed;
  return stats;
}

void AnonymizationService::NoteJournalReplay(uint64_t jobs) {
  journal_replays_.fetch_add(jobs, std::memory_order_relaxed);
}

void AnonymizationService::NoteResumes(uint64_t resumed,
                                       uint64_t degraded) {
  resumed_.fetch_add(resumed, std::memory_order_relaxed);
  resume_degraded_.fetch_add(degraded, std::memory_order_relaxed);
}

void AnonymizationService::Shutdown() { pool_.Join(); }

StatusOr<AnonymizeRequest> ParseRequestLine(const std::string& tail,
                                            ServiceError* error) {
  *error = ServiceError::kNone;
  AnonymizeRequest request;
  std::istringstream tokens(tail);
  std::string token;
  while (tokens >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      *error = ServiceError::kMalformedLine;
      return MakeServiceStatus(*error,
                               "expected key=value, got '" + token + "'");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    long long parsed = 0;
    if (key == "algo") {
      request.algorithm = value;
    } else if (key == "k") {
      if (!ParseInt(value, &parsed) || parsed < 0) {
        *error = ServiceError::kBadParameter;
        return MakeServiceStatus(*error, "bad k '" + value + "'");
      }
      request.k = static_cast<size_t>(parsed);
    } else if (key == "deadline_ms") {
      double ms = 0.0;
      if (!ParseDouble(value, &ms)) {
        *error = ServiceError::kBadParameter;
        return MakeServiceStatus(*error,
                                 "bad deadline_ms '" + value + "'");
      }
      request.deadline_ms = ms;
    } else if (key == "budget") {
      if (!ParseInt(value, &parsed) || parsed < 0) {
        *error = ServiceError::kBadParameter;
        return MakeServiceStatus(*error, "bad budget '" + value + "'");
      }
      request.node_budget = static_cast<uint64_t>(parsed);
    } else if (key == "priority") {
      if (!ParseInt(value, &parsed)) {
        *error = ServiceError::kBadParameter;
        return MakeServiceStatus(*error, "bad priority '" + value + "'");
      }
      request.priority = static_cast<int>(parsed);
    } else if (key == "coreset_rate") {
      double rate = 0.0;
      if (!ParseDouble(value, &rate)) {
        *error = ServiceError::kBadParameter;
        return MakeServiceStatus(*error,
                                 "bad coreset_rate '" + value + "'");
      }
      request.coreset_rate = rate;
    } else if (key == "coreset_seed") {
      if (!ParseInt(value, &parsed) || parsed < 0) {
        *error = ServiceError::kBadParameter;
        return MakeServiceStatus(*error,
                                 "bad coreset_seed '" + value + "'");
      }
      request.coreset_seed = static_cast<uint64_t>(parsed);
    } else if (key == "shards") {
      if (!ParseInt(value, &parsed) || parsed < 0) {
        *error = ServiceError::kBadParameter;
        return MakeServiceStatus(*error, "bad shards '" + value + "'");
      }
      request.shards = static_cast<size_t>(parsed);
    } else if (key == "shard_parallelism") {
      if (!ParseInt(value, &parsed) || parsed < 0) {
        *error = ServiceError::kBadParameter;
        return MakeServiceStatus(
            *error, "bad shard_parallelism '" + value + "'");
      }
      request.shard_parallelism = static_cast<size_t>(parsed);
    } else if (key == "emit") {
      request.emit_csv = value != "0" && value != "false";
    } else if (key == "wait") {
      request.wait = value != "0" && value != "false";
    } else if (key == "csv") {
      request.csv_text = InlineToCsv(value);
    } else if (key == "file") {
      StatusOr<Table> loaded = ReadTableCsv(value);
      if (!loaded.ok()) {
        *error = loaded.status().code() == StatusCode::kNotFound
                     ? ServiceError::kTableNotFound
                     : ServiceError::kTableParseError;
        return MakeServiceStatus(*error, loaded.status().message());
      }
      request.table.emplace(*std::move(loaded));
    } else {
      *error = ServiceError::kMalformedLine;
      return MakeServiceStatus(*error, "unknown key '" + key + "'");
    }
  }
  return request;
}

std::string HandleLine(AnonymizationService& service,
                       const std::string& line, bool* shutdown) {
  *shutdown = false;
  const std::string_view trimmed = Trim(line);
  const size_t space = trimmed.find(' ');
  const std::string verb(trimmed.substr(0, space));
  const std::string tail(
      space == std::string_view::npos ? "" : trimmed.substr(space + 1));

  if (verb == "anonymize") {
    ServiceError error = ServiceError::kNone;
    StatusOr<AnonymizeRequest> request = ParseRequestLine(tail, &error);
    if (!request.ok()) {
      return FormatErrorLine("anonymize", 0, error, request.status());
    }
    // An injected transport fault drops the request at the handler
    // boundary; the client gets a typed error line, the loop survives.
    if (KANON_FAULT_POINT("server.io")) {
      const ServiceError fault = ServiceError::kWorkerFailure;
      return FormatErrorLine(
          "anonymize", 0, fault,
          MakeServiceStatus(fault, "injected I/O fault; retry"));
    }
    if (!request->wait) {
      // Fire-and-forget: answer at admission; the result is delivered
      // to no one, but the job still runs (and lands in the journal).
      StatusOr<JobQueue::Ticket> ticket =
          service.Submit(*std::move(request), &error);
      if (!ticket.ok()) {
        return FormatErrorLine("anonymize", 0, error, ticket.status());
      }
      return "ok verb=anonymize id=" + std::to_string(ticket->id) +
             " queued=1";
    }
    return FormatAnonymizeResponse(service.Handle(*std::move(request)));
  }
  if (verb == "stats") {
    return FormatStatsLine(service.Stats());
  }
  if (verb == "shutdown") {
    *shutdown = true;
    return "ok verb=shutdown";
  }
  const ServiceError error = ServiceError::kUnknownVerb;
  return FormatErrorLine(
      verb.empty() ? "-" : verb, 0, error,
      MakeServiceStatus(error, "unknown verb '" + verb +
                                   "'; expected anonymize|stats|shutdown"));
}

namespace {

/// Rewrites a live response line into its replay form.
std::string ReplayLine(std::string line, uint64_t old_id, bool resumed) {
  const std::string needle = "verb=anonymize";
  const size_t at = line.find(needle);
  if (at != std::string::npos) {
    std::string verb = "verb=replay old_id=" + std::to_string(old_id);
    if (resumed) verb += " resumed=1";
    line.replace(at, needle.size(), verb);
  }
  return line;
}

}  // namespace

JournalReplayReport ApplyReplayToService(JournalReplay replay,
                                         AnonymizationService& service,
                                         const ReplayOptions& options) {
  JournalReplayReport report;
  report.completed = replay.completed;
  report.torn_records = replay.torn_records;

  // Load every snapshot a started job may resume from into memory *up
  // front*, then clear the store: the new incarnation's job ids restart
  // at 1 and its own checkpoints would otherwise collide with (or
  // wrongly inherit) the dead incarnation's files.
  std::unordered_map<uint64_t, SolverSnapshot> snapshots;
  std::unordered_map<uint64_t, std::string> load_errors;
  if (options.checkpoints != nullptr) {
    for (const ReplayedJob& job : replay.pending) {
      if (!job.started || job.cancelled || job.checkpoint_seq == 0) {
        continue;
      }
      StatusOr<SolverSnapshot> loaded =
          options.checkpoints->Load(job.old_id);
      if (loaded.ok()) {
        snapshots.emplace(job.old_id, *std::move(loaded));
      } else {
        // kNotFound / kDataLoss / kParseError: remember why so the
        // degraded error line can say.
        load_errors.emplace(job.old_id, loaded.status().ToString());
      }
    }
    (void)options.checkpoints->Clear();
  }

  for (ReplayedJob& job : replay.pending) {
    if (job.started || job.cancelled) {
      // A checkpointed job continues from its snapshot; anything else
      // that was on a worker when the process died is unsafe to re-run
      // blindly (the input may be what killed it) — typed error.
      std::string degrade_note;
      if (options.checkpoints != nullptr && !job.cancelled &&
          job.checkpoint_seq > 0) {
        const auto found = snapshots.find(job.old_id);
        if (found == snapshots.end()) {
          const auto why = load_errors.find(job.old_id);
          degrade_note = why != load_errors.end()
                             ? why->second
                             : "snapshot file missing";
        } else {
          ServiceError error = ServiceError::kNone;
          const Status prepared = ValidateAndPrepare(job.request, &error);
          if (!prepared.ok()) {
            degrade_note = "request failed validation: " +
                           prepared.ToString();
          } else if (found->second.table_fp !=
                         TableFingerprint(*job.request.table) ||
                     found->second.k != job.request.k) {
            degrade_note = "snapshot stale: table/k stamp mismatch";
          } else {
            job.request.resume_solver = found->second.solver;
            job.request.resume_payload = std::move(found->second.payload);
            ++report.resumed;
            AnonymizeResponse response =
                service.Handle(std::move(job.request));
            report.lines.push_back(ReplayLine(
                FormatAnonymizeResponse(response), job.old_id, true));
            continue;
          }
        }
        ++report.resume_degraded;
      }
      ++report.interrupted;
      const ServiceError error = job.cancelled ? ServiceError::kCancelled
                                               : ServiceError::kInterrupted;
      std::string message =
          job.cancelled ? "cancelled before the crash; not re-run"
                        : "was running when the daemon died; not re-run";
      if (!degrade_note.empty()) {
        message += "; checkpoint unusable: " + degrade_note;
      }
      const Status status = MakeServiceStatus(error, std::move(message));
      std::ostringstream line;
      line << "error verb=replay old_id=" << job.old_id
           << " code=" << StatusCodeName(status.code())
           << " error=" << ServiceErrorName(error)
           << " message=" << QuoteMessage(status.message());
      report.lines.push_back(line.str());
      continue;
    }
    ++report.resubmitted;
    AnonymizeResponse response = service.Handle(std::move(job.request));
    // Same shape as a live response, re-verbed so clients can tell a
    // recovered answer from one they asked this incarnation for.
    report.lines.push_back(
        ReplayLine(FormatAnonymizeResponse(response), job.old_id, false));
  }
  service.NoteJournalReplay(report.resubmitted + report.resumed +
                            report.interrupted);
  service.NoteResumes(report.resumed, report.resume_degraded);
  return report;
}

StatusOr<JournalReplayReport> ReplayJournalIntoService(
    const std::string& path, AnonymizationService& service) {
  StatusOr<JournalReplay> replay = JobJournal::ReplayFile(path);
  if (!replay.ok()) return replay.status();
  return ApplyReplayToService(*std::move(replay), service);
}

namespace {

/// getline with an allocation cap: reads through the next '\n' (or
/// EOF), keeping at most `cap` bytes. Bytes past the cap are *consumed
/// and dropped* — the stream stays line-synchronized — and *overflow is
/// set so the caller can answer with the typed error instead of parsing
/// a truncated request. Returns false once the stream is exhausted.
bool GetLineBounded(std::istream& in, std::string* line, size_t cap,
                    bool* overflow) {
  line->clear();
  *overflow = false;
  std::streambuf* const buf = in.rdbuf();
  bool any = false;
  for (;;) {
    const int c = buf->sbumpc();
    if (c == std::char_traits<char>::eof()) {
      in.setstate(std::ios::eofbit);
      return any;
    }
    any = true;
    if (c == '\n') return true;
    if (line->size() >= cap) {
      *overflow = true;
      continue;  // keep draining to the newline, remember nothing
    }
    line->push_back(static_cast<char>(c));
  }
}

}  // namespace

size_t ServeLines(AnonymizationService& service, std::istream& in,
                  std::ostream& out) {
  size_t served = 0;
  std::string line;
  bool overflow = false;
  while (GetLineBounded(in, &line, kMaxProtocolLineBytes, &overflow)) {
    if (overflow) {
      const ServiceError error = ServiceError::kLineTooLong;
      out << FormatErrorLine(
                 "-", 0, error,
                 MakeServiceStatus(
                     error, "request line exceeds " +
                                std::to_string(kMaxProtocolLineBytes) +
                                " bytes; discarded unparsed"))
          << '\n'
          << std::flush;
      ++served;
      continue;
    }
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    bool shutdown = false;
    out << HandleLine(service, line, &shutdown) << '\n' << std::flush;
    ++served;
    if (shutdown) break;
  }
  return served;
}

}  // namespace kanon
