#ifndef KANON_SERVICE_SERVER_H_
#define KANON_SERVICE_SERVER_H_

#include <atomic>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "service/cache.h"
#include "service/journal.h"
#include "service/overload/overload.h"
#include "service/queue.h"
#include "service/worker_pool.h"

/// \file
/// The embeddable anonymization service and its line protocol.
///
/// `AnonymizationService` wires queue -> workers -> cache -> resilient
/// chain into one long-running engine: admit, execute, answer. It is the
/// multiplexing layer the per-request RunContext machinery plugs into.
///
/// `ServeLines` speaks a dependency-free newline-delimited protocol over
/// any iostream pair (kanond binds it to stdin/stdout). One request per
/// line, one response line per request:
///
///   > anonymize algo=resilient k=2 csv=age,zip;30,10001;30,10001
///   ok id=1 verb=anonymize algo=resilient k=2 rows=2 cost=0
///     stage=exact_dp termination=completed chain=exact_dp(ok)
///     cache=miss queue_ms=0.05 run_ms=0.41 csv=age,zip;30,10001;30,10001
///   > stats
///   ok verb=stats workers=4 queue_depth=0 accepted=1 rejected=0
///     completed=1 cache_served=0 cancelled=0 cache_hits=0
///     cache_misses=1 cache_evictions=0 cache_size=1 cache_capacity=64
///   > shutdown
///   ok verb=shutdown served=2
///
/// (Responses are single lines; they are wrapped here for readability.)
/// Inline CSV encodes rows with ';' in place of newlines, so values must
/// not contain spaces, ';' or unbalanced quotes. Failures are single
/// `error ...` lines carrying the taxonomy name and the mapped
/// StatusCode, and never terminate the serving loop:
///
///   > anonymize algo=nope k=2 csv=a;1;2
///   error verb=anonymize code=NOT_FOUND error=unknown_algorithm
///     message="unknown algorithm 'nope'; known: ..."

namespace kanon {

struct ServiceOptions {
  /// Worker threads; 0 means GetParallelism().
  unsigned workers = 0;
  /// Job-queue capacity (admission control bound).
  size_t queue_capacity = 64;
  /// Result-cache capacity in entries; 0 disables caching.
  size_t cache_capacity = 64;
  /// Load-shedding knobs forwarded to the queue (see QueueOptions).
  double shed_start_fraction = 0.75;
  int shed_levels = 4;
  /// Per-job retry budget and backoff (see service/retry.h).
  RetryPolicy retry;
  /// Per-stage circuit-breaker tuning (see service/breaker.h).
  BreakerOptions breaker;
  /// Optional job-lifecycle observer, typically the crash journal (not
  /// owned; must outlive the service).
  JobObserver* observer = nullptr;
  /// Durable snapshot store (not owned; null = checkpointing off) plus
  /// the cadence forwarded to the worker pool.
  CheckpointStore* checkpoints = nullptr;
  uint64_t checkpoint_every_polls = 256;
  double checkpoint_every_ms = 0.0;
  bool keep_checkpoints = false;
  /// Stuck-worker watchdog: a job whose progress counters flat-line for
  /// `watchdog_stall_ms` is preempted with the typed watchdog_preempted
  /// error. 0 disables the watchdog entirely.
  double watchdog_stall_ms = 0.0;
  double watchdog_scan_interval_ms = 10.0;
  /// Adaptive overload control (see service/overload/overload.h):
  /// CoDel queue-delay admission, deadline reconciliation at dispatch,
  /// a pool-wide retry budget and the brownout ladder. Off by default;
  /// when enabled, `overload` tunes the plane (its `governor_enabled`
  /// maps onto kanond's --brownout=off|auto).
  bool overload_enabled = false;
  OverloadOptions overload;
};

/// Counter snapshot across queue, pool and cache.
struct ServiceStats {
  unsigned workers = 0;
  size_t queue_depth = 0;
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t completed = 0;
  uint64_t cache_served = 0;
  uint64_t cancelled = 0;
  uint64_t retries_attempted = 0;
  uint64_t retries_exhausted = 0;
  /// Jobs recovered from a crash journal at startup.
  uint64_t journal_replays = 0;
  /// Replayed jobs continued from a durable checkpoint / degraded to
  /// the typed interrupted path because their snapshot was missing,
  /// stale or corrupt.
  uint64_t resumed = 0;
  uint64_t resume_degraded = 0;
  /// Checkpoint sink activity and watchdog preemptions (pool counters).
  uint64_t checkpoints_written = 0;
  uint64_t checkpoint_failures = 0;
  uint64_t watchdog_preempted = 0;
  /// "stage:state,..." rendering of the breaker board ("-" when no
  /// stage has run yet).
  std::string breakers;
  CacheStats cache;
  /// Coreset subsystem counters (process-wide CoresetMetrics snapshot):
  /// sampling runs, rows drawn, full-table rows assigned, undersized-
  /// group repair merges, repairs that collapsed to one group, and
  /// wrapper warm-starts from a checkpoint.
  uint64_t coreset_samples = 0;
  uint64_t coreset_rows_sampled = 0;
  uint64_t coreset_assigned_rows = 0;
  uint64_t coreset_repairs = 0;
  uint64_t coreset_repair_suppressed = 0;
  uint64_t coreset_resumed = 0;
  /// Sharded-pipeline counters (process-wide ShardMetrics snapshot):
  /// plans cut, shards produced across them, per-shard solves, typed
  /// per-shard declines, merges, boundary-group repair merges, and
  /// wrapper warm-starts from a checkpoint. Always present in `stats`
  /// output — zero when no sharded_* job has run.
  uint64_t shard_plans = 0;
  uint64_t shards_planned = 0;
  uint64_t shard_solves = 0;
  uint64_t shard_declines = 0;
  uint64_t shard_merges = 0;
  uint64_t shard_repairs = 0;
  uint64_t shard_resumed = 0;
  /// Overload-control plane counters. Always present in `stats` output —
  /// zero with "off" level when the plane is disabled.
  uint64_t overload_shed = 0;
  uint64_t overload_infeasible = 0;
  uint64_t overload_brownouts = 0;
  uint64_t overload_transitions = 0;
  uint64_t overload_retry_denied = 0;
  uint64_t overload_retry_degraded = 0;
  /// "off" when the plane is disabled, else the governor's level
  /// ("green"/"yellow"/"red").
  std::string overload_level = "off";
};

/// Long-running multi-request engine. Thread-safe: any number of
/// threads may Submit/Handle concurrently.
class AnonymizationService {
 public:
  explicit AnonymizationService(ServiceOptions options = {});
  ~AnonymizationService();

  AnonymizationService(const AnonymizationService&) = delete;
  AnonymizationService& operator=(const AnonymizationService&) = delete;

  /// Validates and admits `request`. On success returns the job id and
  /// the future carrying its response; on failure (validation or
  /// admission control) returns the typed status and sets *error.
  StatusOr<JobQueue::Ticket> Submit(AnonymizeRequest request,
                                    ServiceError* error);

  /// Callback-style admission for event-loop callers (the TCP front
  /// end): like Submit, but instead of a future the worker invokes
  /// `on_done` with the final response on its own thread (see
  /// Job::on_done for the contract). Returns the job id.
  StatusOr<uint64_t> SubmitAsync(
      AnonymizeRequest request, ServiceError* error,
      std::function<void(const AnonymizeResponse&)> on_done);

  /// Synchronous convenience: Submit + wait. Rejections come back as a
  /// response with the non-OK status filled in, so callers always get
  /// one AnonymizeResponse per request.
  AnonymizeResponse Handle(AnonymizeRequest request);

  /// Requests cooperative cancellation of an in-flight job.
  bool Cancel(uint64_t id) { return queue_.Cancel(id); }

  /// The overload-control plane (null when overload_enabled was false).
  const OverloadControl* overload() const { return overload_.get(); }

  ServiceStats Stats() const;

  /// Records `jobs` recovered from a crash journal (stats reporting).
  void NoteJournalReplay(uint64_t jobs);

  /// Records checkpoint-resume outcomes of a replay (stats reporting).
  void NoteResumes(uint64_t resumed, uint64_t degraded);

  /// Stops admission, drains in-flight jobs and joins the workers.
  /// Called by the destructor; safe to call early and repeatedly.
  void Shutdown();

 private:
  ResultCache cache_;
  /// Declared before queue_/pool_: both consult it (admission shed,
  /// dequeue signals) and destruction runs in reverse order.
  std::unique_ptr<OverloadControl> overload_;
  JobQueue queue_;
  /// Declared before pool_: workers Watch/Unwatch through it, so it
  /// must outlive them (destruction runs in reverse order and ~WorkerPool
  /// joins the workers first).
  std::unique_ptr<Watchdog> watchdog_;
  WorkerPool pool_;
  std::atomic<uint64_t> journal_replays_{0};
  std::atomic<uint64_t> resumed_{0};
  std::atomic<uint64_t> resume_degraded_{0};
};

/// Summary of a crash-journal replay performed at daemon startup.
struct JournalReplayReport {
  /// Pending jobs resubmitted and answered (they had not started).
  uint64_t resubmitted = 0;
  /// Started jobs continued from their durable checkpoint.
  uint64_t resumed = 0;
  /// Started jobs with a journaled checkpoint whose snapshot turned out
  /// missing, stale or corrupt; degraded to the interrupted path (also
  /// counted in `interrupted`).
  uint64_t resume_degraded = 0;
  /// Jobs that were running (or cancelled) at the crash; answered with
  /// the typed `interrupted` / `cancelled` error instead of re-running.
  uint64_t interrupted = 0;
  /// Jobs the journal proves finished before the crash.
  uint64_t completed = 0;
  /// Torn trailing records dropped by the parser (0 or 1).
  uint64_t torn_records = 0;
  /// One protocol-style line per recovered job (`ok verb=replay ...` /
  /// `error verb=replay ...`), for the daemon to print on its transport.
  std::vector<std::string> lines;
};

/// Checkpoint wiring for a replay. When `checkpoints` is set, started
/// jobs with a journaled checkpoint are *continued*: the snapshot is
/// loaded and verified against the job's identity (table fingerprint +
/// k), installed on the resubmitted request, and the job re-runs from
/// where it left off. All needed snapshots are read into memory up
/// front and the store is then cleared — the new incarnation's job ids
/// restart at 1 and must not collide with the dead incarnation's files.
struct ReplayOptions {
  CheckpointStore* checkpoints = nullptr;
};

/// Applies an already-parsed replay: not-yet-started jobs are
/// resubmitted (synchronously) and answered; started-but-unfinished
/// ones continue from their checkpoint when one is recorded, usable and
/// stamp-matched (see ReplayOptions), and are reported `interrupted`
/// otherwise. When the service's observer is a fresh journal,
/// resubmissions are re-journaled under new ids — which is why the
/// daemon reads the old file, Reset()s it, and only then applies (old
/// ids must not collide with the new incarnation's).
JournalReplayReport ApplyReplayToService(JournalReplay replay,
                                         AnonymizationService& service,
                                         const ReplayOptions& options = {});

/// Convenience for tests and embedders whose service has no journal
/// observer on `path`: ReplayFile + ApplyReplayToService. Fails with
/// kParseError when the journal is corrupt beyond a torn tail. Does not
/// modify the file.
StatusOr<JournalReplayReport> ReplayJournalIntoService(
    const std::string& path, AnonymizationService& service);

/// Serves the line protocol from `in` to `out` until EOF or a
/// `shutdown` line; returns the number of request lines served. Blank
/// lines and `#` comment lines are skipped. Every response is flushed
/// immediately, so the loop works interactively and piped alike.
size_t ServeLines(AnonymizationService& service, std::istream& in,
                  std::ostream& out);

/// Protocol building blocks, exposed for tests and custom transports.
/// ParseRequestLine parses the key=value tail of an `anonymize` line
/// (inline `csv=` rows ';'-separated); HandleLine dispatches one full
/// protocol line ("anonymize ...", "stats", "shutdown") and returns the
/// response line (no trailing newline). *shutdown is set when the line
/// asked the serving loop to stop.
StatusOr<AnonymizeRequest> ParseRequestLine(const std::string& tail,
                                            ServiceError* error);
std::string HandleLine(AnonymizationService& service,
                       const std::string& line, bool* shutdown);

/// The `ok verb=stats ...` key=value line for a stats snapshot. Shared
/// by the line protocol and the binary protocol (which ships the same
/// text as its stats payload), so counter names have one source of
/// truth.
std::string FormatStatsLine(const ServiceStats& stats);

/// Upper bound on one protocol line, transport framing included. A line
/// longer than this is *discarded unparsed* and answered with the typed
/// `line_too_long` error — the serving loop never buffers unbounded
/// input and never acts on a silently-truncated request.
inline constexpr size_t kMaxProtocolLineBytes = size_t{1} << 20;  // 1 MiB

}  // namespace kanon

#endif  // KANON_SERVICE_SERVER_H_
