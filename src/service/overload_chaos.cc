#include "service/overload_chaos.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>

#include "data/csv_table.h"
#include "data/generators/uniform.h"
#include "fault/fault.h"
#include "service/overload/overload.h"
#include "service/queue.h"
#include "service/worker_pool.h"
#include "util/fingerprint.h"
#include "util/parallel.h"
#include "util/random.h"
#include "util/string_util.h"

namespace kanon {

namespace {

/// Invariant 11's validity predicate (same as service/chaos.h's
/// invariant 1): every distinct output row appears at least k times.
bool OutputIsKAnonymous(const std::string& csv, size_t k,
                        std::string* why) {
  std::istringstream in(csv);
  std::string line;
  if (!std::getline(in, line)) {
    *why = "empty output CSV";
    return false;
  }
  std::unordered_map<std::string, size_t> counts;
  while (std::getline(in, line)) {
    if (!Trim(line).empty()) ++counts[line];
  }
  for (const auto& [row, count] : counts) {
    if (count < k) {
      *why = "output row '" + row + "' appears " + std::to_string(count) +
             " < k=" + std::to_string(k) + " times";
      return false;
    }
  }
  return true;
}

uint64_t FoldDouble(uint64_t fp, double value) {
  return FingerprintInt(
      fp, static_cast<uint64_t>(std::llround(value * 1e6)));
}

uint64_t FoldDecision(uint64_t fp, const RewriteDecision& decision) {
  fp = FingerprintInt(fp, static_cast<uint64_t>(decision.level));
  fp = FingerprintInt(fp, decision.rewritten ? 1 : 0);
  fp = FingerprintPiece(fp, decision.effective);
  fp = FoldDouble(fp, decision.coreset_rate);
  return fp;
}

// ---------------------------------------------------------------------
// Leg A — invariant 12: brownout decisions replay bit-identically.
// ---------------------------------------------------------------------

void RunGovernorReplayLeg(const OverloadChaosOptions& options,
                          OverloadChaosReport* report, uint64_t* fp) {
  Rng rng(options.seed, /*stream=*/0x6f76676f76ull);  // "ovgov"
  GovernorOptions gov;
  // Half the schedules sample the per-job apply hash (the only place
  // the seed enters a decision); the rest rewrite every eligible job.
  gov.apply_fraction = rng.Bernoulli(0.5) ? 0.5 : 1.0;
  gov.seed = options.seed ^ 0x6272776eull;
  HealthGovernor first(gov);
  HealthGovernor second(gov);

  static const char* const kAlgos[] = {
      "mdav",         "exact_dp",     "branch_bound", "cluster_greedy",
      "ball_cover",   "sharded_mdav", "coreset_mdav", "mdav+annealing",
      "resilient",    "suppress_all",
  };
  constexpr size_t kNumAlgos = sizeof(kAlgos) / sizeof(kAlgos[0]);

  // Delay random walk with occasional bursts, so the ladder climbs,
  // escalates under sustained red, and descends again.
  double delay_ms = 5.0;
  for (size_t i = 0; i < options.governor_signals; ++i) {
    if (rng.Bernoulli(0.08)) {
      delay_ms = rng.UniformDouble() * 400.0;
    } else {
      delay_ms =
          std::max(0.0, delay_ms + (rng.UniformDouble() - 0.5) * 60.0);
    }
    GovernorSignals signals;
    signals.queue_delay_ms = delay_ms;
    signals.open_breakers = rng.Bernoulli(0.1) ? rng.UniformInt(1, 3) : 0;
    signals.memory_latched = rng.Bernoulli(0.03);

    const BrownoutLevel level_a = first.Update(signals);
    const BrownoutLevel level_b = second.Update(signals);
    const uint64_t job_id = rng.Next();
    const std::string algorithm = kAlgos[rng.Uniform(kNumAlgos)];
    const double rate = rng.Bernoulli(0.2) ? 0.3 : 0.0;
    const RewriteDecision a = first.Decide(job_id, algorithm, rate);
    const RewriteDecision b = second.Decide(job_id, algorithm, rate);
    ++report->decisions_checked;
    if (level_a != level_b || a.level != b.level ||
        a.rewritten != b.rewritten || a.effective != b.effective ||
        a.coreset_rate != b.coreset_rate) {
      report->violations.push_back(
          "invariant 12: governor replay diverged at observation " +
          std::to_string(i) + " (" +
          std::string(BrownoutLevelName(level_a)) + " vs " +
          BrownoutLevelName(level_b) + ", effective '" + a.effective +
          "' vs '" + b.effective + "')");
    }
    *fp = FingerprintInt(*fp, static_cast<uint64_t>(level_a));
    *fp = FoldDecision(*fp, a);
  }
  const HealthGovernor::Snapshot snap_a = first.snapshot();
  const HealthGovernor::Snapshot snap_b = second.snapshot();
  if (snap_a.transitions != snap_b.transitions ||
      snap_a.red_epochs != snap_b.red_epochs ||
      snap_a.level != snap_b.level) {
    report->violations.push_back(
        "invariant 12: governor replay end-states diverged (" +
        std::to_string(snap_a.transitions) + "/" +
        std::to_string(snap_a.red_epochs) + " vs " +
        std::to_string(snap_b.transitions) + "/" +
        std::to_string(snap_b.red_epochs) + ")");
  }
  report->governor_transitions = snap_a.transitions;
  *fp = FingerprintInt(*fp, snap_a.transitions);
  *fp = FingerprintInt(*fp, snap_a.red_epochs);
}

// ---------------------------------------------------------------------
// Leg B — invariant 13: goodput monotonically no worse governor-on.
// ---------------------------------------------------------------------

/// One virtual-time arrival. Service costs are a deterministic function
/// of the backend *tier* alone — unit job size, so the estimator's
/// optimistic bound (the lower bucket edge) is provably below every
/// actual cost and deadline reconciliation can only reject doomed work.
struct SimArrival {
  double arrive_ms = 0.0;
  double deadline_ms = 0.0;
  std::string algorithm;
};

double SimCostOf(const std::string& algorithm) {
  if (algorithm.rfind("coreset_", 0) == 0) return 2.0;
  if (algorithm.rfind("sharded_", 0) == 0) return 5.0;
  if (algorithm == "suppress_all") return 0.5;
  return 10.0;
}

struct SimOutcome {
  size_t goodput = 0;
  size_t brownouts = 0;
  size_t infeasible = 0;
};

/// Single FIFO server over the arrival sequence. With `governor_on`,
/// each dispatch feeds the governor the job's virtual sojourn, applies
/// the brownout rewrite, and rejects jobs whose remaining deadline
/// budget cannot fit the estimator's optimistic bound for the
/// effective backend. Every rewrite only cheapens the job and every
/// rejection frees the server earlier, so goodput can only improve —
/// which is exactly what invariant 13 asserts.
SimOutcome RunGoodputSim(const std::vector<SimArrival>& arrivals,
                         bool governor_on, uint64_t* fp) {
  GovernorOptions gov;
  gov.yellow_delay_ms = 40.0;
  gov.red_delay_ms = 160.0;
  HealthGovernor governor(gov);
  SolveTimeEstimator estimator;
  SimOutcome outcome;
  double busy_until_ms = 0.0;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const SimArrival& job = arrivals[i];
    const double start_ms = std::max(busy_until_ms, job.arrive_ms);
    const double deadline_abs = job.arrive_ms + job.deadline_ms;
    std::string effective = job.algorithm;
    if (governor_on) {
      GovernorSignals signals;
      signals.queue_delay_ms = start_ms - job.arrive_ms;
      governor.Update(signals);
      const RewriteDecision decision =
          governor.Decide(/*job_id=*/i, job.algorithm,
                          /*requested_coreset_rate=*/0.0);
      if (decision.rewritten) {
        effective = decision.effective;
        ++outcome.brownouts;
      }
      const double remaining_ms = deadline_abs - start_ms;
      const double optimistic = estimator.OptimisticMillis(effective);
      if (remaining_ms < 0.0 ||
          (optimistic > 0.0 && remaining_ms < optimistic)) {
        ++outcome.infeasible;
        if (fp != nullptr) *fp = FingerprintInt(*fp, 2);
        continue;  // rejected typed; the server stays free
      }
    }
    const double cost_ms = SimCostOf(effective);
    busy_until_ms = start_ms + cost_ms;
    if (governor_on) estimator.Record(effective, cost_ms);
    const bool good = busy_until_ms <= deadline_abs;
    if (good) ++outcome.goodput;
    if (fp != nullptr) {
      *fp = FingerprintInt(*fp, good ? 1 : 0);
      *fp = FingerprintPiece(*fp, effective);
    }
  }
  return outcome;
}

void RunGoodputLeg(const OverloadChaosOptions& options,
                   OverloadChaosReport* report, uint64_t* fp) {
  Rng rng(options.seed, /*stream=*/0x676f6f64ull);  // "good"
  static const char* const kAlgos[] = {
      "mdav", "mdav", "exact_dp", "cluster_greedy",
      "sharded_mdav", "coreset_mdav", "suppress_all",
  };
  constexpr size_t kNumAlgos = sizeof(kAlgos) / sizeof(kAlgos[0]);
  std::vector<SimArrival> arrivals;
  arrivals.reserve(options.sim_arrivals);
  double clock_ms = 0.0;
  for (size_t i = 0; i < options.sim_arrivals; ++i) {
    // Poisson arrivals at ~1.4x the direct-tier service rate: the
    // plain FIFO leg builds a standing queue, the governed leg browns
    // out and keeps meeting deadlines.
    const double u = std::min(rng.UniformDouble(), 0.999999);
    clock_ms += -5.0 * std::log(1.0 - u);
    SimArrival job;
    job.arrive_ms = clock_ms;
    job.deadline_ms = 30.0 + rng.UniformDouble() * 120.0;
    job.algorithm = kAlgos[rng.Uniform(kNumAlgos)];
    arrivals.push_back(std::move(job));
  }
  report->sim_arrivals = arrivals.size();
  const SimOutcome off = RunGoodputSim(arrivals, /*governor_on=*/false,
                                       /*fp=*/nullptr);
  const SimOutcome on = RunGoodputSim(arrivals, /*governor_on=*/true, fp);
  report->goodput_off = off.goodput;
  report->goodput_on = on.goodput;
  report->sim_brownouts = on.brownouts;
  report->sim_infeasible = on.infeasible;
  if (on.goodput < off.goodput) {
    report->violations.push_back(
        "invariant 13: goodput regressed governor-on (" +
        std::to_string(on.goodput) + " < " + std::to_string(off.goodput) +
        " of " + std::to_string(arrivals.size()) + " arrivals)");
  }
  *fp = FingerprintInt(*fp, off.goodput);
  *fp = FingerprintInt(*fp, on.goodput);
  *fp = FingerprintInt(*fp, on.brownouts);
  *fp = FingerprintInt(*fp, on.infeasible);
}

// ---------------------------------------------------------------------
// Leg C — invariant 11: valid-or-typed under forced overload.
// ---------------------------------------------------------------------

/// True when a forced yellow-level brownout rewrites `algorithm` (the
/// ladder's direct entry points; composed names and wrappers are left
/// alone at yellow).
bool YellowRewritable(const std::string& algorithm) {
  if (algorithm.find('+') != std::string::npos) return false;
  return algorithm == "mdav" || algorithm == "cluster_greedy" ||
         algorithm == "ball_cover" || algorithm == "exact_dp" ||
         algorithm == "branch_bound";
}

AnonymizeRequest DrawOverloadRequest(Rng* rng) {
  static const char* const kAlgos[] = {
      "mdav", "mdav", "exact_dp", "branch_bound", "cluster_greedy",
      "mdav+annealing", "resilient", "suppress_all",
      "coreset_mdav", "sharded_mdav",
  };
  AnonymizeRequest request;
  request.algorithm =
      kAlgos[rng->Uniform(sizeof(kAlgos) / sizeof(kAlgos[0]))];
  const bool coreset = request.algorithm.rfind("coreset_", 0) == 0;
  const bool sharded = request.algorithm.rfind("sharded_", 0) == 0;
  UniformTableOptions table;
  // Coreset jobs need enough rows that the sampler's min_sample floor
  // does not short-circuit; sharded jobs need shards * (2k-1) rows so
  // planning cuts; everything else stays tiny so exact solvers finish.
  table.num_rows =
      coreset   ? static_cast<uint32_t>(rng->UniformInt(72, 120))
      : sharded ? static_cast<uint32_t>(rng->UniformInt(40, 80))
                : static_cast<uint32_t>(rng->UniformInt(6, 14));
  table.num_columns = static_cast<uint32_t>(rng->UniformInt(2, 4));
  table.alphabet = static_cast<uint32_t>(rng->UniformInt(2, 4));
  request.csv_text = TableToCsv(UniformTable(table, rng));
  if (coreset) {
    request.coreset_rate = 0.25;
    request.coreset_seed = static_cast<uint64_t>(rng->Next()) + 1;
  }
  if (sharded) {
    request.shards = static_cast<size_t>(rng->UniformInt(2, 4));
  }
  request.k = static_cast<size_t>(rng->UniformInt(2, 4));
  // Node budgets (not wall deadlines) keep degradation deterministic.
  if (rng->Bernoulli(0.3)) {
    request.node_budget =
        static_cast<uint64_t>(rng->UniformInt(50, 5000));
  }
  request.emit_csv = true;
  return request;
}

uint64_t FoldOutcome(uint64_t fp, const AnonymizeResponse& response) {
  fp = FingerprintInt(fp, response.id);
  fp = FingerprintInt(fp, response.ok() ? 1 : 0);
  fp = FingerprintPiece(fp, ServiceErrorName(response.error));
  fp = FingerprintInt(fp, response.cost);
  fp = FingerprintPiece(fp, response.stage);
  fp = FingerprintPiece(fp, response.chain);
  fp = FingerprintPiece(fp, StopReasonName(response.termination));
  fp = FingerprintInt(fp, response.cache_hit ? 1 : 0);
  fp = FingerprintInt(fp, static_cast<uint64_t>(response.brownout));
  fp = FingerprintPiece(fp, response.effective_algorithm);
  return fp;
}

void RunServiceLeg(const OverloadChaosOptions& options,
                   OverloadChaosReport* report, uint64_t* fp) {
  Rng rng(options.seed, /*stream=*/0x6f766c64ull);  // "ovld"

  // The schedule's overload fault plan: forced sheds at admission,
  // forced brownouts at dispatch, dispatch faults draining the retry
  // budget. `brownout_every_job` makes the rewrite count exactly
  // reconcilable against the workload's rewritable algorithms.
  FaultPlan plan;
  plan.seed = options.seed;
  const int shed_mode = rng.UniformInt(0, 2);
  if (shed_mode == 1) {
    FaultSiteSpec spec;
    spec.site = "overload.shed";
    spec.first_n = static_cast<uint64_t>(rng.UniformInt(1, 3));
    plan.sites.push_back(std::move(spec));
  } else if (shed_mode == 2) {
    FaultSiteSpec spec;
    spec.site = "overload.shed";
    spec.probability = 0.2 + 0.4 * rng.UniformDouble();
    plan.sites.push_back(std::move(spec));
  }
  const int brownout_mode = rng.UniformInt(0, 2);
  const bool brownout_every_job = brownout_mode == 1;
  if (brownout_mode == 1) {
    FaultSiteSpec spec;
    spec.site = "overload.brownout";
    spec.probability = 1.0;
    plan.sites.push_back(std::move(spec));
  } else if (brownout_mode == 2) {
    FaultSiteSpec spec;
    spec.site = "overload.brownout";
    spec.first_n = static_cast<uint64_t>(rng.UniformInt(2, 6));
    plan.sites.push_back(std::move(spec));
  }
  const double initial_retry_tokens = rng.UniformInt(0, 2);
  if (rng.Bernoulli(0.5)) {
    FaultSiteSpec spec;
    spec.site = "worker.dispatch";
    spec.first_n = static_cast<uint64_t>(rng.UniformInt(1, 4));
    plan.sites.push_back(std::move(spec));
  }

  // Pin every source of nondeterminism: one pool worker, one solver
  // thread, all submissions issued before the worker exists, and
  // *organic* overload thresholds pushed out of reach — the plane's
  // behavior in this leg is driven purely by the seeded fault plan,
  // never by wall-clock queue delay.
  const unsigned prev_parallelism = GetParallelism();
  SetParallelism(1);
  std::optional<ScopedFaultInjection> injection;
  injection.emplace(plan);

  OverloadOptions overload_options;
  overload_options.codel.target_ms = 1e12;
  overload_options.governor.yellow_delay_ms = 1e12;
  overload_options.governor.red_delay_ms = 1e12;
  overload_options.governor.open_breakers_yellow = 0;
  // Budget-tripped jobs would latch organic red pressure (and climb
  // the ladder without a fault fire); keep the latch off so the
  // rewrite count reconciles exactly against the forced schedule.
  overload_options.memory_latch_updates = 0;
  overload_options.retry_budget.ratio = 0.0;
  overload_options.retry_budget.initial = initial_retry_tokens;
  OverloadControl overload(overload_options);

  QueueOptions queue_options;
  queue_options.capacity = std::max<size_t>(4, options.jobs);
  // This leg isolates the overload plane: the occupancy ramp (a
  // depth-based backstop, exercised by service/chaos.h) stays out of
  // the way so every shed here is a CoDel/fault-forced one.
  queue_options.shed_start_fraction = 1.0;
  queue_options.overload = &overload;
  JobQueue queue(queue_options);
  ResultCache cache(16);

  std::vector<JobQueue::Ticket> tickets;
  std::vector<size_t> expected_k;
  size_t expected_brownouts = 0;
  for (size_t i = 0; i < options.jobs; ++i) {
    AnonymizeRequest request = DrawOverloadRequest(&rng);
    const size_t k = request.k;
    const std::string algorithm = request.algorithm;
    ServiceError error = ServiceError::kNone;
    const Status prepared = ValidateAndPrepare(request, &error);
    if (!prepared.ok()) {
      report->violations.push_back(
          "generated request failed validation: " + prepared.message());
      continue;
    }
    StatusOr<JobQueue::Ticket> ticket =
        queue.Submit(std::move(request), &error);
    ++report->submitted;
    if (!ticket.ok()) {
      ++report->rejected;
      if (error == ServiceError::kNone) {
        report->violations.push_back(
            "invariant 11: admission rejection without a taxonomy "
            "bucket: " +
            ticket.status().message());
      }
      if (error == ServiceError::kShedOverload) ++report->shed_typed;
      *fp = FingerprintPiece(*fp, "rejected");
      *fp = FingerprintPiece(*fp, ServiceErrorName(error));
      continue;
    }
    if (brownout_every_job && YellowRewritable(algorithm)) {
      ++expected_brownouts;
    }
    *fp = FingerprintInt(*fp, ticket->id);
    tickets.push_back(*std::move(ticket));
    expected_k.push_back(k);
  }

  WorkerPoolOptions pool_options;
  pool_options.workers = 1;
  pool_options.retry =
      RetryPolicy{.max_attempts = 3, .base_ms = 0.01, .cap_ms = 0.1};
  pool_options.breaker =
      BreakerOptions{.failure_threshold = 3, .open_ms = 1e12};
  pool_options.overload = &overload;
  {
    WorkerPool pool(&queue, &cache, pool_options);
    queue.Close();
    for (size_t i = 0; i < tickets.size(); ++i) {
      AnonymizeResponse response = tickets[i].result.get();
      const size_t k = expected_k[i];
      if (response.ok()) {
        ++report->answered_ok;
        std::string why;
        if (response.error != ServiceError::kNone) {
          report->violations.push_back(
              "invariant 11: job " + std::to_string(response.id) +
              ": ok response carries error bucket " +
              ServiceErrorName(response.error));
        }
        if (!OutputIsKAnonymous(response.anonymized_csv, k, &why)) {
          report->violations.push_back(
              "invariant 11: job " + std::to_string(response.id) +
              ": " + why);
        }
        if (response.brownout > 0) {
          ++report->brownout_responses;
          if (response.effective_algorithm.empty()) {
            report->violations.push_back(
                "invariant 11: job " + std::to_string(response.id) +
                ": brownout stamp without an effective backend");
          }
        }
      } else {
        ++report->answered_error;
        if (response.error == ServiceError::kNone) {
          report->violations.push_back(
              "invariant 11: job " + std::to_string(response.id) +
              ": failed without a taxonomy bucket: " +
              response.status.message());
        }
      }
      if (options.verbose) {
        std::cerr << "overload_chaos seed=" << options.seed
                  << " job=" << response.id << " ok=" << response.ok()
                  << " error=" << ServiceErrorName(response.error)
                  << " brownout=" << response.brownout
                  << " effective=" << response.effective_algorithm
                  << "\n";
      }
      *fp = FoldOutcome(*fp, response);
    }
    pool.Join();
    const WorkerPool::Counters workers = pool.counters();
    report->pool_brownouts = workers.brownouts;
    report->retry_degraded = workers.retry_budget_degraded;
    *fp = FingerprintInt(*fp, workers.brownouts);
    *fp = FingerprintInt(*fp, workers.retries_attempted);
    *fp = FingerprintInt(*fp, workers.retries_exhausted);
    *fp = FingerprintInt(*fp, workers.retry_budget_degraded);
  }

  // The fault ledger is part of the fingerprint, and the forced-shed
  // fires must reconcile exactly with the typed rejections: the organic
  // CoDel path is disabled (target 1e12), so every shed is an injected
  // one and every injected one must have produced a typed rejection.
  for (const FaultSiteSnapshot& site :
       FaultRegistry::Instance().Snapshot()) {
    *fp = FingerprintPiece(*fp, site.name);
    *fp = FingerprintInt(*fp, site.hits);
    *fp = FingerprintInt(*fp, site.fires);
    report->fires += site.fires;
    if (site.name == "overload.shed") {
      report->forced_shed_fires = site.fires;
    }
  }
  if (report->forced_shed_fires != report->shed_typed) {
    report->violations.push_back(
        "invariant 11: shed reconciliation failed: " +
        std::to_string(report->forced_shed_fires) +
        " forced fires vs " + std::to_string(report->shed_typed) +
        " typed shed_overload rejections");
  }
  // With the brownout site firing on every hit, the rewrite count is a
  // pure function of the admitted workload: exactly the rewritable
  // direct algorithms, nothing else.
  if (brownout_every_job &&
      report->pool_brownouts != expected_brownouts) {
    report->violations.push_back(
        "invariant 11: brownout reconciliation failed: " +
        std::to_string(report->pool_brownouts) + " rewrites vs " +
        std::to_string(expected_brownouts) +
        " rewritable admitted jobs");
  }
  if (report->brownout_responses > report->pool_brownouts) {
    report->violations.push_back(
        "invariant 11: more brownout-stamped responses (" +
        std::to_string(report->brownout_responses) +
        ") than pool rewrites (" +
        std::to_string(report->pool_brownouts) + ")");
  }
  const OverloadCounters counters = overload.counters();
  *fp = FingerprintInt(*fp, counters.shed);
  *fp = FingerprintInt(*fp, counters.brownouts);
  *fp = FingerprintInt(*fp, counters.retry_denied);

  injection.reset();
  SetParallelism(prev_parallelism);
}

}  // namespace

OverloadChaosReport RunOverloadChaosSchedule(
    const OverloadChaosOptions& options) {
  OverloadChaosReport report;
  report.seed = options.seed;
  uint64_t fp = kFingerprintSeed;
  RunGovernorReplayLeg(options, &report, &fp);
  RunGoodputLeg(options, &report, &fp);
  if (options.with_service) {
    RunServiceLeg(options, &report, &fp);
  }
  report.outcome_fingerprint = fp;
  return report;
}

}  // namespace kanon
