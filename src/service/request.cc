#include "service/request.h"

#include <utility>

#include "algo/registry.h"
#include "data/csv_table.h"
#include "util/logging.h"

namespace kanon {

const char* ServiceErrorName(ServiceError error) {
  switch (error) {
    case ServiceError::kNone:
      return "none";
    case ServiceError::kMalformedLine:
      return "malformed_line";
    case ServiceError::kUnknownVerb:
      return "unknown_verb";
    case ServiceError::kBadParameter:
      return "bad_parameter";
    case ServiceError::kUnknownAlgorithm:
      return "unknown_algorithm";
    case ServiceError::kTableNotFound:
      return "table_not_found";
    case ServiceError::kTableParseError:
      return "table_parse_error";
    case ServiceError::kQueueFull:
      return "queue_full";
    case ServiceError::kShuttingDown:
      return "shutting_down";
    case ServiceError::kCancelled:
      return "cancelled";
    case ServiceError::kShedLowPriority:
      return "shed_low_priority";
    case ServiceError::kWorkerFailure:
      return "worker_failure";
    case ServiceError::kInterrupted:
      return "interrupted";
    case ServiceError::kWatchdogPreempted:
      return "watchdog_preempted";
    case ServiceError::kLineTooLong:
      return "line_too_long";
    case ServiceError::kBadFrame:
      return "bad_frame";
    case ServiceError::kConnectionLimit:
      return "connection_limit";
    case ServiceError::kShedOverload:
      return "shed_overload";
    case ServiceError::kDeadlineInfeasible:
      return "deadline_infeasible";
  }
  KANON_CHECK(false) << "bad ServiceError " << static_cast<int>(error);
  return "";
}

StatusCode ServiceErrorCode(ServiceError error) {
  switch (error) {
    case ServiceError::kNone:
      return StatusCode::kOk;
    case ServiceError::kMalformedLine:
    case ServiceError::kUnknownVerb:
    case ServiceError::kBadParameter:
      return StatusCode::kInvalidArgument;
    case ServiceError::kUnknownAlgorithm:
    case ServiceError::kTableNotFound:
      return StatusCode::kNotFound;
    case ServiceError::kTableParseError:
      return StatusCode::kParseError;
    case ServiceError::kQueueFull:
    case ServiceError::kShedLowPriority:
      return StatusCode::kResourceExhausted;
    case ServiceError::kShuttingDown:
    case ServiceError::kCancelled:
      return StatusCode::kCancelled;
    case ServiceError::kWorkerFailure:
    case ServiceError::kInterrupted:
    case ServiceError::kWatchdogPreempted:
      return StatusCode::kInternal;
    case ServiceError::kLineTooLong:
    case ServiceError::kBadFrame:
      return StatusCode::kParseError;
    case ServiceError::kConnectionLimit:
    case ServiceError::kShedOverload:
      return StatusCode::kResourceExhausted;
    case ServiceError::kDeadlineInfeasible:
      return StatusCode::kDeadlineExceeded;
  }
  KANON_CHECK(false) << "bad ServiceError " << static_cast<int>(error);
  return StatusCode::kInternal;
}

Status MakeServiceStatus(ServiceError error, std::string message) {
  return Status(ServiceErrorCode(error), std::move(message));
}

std::string InlineToCsv(std::string text) {
  for (char& c : text) {
    if (c == ';') c = '\n';
  }
  return text;
}

std::string CsvToInline(std::string text) {
  while (!text.empty() && text.back() == '\n') text.pop_back();
  for (char& c : text) {
    if (c == '\n') c = ';';
  }
  return text;
}

Status ValidateAndPrepare(AnonymizeRequest& request, ServiceError* error) {
  KANON_CHECK(error != nullptr);
  *error = ServiceError::kNone;

  if (!request.table.has_value()) {
    if (request.csv_text.empty()) {
      *error = ServiceError::kBadParameter;
      return MakeServiceStatus(*error,
                               "request carries neither a table nor CSV");
    }
    StatusOr<Table> parsed = ParseTableCsv(request.csv_text);
    if (!parsed.ok()) {
      *error = ServiceError::kTableParseError;
      return MakeServiceStatus(*error, parsed.status().message());
    }
    request.table.emplace(*std::move(parsed));
    request.csv_text.clear();
  }

  StatusOr<std::unique_ptr<Anonymizer>> algo =
      MakeAnonymizerOr(request.algorithm);
  if (!algo.ok()) {
    *error = ServiceError::kUnknownAlgorithm;
    return MakeServiceStatus(*error, algo.status().message());
  }

  const size_t n = request.table->num_rows();
  if (request.k < 1 || request.k > n) {
    *error = ServiceError::kBadParameter;
    return MakeServiceStatus(
        *error, "k=" + std::to_string(request.k) +
                    " outside [1, rows=" + std::to_string(n) + "]");
  }
  if (request.coreset_rate < 0.0 || request.coreset_rate > 1.0) {
    *error = ServiceError::kBadParameter;
    return MakeServiceStatus(
        *error, "coreset_rate=" + std::to_string(request.coreset_rate) +
                    " outside (0, 1] (0 = default)");
  }
  if (request.shards > kMaxRequestShards) {
    *error = ServiceError::kBadParameter;
    return MakeServiceStatus(
        *error, "shards=" + std::to_string(request.shards) + " above " +
                    std::to_string(kMaxRequestShards) + " (0 = default)");
  }
  if (request.shard_parallelism > kMaxRequestShardParallelism) {
    *error = ServiceError::kBadParameter;
    return MakeServiceStatus(
        *error,
        "shard_parallelism=" + std::to_string(request.shard_parallelism) +
            " above " + std::to_string(kMaxRequestShardParallelism) +
            " (0 = default)");
  }
  return Status::Ok();
}

}  // namespace kanon
