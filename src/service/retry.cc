#include "service/retry.h"

#include <algorithm>

#include "util/fingerprint.h"

namespace kanon {

double NextBackoffMillis(const RetryPolicy& policy, double prev_ms,
                         Rng& rng) {
  const double lo = policy.base_ms;
  const double hi = std::max(lo, prev_ms * 3.0);
  const double drawn = lo + (hi - lo) * rng.UniformDouble();
  return std::min(policy.cap_ms, drawn);
}

uint64_t RetrySeedForJob(uint64_t job_id) {
  return FingerprintInt(kFingerprintSeed, job_id) ^ 0x7265747279ull;
}

}  // namespace kanon
