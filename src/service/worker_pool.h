#ifndef KANON_SERVICE_WORKER_POOL_H_
#define KANON_SERVICE_WORKER_POOL_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "ckpt/checkpoint.h"
#include "service/breaker.h"
#include "service/cache.h"
#include "service/queue.h"
#include "service/retry.h"
#include "service/watchdog.h"

/// \file
/// Worker pool draining the job queue.
///
/// Each of the N workers loops: pop the best job, serve it from the
/// result cache if the instance was already solved, otherwise run the
/// registry-selected algorithm *inside the resilient fallback chain*
/// (algo/fallback.h) under the job's RunContext. The chain is what lets
/// a multi-tenant server make a hard promise despite NP-hard workloads:
/// every admitted job gets a valid k-anonymous answer — degraded to a
/// cheaper stage when its deadline/budget runs out — and the response
/// records the per-stage outcomes (`chain`) and the producing `stage`.

namespace kanon {

class OverloadControl;

struct WorkerPoolOptions {
  /// Worker-thread count; 0 means GetParallelism() (util/parallel.h).
  unsigned workers = 0;
  /// In-place retry budget for transient worker faults.
  RetryPolicy retry;
  /// Tuning for the per-stage circuit breakers (see service/breaker.h).
  BreakerOptions breaker;
  /// Durable snapshot store (not owned; may be null = checkpointing
  /// off). When set, each dispatched job's RunContext is armed with a
  /// sink that stamps snapshots with the job's table fingerprint and k,
  /// persists them here, and journals a `ckpt` record after each
  /// durable write.
  CheckpointStore* checkpoints = nullptr;
  /// Snapshot cadence: every N solver cadence polls / every T ms
  /// (whichever knob is non-zero; see RunContext::ArmCheckpoints).
  uint64_t checkpoint_every_polls = 256;
  double checkpoint_every_ms = 0.0;
  /// Keep a completed job's snapshot instead of removing it (tests and
  /// post-mortem inspection; the daemon removes by default).
  bool keep_checkpoints = false;
  /// Stuck-worker monitor (not owned; may be null = no watchdog).
  /// Dispatched jobs are watched for the duration of execution.
  Watchdog* watchdog = nullptr;
  /// Overload-control plane (not owned; may be null = no overload
  /// control). When set, each dequeue feeds the CoDel controller and
  /// governor, jobs whose deadline cannot fit the backend's optimistic
  /// solve-time estimate are rejected typed (deadline_infeasible)
  /// before any solve work, admissible jobs may be rewritten to a
  /// cheaper backend by the brownout ladder, and in-place retries draw
  /// from the pool-wide retry budget (exhaustion degrades the job to
  /// the terminal stage instead of amplifying load).
  class OverloadControl* overload = nullptr;
};

/// N threads executing jobs from a JobQueue. The pool does not own the
/// queue or cache; both must outlive it. Destruction closes the queue
/// (idempotent) and joins the workers.
class WorkerPool {
 public:
  struct Counters {
    uint64_t completed = 0;
    uint64_t cache_served = 0;
    uint64_t cancelled = 0;
    /// Re-executions after a transient worker fault.
    uint64_t retries_attempted = 0;
    /// Jobs answered with worker_failure after the retry budget ran out.
    uint64_t retries_exhausted = 0;
    /// Snapshots durably written / failed-to-write by checkpoint sinks.
    uint64_t checkpoints_written = 0;
    uint64_t checkpoint_failures = 0;
    /// Jobs answered with watchdog_preempted after a stall preemption.
    uint64_t watchdog_preempted = 0;
    /// Jobs rejected typed at dispatch because their remaining deadline
    /// budget could not fit the backend's optimistic solve estimate.
    uint64_t deadline_infeasible = 0;
    /// Jobs the brownout ladder rewrote to a cheaper backend.
    uint64_t brownouts = 0;
    /// Faulted jobs degraded to the terminal stage because the
    /// pool-wide retry budget was exhausted.
    uint64_t retry_budget_degraded = 0;
  };

  /// Spawns the workers immediately. `cache` may be null (no caching).
  WorkerPool(JobQueue* queue, ResultCache* cache,
             WorkerPoolOptions options = {});
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Closes the queue and blocks until every worker has exited (all
  /// popped jobs fulfilled). Idempotent.
  void Join();

  unsigned num_workers() const {
    return static_cast<unsigned>(threads_.size());
  }

  Counters counters() const;

  /// The shared per-stage circuit breakers (for stats reporting).
  const BreakerBoard& breakers() const { return breakers_; }

  /// The per-job execution core (cache lookup -> chain run -> cache
  /// fill), exposed for direct use in tests and single-threaded tools.
  /// `request` must have been through ValidateAndPrepare; `ctx` carries
  /// the job's deadline/budget/cancellation; `cache` may be null;
  /// `gate` optionally gates non-final chain stages (breakers).
  static AnonymizeResponse Execute(const AnonymizeRequest& request,
                                   RunContext* ctx, ResultCache* cache,
                                   StageGate* gate = nullptr);

 private:
  void WorkerLoop();

  /// Execute under the retry policy: an injected dispatch or delivery
  /// fault voids the attempt, and the worker retries in place after a
  /// decorrelated-jitter backoff; an exhausted budget yields a typed
  /// worker_failure response.
  AnonymizeResponse ExecuteWithRetry(const Job& job);

  JobQueue* const queue_;
  ResultCache* const cache_;
  const RetryPolicy retry_;
  BreakerBoard breakers_;
  CheckpointStore* const checkpoints_;
  const uint64_t checkpoint_every_polls_;
  const double checkpoint_every_ms_;
  const bool keep_checkpoints_;
  Watchdog* const watchdog_;
  OverloadControl* const overload_;
  std::vector<std::thread> threads_;
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> cache_served_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> retries_attempted_{0};
  std::atomic<uint64_t> retries_exhausted_{0};
  std::atomic<uint64_t> checkpoints_written_{0};
  std::atomic<uint64_t> checkpoint_failures_{0};
  std::atomic<uint64_t> watchdog_preempted_{0};
  std::atomic<uint64_t> deadline_infeasible_{0};
  std::atomic<uint64_t> brownouts_{0};
  std::atomic<uint64_t> retry_budget_degraded_{0};
};

}  // namespace kanon

#endif  // KANON_SERVICE_WORKER_POOL_H_
