#ifndef KANON_SERVICE_QUEUE_H_
#define KANON_SERVICE_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "service/request.h"
#include "util/run_context.h"

/// \file
/// Bounded priority job queue with admission control.
///
/// Backpressure is the first line of defense of an NP-hard-workload
/// server: once the queue is at capacity, new work is *rejected at the
/// door* with kResourceExhausted instead of being buffered into an
/// unbounded backlog whose deadlines are already lost. Dispatch order is
/// priority first (higher runs sooner), then oldest-deadline-first
/// (the request with the least slack goes next; no-deadline requests
/// sort last), then FIFO.
///
/// Every admitted job owns a RunContext created at admission: the
/// request's deadline starts ticking *then* (queue wait counts — an
/// expired job degrades to the terminal fallback stage rather than
/// occupying a worker at full cost), and Cancel(id) works uniformly
/// whether the job is still queued or already running on a worker.

namespace kanon {

/// One admitted unit of work, handed from JobQueue::Submit to a worker.
struct Job {
  uint64_t id = 0;
  AnonymizeRequest request;
  /// Execution-control context: deadline/budget armed at admission;
  /// JobQueue::Cancel(id) requests cancellation through it.
  std::shared_ptr<RunContext> ctx;
  RunContext::Clock::time_point enqueue_time{};
  /// Absolute deadline (time_point::max() when the request had none).
  RunContext::Clock::time_point deadline{};
  int priority = 0;
  /// Fulfilled by the worker with the job's AnonymizeResponse.
  std::promise<AnonymizeResponse> promise;
  /// Optional completion callback, invoked by the worker on its own
  /// thread right before the promise is fulfilled. The TCP front end
  /// uses it to push answers back into its event loop without parking a
  /// thread per in-flight job. Must not block and must not call back
  /// into the queue.
  std::function<void(const AnonymizeResponse&)> on_done;
};

/// Lifecycle hooks for admitted jobs. The queue invokes OnAdmit under
/// its lock *before* the job becomes poppable and OnCancel on a
/// successful Cancel(); the worker pool invokes OnStart/OnDone around
/// execution. Implementations (the crash journal) must be fast and must
/// not call back into the queue.
class JobObserver {
 public:
  virtual ~JobObserver() = default;
  virtual void OnAdmit(const Job& job) { (void)job; }
  virtual void OnStart(uint64_t id) { (void)id; }
  virtual void OnDone(uint64_t id, const AnonymizeResponse& response) {
    (void)id;
    (void)response;
  }
  virtual void OnCancel(uint64_t id) { (void)id; }
  /// A snapshot of job `id` became durable; `seq` is the per-job
  /// monotonic snapshot sequence number. Invoked by the worker pool's
  /// checkpoint sink strictly *after* the store write succeeded, so a
  /// journaled checkpoint record always points at bytes that reached
  /// disk.
  virtual void OnCheckpoint(uint64_t id, uint64_t seq) {
    (void)id;
    (void)seq;
  }
};

/// Admission-control knobs. Shedding starts before the hard capacity
/// wall: once occupancy reaches `shed_start_fraction`, low-priority
/// requests are rejected early (kShedLowPriority) so the remaining slots
/// go to work someone deemed urgent. The bar rises with occupancy in
/// `shed_levels` steps: at the start fraction priority >= 1 is required,
/// at a full queue priority >= shed_levels - 1.
struct QueueOptions {
  size_t capacity = 64;
  /// Occupancy (depth / capacity, measured before insert) at which
  /// shedding kicks in; >= 1.0 disables shedding.
  double shed_start_fraction = 0.75;
  /// Number of distinct priority bars between shed start and full.
  int shed_levels = 4;
  /// Optional lifecycle observer (not owned; may be null).
  JobObserver* observer = nullptr;
  /// Optional overload-control plane (not owned; may be null). When
  /// set, Submit consults its CoDel controller *before* the occupancy
  /// bar: sustained above-target queue delay sheds arrivals with the
  /// typed shed_overload error while the queue is still far from full —
  /// delay-based admission replaces depth as the primary signal, and
  /// the occupancy ramp remains only as the hard backstop.
  class OverloadControl* overload = nullptr;
};

/// Thread-safe bounded queue; producers Submit, workers Pop.
class JobQueue {
 public:
  struct Counters {
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    /// Rejections attributable to adaptive load shedding (also counted
    /// in `rejected`).
    uint64_t shed = 0;
  };

  explicit JobQueue(QueueOptions options);

  /// `capacity` >= 1 bounds the number of *queued* (not yet popped) jobs.
  explicit JobQueue(size_t capacity);

  JobQueue(const JobQueue&) = delete;
  JobQueue& operator=(const JobQueue&) = delete;

  /// Admission control. On acceptance assigns an id, arms the job's
  /// RunContext from the request's deadline/budget, stores the job and
  /// returns {id, future-for-the-response}. Rejects with
  /// kResourceExhausted (taxonomy kQueueFull) when full and kCancelled
  /// (kShuttingDown) after Close(); *error is set accordingly.
  struct Ticket {
    uint64_t id = 0;
    std::future<AnonymizeResponse> result;
  };
  /// `on_done`, when non-null, is stored on the job and invoked by the
  /// worker with the final response (see Job::on_done).
  StatusOr<Ticket> Submit(
      AnonymizeRequest request, ServiceError* error,
      std::function<void(const AnonymizeResponse&)> on_done = nullptr);

  /// Blocks for the best queued job (see file comment for the order);
  /// returns nullopt once the queue is closed and drained. The popped
  /// job stays registered for Cancel(id) until Forget(id).
  std::optional<Job> Pop();

  /// Requests cooperative cancellation of a queued or running job.
  /// Returns false when the id is unknown (never admitted, or already
  /// completed and forgotten).
  bool Cancel(uint64_t id);

  /// Drops the id -> RunContext registration of a completed job (called
  /// by the worker after fulfilling the promise).
  void Forget(uint64_t id);

  /// Stops admission and wakes blocked Pop() calls once drained.
  void Close();

  /// Jobs admitted but not yet popped.
  size_t depth() const;

  Counters counters() const;

  /// The lifecycle observer wired at construction (null when none); the
  /// worker pool uses it to report OnStart/OnDone.
  JobObserver* observer() const;

 private:
  const QueueOptions options_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::vector<Job> jobs_;
  /// Cancellation registry: every admitted, unforgotten job.
  std::unordered_map<uint64_t, std::shared_ptr<RunContext>> live_;
  uint64_t next_id_ = 1;
  bool closed_ = false;
  Counters counters_;
};

}  // namespace kanon

#endif  // KANON_SERVICE_QUEUE_H_
