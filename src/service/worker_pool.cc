#include "service/worker_pool.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "algo/fallback.h"
#include "algo/registry.h"
#include "algo/sharded_anonymizer.h"
#include "coreset/coreset_anonymizer.h"
#include "data/csv_table.h"
#include "fault/fault.h"
#include "service/overload/overload.h"
#include "util/fingerprint.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace kanon {

namespace {

constexpr std::string_view kCoresetPrefix = "coreset_";
constexpr std::string_view kShardedPrefix = "sharded_";

bool IsCoresetAlgorithm(const std::string& name) {
  return name.size() > kCoresetPrefix.size() &&
         name.rfind(kCoresetPrefix, 0) == 0;
}

bool IsShardedAlgorithm(const std::string& name) {
  return name.size() > kShardedPrefix.size() &&
         name.rfind(kShardedPrefix, 0) == 0;
}

/// The coreset knobs a request resolves to (0-valued knobs fall back to
/// the subsystem defaults).
CoresetOptions CoresetOptionsFor(const AnonymizeRequest& request) {
  CoresetOptions options;
  if (request.coreset_rate > 0.0) options.sample_rate = request.coreset_rate;
  if (request.coreset_seed != 0) options.seed = request.coreset_seed;
  return options;
}

/// The shard knobs a request resolves to (0-valued knobs fall back to
/// the subsystem defaults, see algo/shard_plan.h).
ShardOptions ShardOptionsFor(const AnonymizeRequest& request) {
  ShardOptions options;
  options.shards = request.shards;
  options.shard_parallelism = request.shard_parallelism;
  return options;
}

/// Builds a `stage` anonymizer carrying the request's coreset/shard
/// knobs (the plain registry would use subsystem defaults). Handles
/// plain, coreset_*, sharded_* and sharded_coreset_* stage names.
std::unique_ptr<Anonymizer> MakeKnobbedStage(
    const std::string& stage, const CoresetOptions& coreset,
    const ShardOptions& shard) {
  if (IsShardedAlgorithm(stage)) {
    const std::string inner_name =
        stage.substr(kShardedPrefix.size());
    if (inner_name == "resilient" || IsShardedAlgorithm(inner_name)) {
      return nullptr;
    }
    if (MakeKnobbedStage(inner_name, coreset, shard) == nullptr) {
      return nullptr;
    }
    return std::make_unique<ShardedAnonymizer>(
        [inner_name, coreset, shard] {
          return MakeKnobbedStage(inner_name, coreset, shard);
        },
        shard);
  }
  if (IsCoresetAlgorithm(stage)) {
    auto inner = MakeAnonymizer(stage.substr(kCoresetPrefix.size()));
    if (inner == nullptr) return nullptr;
    return std::make_unique<CoresetAnonymizer>(std::move(inner), coreset);
  }
  return MakeAnonymizer(stage);
}

/// Wraps the requested algorithm in a degradation chain ending in the
/// unconditionally-feasible suppress_all, so *every* job yields a valid
/// partition. "resilient" keeps its own (already terminal) chain.
/// Coreset stages are built through a stage factory carrying the
/// request's sample-rate/seed knobs (the registry would use defaults).
FallbackOptions ChainFor(const AnonymizeRequest& request, StageGate* gate) {
  const std::string& algorithm = request.algorithm;
  FallbackOptions options;
  options.gate = gate;
  if (IsCoresetAlgorithm(algorithm) || IsShardedAlgorithm(algorithm)) {
    const CoresetOptions coreset = CoresetOptionsFor(request);
    const ShardOptions shard = ShardOptionsFor(request);
    options.make_stage =
        [coreset,
         shard](const std::string& stage) -> std::unique_ptr<Anonymizer> {
      return MakeKnobbedStage(stage, coreset, shard);
    };
  }
  if (algorithm == "resilient") return options;
  std::vector<std::string> stages = {algorithm};
  if (algorithm != "greedy_cover" && algorithm != "suppress_all") {
    stages.push_back("greedy_cover");
  }
  if (algorithm != "suppress_all") stages.push_back("suppress_all");
  options.stages = std::move(stages);
  return options;
}

/// FallbackAnonymizer notes look like "chain=a(ok)->b(...) [inner]";
/// extract the machine-readable chain token.
std::string ExtractChain(const std::string& notes) {
  constexpr std::string_view kPrefix = "chain=";
  const size_t start = notes.find(kPrefix);
  if (start == std::string::npos) return "";
  const size_t begin = start + kPrefix.size();
  const size_t end = notes.find(' ', begin);
  return notes.substr(begin, end == std::string::npos ? end : end - begin);
}

/// Per-dispatch sink: stamps each solver payload with the job's
/// identity, persists it durably, and only then journals the `ckpt`
/// record — so a journaled checkpoint always points at bytes on disk
/// (the reverse tear merely loses the resume).
class JobCheckpointSink : public CheckpointSink {
 public:
  JobCheckpointSink(CheckpointStore* store, JobObserver* observer,
                    uint64_t job_id, uint64_t table_fp, uint64_t k,
                    std::atomic<uint64_t>* written,
                    std::atomic<uint64_t>* failures)
      : store_(store),
        observer_(observer),
        job_id_(job_id),
        table_fp_(table_fp),
        k_(k),
        written_(written),
        failures_(failures) {}

  /// Thread-safe: emissions normally arrive serialized (the sharded
  /// wrapper checkpoint-isolates its shard threads and is the single
  /// writer for the job), but the sink must not turn a future caller's
  /// slip into UB — the sequence counter is atomic and captured locally
  /// so the journaled seq matches the saved snapshot.
  Status Persist(std::string_view solver,
                 const std::string& payload) override {
    SolverSnapshot snapshot;
    snapshot.solver = std::string(solver);
    snapshot.table_fp = table_fp_;
    snapshot.k = k_;
    const uint64_t seq =
        seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    snapshot.seq = seq;
    snapshot.payload = payload;
    const Status status = store_->Save(job_id_, snapshot);
    if (status.ok()) {
      written_->fetch_add(1, std::memory_order_relaxed);
      if (observer_ != nullptr) observer_->OnCheckpoint(job_id_, seq);
    } else {
      failures_->fetch_add(1, std::memory_order_relaxed);
    }
    return status;
  }

 private:
  CheckpointStore* const store_;
  JobObserver* const observer_;
  const uint64_t job_id_;
  const uint64_t table_fp_;
  const uint64_t k_;
  std::atomic<uint64_t>* const written_;
  std::atomic<uint64_t>* const failures_;
  std::atomic<uint64_t> seq_{0};
};

}  // namespace

AnonymizeResponse WorkerPool::Execute(const AnonymizeRequest& request,
                                      RunContext* ctx, ResultCache* cache,
                                      StageGate* gate) {
  KANON_CHECK(request.table.has_value())
      << "Execute requires a prepared request (ValidateAndPrepare)";
  WallTimer timer;
  const Table& table = *request.table;

  if (!request.resume_solver.empty()) {
    // Journal replay recovered a durable snapshot for this job: install
    // it so the named solver (running under this ctx or a chain child)
    // continues from it. Solvers re-validate the payload themselves and
    // start cold on any mismatch.
    ctx->SetResume(request.resume_solver, request.resume_payload);
  }

  AnonymizeResponse response;
  response.algorithm = request.algorithm;
  response.k = request.k;
  response.rows = table.num_rows();

  CacheKey key;
  key.table_fp = TableFingerprint(table);
  key.algorithm = request.algorithm;
  key.k = request.k;
  if (IsShardedAlgorithm(request.algorithm)) {
    // Shard count/parallelism change the answer (a different cut merges
    // differently); when the inner is itself a coreset wrapper the
    // sample knobs change it too, so both fingerprints fold in.
    uint64_t fp = ShardOptionsFor(request).Fingerprint();
    if (IsCoresetAlgorithm(
            request.algorithm.substr(kShardedPrefix.size()))) {
      fp = FingerprintInt(fp, CoresetOptionsFor(request).Fingerprint());
    }
    key.knobs_fp = fp;
  } else if (IsCoresetAlgorithm(request.algorithm)) {
    // Sample rate/seed change the answer; a knob-blind key would let a
    // coreset run with one rate serve a request made with another.
    key.knobs_fp = CoresetOptionsFor(request).Fingerprint();
  }
  if (request.brownout_level > 0) {
    // Brownout stamp: a degraded result must never answer a
    // full-fidelity request — not even one for the same effective
    // backend, so operators can flush browned-out entries by level.
    key.knobs_fp = FingerprintInt(
        FingerprintInt(key.knobs_fp, 0x62726f776eull),  // "brown"
        static_cast<uint64_t>(request.brownout_level));
  }
  response.brownout = request.brownout_level;
  // An injected lookup fault forces a miss: the answer is recomputed,
  // which is always safe (degraded performance, never a wrong result).
  if (cache != nullptr && !KANON_FAULT_POINT("cache.lookup")) {
    if (std::optional<CachedResult> cached = cache->Lookup(key)) {
      response.cache_hit = true;
      response.cost = cached->cost;
      response.stage = cached->stage;
      response.chain = cached->chain;
      response.termination = cached->termination;
      if (request.emit_csv) {
        response.anonymized_csv = std::move(cached->anonymized_csv);
      }
      response.run_ms = timer.Millis();
      return response;
    }
  }

  if (ctx->cancel_requested()) {
    response.error = ServiceError::kCancelled;
    response.status =
        MakeServiceStatus(response.error, "cancelled before execution");
    response.run_ms = timer.Millis();
    return response;
  }

  FallbackAnonymizer chain(ChainFor(request, gate));
  AnonymizationResult result = chain.Run(table, request.k, ctx);
  response.cost = result.cost;
  response.stage = result.stage;
  response.termination = result.termination;
  response.chain = ExtractChain(result.notes);

  // Cache only deterministic outcomes: full completions, and chains
  // degraded purely by *structural* caps (latched as kBudget when the
  // request set no budget and the job's own context never tripped) —
  // those replay identically for every future request on this instance.
  // Deadline, cancellation and request-budget artifacts do not.
  const bool deterministic_outcome =
      result.completed() ||
      (result.termination == StopReason::kBudget &&
       request.node_budget == 0 &&
       ctx->stop_reason() == StopReason::kNone);
  // The CSV payload is also what the cache stores, so materialize it
  // whenever either consumer needs it.
  const bool cacheable = cache != nullptr && deterministic_outcome;
  std::string csv;
  if (request.emit_csv || cacheable) {
    csv = TableToCsv(result.MakeSuppressor(table).Apply(table));
  }
  if (cacheable) {
    CachedResult entry;
    entry.partition = result.partition;
    entry.cost = result.cost;
    entry.stage = result.stage;
    entry.chain = response.chain;
    entry.termination = result.termination;
    entry.anonymized_csv = csv;
    // An injected poison flips the entry to a deadline artifact right at
    // the insert boundary — the cache's own taint guard must catch it.
    if (KANON_FAULT_POINT("cache.poison")) {
      entry.termination = StopReason::kDeadline;
    }
    cache->Insert(key, std::move(entry));
  }
  if (request.emit_csv) response.anonymized_csv = std::move(csv);
  response.run_ms = timer.Millis();
  return response;
}

WorkerPool::WorkerPool(JobQueue* queue, ResultCache* cache,
                       WorkerPoolOptions options)
    : queue_(queue),
      cache_(cache),
      retry_(options.retry),
      breakers_(options.breaker),
      checkpoints_(options.checkpoints),
      checkpoint_every_polls_(options.checkpoint_every_polls),
      checkpoint_every_ms_(options.checkpoint_every_ms),
      keep_checkpoints_(options.keep_checkpoints),
      watchdog_(options.watchdog),
      overload_(options.overload) {
  KANON_CHECK(queue != nullptr);
  const unsigned n =
      options.workers > 0 ? options.workers : GetParallelism();
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() { Join(); }

void WorkerPool::Join() {
  queue_->Close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

WorkerPool::Counters WorkerPool::counters() const {
  Counters counters;
  counters.completed = completed_.load(std::memory_order_relaxed);
  counters.cache_served = cache_served_.load(std::memory_order_relaxed);
  counters.cancelled = cancelled_.load(std::memory_order_relaxed);
  counters.retries_attempted =
      retries_attempted_.load(std::memory_order_relaxed);
  counters.retries_exhausted =
      retries_exhausted_.load(std::memory_order_relaxed);
  counters.checkpoints_written =
      checkpoints_written_.load(std::memory_order_relaxed);
  counters.checkpoint_failures =
      checkpoint_failures_.load(std::memory_order_relaxed);
  counters.watchdog_preempted =
      watchdog_preempted_.load(std::memory_order_relaxed);
  counters.deadline_infeasible =
      deadline_infeasible_.load(std::memory_order_relaxed);
  counters.brownouts = brownouts_.load(std::memory_order_relaxed);
  counters.retry_budget_degraded =
      retry_budget_degraded_.load(std::memory_order_relaxed);
  return counters;
}

AnonymizeResponse WorkerPool::ExecuteWithRetry(const Job& job) {
  // Deterministic per-job backoff schedule: the Rng is seeded from the
  // job id, so a chaos seed replays identical waits.
  Rng rng(RetrySeedForJob(job.id));
  double prev_backoff_ms = 0.0;
  const int attempts = std::max(retry_.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    // An injected dispatch fault is a worker dying *before* it ran the
    // job; an injected delivery fault is one dying *after*, result lost.
    // Both void the attempt and land in the same retry path.
    bool faulted = KANON_FAULT_POINT("worker.dispatch");
    AnonymizeResponse response;
    if (!faulted) {
      // An injected *stall* wedges this worker with zero heartbeat
      // advance until the watchdog preempts it — only armed when a
      // watchdog exists to break the loop and the job is not already
      // cancelled (so the fault fires at most once per job and every
      // fire is answered by exactly one preemption).
      if (watchdog_ != nullptr && !job.ctx->cancel_requested() &&
          KANON_FAULT_POINT("worker.stall")) {
        while (!job.ctx->cancel_requested()) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
      // An injected *slow* fault drags its feet but keeps polling —
      // heartbeats advance, so the watchdog must leave it alone.
      if (KANON_FAULT_POINT("worker.slow")) {
        for (int i = 0; i < 5 && !job.ctx->cancel_requested(); ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
          (void)job.ctx->ShouldStop();
        }
      }
      response = Execute(job.request, job.ctx.get(), cache_, &breakers_);
      faulted = KANON_FAULT_POINT("worker.deliver");
    }
    if (job.ctx->preempt_requested()) {
      // A watchdog preemption is not retried in place: the job burned
      // its stall bound once already, and the typed error tells the
      // caller exactly what happened.
      watchdog_preempted_.fetch_add(1, std::memory_order_relaxed);
      AnonymizeResponse preempted;
      preempted.algorithm = job.request.algorithm;
      preempted.k = job.request.k;
      preempted.error = ServiceError::kWatchdogPreempted;
      preempted.status = MakeServiceStatus(
          preempted.error,
          "watchdog preempted job " + std::to_string(job.id) +
              " after a progress stall");
      return preempted;
    }
    if (!faulted) return response;
    if (attempt >= attempts) {
      retries_exhausted_.fetch_add(1, std::memory_order_relaxed);
      AnonymizeResponse failure;
      failure.algorithm = job.request.algorithm;
      failure.k = job.request.k;
      failure.error = ServiceError::kWorkerFailure;
      failure.status = MakeServiceStatus(
          failure.error, "worker failed " + std::to_string(attempts) +
                             " times; retry budget exhausted");
      return failure;
    }
    if (overload_ != nullptr && !overload_->AllowRetry()) {
      // The pool-wide retry budget is dry: re-running the job would
      // amplify whatever storm drained it. Degrade straight to the
      // terminal stage — still a valid (maximally suppressed) answer,
      // with the budget exhaustion recorded as a typed chain note.
      retry_budget_degraded_.fetch_add(1, std::memory_order_relaxed);
      AnonymizeRequest terminal = job.request;
      terminal.algorithm = "suppress_all";
      terminal.resume_solver.clear();
      terminal.resume_payload.clear();
      // Never cached: this outcome is an artifact of the pool's retry
      // budget at this instant, not a property of the instance.
      AnonymizeResponse degraded =
          Execute(terminal, job.ctx.get(), /*cache=*/nullptr);
      degraded.algorithm = job.request.algorithm;
      degraded.effective_algorithm = "suppress_all";
      degraded.chain = job.request.algorithm +
                       "(declined:retry_budget)->suppress_all(ok)";
      return degraded;
    }
    retries_attempted_.fetch_add(1, std::memory_order_relaxed);
    prev_backoff_ms = NextBackoffMillis(retry_, prev_backoff_ms, rng);
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(prev_backoff_ms));
  }
}

void WorkerPool::WorkerLoop() {
  JobObserver* const observer = queue_->observer();
  while (std::optional<Job> job = queue_->Pop()) {
    const double queue_ms =
        std::chrono::duration<double, std::milli>(
            RunContext::Clock::now() - job->enqueue_time)
            .count();
    if (observer != nullptr) observer->OnStart(job->id);
    const std::string requested_algorithm = job->request.algorithm;
    RewriteDecision brownout;
    bool infeasible = false;
    if (overload_ != nullptr) {
      // Dequeue sojourn is the overload plane's primary signal: it
      // feeds the CoDel controller (admission) and, with the breaker
      // board state, the brownout governor.
      int open_breakers = 0;
      for (const auto& [stage, state] : breakers_.Snapshot()) {
        if (state == StageBreaker::State::kOpen) ++open_breakers;
      }
      overload_->OnDequeue(queue_ms, OverloadControl::SteadyNowMillis(),
                           open_breakers);
      // Deadline reconciliation: the remaining budget is the wire
      // deadline minus the queue delay already burned. A job that
      // cannot fit even the optimistic solve estimate is answered
      // typed *now*, before it occupies this worker at full cost.
      if (job->deadline != RunContext::Clock::time_point::max()) {
        const double remaining_ms =
            std::chrono::duration<double, std::milli>(
                job->deadline - RunContext::Clock::now())
                .count();
        infeasible = overload_->DeadlineInfeasible(requested_algorithm,
                                                   remaining_ms);
      }
      if (!infeasible) {
        brownout = overload_->MaybeRewrite(job->id, requested_algorithm,
                                           job->request.coreset_rate);
        if (brownout.rewritten) {
          brownouts_.fetch_add(1, std::memory_order_relaxed);
          job->request.algorithm = brownout.effective;
          if (brownout.coreset_rate > 0.0) {
            job->request.coreset_rate = brownout.coreset_rate;
          }
          job->request.brownout_level = static_cast<int>(brownout.level);
          // A snapshot of the full-fidelity backend must not warm-start
          // the degraded one.
          job->request.resume_solver.clear();
          job->request.resume_payload.clear();
        }
      }
    }
    AnonymizeResponse response;
    if (infeasible) {
      deadline_infeasible_.fetch_add(1, std::memory_order_relaxed);
      response.algorithm = requested_algorithm;
      response.k = job->request.k;
      response.error = ServiceError::kDeadlineInfeasible;
      response.status = MakeServiceStatus(
          response.error,
          "job " + std::to_string(job->id) +
              " cannot finish inside its deadline (queue delay " +
              std::to_string(queue_ms) + " ms ate the budget)");
    } else {
      std::optional<JobCheckpointSink> sink;
      if (checkpoints_ != nullptr && job->request.table.has_value()) {
        sink.emplace(checkpoints_, observer, job->id,
                     TableFingerprint(*job->request.table),
                     job->request.k, &checkpoints_written_,
                     &checkpoint_failures_);
        job->ctx->ArmCheckpoints(&*sink, checkpoint_every_polls_,
                                 checkpoint_every_ms_);
      }
      if (watchdog_ != nullptr) watchdog_->Watch(job->id, job->ctx);
      response = ExecuteWithRetry(*job);
      if (watchdog_ != nullptr) watchdog_->Unwatch(job->id);
      if (sink.has_value()) {
        job->ctx->DisarmCheckpoints();
        // The job is answered: its snapshot no longer buys anything (a
        // crash from here replays it as done). Reclaim unless a test or
        // operator asked to keep snapshots for inspection.
        if (!keep_checkpoints_) (void)checkpoints_->Remove(job->id);
      }
      if (brownout.rewritten && response.ok()) {
        // Answers report the *requested* algorithm plus the effective
        // backend the ladder substituted (unless the retry-budget path
        // already degraded further).
        response.algorithm = requested_algorithm;
        if (response.effective_algorithm.empty()) {
          response.effective_algorithm = brownout.effective;
        }
        response.brownout = static_cast<int>(brownout.level);
      }
      if (overload_ != nullptr) {
        overload_->RecordOutcome(job->request.algorithm, response.run_ms,
                                 response.ok(), response.termination,
                                 response.cache_hit);
      }
    }
    response.id = job->id;
    response.queue_ms = queue_ms;
    completed_.fetch_add(1, std::memory_order_relaxed);
    if (response.cache_hit) {
      cache_served_.fetch_add(1, std::memory_order_relaxed);
    }
    if (response.error == ServiceError::kCancelled) {
      cancelled_.fetch_add(1, std::memory_order_relaxed);
    }
    // Journal the outcome before the caller can observe it: a crash
    // after set_value but before the append would leave a job the
    // client saw answered marked interrupted at replay — the safe
    // direction is the reverse.
    if (observer != nullptr) observer->OnDone(job->id, response);
    // The completion callback fires after the journal append (the
    // outcome is durable) and before set_value consumes the response.
    if (job->on_done) job->on_done(response);
    queue_->Forget(job->id);
    job->promise.set_value(std::move(response));
  }
}

}  // namespace kanon
