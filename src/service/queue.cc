#include "service/queue.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "fault/fault.h"
#include "service/overload/overload.h"
#include "util/logging.h"

namespace kanon {

namespace {

/// True iff `a` should be dispatched before `b`: higher priority first,
/// then earlier deadline, then lower id (FIFO).
bool DispatchBefore(const Job& a, const Job& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.id < b.id;
}

/// The priority bar at occupancy `fraction` (depth / capacity before
/// insert): linear ramp from 1 at shed_start to shed_levels - 1 at 1.0.
int RequiredPriority(double fraction, const QueueOptions& options) {
  const double start = options.shed_start_fraction;
  if (fraction < start || start >= 1.0) return 0;
  const double ramp = (fraction - start) / (1.0 - start);
  const int levels = std::max(options.shed_levels, 2);
  return 1 + static_cast<int>(std::floor(ramp * (levels - 1)));
}

}  // namespace

JobQueue::JobQueue(QueueOptions options) : options_(options) {
  KANON_CHECK_GE(options.capacity, 1u)
      << "a zero-capacity queue admits nothing";
}

JobQueue::JobQueue(size_t capacity)
    : JobQueue(QueueOptions{.capacity = capacity}) {}

StatusOr<JobQueue::Ticket> JobQueue::Submit(
    AnonymizeRequest request, ServiceError* error,
    std::function<void(const AnonymizeResponse&)> on_done) {
  KANON_CHECK(error != nullptr);
  *error = ServiceError::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    ++counters_.rejected;
    *error = ServiceError::kShuttingDown;
    return MakeServiceStatus(*error, "service is shutting down");
  }
  if (KANON_FAULT_POINT("queue.admit")) {
    ++counters_.rejected;
    *error = ServiceError::kQueueFull;
    return MakeServiceStatus(*error, "injected admission failure");
  }
  if (jobs_.size() >= options_.capacity) {
    ++counters_.rejected;
    *error = ServiceError::kQueueFull;
    return MakeServiceStatus(
        *error,
        "job queue at capacity (" + std::to_string(options_.capacity) +
            " queued); retry with backoff");
  }
  if (options_.overload != nullptr &&
      options_.overload->ShouldShed(OverloadControl::SteadyNowMillis())) {
    ++counters_.rejected;
    ++counters_.shed;
    *error = ServiceError::kShedOverload;
    return MakeServiceStatus(
        *error,
        "overload shed: queue delay above target; retry with backoff");
  }
  const double occupancy = static_cast<double>(jobs_.size()) /
                           static_cast<double>(options_.capacity);
  const int required = RequiredPriority(occupancy, options_);
  // required == 0 means the queue is calm: no bar at all, so even
  // negative-priority work is admitted.
  if (required > 0 && request.priority < required) {
    ++counters_.rejected;
    ++counters_.shed;
    *error = ServiceError::kShedLowPriority;
    return MakeServiceStatus(
        *error, "queue under pressure (occupancy " +
                    std::to_string(jobs_.size()) + "/" +
                    std::to_string(options_.capacity) +
                    "); priority >= " + std::to_string(required) +
                    " required");
  }

  Job job;
  job.id = next_id_++;
  job.priority = request.priority;
  job.enqueue_time = RunContext::Clock::now();
  job.ctx = std::make_shared<RunContext>();
  if (request.deadline_ms > 0.0) {
    job.ctx->set_deadline_after_millis(request.deadline_ms);
    job.deadline =
        job.enqueue_time +
        std::chrono::duration_cast<RunContext::Clock::duration>(
            std::chrono::duration<double, std::milli>(request.deadline_ms));
  } else {
    job.deadline = RunContext::Clock::time_point::max();
  }
  if (request.node_budget > 0) {
    job.ctx->set_node_budget(request.node_budget);
  }
  job.request = std::move(request);
  job.on_done = std::move(on_done);

  Ticket ticket;
  ticket.id = job.id;
  ticket.result = job.promise.get_future();
  live_.emplace(job.id, job.ctx);
  // Journal the admission *before* the job becomes poppable: a crash
  // after this point finds the job in the journal, never a worker
  // running a job the journal has no record of.
  if (options_.observer != nullptr) options_.observer->OnAdmit(job);
  jobs_.push_back(std::move(job));
  ++counters_.accepted;
  ready_.notify_one();
  return ticket;
}

std::optional<Job> JobQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return std::nullopt;  // closed and drained
  auto best = jobs_.begin();
  for (auto it = std::next(best); it != jobs_.end(); ++it) {
    if (DispatchBefore(*it, *best)) best = it;
  }
  Job job = std::move(*best);
  jobs_.erase(best);
  return job;
}

JobObserver* JobQueue::observer() const { return options_.observer; }

bool JobQueue::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  it->second->RequestCancel();
  if (options_.observer != nullptr) options_.observer->OnCancel(id);
  return true;
}

void JobQueue::Forget(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(id);
}

void JobQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  ready_.notify_all();
}

size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

JobQueue::Counters JobQueue::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace kanon
