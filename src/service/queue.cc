#include "service/queue.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace kanon {

namespace {

/// True iff `a` should be dispatched before `b`: higher priority first,
/// then earlier deadline, then lower id (FIFO).
bool DispatchBefore(const Job& a, const Job& b) {
  if (a.priority != b.priority) return a.priority > b.priority;
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  return a.id < b.id;
}

}  // namespace

JobQueue::JobQueue(size_t capacity) : capacity_(capacity) {
  KANON_CHECK_GE(capacity, 1u) << "a zero-capacity queue admits nothing";
}

StatusOr<JobQueue::Ticket> JobQueue::Submit(AnonymizeRequest request,
                                            ServiceError* error) {
  KANON_CHECK(error != nullptr);
  *error = ServiceError::kNone;
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    ++counters_.rejected;
    *error = ServiceError::kShuttingDown;
    return MakeServiceStatus(*error, "service is shutting down");
  }
  if (jobs_.size() >= capacity_) {
    ++counters_.rejected;
    *error = ServiceError::kQueueFull;
    return MakeServiceStatus(
        *error, "job queue at capacity (" + std::to_string(capacity_) +
                    " queued); retry with backoff");
  }

  Job job;
  job.id = next_id_++;
  job.priority = request.priority;
  job.enqueue_time = RunContext::Clock::now();
  job.ctx = std::make_shared<RunContext>();
  if (request.deadline_ms > 0.0) {
    job.ctx->set_deadline_after_millis(request.deadline_ms);
    job.deadline =
        job.enqueue_time +
        std::chrono::duration_cast<RunContext::Clock::duration>(
            std::chrono::duration<double, std::milli>(request.deadline_ms));
  } else {
    job.deadline = RunContext::Clock::time_point::max();
  }
  if (request.node_budget > 0) {
    job.ctx->set_node_budget(request.node_budget);
  }
  job.request = std::move(request);

  Ticket ticket;
  ticket.id = job.id;
  ticket.result = job.promise.get_future();
  live_.emplace(job.id, job.ctx);
  jobs_.push_back(std::move(job));
  ++counters_.accepted;
  ready_.notify_one();
  return ticket;
}

std::optional<Job> JobQueue::Pop() {
  std::unique_lock<std::mutex> lock(mu_);
  ready_.wait(lock, [this] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return std::nullopt;  // closed and drained
  auto best = jobs_.begin();
  for (auto it = std::next(best); it != jobs_.end(); ++it) {
    if (DispatchBefore(*it, *best)) best = it;
  }
  Job job = std::move(*best);
  jobs_.erase(best);
  return job;
}

bool JobQueue::Cancel(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = live_.find(id);
  if (it == live_.end()) return false;
  it->second->RequestCancel();
  return true;
}

void JobQueue::Forget(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  live_.erase(id);
}

void JobQueue::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  ready_.notify_all();
}

size_t JobQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

JobQueue::Counters JobQueue::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace kanon
