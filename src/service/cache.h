#ifndef KANON_SERVICE_CACHE_H_
#define KANON_SERVICE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/partition.h"
#include "util/fingerprint.h"
#include "util/run_context.h"

/// \file
/// LRU result cache of the service layer.
///
/// The common production pattern is repeated identical releases: the
/// same relation anonymized with the same algorithm and k, over and
/// over (nightly exports, retried jobs, fan-out to mirrors). Since
/// optimal k-anonymity is NP-hard (Theorem 3.2), re-solving an instance
/// we already solved is the single most wasteful thing a server can do —
/// the cache turns those repeats into O(1) lookups.
///
/// **Key semantics.** A key is (table content fingerprint, algorithm
/// name, k, knobs fingerprint). Execution *hints* — deadline, budget,
/// priority — are deliberately NOT part of the key: they change how long
/// a run may take, not what the right answer is. To keep that sound,
/// callers must only Insert *deterministic* outcomes: runs that
/// completed, or chains degraded purely by structural caps (which
/// replay identically for this instance). A result degraded by one
/// request's deadline, cancellation or budget is that request's
/// artifact and must not be replayed to a request that could have
/// afforded the full computation. The worker pool enforces this.

namespace kanon {

/// Content fingerprint of a relation: shape, attribute names, and every
/// decoded cell (suppressed cells as "*"), folded column-major over the
/// packed columnar mirror with one precomputed hash per dictionary code.
/// Two tables with identical decoded content fingerprint identically
/// regardless of the dictionary-code assignment order, so a table parsed
/// from CSV and the same table built programmatically collide as
/// intended; row order and any cell/name difference change the value.
uint64_t TableFingerprint(const Table& table);

/// Identity of a solved instance. `knobs_fp` fingerprints any
/// result-affecting algorithm options beyond the registry name — the
/// coreset sample rate/seed/strategy for `coreset_*` algorithms — so
/// runs of the same table+k+name with different knobs never collide.
struct CacheKey {
  uint64_t table_fp = 0;
  std::string algorithm;
  size_t k = 0;
  uint64_t knobs_fp = kFingerprintSeed;

  bool operator==(const CacheKey&) const = default;
};

struct CacheKeyHash {
  size_t operator()(const CacheKey& key) const {
    uint64_t fp = FingerprintInt(kFingerprintSeed, key.table_fp);
    fp = FingerprintPiece(fp, key.algorithm);
    fp = FingerprintInt(fp, key.k);
    fp = FingerprintInt(fp, key.knobs_fp);
    return static_cast<size_t>(fp);
  }
};

/// The cached portion of an answer (everything a repeat request needs
/// without re-running the solver).
struct CachedResult {
  Partition partition;
  size_t cost = 0;
  std::string stage;
  std::string chain;
  /// kNone for full completions; kBudget when the entry came from a
  /// structural-cap degradation (replayed verbatim to repeats).
  StopReason termination = StopReason::kNone;
  std::string anonymized_csv;
};

/// Counter snapshot; `size` <= `capacity` always.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  /// Inserts refused by the taint guard (see Insert).
  uint64_t rejected = 0;
  size_t size = 0;
  size_t capacity = 0;
};

/// Thread-safe LRU map from CacheKey to CachedResult. Capacity 0
/// disables caching (every Lookup is a miss, Insert is a no-op).
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Returns the entry and refreshes its recency, counting a hit; counts
  /// a miss and returns nullopt when absent.
  std::optional<CachedResult> Lookup(const CacheKey& key);

  /// Inserts (or refreshes) an entry, evicting the least-recently-used
  /// entries down to capacity. Last line of the taint defense: an entry
  /// whose termination is not kNone/kBudget is a per-request artifact
  /// (deadline, cancel) that must never be replayed to other requests —
  /// such inserts are refused and counted, even if a buggy or
  /// fault-injected caller slipped one past the worker-pool check.
  void Insert(const CacheKey& key, CachedResult result);

  CacheStats stats() const;

 private:
  using Entry = std::pair<CacheKey, CachedResult>;

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<CacheKey, std::list<Entry>::iterator, CacheKeyHash>
      index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace kanon

#endif  // KANON_SERVICE_CACHE_H_
