#include "service/breaker.h"

#include <utility>

#include "util/logging.h"

namespace kanon {

StageBreaker::StageBreaker(BreakerOptions options) : options_(options) {
  KANON_CHECK_GE(options.failure_threshold, 1);
  KANON_CHECK_GE(options.open_ms, 0.0);
}

bool StageBreaker::Allow() {
  const auto cooldown = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.open_ms));
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      // One probe is in flight; hold everyone else back until its
      // outcome is recorded — but a probe whose caller died before
      // recording must not wedge the stage, so after a further cooldown
      // another probe is admitted.
      if (Clock::now() - opened_at_ < cooldown) return false;
      opened_at_ = Clock::now();
      return true;
    case State::kOpen: {
      if (Clock::now() - opened_at_ < cooldown) return false;
      state_ = State::kHalfOpen;
      opened_at_ = Clock::now();
      return true;  // this caller is the probe
    }
  }
  KANON_CHECK(false) << "bad breaker state";
  return true;
}

void StageBreaker::RecordSuccess() {
  consecutive_failures_ = 0;
  state_ = State::kClosed;
}

void StageBreaker::RecordFailure() {
  ++consecutive_failures_;
  if (state_ == State::kHalfOpen ||
      consecutive_failures_ >= options_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = Clock::now();
  }
}

const char* BreakerStateName(StageBreaker::State state) {
  switch (state) {
    case StageBreaker::State::kClosed:
      return "closed";
    case StageBreaker::State::kOpen:
      return "open";
    case StageBreaker::State::kHalfOpen:
      return "half_open";
  }
  KANON_CHECK(false) << "bad breaker state";
  return "";
}

BreakerBoard::BreakerBoard(BreakerOptions options) : options_(options) {}

StageBreaker& BreakerBoard::Touch(const std::string& stage) {
  const auto it = breakers_.find(stage);
  if (it != breakers_.end()) return it->second;
  return breakers_.emplace(stage, StageBreaker(options_)).first->second;
}

bool BreakerBoard::Allow(const std::string& stage) {
  std::lock_guard<std::mutex> lock(mu_);
  return Touch(stage).Allow();
}

void BreakerBoard::Record(const std::string& stage, bool success) {
  std::lock_guard<std::mutex> lock(mu_);
  StageBreaker& breaker = Touch(stage);
  if (success) {
    breaker.RecordSuccess();
  } else {
    breaker.RecordFailure();
  }
}

std::vector<std::pair<std::string, StageBreaker::State>>
BreakerBoard::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, StageBreaker::State>> out;
  out.reserve(breakers_.size());
  for (const auto& [name, breaker] : breakers_) {
    out.emplace_back(name, breaker.state());
  }
  return out;
}

std::string BreakerBoard::Describe() const {
  std::string out;
  for (const auto& [name, state] : Snapshot()) {
    if (!out.empty()) out += ',';
    out += name;
    out += ':';
    out += BreakerStateName(state);
  }
  return out;
}

}  // namespace kanon
