#ifndef KANON_SERVICE_BREAKER_H_
#define KANON_SERVICE_BREAKER_H_

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "algo/fallback.h"

/// \file
/// Per-algorithm-stage circuit breakers for the fallback chain.
///
/// A stage that keeps failing (declining, timing out, or producing
/// invalid partitions under injected faults) burns a slice of every
/// request's deadline before the chain moves on. The breaker converts
/// that repeated cost into a one-time cost: after `failure_threshold`
/// consecutive failures the stage's breaker opens and the chain skips
/// the stage outright (recorded as `stage(skipped:breaker)`); after
/// `open_ms` of cooldown the breaker goes half-open and admits exactly
/// one probe — success closes it, failure re-opens it for another
/// cooldown. The chain's terminal stage is never gated, so the
/// always-answers contract is unaffected.

namespace kanon {

/// Breaker tuning, shared by every stage on a BreakerBoard.
struct BreakerOptions {
  /// Consecutive failures that open the breaker.
  int failure_threshold = 3;
  /// Cooldown before a half-open probe is admitted.
  double open_ms = 100.0;
};

/// State machine for one chain stage. Thread-compatible; synchronized
/// externally by BreakerBoard.
class StageBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit StageBreaker(BreakerOptions options = {});

  /// True when a run may proceed. In kOpen, flips to kHalfOpen once the
  /// cooldown elapsed and admits that caller as the probe.
  bool Allow();

  void RecordSuccess();
  void RecordFailure();

  State state() const { return state_; }
  int consecutive_failures() const { return consecutive_failures_; }

 private:
  using Clock = std::chrono::steady_clock;

  const BreakerOptions options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  Clock::time_point opened_at_{};
};

const char* BreakerStateName(StageBreaker::State state);

/// One breaker per stage name, created on first touch. Implements the
/// chain's StageGate seam; a single board is shared by all workers of a
/// pool, so one worker's failures protect every other worker's deadline
/// budget.
class BreakerBoard : public StageGate {
 public:
  explicit BreakerBoard(BreakerOptions options = {});

  bool Allow(const std::string& stage) override;
  void Record(const std::string& stage, bool success) override;

  /// Stage name -> current state, sorted by name.
  std::vector<std::pair<std::string, StageBreaker::State>> Snapshot() const;

  /// Stats-line rendering: "exact_dp:open,greedy_cover:closed"; empty
  /// string when no stage has been touched yet.
  std::string Describe() const;

 private:
  StageBreaker& Touch(const std::string& stage);

  const BreakerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, StageBreaker> breakers_;
};

}  // namespace kanon

#endif  // KANON_SERVICE_BREAKER_H_
