#ifndef KANON_SERVICE_REQUEST_H_
#define KANON_SERVICE_REQUEST_H_

#include <cstdint>
#include <optional>
#include <string>

#include "data/table.h"
#include "util/run_context.h"
#include "util/status.h"

/// \file
/// Request/response types of the `kanon::service` layer and the typed
/// error taxonomy every service surface (embedded API, line protocol,
/// `kanond`) reports failures through.
///
/// The paper's NP-hardness results (Theorems 3.1/3.2) mean a server
/// cannot promise to solve a request optimally within its deadline — but
/// it can promise to *answer* every request: with a (possibly degraded)
/// valid k-anonymization, or with a typed rejection. `AnonymizeRequest`
/// carries everything needed to make that call — the relation (inline
/// CSV or a pre-parsed table), the registry algorithm name, k, and the
/// execution-control knobs that seed the job's RunContext.

namespace kanon {

/// Failure buckets of the service layer. Each maps onto exactly one
/// StatusCode (ServiceErrorCode) so embedded callers can switch on the
/// generic code while protocol clients see the finer-grained name.
enum class ServiceError {
  kNone = 0,
  /// A protocol line could not be tokenized (bad key=value syntax).
  kMalformedLine,
  /// The protocol verb is not one of anonymize / stats / shutdown.
  kUnknownVerb,
  /// A request field is outside its domain (k < 1, k > n, bad number).
  kBadParameter,
  /// The algorithm name is not in the registry.
  kUnknownAlgorithm,
  /// The request referenced a table file that does not exist.
  kTableNotFound,
  /// The inline/referenced CSV failed to parse.
  kTableParseError,
  /// Admission control: the job queue is at capacity.
  kQueueFull,
  /// The service is shutting down and no longer accepts work.
  kShuttingDown,
  /// The request was cancelled before its job ran.
  kCancelled,
  /// Load shedding: the queue is under pressure and the request's
  /// priority did not clear the admission bar.
  kShedLowPriority,
  /// A worker failed while holding the job and the retry budget ran out.
  kWorkerFailure,
  /// The job was running when the daemon died; found in the journal at
  /// restart with no recorded outcome.
  kInterrupted,
  /// The watchdog preempted the job's worker after it stopped making
  /// observable progress (no heartbeat/checkpoint advance within the
  /// stall bound).
  kWatchdogPreempted,
  /// A protocol line exceeded the transport's line-length cap; the line
  /// was discarded unparsed (nothing was silently truncated).
  kLineTooLong,
  /// A binary-protocol frame failed envelope or body decoding (bad
  /// magic/version, hostile length, checksum mismatch, torn body).
  kBadFrame,
  /// The TCP front end is at its connection limit; the new connection
  /// was rejected with this typed response and closed.
  kConnectionLimit,
  /// CoDel admission control: queue delay stayed above target for a
  /// full interval, and this arrival fell on the shedding schedule.
  kShedOverload,
  /// Deadline reconciliation at dispatch: the remaining deadline budget
  /// (deadline minus queue delay) cannot fit even the optimistic
  /// solve-time estimate for the job's backend — rejected before any
  /// solve work.
  kDeadlineInfeasible,
};

/// Protocol-facing name: "queue_full", "unknown_algorithm", ...
const char* ServiceErrorName(ServiceError error);

/// The StatusCode bucket each taxonomy entry maps onto (kNone -> kOk).
StatusCode ServiceErrorCode(ServiceError error);

/// Builds the Status carrying `error`'s code and `message`.
Status MakeServiceStatus(ServiceError error, std::string message);

/// One anonymization job. The relation travels either pre-parsed in
/// `table` or as CSV text in `csv_text` (header record first; `table`
/// wins when both are set). ValidateAndPrepare parses/validates in
/// place before the request is admitted.
/// Domain caps for the shard knobs; requests outside them are rejected
/// with kBadParameter rather than silently clamped.
inline constexpr size_t kMaxRequestShards = 1024;
inline constexpr size_t kMaxRequestShardParallelism = 256;

struct AnonymizeRequest {
  /// Registry name (see KnownAnonymizers), run inside the resilient
  /// fallback chain so a too-hard instance degrades instead of failing.
  std::string algorithm = "resilient";
  /// Privacy parameter; must satisfy 1 <= k <= rows.
  size_t k = 3;
  /// End-to-end deadline in milliseconds, measured from admission (queue
  /// wait counts against it). <= 0 means no deadline.
  double deadline_ms = 0.0;
  /// Node/iteration budget forwarded to the RunContext; 0 = unlimited.
  uint64_t node_budget = 0;
  /// Dispatch priority: higher runs first (ties: oldest deadline first,
  /// then FIFO).
  int priority = 0;
  /// When false the response omits the anonymized CSV payload (the
  /// cost/stage summary is still filled) — for callers that only probe.
  bool emit_csv = true;
  /// Protocol-only knob (`wait=0`): when false the line handler answers
  /// as soon as the job is admitted instead of blocking on the result.
  /// Embedded callers pick blocking vs. not by calling Handle vs Submit.
  bool wait = true;
  /// Coreset knobs, honored only by `coreset_*` algorithms (and folded
  /// into the result-cache key for them, so different knobs never share
  /// an entry). Rate must lie in (0, 1]; 0 means the subsystem default.
  double coreset_rate = 0.0;
  /// Sampler seed; 0 means the subsystem default.
  uint64_t coreset_seed = 0;
  /// Shard knobs, honored only by `sharded_*` algorithms (and folded
  /// into the result-cache key for them). `shards` is the target shard
  /// count (0 = subsystem default; capped at kMaxRequestShards);
  /// `shard_parallelism` caps concurrent shard solves (0 = the process
  /// parallelism; capped at kMaxRequestShardParallelism and never above
  /// the machine cap at run time).
  size_t shards = 0;
  size_t shard_parallelism = 0;
  /// Brownout stamp, set only by the worker pool when the overload
  /// governor rewrote this job to a cheaper backend (never parsed from
  /// the wire). Folded into the result-cache knobs fingerprint so a
  /// browned-out entry can never collide with — and never answer — a
  /// full-fidelity request, even one for the same effective backend.
  int brownout_level = 0;
  /// Inline CSV text (ignored once `table` is set).
  std::string csv_text;
  /// The parsed relation; set by ValidateAndPrepare from `csv_text`.
  std::optional<Table> table;
  /// Crash-resume state, set only by journal replay (never parsed from
  /// the wire or serialized back to the journal): the solver name and
  /// payload of the job's last durable checkpoint. The worker installs
  /// it on the job's RunContext so the named solver continues instead of
  /// starting cold.
  std::string resume_solver;
  std::string resume_payload;
};

/// Outcome of one request. `status.ok()` distinguishes answers from
/// rejections; an answer always carries a *valid* k-anonymous partition
/// summary (the resilient chain guarantees it), with `termination` and
/// `stage`/`chain` recording how far it had to degrade.
struct AnonymizeResponse {
  /// Service-assigned job id (0 for requests rejected at admission).
  uint64_t id = 0;
  /// OK for answers; the taxonomy-mapped code for rejections.
  Status status;
  /// Taxonomy bucket behind `status` (kNone for answers).
  ServiceError error = ServiceError::kNone;
  std::string algorithm;
  size_t k = 0;
  /// Rows in the input relation.
  size_t rows = 0;
  /// Suppressed-entry count of the answer (the paper's objective).
  size_t cost = 0;
  /// Chain stage that produced the answer ("exact_dp", "suppress_all"...).
  std::string stage;
  /// Per-stage outcomes, e.g. "exact_dp(declined:budget)->greedy_cover(ok)".
  std::string chain;
  /// Why the run ended (kNone = full-quality completion).
  StopReason termination = StopReason::kNone;
  /// Backend that actually produced the answer after any overload
  /// rewrite (brownout ladder or retry-budget degradation). Empty when
  /// the requested algorithm ran unmodified.
  std::string effective_algorithm;
  /// Brownout ladder level the job was dispatched under (0 green,
  /// 1 yellow, 2 red). Nonzero only when the overload governor rewrote
  /// or could have rewritten the job.
  int brownout = 0;
  /// True when the answer came from the result cache.
  bool cache_hit = false;
  /// Milliseconds spent queued before a worker picked the job up.
  double queue_ms = 0.0;
  /// Milliseconds spent producing the answer (near zero on cache hits).
  double run_ms = 0.0;
  /// The anonymized relation as CSV (empty when emit_csv was false or
  /// the request was rejected).
  std::string anonymized_csv;

  bool ok() const { return status.ok(); }
};

/// Validates `request` in place: parses `csv_text` into `table` when
/// needed, resolves the algorithm against the registry, and checks
/// 1 <= k <= rows. On failure returns the non-OK status and stores the
/// taxonomy bucket in *error (which must be non-null).
Status ValidateAndPrepare(AnonymizeRequest& request, ServiceError* error);

/// Inline-CSV transport encoding, shared by the line protocol and the
/// job journal: ';' stands for the record separator, so values must not
/// themselves contain ';'.
std::string InlineToCsv(std::string text);
std::string CsvToInline(std::string text);

}  // namespace kanon

#endif  // KANON_SERVICE_REQUEST_H_
