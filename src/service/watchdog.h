#ifndef KANON_SERVICE_WATCHDOG_H_
#define KANON_SERVICE_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/run_context.h"

/// \file
/// Stuck-worker detection for the worker pool.
///
/// Every solver in the chain polls ShouldStop() in its hot loop, and
/// every poll (plus every emitted checkpoint) bumps the job context's
/// heartbeat counter. A worker that is *slow* keeps bumping it; a worker
/// that is *stuck* — wedged in a non-polling path, livelocked, lost to a
/// runaway allocation — stops. The watchdog samples each watched job's
/// progress counter on a fixed scan interval; once a job goes a full
/// `stall_ms` with no advance it is preempted through the ordinary
/// cancellation path (`RunContext::RequestPreempt`), which the pool
/// surfaces as the typed `watchdog_preempted` error.
///
/// The invariant the chaos harness holds this to: a job whose heartbeat
/// advances is NEVER preempted, no matter how slowly it runs — only
/// flat-lined jobs are. Preemption is one-shot per watched job.

namespace kanon {

struct WatchdogOptions {
  /// How often the scan thread samples progress counters.
  double scan_interval_ms = 10.0;
  /// A watched job with no progress advance for this long is preempted.
  double stall_ms = 1000.0;
};

/// Watches running jobs' heartbeat counters and preempts flat-lined
/// ones. Thread-safe; one instance serves the whole pool. Tests drive
/// ScanOnce() directly (with a huge scan interval) for determinism.
class Watchdog {
 public:
  explicit Watchdog(WatchdogOptions options);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Registers job `id` (just dispatched to a worker) for monitoring.
  /// The stall clock starts now.
  void Watch(uint64_t id, std::shared_ptr<RunContext> ctx);

  /// Unregisters a job (it completed or was handed back). Idempotent.
  void Unwatch(uint64_t id);

  /// One scan pass over the watched set; preempts any job whose
  /// progress counter has not advanced within the stall bound. Called
  /// by the background thread each interval; exposed for deterministic
  /// tests.
  void ScanOnce();

  /// Stops the scan thread (also done by the destructor).
  void Stop();

  /// Jobs preempted since construction.
  uint64_t preemptions() const {
    return preemptions_.load(std::memory_order_relaxed);
  }

  /// Currently watched job count.
  size_t watched() const;

 private:
  /// Progress metric: anything a live solver advances. Heartbeats cover
  /// ShouldStop() polls and checkpoint emissions; nodes_charged covers
  /// solvers that charge in bulk between polls.
  static uint64_t Progress(const RunContext& ctx) {
    return ctx.heartbeats() + ctx.nodes_charged();
  }

  struct Entry {
    std::shared_ptr<RunContext> ctx;
    uint64_t progress = 0;
    RunContext::Clock::time_point since{};
    bool preempted = false;
  };

  void Loop();

  const WatchdogOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<uint64_t, Entry> watched_;
  std::atomic<uint64_t> preemptions_{0};
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace kanon

#endif  // KANON_SERVICE_WATCHDOG_H_
