#ifndef KANON_CORE_METRICS_H_
#define KANON_CORE_METRICS_H_

#include <cstddef>
#include <string>

#include "core/partition.h"
#include "data/table.h"

/// \file
/// Information-loss metrics from the k-anonymity literature, computed on
/// an anonymized table / its induced partition. The paper's objective is
/// `stars` (suppressed entries); the others contextualize baseline
/// comparisons in the benchmark harness.

namespace kanon {

/// Summary of one anonymization's quality.
struct AnonymizationMetrics {
  /// Suppressed entries (the paper's objective).
  size_t stars = 0;
  /// Fraction of cells suppressed in [0, 1].
  double star_fraction = 0.0;
  /// Discernibility metric: sum over groups of |S|^2 (each tuple is
  /// "charged" the size of its equivalence class).
  size_t discernibility = 0;
  /// Normalized average equivalence class size:
  ///   (n / #groups) / k  — 1.0 is ideal.
  double avg_class_ratio = 0.0;
  /// Smallest group size (must be >= k for a valid anonymization).
  size_t min_group = 0;
  /// Largest group size.
  size_t max_group = 0;

  std::string ToString() const;
};

/// Computes metrics for the anonymization whose k-groups are `p` over the
/// original `table` (stars are derived from each group's disagreeing
/// columns). `k` is the target anonymity level used for normalization.
AnonymizationMetrics ComputeMetrics(const Table& table, const Partition& p,
                                    size_t k);

}  // namespace kanon

#endif  // KANON_CORE_METRICS_H_
