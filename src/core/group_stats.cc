#include "core/group_stats.h"

#include "util/logging.h"

namespace kanon {

GroupStats::GroupStats(const Table& table)
    : table_(&table), counts_(table.num_columns()) {}

GroupStats::GroupStats(const Table& table, std::span<const RowId> rows)
    : GroupStats(table) {
  for (const RowId r : rows) Add(r);
}

uint32_t GroupStats::CountOf(ColId c, ValueCode code) const {
  for (const auto& [existing, count] : counts_[c]) {
    if (existing == code) return count;
  }
  return 0;
}

void GroupStats::Add(RowId row) {
  const std::span<const ValueCode> codes = table_->row(row);
  for (ColId c = 0; c < counts_.size(); ++c) {
    std::vector<std::pair<ValueCode, uint32_t>>& col = counts_[c];
    bool found = false;
    for (auto& [code, count] : col) {
      if (code == codes[c]) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) {
      col.emplace_back(codes[c], 1);
      if (col.size() == 2) ++disagreeing_;
    }
  }
  ++size_;
  weight_ += table_->row_weight(row);
}

void GroupStats::Remove(RowId row) {
  KANON_CHECK_GT(size_, 0u);
  const std::span<const ValueCode> codes = table_->row(row);
  for (ColId c = 0; c < counts_.size(); ++c) {
    std::vector<std::pair<ValueCode, uint32_t>>& col = counts_[c];
    size_t i = 0;
    for (; i < col.size(); ++i) {
      if (col[i].first == codes[c]) break;
    }
    KANON_CHECK_LT(i, col.size()) << "Remove of a non-member row";
    if (--col[i].second == 0) {
      col[i] = col.back();
      col.pop_back();
      if (col.size() == 1) --disagreeing_;
    }
  }
  --size_;
  weight_ -= table_->row_weight(row);
}

void GroupStats::Clear() {
  for (auto& col : counts_) col.clear();
  size_ = 0;
  weight_ = 0;
  disagreeing_ = 0;
}

size_t GroupStats::CostWith(RowId extra) const {
  const std::span<const ValueCode> codes = table_->row(extra);
  ColId d = 0;
  for (ColId c = 0; c < counts_.size(); ++c) {
    const size_t distinct =
        counts_[c].size() + (CountOf(c, codes[c]) == 0 ? 1 : 0);
    d += static_cast<ColId>(distinct > 1);
  }
  return (weight_ + table_->row_weight(extra)) * static_cast<size_t>(d);
}

size_t GroupStats::CostWithout(RowId member) const {
  KANON_CHECK_GT(size_, 0u);
  const std::span<const ValueCode> codes = table_->row(member);
  ColId d = 0;
  for (ColId c = 0; c < counts_.size(); ++c) {
    const uint32_t count = CountOf(c, codes[c]);
    KANON_CHECK_GT(count, 0u) << "CostWithout of a non-member row";
    const size_t distinct = counts_[c].size() - (count == 1 ? 1 : 0);
    d += static_cast<ColId>(distinct > 1);
  }
  return (weight_ - table_->row_weight(member)) * static_cast<size_t>(d);
}

size_t GroupStats::CostReplacing(RowId out, RowId in) const {
  KANON_CHECK_GT(size_, 0u);
  const std::span<const ValueCode> out_codes = table_->row(out);
  const std::span<const ValueCode> in_codes = table_->row(in);
  ColId d = 0;
  for (ColId c = 0; c < counts_.size(); ++c) {
    size_t distinct = counts_[c].size();
    if (out_codes[c] != in_codes[c]) {
      const uint32_t out_count = CountOf(c, out_codes[c]);
      KANON_CHECK_GT(out_count, 0u) << "CostReplacing of a non-member row";
      distinct -= (out_count == 1 ? 1 : 0);
      distinct += (CountOf(c, in_codes[c]) == 0 ? 1 : 0);
    }
    d += static_cast<ColId>(distinct > 1);
  }
  return (weight_ - table_->row_weight(out) + table_->row_weight(in)) *
         static_cast<size_t>(d);
}

}  // namespace kanon
