#include "core/bounds.h"

#include <algorithm>

#include "util/logging.h"

namespace kanon {

size_t KnnLowerBound(const Table& table, const DistanceMatrix& dm,
                     size_t k) {
  const RowId n = table.num_rows();
  if (n == 0 || k <= 1) return 0;
  KANON_CHECK_LE(k, n);
  size_t bound = 0;
  for (RowId r = 0; r < n; ++r) {
    bound += dm.KthNearestDistance(r, static_cast<RowId>(k - 1));
  }
  return bound;
}

size_t KnnLowerBound(const Table& table, const DistanceOracle& oracle,
                     size_t k) {
  const RowId n = table.num_rows();
  if (n == 0 || k <= 1) return 0;
  KANON_CHECK_LE(k, n);
  size_t bound = 0;
  for (RowId r = 0; r < n; ++r) {
    bound += oracle.KthNearestDistance(r, static_cast<RowId>(k - 1));
  }
  return bound;
}

size_t HalfDiameterVolumeBound(const Table& table, const Partition& p) {
  size_t twice = 0;
  for (const Group& g : p.groups) {
    twice += g.size() * static_cast<size_t>(SetDiameter(table, g));
  }
  return twice / 2;
}

size_t DiameterVolumeUpperBound(const Table& table, const Partition& p) {
  size_t bound = 0;
  for (const Group& g : p.groups) {
    if (g.size() < 2) continue;
    bound += g.size() * (g.size() - 1) *
             static_cast<size_t>(SetDiameter(table, g));
  }
  return bound;
}

size_t AsPrintedDiameterUpperBound(const Table& table, const Partition& p) {
  size_t bound = 0;
  for (const Group& g : p.groups) {
    bound += g.size() * static_cast<size_t>(SetDiameter(table, g));
  }
  return bound;
}

}  // namespace kanon
