#ifndef KANON_CORE_PARTITION_H_
#define KANON_CORE_PARTITION_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "data/value.h"

/// \file
/// (k1, k2)-covers and partitions of the row set (Section 4 of the paper):
/// a collection of row groups, each of size in [k1, k2], that together
/// cover every row; a partition additionally has disjoint groups. Any
/// k-anonymizer induces a (k, n)-partition, and wlog a (k, 2k-1)-partition
/// (split any group of size >= 2k). `SplitLargeGroups` implements that
/// wlog step.

namespace kanon {

/// One group of row ids. Order inside a group is not meaningful.
using Group = std::vector<RowId>;

/// A collection of groups. May be a cover (overlaps allowed) or a
/// partition depending on context; validity helpers below distinguish.
struct Partition {
  std::vector<Group> groups;

  size_t num_groups() const { return groups.size(); }

  /// Sum of group sizes (= n for a partition; >= n for a cover).
  size_t TotalMembers() const;

  /// Human-readable "{0,3} {1,2,4}" rendering for diagnostics.
  std::string ToString() const;
};

/// True iff `p` covers every row of [0, n) and every group size lies in
/// [min_size, max_size].
bool IsValidCover(const Partition& p, RowId n, size_t min_size,
                  size_t max_size);

/// True iff `p` is a cover whose groups are pairwise disjoint (every row
/// appears exactly once).
bool IsValidPartition(const Partition& p, RowId n, size_t min_size,
                      size_t max_size);

/// The paper's wlog transform: splits any group of size >= 2k into groups
/// of size in [k, 2k-1]. Splitting is arbitrary (the paper's argument is
/// order-independent); we split greedily into chunks of k with the
/// remainder folded into the final chunk. Requires every group >= k.
Partition SplitLargeGroups(const Partition& p, size_t k);

/// Groups rows of `table` by exact equality of their (possibly
/// anonymized) contents; the induced partition of a k-anonymous table has
/// all groups of size >= k.
Partition GroupIdenticalRows(const Table& table);

}  // namespace kanon

#endif  // KANON_CORE_PARTITION_H_
