#ifndef KANON_CORE_COST_H_
#define KANON_CORE_COST_H_

#include <cstddef>
#include <span>

#include "core/partition.h"
#include "core/suppressor.h"
#include "data/table.h"

/// \file
/// Cost model of Section 4: ANON(S) is the number of entries that must be
/// starred so that all rows of S become identical — `|S|` times the number
/// of columns on which S disagrees. The cost of a partition is the sum of
/// its groups' ANON values, and OPT(V) = min over partitions with all
/// groups >= k.
///
/// On a *weighted* instance (Table::is_weighted(), produced by coreset
/// sampling) `|S|` generalizes to the sum of member weights: row r stands
/// for row_weight(r) identical tuples, each of which would need the same
/// stars. The weight-1 path is bit-identical to the unweighted one.

namespace kanon {

/// Set of columns on which the rows of `rows` disagree, as a bitmask
/// vector. A cell already equal to kSuppressedCode counts as disagreeing
/// with any concrete value (a star can only match another star).
std::vector<bool> DisagreeingColumns(const Table& table,
                                     std::span<const RowId> rows);

/// Number of disagreeing columns of a group.
ColId NumDisagreeingColumns(const Table& table, std::span<const RowId> rows);

/// Sum of member weights of a group (== rows.size() when unweighted).
size_t GroupWeight(const Table& table, std::span<const RowId> rows);

/// ANON(S) = GroupWeight(S) * NumDisagreeingColumns(S).
size_t AnonCost(const Table& table, std::span<const RowId> rows);

/// Sum of ANON over all groups; equals the number of stars inserted by
/// SuppressorForPartition on a partition (on a cover it double-counts
/// shared rows).
size_t PartitionCost(const Table& table, const Partition& p);

/// Sum of group diameters d(Π) (the k-minimum diameter sum objective).
size_t DiameterSum(const Table& table, const Partition& p);

/// The canonical suppressor for a partition: in each group, star exactly
/// the disagreeing columns of that group, in every member row. Applying
/// it makes each group's rows identical, so the result is k-anonymous
/// whenever all groups have size >= k. Requires `p` to be a partition
/// (each row in exactly one group).
Suppressor SuppressorForPartition(const Table& table, const Partition& p);

}  // namespace kanon

#endif  // KANON_CORE_COST_H_
