#include "core/anonymity.h"

#include <algorithm>

namespace kanon {

bool IsKAnonymous(const Table& table, size_t k) {
  if (table.num_rows() == 0) return true;
  return AnonymityLevel(table) >= k;
}

bool IsKAnonymizer(const Suppressor& t, const Table& table, size_t k) {
  return IsKAnonymous(t.Apply(table), k);
}

Partition InducedPartition(const Suppressor& t, const Table& table) {
  return GroupIdenticalRows(t.Apply(table));
}

size_t AnonymityLevel(const Table& table) {
  if (table.num_rows() == 0) return 0;
  const Partition groups = GroupIdenticalRows(table);
  size_t level = table.num_rows();
  for (const Group& g : groups.groups) {
    level = std::min(level, g.size());
  }
  return level;
}

}  // namespace kanon
