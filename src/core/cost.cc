#include "core/cost.h"

#include "core/distance.h"
#include "util/logging.h"

namespace kanon {

std::vector<bool> DisagreeingColumns(const Table& table,
                                     std::span<const RowId> rows) {
  std::vector<bool> disagree(table.num_columns(), false);
  if (rows.empty()) return disagree;
  const auto first = table.row(rows[0]);
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto other = table.row(rows[i]);
    for (ColId c = 0; c < table.num_columns(); ++c) {
      if (other[c] != first[c]) disagree[c] = true;
    }
  }
  // A pre-suppressed cell differs from every concrete value; if the group
  // agrees on a star in some column that column needs no further stars.
  return disagree;
}

ColId NumDisagreeingColumns(const Table& table,
                            std::span<const RowId> rows) {
  const std::vector<bool> disagree = DisagreeingColumns(table, rows);
  ColId count = 0;
  for (const bool b : disagree) {
    if (b) ++count;
  }
  return count;
}

size_t GroupWeight(const Table& table, std::span<const RowId> rows) {
  if (!table.is_weighted()) return rows.size();
  size_t total = 0;
  for (const RowId r : rows) total += table.row_weight(r);
  return total;
}

size_t AnonCost(const Table& table, std::span<const RowId> rows) {
  return GroupWeight(table, rows) *
         static_cast<size_t>(NumDisagreeingColumns(table, rows));
}

size_t PartitionCost(const Table& table, const Partition& p) {
  size_t cost = 0;
  for (const Group& g : p.groups) cost += AnonCost(table, g);
  return cost;
}

size_t DiameterSum(const Table& table, const Partition& p) {
  size_t sum = 0;
  for (const Group& g : p.groups) sum += SetDiameter(table, g);
  return sum;
}

Suppressor SuppressorForPartition(const Table& table, const Partition& p) {
  KANON_CHECK(IsValidPartition(p, table.num_rows(), 1,
                               table.num_rows()));
  Suppressor t(table.num_rows(), table.num_columns());
  for (const Group& g : p.groups) {
    const std::vector<bool> disagree = DisagreeingColumns(table, g);
    for (const RowId r : g) {
      for (ColId c = 0; c < table.num_columns(); ++c) {
        if (disagree[c]) t.Suppress(r, c);
      }
    }
  }
  return t;
}

}  // namespace kanon
