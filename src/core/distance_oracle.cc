#include "core/distance_oracle.h"

#include <algorithm>
#include <new>

#include "util/logging.h"

namespace kanon {

StatusOr<std::unique_ptr<DistanceOracle>> DistanceOracle::Create(
    const Table& table, const DistanceOracleOptions& options,
    RunContext* ctx) {
  const RowId n = table.num_rows();
  std::unique_ptr<DistanceOracle> oracle(new DistanceOracle(table, n));
  if (n <= options.dense_threshold) {
    StatusOr<DistanceMatrix> matrix = DistanceMatrix::Create(table, ctx);
    if (!matrix.ok()) return matrix.status();
    oracle->matrix_.emplace(std::move(matrix).value());
    return oracle;
  }
  // Blocked on-demand path: charge the bounded strip cache up front so
  // the footprint is visible to the budget before any strip exists.
  oracle->max_strips_ =
      std::min<size_t>(std::max<size_t>(options.max_cached_strips, 1), n);
  const size_t bytes = oracle->max_strips_ * n * sizeof(ColId);
  if (ctx != nullptr && !ctx->TryChargeMemory(bytes)) {
    return Status::ResourceExhausted(
        "distance oracle strip cache exceeds the run's memory budget");
  }
  oracle->lease_ctx_ = ctx;
  oracle->lease_bytes_ = bytes;
  return oracle;
}

DistanceOracle::~DistanceOracle() {
  if (lease_ctx_ != nullptr) lease_ctx_->ReleaseMemory(lease_bytes_);
}

const std::vector<ColId>& DistanceOracle::StripLocked(RowId row) const {
  const auto it = strip_index_.find(row);
  if (it != strip_index_.end()) {
    strips_.splice(strips_.begin(), strips_, it->second);
    return it->second->second;
  }
  std::vector<ColId> strip(n_);
  const std::span<const ValueCode> r = table_.row(row);
  for (RowId x = 0; x < n_; ++x) {
    strip[x] = HammingDistance(r, table_.row(x));
  }
  strips_.emplace_front(row, std::move(strip));
  strip_index_[row] = strips_.begin();
  while (strips_.size() > max_strips_) {
    strip_index_.erase(strips_.back().first);
    strips_.pop_back();
  }
  return strips_.front().second;
}

ColId DistanceOracle::at(RowId a, RowId b) const {
  if (matrix_.has_value()) return matrix_->at(a, b);
  if (a == b) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  // Symmetric: a strip for either endpoint answers the query.
  const auto hit_b = strip_index_.find(b);
  if (hit_b != strip_index_.end()) return hit_b->second->second[a];
  return StripLocked(a)[b];
}

ColId DistanceOracle::Diameter(std::span<const RowId> rows) const {
  if (matrix_.has_value()) return matrix_->Diameter(rows);
  // Group diameters touch |rows|^2 pairs of a small set; computing them
  // straight from the rows avoids churning the strip cache.
  ColId diameter = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      diameter = std::max(diameter, RowDistance(table_, rows[i], rows[j]));
    }
  }
  return diameter;
}

ColId DistanceOracle::KthNearestDistance(RowId row, RowId j) const {
  if (matrix_.has_value()) return matrix_->KthNearestDistance(row, j);
  KANON_CHECK_GE(j, 1u);
  KANON_CHECK_LT(j, n_);
  // One-shot scan per caller: bypass the strip cache (these sweeps
  // visit every row once and would evict the useful strips).
  std::vector<ColId> others;
  others.reserve(n_ - 1);
  const std::span<const ValueCode> r = table_.row(row);
  for (RowId x = 0; x < n_; ++x) {
    if (x != row) others.push_back(HammingDistance(r, table_.row(x)));
  }
  std::nth_element(others.begin(), others.begin() + (j - 1), others.end());
  return others[j - 1];
}

namespace {

/// What SharedDistanceOracle stores in the RunContext scratch slot: the
/// oracle plus the table shape it was built for, so a stale entry (the
/// keyed address reused by a different or mutated table) is detected
/// and rebuilt instead of served.
struct OracleSlot {
  RowId n = 0;
  ColId m = 0;
  std::shared_ptr<const DistanceOracle> oracle;
};

}  // namespace

StatusOr<std::shared_ptr<const DistanceOracle>> SharedDistanceOracle(
    const Table& table, RunContext* ctx,
    const DistanceOracleOptions& options) {
  KANON_CHECK(ctx != nullptr);
  if (std::shared_ptr<void> held = ctx->GetScratch(&table)) {
    auto* slot = static_cast<OracleSlot*>(held.get());
    if (slot->n == table.num_rows() && slot->m == table.num_columns()) {
      return slot->oracle;
    }
  }
  StatusOr<std::unique_ptr<DistanceOracle>> created =
      DistanceOracle::Create(table, options, ctx);
  if (!created.ok()) {
    // Guarantee the latch so callers can uniformly StoppedResult.
    ctx->MarkStopped(StopReason::kBudget);
    return created.status();
  }
  auto slot = std::make_shared<OracleSlot>();
  slot->n = table.num_rows();
  slot->m = table.num_columns();
  slot->oracle = std::shared_ptr<const DistanceOracle>(
      std::move(created).value());
  std::shared_ptr<const DistanceOracle> oracle = slot->oracle;
  ctx->PutScratch(&table, std::move(slot));
  return oracle;
}

}  // namespace kanon
