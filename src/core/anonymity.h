#ifndef KANON_CORE_ANONYMITY_H_
#define KANON_CORE_ANONYMITY_H_

#include <cstddef>

#include "core/partition.h"
#include "core/suppressor.h"
#include "data/table.h"

/// \file
/// k-anonymity predicate (the paper's Definition 2.2) and helpers tying
/// suppressors, anonymized tables and induced partitions together.

namespace kanon {

/// True iff every row of `table` is entry-for-entry identical to at least
/// k-1 other rows (multiset semantics). A table with fewer than k rows is
/// k-anonymous only if it is empty.
bool IsKAnonymous(const Table& table, size_t k);

/// True iff applying `t` to `table` yields a k-anonymous table, i.e. `t`
/// is a k-anonymizer on V.
bool IsKAnonymizer(const Suppressor& t, const Table& table, size_t k);

/// The partition Π(t, V) induced by a k-anonymizer: groups of rows made
/// identical by `t`.
Partition InducedPartition(const Suppressor& t, const Table& table);

/// Smallest k such that `table` is k-anonymous (the minimum multiplicity
/// over its distinct rows). Returns 0 for an empty table.
size_t AnonymityLevel(const Table& table);

}  // namespace kanon

#endif  // KANON_CORE_ANONYMITY_H_
