#ifndef KANON_CORE_GROUP_STATS_H_
#define KANON_CORE_GROUP_STATS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "data/table.h"
#include "data/value.h"

/// \file
/// Incremental group statistics for the Section 4 cost model.
///
/// A column of a group is *disagreeing* iff its members take more than
/// one distinct code in that column (a pre-suppressed star is just
/// another code: it matches other stars and nothing else), and
/// ANON(S) = |S| * #disagreeing — exactly what core/cost.h computes by
/// rescanning the whole group. `GroupStats` maintains per-column
/// distinct-code counts so membership edits and what-if probes cost
/// O(m) instead of O(|S| m):
///
///   * Add/Remove update the counts and the disagreeing-column tally;
///   * CostWith / CostWithout / CostReplacing answer "what would
///     ANON(S) be after this edit" without mutating anything.
///
/// All quantities are the same exact integers AnonCost produces, so
/// greedy/local-search/annealing decisions (and their tie-breaks) are
/// bit-identical to the rescanning implementations they replace; the
/// data-plane equivalence suite asserts this against random edit
/// sequences.
///
/// On a weighted instance (coreset sampling) |S| generalizes to the sum
/// of member weights, tracked incrementally alongside size_; on an
/// unweighted table weight() == size() and every cost is unchanged.

namespace kanon {

class GroupStats {
 public:
  /// Stats of the empty group over `table` (which must outlive this).
  explicit GroupStats(const Table& table);

  /// Stats of the group `rows`.
  GroupStats(const Table& table, std::span<const RowId> rows);

  /// Adds one member row.
  void Add(RowId row);

  /// Removes one member row (some member must hold this row's codes).
  void Remove(RowId row);

  /// Resets to the empty group.
  void Clear();

  size_t size() const { return size_; }

  /// Sum of member weights (== size() on an unweighted table).
  size_t weight() const { return weight_; }

  ColId num_disagreeing() const { return disagreeing_; }

  /// ANON(S) = GroupWeight(S) * #disagreeing columns.
  size_t anon_cost() const {
    return weight_ * static_cast<size_t>(disagreeing_);
  }

  /// ANON(S + {extra}) without mutating. O(m).
  size_t CostWith(RowId extra) const;

  /// ANON(S - {member}) without mutating; `member` must be in S. O(m).
  size_t CostWithout(RowId member) const;

  /// ANON(S - {out} + {in}) without mutating; `out` must be in S. O(m).
  size_t CostReplacing(RowId out, RowId in) const;

 private:
  /// Multiplicity of `code` among members in column `c` (0 if absent).
  uint32_t CountOf(ColId c, ValueCode code) const;

  const Table* table_;
  size_t size_ = 0;
  size_t weight_ = 0;
  ColId disagreeing_ = 0;
  /// counts_[c] lists (code, multiplicity) for the distinct codes the
  /// members take in column c. Flat and unsorted: groups hold O(k)
  /// distinct codes per column, so linear probes beat hashing.
  std::vector<std::vector<std::pair<ValueCode, uint32_t>>> counts_;
};

}  // namespace kanon

#endif  // KANON_CORE_GROUP_STATS_H_
