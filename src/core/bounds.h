#ifndef KANON_CORE_BOUNDS_H_
#define KANON_CORE_BOUNDS_H_

#include <cstddef>

#include "core/distance.h"
#include "core/distance_oracle.h"
#include "core/partition.h"
#include "data/table.h"

/// \file
/// Certified lower bounds on OPT(V) for k-anonymity via suppression, used
/// by branch & bound and to audit approximation ratios on instances too
/// large for the exact solvers.
///
/// * Lemma 4.1 bound: OPT >= (k/2) * dΠ for any (k,2k-1)-partition Π that
///   minimizes the diameter sum; we expose the per-partition inequality
///   ANON(S) >= |S| * ceil(d(S)/2)... conservatively |S| * d(S) / 2.
/// * k-NN bound: each row v lies in a group with >= k-1 other rows, so at
///   least max(d_(k-1)NN(v), needed columns) of v's entries are starred;
///   summing a per-row floor gives a partition-free lower bound.

namespace kanon {

/// Per-row nearest-neighbour lower bound:
///   OPT >= sum_v d_{k-1}NN(v)
/// where d_{j}NN(v) is the distance from v to its j-th nearest other row.
/// Proof: v's group S has >= k-1 other members; the columns starred in v
/// are exactly S's disagreeing columns, which number >= max_{u in S}
/// d(u,v) >= d_{k-1}NN(v).
size_t KnnLowerBound(const Table& table, const DistanceMatrix& dm,
                     size_t k);

/// Same bound computed through the shared DistanceOracle seam (works on
/// instances too large for the dense matrix).
size_t KnnLowerBound(const Table& table, const DistanceOracle& oracle,
                     size_t k);

/// Lemma 4.1 left inequality specialized to a concrete partition:
///   sum_S |S| * d(S) / 2 <= sum_S ANON(S).
/// Returns the left side (rounded down) for auditing.
size_t HalfDiameterVolumeBound(const Table& table, const Partition& p);

/// Lemma 4.1 right inequality with corrected constants (see DESIGN.md
/// "Lemma 4.1 constants"): ANON(S) <= |S| (|S|-1) d(S), because the
/// disagreeing-column count is at most the union of per-row difference
/// sets against an anchor. Returns sum_S |S| (|S|-1) d(S).
size_t DiameterVolumeUpperBound(const Table& table, const Partition& p);

/// The paper's as-printed (unsound in general) upper bound
/// sum_S |S| d(S); exposed so the E5 experiment can measure how often it
/// happens to hold in practice. Do NOT use as a certified bound.
size_t AsPrintedDiameterUpperBound(const Table& table, const Partition& p);

}  // namespace kanon

#endif  // KANON_CORE_BOUNDS_H_
