#include "core/suppressor.h"

#include "util/logging.h"

namespace kanon {

Suppressor::Suppressor(RowId num_rows, ColId num_cols)
    : num_rows_(num_rows),
      num_cols_(num_cols),
      mask_(static_cast<size_t>(num_rows) * num_cols, false) {}

void Suppressor::Suppress(RowId row, ColId col) {
  KANON_CHECK_LT(row, num_rows_);
  KANON_CHECK_LT(col, num_cols_);
  mask_[static_cast<size_t>(row) * num_cols_ + col] = true;
}

void Suppressor::SuppressColumn(ColId col) {
  for (RowId r = 0; r < num_rows_; ++r) Suppress(r, col);
}

bool Suppressor::IsSuppressed(RowId row, ColId col) const {
  KANON_CHECK_LT(row, num_rows_);
  KANON_CHECK_LT(col, num_cols_);
  return mask_[static_cast<size_t>(row) * num_cols_ + col];
}

size_t Suppressor::Stars() const {
  size_t stars = 0;
  for (const bool b : mask_) {
    if (b) ++stars;
  }
  return stars;
}

bool Suppressor::IsAttributeSuppressor() const {
  if (num_rows_ == 0) return true;
  for (ColId c = 0; c < num_cols_; ++c) {
    const bool first = IsSuppressed(0, c);
    for (RowId r = 1; r < num_rows_; ++r) {
      if (IsSuppressed(r, c) != first) return false;
    }
  }
  return true;
}

Table Suppressor::Apply(const Table& table) const {
  KANON_CHECK_EQ(table.num_rows(), num_rows_);
  KANON_CHECK_EQ(table.num_columns(), num_cols_);
  Table out = table;
  for (RowId r = 0; r < num_rows_; ++r) {
    for (ColId c = 0; c < num_cols_; ++c) {
      if (IsSuppressed(r, c)) out.set(r, c, kSuppressedCode);
    }
  }
  return out;
}

Suppressor Suppressor::FromAnonymized(const Table& anonymized) {
  Suppressor t(anonymized.num_rows(), anonymized.num_columns());
  for (RowId r = 0; r < anonymized.num_rows(); ++r) {
    for (ColId c = 0; c < anonymized.num_columns(); ++c) {
      if (anonymized.at(r, c) == kSuppressedCode) t.Suppress(r, c);
    }
  }
  return t;
}

}  // namespace kanon
