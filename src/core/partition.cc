#include "core/partition.h"

#include <map>
#include <sstream>

#include "util/logging.h"

namespace kanon {

size_t Partition::TotalMembers() const {
  size_t total = 0;
  for (const Group& g : groups) total += g.size();
  return total;
}

std::string Partition::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (i > 0) os << " ";
    os << "{";
    for (size_t j = 0; j < groups[i].size(); ++j) {
      if (j > 0) os << ",";
      os << groups[i][j];
    }
    os << "}";
  }
  return os.str();
}

bool IsValidCover(const Partition& p, RowId n, size_t min_size,
                  size_t max_size) {
  std::vector<bool> covered(n, false);
  for (const Group& g : p.groups) {
    if (g.size() < min_size || g.size() > max_size) return false;
    for (const RowId r : g) {
      if (r >= n) return false;
      covered[r] = true;
    }
  }
  for (RowId r = 0; r < n; ++r) {
    if (!covered[r]) return false;
  }
  return true;
}

bool IsValidPartition(const Partition& p, RowId n, size_t min_size,
                      size_t max_size) {
  std::vector<int> times_covered(n, 0);
  for (const Group& g : p.groups) {
    if (g.size() < min_size || g.size() > max_size) return false;
    for (const RowId r : g) {
      if (r >= n) return false;
      ++times_covered[r];
    }
  }
  for (RowId r = 0; r < n; ++r) {
    if (times_covered[r] != 1) return false;
  }
  return true;
}

Partition SplitLargeGroups(const Partition& p, size_t k) {
  KANON_CHECK_GE(k, 1u);
  Partition out;
  for (const Group& g : p.groups) {
    KANON_CHECK_GE(g.size(), k);
    if (g.size() < 2 * k) {
      out.groups.push_back(g);
      continue;
    }
    // Cut into floor(|g|/k) chunks; the last chunk absorbs the remainder
    // (size k .. 2k-1).
    const size_t chunks = g.size() / k;
    size_t begin = 0;
    for (size_t i = 0; i < chunks; ++i) {
      const bool last = (i + 1 == chunks);
      const size_t end = last ? g.size() : begin + k;
      out.groups.emplace_back(g.begin() + begin, g.begin() + end);
      begin = end;
    }
  }
  return out;
}

Partition GroupIdenticalRows(const Table& table) {
  std::map<std::vector<ValueCode>, Group> buckets;
  for (RowId r = 0; r < table.num_rows(); ++r) {
    const auto row = table.row(r);
    buckets[std::vector<ValueCode>(row.begin(), row.end())].push_back(r);
  }
  Partition p;
  p.groups.reserve(buckets.size());
  for (auto& [key, group] : buckets) {
    p.groups.push_back(std::move(group));
  }
  return p;
}

}  // namespace kanon
