#include "core/metrics.h"

#include <algorithm>
#include <sstream>

#include "core/cost.h"
#include "util/logging.h"

namespace kanon {

std::string AnonymizationMetrics::ToString() const {
  std::ostringstream os;
  os << "stars=" << stars << " (" << star_fraction * 100.0 << "%)"
     << " discernibility=" << discernibility
     << " avg_class_ratio=" << avg_class_ratio << " groups=[" << min_group
     << ".." << max_group << "]";
  return os.str();
}

AnonymizationMetrics ComputeMetrics(const Table& table, const Partition& p,
                                    size_t k) {
  KANON_CHECK_GE(k, 1u);
  AnonymizationMetrics m;
  m.stars = PartitionCost(table, p);
  const size_t cells =
      static_cast<size_t>(table.num_rows()) * table.num_columns();
  m.star_fraction =
      cells == 0 ? 0.0 : static_cast<double>(m.stars) / cells;
  m.min_group = table.num_rows();
  m.max_group = 0;
  for (const Group& g : p.groups) {
    m.discernibility += g.size() * g.size();
    m.min_group = std::min(m.min_group, g.size());
    m.max_group = std::max(m.max_group, g.size());
  }
  if (!p.groups.empty()) {
    const double avg = static_cast<double>(table.num_rows()) /
                       static_cast<double>(p.groups.size());
    m.avg_class_ratio = avg / static_cast<double>(k);
  }
  return m;
}

}  // namespace kanon
