#ifndef KANON_CORE_DISTANCE_H_
#define KANON_CORE_DISTANCE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "data/table.h"
#include "data/value.h"

/// \file
/// The paper's Definition 4.1: `d(u, v) = |{j : u[j] != v[j]}|` (Hamming
/// distance over coded rows) and the diameter `d(S) = max_{u,v in S}
/// d(u, v)`. The distance is a metric; `DistanceMatrix` precomputes all
/// pairs for the cover algorithms.

namespace kanon {

/// Hamming distance between two coded vectors of equal length.
ColId HammingDistance(std::span<const ValueCode> u,
                      std::span<const ValueCode> v);

/// Hamming distance between two rows of `table`.
ColId RowDistance(const Table& table, RowId a, RowId b);

/// Diameter of the row set `rows` (0 for empty or singleton sets).
ColId SetDiameter(const Table& table, std::span<const RowId> rows);

/// Dense symmetric n x n matrix of pairwise row distances.
class DistanceMatrix {
 public:
  /// Precomputes all pairs in O(n^2 m).
  explicit DistanceMatrix(const Table& table);

  ColId at(RowId a, RowId b) const {
    return dist_[static_cast<size_t>(a) * n_ + b];
  }

  RowId num_rows() const { return n_; }

  /// Diameter of `rows` using the precomputed matrix (O(|rows|^2)).
  ColId Diameter(std::span<const RowId> rows) const;

  /// Distance from `row` to its j-th nearest *other* row (j >= 1), i.e.
  /// the j-th order statistic of {at(row, x) : x != row}. Used by the
  /// k-nearest-neighbor lower bound. Requires 1 <= j <= n-1.
  ColId KthNearestDistance(RowId row, RowId j) const;

 private:
  RowId n_;
  std::vector<ColId> dist_;
};

}  // namespace kanon

#endif  // KANON_CORE_DISTANCE_H_
