#ifndef KANON_CORE_DISTANCE_H_
#define KANON_CORE_DISTANCE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "data/table.h"
#include "data/value.h"
#include "util/run_context.h"
#include "util/status.h"

/// \file
/// The paper's Definition 4.1: `d(u, v) = |{j : u[j] != v[j]}|` (Hamming
/// distance over coded rows) and the diameter `d(S) = max_{u,v in S}
/// d(u, v)`. The distance is a metric; `DistanceMatrix` precomputes all
/// pairs for the cover algorithms.
///
/// Solvers should not construct a DistanceMatrix directly — they go
/// through the `DistanceOracle` seam (core/distance_oracle.h), which
/// picks between this dense matrix and a blocked on-demand path and
/// accounts the memory against the run's budget.

namespace kanon {

/// Hamming distance between two coded vectors of equal length.
ColId HammingDistance(std::span<const ValueCode> u,
                      std::span<const ValueCode> v);

/// Hamming distance between two rows of `table`.
ColId RowDistance(const Table& table, RowId a, RowId b);

/// Diameter of the row set `rows` (0 for empty or singleton sets).
ColId SetDiameter(const Table& table, std::span<const RowId> rows);

/// Dense symmetric n x n matrix of pairwise row distances. Move-only:
/// a matrix created through `Create` carries a memory lease on the
/// RunContext it was charged to and releases it on destruction.
class DistanceMatrix {
 public:
  /// Precomputes all pairs in O(n^2 m) with the tiled parallel fill.
  /// Unguarded legacy entry point (tests, benches, experiment harness):
  /// a table too large for the n^2 allocation aborts. Production paths
  /// use `Create`.
  explicit DistanceMatrix(const Table& table);

  /// Guarded factory: accounts the n^2 footprint against `ctx`'s memory
  /// budget (when `ctx` is non-null) and converts allocation failure
  /// into a typed error instead of `bad_alloc`/abort:
  ///   * kResourceExhausted — the budget or the address space cannot
  ///     hold the matrix (ctx latches StopReason::kBudget), and
  ///   * the ctx stop status — deadline/cancellation observed by the
  ///     cancellation-aware tiled fill.
  /// The returned matrix releases its charged bytes when destroyed, so
  /// `ctx` must outlive it.
  static StatusOr<DistanceMatrix> Create(const Table& table,
                                         RunContext* ctx);

  DistanceMatrix(const DistanceMatrix&) = delete;
  DistanceMatrix& operator=(const DistanceMatrix&) = delete;
  DistanceMatrix(DistanceMatrix&& other) noexcept;
  DistanceMatrix& operator=(DistanceMatrix&& other) noexcept;
  ~DistanceMatrix();

  ColId at(RowId a, RowId b) const {
    return dist_[static_cast<size_t>(a) * n_ + b];
  }

  RowId num_rows() const { return n_; }

  /// Diameter of `rows` using the precomputed matrix (O(|rows|^2)).
  ColId Diameter(std::span<const RowId> rows) const;

  /// Distance from `row` to its j-th nearest *other* row (j >= 1), i.e.
  /// the j-th order statistic of {at(row, x) : x != row}. Used by the
  /// k-nearest-neighbor lower bound. Requires 1 <= j <= n-1.
  ColId KthNearestDistance(RowId row, RowId j) const;

 private:
  explicit DistanceMatrix(RowId n) : n_(n) {}
  void ReleaseLease();

  RowId n_ = 0;
  std::vector<ColId> dist_;
  RunContext* lease_ctx_ = nullptr;
  size_t lease_bytes_ = 0;
};

}  // namespace kanon

#endif  // KANON_CORE_DISTANCE_H_
