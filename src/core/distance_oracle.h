#ifndef KANON_CORE_DISTANCE_ORACLE_H_
#define KANON_CORE_DISTANCE_ORACLE_H_

#include <cstddef>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/distance.h"
#include "data/table.h"
#include "data/value.h"
#include "util/run_context.h"
#include "util/status.h"

/// \file
/// The library's single authoritative source of pairwise row distances.
///
/// Before this seam existed every cover/cluster solver constructed its
/// own dense `DistanceMatrix` — five unguarded n^2 allocations per
/// pipeline for the exact same numbers. `DistanceOracle` replaces those
/// with one component that picks its representation by instance size:
///
///   * **dense** (n <= options.dense_threshold): the tiled,
///     ParallelFor-built all-pairs matrix, O(1) lookups;
///   * **blocked on-demand** (above the threshold): no n^2 allocation;
///     lookups compute one row *strip* (all n distances from one row) at
///     a time and keep the most recent strips in a bounded LRU cache, so
///     center-scan access patterns (mdav, cluster_greedy) stay O(1)
///     amortized while the footprint is max_cached_strips * n.
///
/// Either way construction accounts its footprint against the
/// RunContext memory budget and surfaces failure as a typed StatusOr —
/// never bad_alloc — and the dense build is cancellation-aware and
/// fault-point-probed like every other long kernel.
///
/// Both representations return exactly the same distances, so solver
/// outputs are bit-identical whichever path is active (the data-plane
/// equivalence suite asserts this).

namespace kanon {

struct DistanceOracleOptions {
  /// Largest n for which the dense n^2 matrix is materialized.
  RowId dense_threshold = 4096;
  /// Row strips kept by the on-demand path (clamped to n).
  size_t max_cached_strips = 64;
};

/// Shared pairwise-distance component. Thread-safe: dense lookups are
/// lock-free reads; on-demand lookups serialize on an internal mutex.
/// Holds a reference to the source table, which must outlive it.
class DistanceOracle {
 public:
  /// Builds an oracle for `table`. `ctx` may be null (no accounting or
  /// cancellation). Failure modes mirror DistanceMatrix::Create:
  /// kResourceExhausted on budget/allocation failure (ctx latches
  /// kBudget), or the stop status when the build was interrupted.
  static StatusOr<std::unique_ptr<DistanceOracle>> Create(
      const Table& table, const DistanceOracleOptions& options,
      RunContext* ctx);

  DistanceOracle(const DistanceOracle&) = delete;
  DistanceOracle& operator=(const DistanceOracle&) = delete;
  ~DistanceOracle();

  RowId num_rows() const { return n_; }

  /// True when the dense matrix is materialized.
  bool dense() const { return matrix_.has_value(); }

  /// d(a, b). O(1) dense; O(1) amortized on-demand for strip-local
  /// access patterns, O(nm) on a strip miss.
  ColId at(RowId a, RowId b) const;

  /// Diameter of `rows`: max pairwise distance (0 for |rows| < 2).
  ColId Diameter(std::span<const RowId> rows) const;

  /// Distance from `row` to its j-th nearest other row, 1 <= j <= n-1.
  ColId KthNearestDistance(RowId row, RowId j) const;

 private:
  DistanceOracle(const Table& table, RowId n)
      : table_(table), n_(n) {}

  /// Returns the strip of all n distances from `row`, computing and
  /// caching it if absent. Caller must hold mu_.
  const std::vector<ColId>& StripLocked(RowId row) const;

  const Table& table_;
  const RowId n_;

  // Dense representation (owns the memory lease on the ctx).
  std::optional<DistanceMatrix> matrix_;

  // On-demand representation: LRU of (row, strip).
  size_t max_strips_ = 0;
  mutable std::mutex mu_;
  mutable std::list<std::pair<RowId, std::vector<ColId>>> strips_;
  mutable std::unordered_map<
      RowId, std::list<std::pair<RowId, std::vector<ColId>>>::iterator>
      strip_index_;
  RunContext* lease_ctx_ = nullptr;
  size_t lease_bytes_ = 0;
};

/// The caller/RunContext-owned seam the solvers use. Returns the oracle
/// cached on `ctx` (or an ancestor) for this table if one exists,
/// otherwise builds one and caches it on `ctx`, so every solver stage
/// handed the same context shares one oracle instead of rebuilding the
/// matrix. On failure the ctx is latched (kBudget, or the stop reason)
/// and the status is returned, so callers can uniformly decline with
/// StoppedResult. `ctx` must be non-null and must outlive all uses of
/// the returned pointer.
StatusOr<std::shared_ptr<const DistanceOracle>> SharedDistanceOracle(
    const Table& table, RunContext* ctx,
    const DistanceOracleOptions& options = {});

}  // namespace kanon

#endif  // KANON_CORE_DISTANCE_ORACLE_H_
