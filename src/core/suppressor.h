#ifndef KANON_CORE_SUPPRESSOR_H_
#define KANON_CORE_SUPPRESSOR_H_

#include <cstddef>
#include <vector>

#include "data/table.h"
#include "data/value.h"

/// \file
/// The paper's Definition 2.1: a suppressor t maps each entry v[j] to
/// either v[j] or `*`. Represented as one boolean mask per row; applying
/// a suppressor yields the anonymized table t(V).

namespace kanon {

/// Entry-suppression map over a fixed n x m shape.
class Suppressor {
 public:
  /// Identity suppressor (nothing suppressed) for an n x m relation.
  Suppressor(RowId num_rows, ColId num_cols);

  RowId num_rows() const { return num_rows_; }
  ColId num_cols() const { return num_cols_; }

  /// Marks entry (row, col) suppressed. Idempotent.
  void Suppress(RowId row, ColId col);

  /// Marks `col` suppressed in every row (attribute suppression).
  void SuppressColumn(ColId col);

  bool IsSuppressed(RowId row, ColId col) const;

  /// Number of suppressed entries — the objective the paper minimizes.
  size_t Stars() const;

  /// True iff every row suppresses exactly the same set of columns and
  /// those columns are suppressed in all rows (i.e. the suppressor is an
  /// attribute suppressor in the sense of Section 3.1).
  bool IsAttributeSuppressor() const;

  /// Applies the suppressor: returns a copy of `table` with suppressed
  /// entries replaced by kSuppressedCode. Shape must match.
  Table Apply(const Table& table) const;

  /// Reconstructs the suppressor implied by an anonymized table: entry
  /// (r, c) is suppressed iff anonymized.at(r, c) == kSuppressedCode.
  static Suppressor FromAnonymized(const Table& anonymized);

 private:
  RowId num_rows_;
  ColId num_cols_;
  std::vector<bool> mask_;  // row-major
};

}  // namespace kanon

#endif  // KANON_CORE_SUPPRESSOR_H_
