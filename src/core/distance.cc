#include "core/distance.h"

#include <algorithm>

#include "util/logging.h"
#include "util/parallel.h"

namespace kanon {

ColId HammingDistance(std::span<const ValueCode> u,
                      std::span<const ValueCode> v) {
  KANON_CHECK_EQ(u.size(), v.size());
  ColId d = 0;
  for (size_t j = 0; j < u.size(); ++j) {
    if (u[j] != v[j]) ++d;
  }
  return d;
}

ColId RowDistance(const Table& table, RowId a, RowId b) {
  return HammingDistance(table.row(a), table.row(b));
}

ColId SetDiameter(const Table& table, std::span<const RowId> rows) {
  ColId diameter = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      diameter = std::max(diameter, RowDistance(table, rows[i], rows[j]));
    }
  }
  return diameter;
}

DistanceMatrix::DistanceMatrix(const Table& table)
    : n_(table.num_rows()),
      dist_(static_cast<size_t>(n_) * n_, 0) {
  // Cell (x, y) is written exactly once, by iteration a = min(x, y), so
  // chunking the outer loop across threads is race-free and the result
  // is identical to the serial fill.
  ParallelFor(0, n_, /*min_chunk=*/64, [&](size_t lo, size_t hi) {
    for (RowId a = static_cast<RowId>(lo); a < hi; ++a) {
      for (RowId b = a + 1; b < n_; ++b) {
        const ColId d = RowDistance(table, a, b);
        dist_[static_cast<size_t>(a) * n_ + b] = d;
        dist_[static_cast<size_t>(b) * n_ + a] = d;
      }
    }
  });
}

ColId DistanceMatrix::Diameter(std::span<const RowId> rows) const {
  ColId diameter = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      diameter = std::max(diameter, at(rows[i], rows[j]));
    }
  }
  return diameter;
}

ColId DistanceMatrix::KthNearestDistance(RowId row, RowId j) const {
  KANON_CHECK_GE(j, 1u);
  KANON_CHECK_LT(j, n_);
  std::vector<ColId> others;
  others.reserve(n_ - 1);
  for (RowId x = 0; x < n_; ++x) {
    if (x != row) others.push_back(at(row, x));
  }
  std::nth_element(others.begin(), others.begin() + (j - 1), others.end());
  return others[j - 1];
}

}  // namespace kanon
