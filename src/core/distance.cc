#include "core/distance.h"

#include <algorithm>
#include <new>
#include <utility>

#include "fault/fault.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace kanon {

namespace {

/// Rows per tile of the blocked matrix fill. A 64-row tile of 16-column
/// uint32 codes is ~4 KiB per side, so one tile pair lives comfortably
/// in L1 and each row is reused 64 times per load.
constexpr RowId kDistanceTile = 64;

/// Tiled symmetric fill of the all-pairs matrix. Cell (x, y) with x < y
/// is written exactly once, by the tile pair (x/T, y/T), and tile rows
/// are distributed across workers by ParallelFor, so writes are
/// race-free and the result is bit-identical to the serial fill. With a
/// stopped context the unvisited tail is simply left zero — callers
/// must check ctx->ShouldStop() and discard the partial matrix.
void FillDistanceTiled(const Table& table, ColId* dist, RunContext* ctx) {
  const RowId n = table.num_rows();
  const ColId m = table.num_columns();
  const size_t num_tiles =
      (static_cast<size_t>(n) + kDistanceTile - 1) / kDistanceTile;
  ParallelFor(
      0, num_tiles, /*min_chunk=*/1,
      [&](size_t lo, size_t hi) {
        for (size_t ta = lo; ta < hi; ++ta) {
          const RowId a0 = static_cast<RowId>(ta * kDistanceTile);
          const RowId a1 =
              std::min<RowId>(n, a0 + kDistanceTile);
          for (size_t tb = ta; tb < num_tiles; ++tb) {
            // One cooperative checkpoint per tile pair: an injected
            // fault expires the deadline exactly like a real one.
            if (ctx != nullptr) {
              if (KANON_FAULT_POINT("distance.build")) {
                ctx->MarkStopped(StopReason::kDeadline);
              }
              if (ctx->ShouldStop()) return;
            }
            const RowId b0 = static_cast<RowId>(tb * kDistanceTile);
            const RowId b1 =
                std::min<RowId>(n, b0 + kDistanceTile);
            for (RowId a = a0; a < a1; ++a) {
              const ValueCode* ra = table.row(a).data();
              for (RowId b = (tb == ta ? a + 1 : b0); b < b1; ++b) {
                const ValueCode* rb = table.row(b).data();
                ColId d = 0;
                for (ColId j = 0; j < m; ++j) {
                  d += static_cast<ColId>(ra[j] != rb[j]);
                }
                dist[static_cast<size_t>(a) * n + b] = d;
                dist[static_cast<size_t>(b) * n + a] = d;
              }
            }
          }
        }
      },
      ctx);
}

}  // namespace

ColId HammingDistance(std::span<const ValueCode> u,
                      std::span<const ValueCode> v) {
  KANON_CHECK_EQ(u.size(), v.size());
  ColId d = 0;
  for (size_t j = 0; j < u.size(); ++j) {
    d += static_cast<ColId>(u[j] != v[j]);
  }
  return d;
}

ColId RowDistance(const Table& table, RowId a, RowId b) {
  return HammingDistance(table.row(a), table.row(b));
}

ColId SetDiameter(const Table& table, std::span<const RowId> rows) {
  ColId diameter = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      diameter = std::max(diameter, RowDistance(table, rows[i], rows[j]));
    }
  }
  return diameter;
}

DistanceMatrix::DistanceMatrix(const Table& table)
    : n_(table.num_rows()),
      dist_(static_cast<size_t>(table.num_rows()) * table.num_rows(), 0) {
  FillDistanceTiled(table, dist_.data(), nullptr);
}

StatusOr<DistanceMatrix> DistanceMatrix::Create(const Table& table,
                                                RunContext* ctx) {
  const RowId n = table.num_rows();
  const size_t cells = static_cast<size_t>(n) * n;
  // Overflow / address-space guard: refuse instead of throwing.
  if (n != 0 && cells / n != n) {
    if (ctx != nullptr) ctx->MarkStopped(StopReason::kBudget);
    return Status::ResourceExhausted(
        "distance matrix: n^2 cell count overflows");
  }
  const size_t bytes = cells * sizeof(ColId);
  if (ctx != nullptr && !ctx->TryChargeMemory(bytes)) {
    return Status::ResourceExhausted(
        "distance matrix exceeds the run's memory budget");
  }
  DistanceMatrix dm(n);
  try {
    dm.dist_.resize(cells, 0);
  } catch (const std::bad_alloc&) {
    if (ctx != nullptr) {
      ctx->ReleaseMemory(bytes);
      ctx->MarkStopped(StopReason::kBudget);
    }
    return Status::ResourceExhausted(
        "distance matrix allocation failed (bad_alloc)");
  }
  dm.lease_ctx_ = ctx;
  dm.lease_bytes_ = bytes;
  FillDistanceTiled(table, dm.dist_.data(), ctx);
  if (ctx != nullptr && ctx->ShouldStop()) {
    // Partially-filled matrix is discarded; the lease releases with it.
    return StopReasonToStatus(ctx->stop_reason());
  }
  return dm;
}

DistanceMatrix::DistanceMatrix(DistanceMatrix&& other) noexcept
    : n_(other.n_),
      dist_(std::move(other.dist_)),
      lease_ctx_(std::exchange(other.lease_ctx_, nullptr)),
      lease_bytes_(std::exchange(other.lease_bytes_, 0)) {}

DistanceMatrix& DistanceMatrix::operator=(DistanceMatrix&& other) noexcept {
  if (this != &other) {
    ReleaseLease();
    n_ = other.n_;
    dist_ = std::move(other.dist_);
    lease_ctx_ = std::exchange(other.lease_ctx_, nullptr);
    lease_bytes_ = std::exchange(other.lease_bytes_, 0);
  }
  return *this;
}

DistanceMatrix::~DistanceMatrix() { ReleaseLease(); }

void DistanceMatrix::ReleaseLease() {
  if (lease_ctx_ != nullptr) {
    lease_ctx_->ReleaseMemory(lease_bytes_);
    lease_ctx_ = nullptr;
    lease_bytes_ = 0;
  }
}

ColId DistanceMatrix::Diameter(std::span<const RowId> rows) const {
  ColId diameter = 0;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      diameter = std::max(diameter, at(rows[i], rows[j]));
    }
  }
  return diameter;
}

ColId DistanceMatrix::KthNearestDistance(RowId row, RowId j) const {
  KANON_CHECK_GE(j, 1u);
  KANON_CHECK_LT(j, n_);
  std::vector<ColId> others;
  others.reserve(n_ - 1);
  for (RowId x = 0; x < n_; ++x) {
    if (x != row) others.push_back(at(row, x));
  }
  std::nth_element(others.begin(), others.begin() + (j - 1), others.end());
  return others[j - 1];
}

}  // namespace kanon
