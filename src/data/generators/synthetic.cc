#include "data/generators/synthetic.h"

#include <string>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace kanon {

Table SyntheticTable(const SyntheticTableOptions& options) {
  KANON_CHECK(!options.alphabet_sizes.empty())
      << "SyntheticTable needs at least one alphabet size";
  for (const uint32_t a : options.alphabet_sizes) {
    KANON_CHECK_GT(a, 0u) << "alphabet sizes must be >= 1";
  }
  Schema schema;
  for (uint32_t c = 0; c < options.num_columns; ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table table(std::move(schema));
  std::vector<uint32_t> alphabets(options.num_columns);
  for (ColId c = 0; c < options.num_columns; ++c) {
    alphabets[c] =
        options.alphabet_sizes[c % options.alphabet_sizes.size()];
    // Pre-intern so codes are stable regardless of draw order.
    for (uint32_t v = 0; v < alphabets[c]; ++v) {
      table.mutable_schema().Intern(c, "v" + std::to_string(v));
    }
  }
  Rng rng(options.seed);
  std::vector<ValueCode> codes(options.num_columns);
  for (uint64_t r = 0; r < options.num_rows; ++r) {
    for (ColId c = 0; c < options.num_columns; ++c) {
      codes[c] = options.zipf_s > 0.0
                     ? rng.Zipf(alphabets[c], options.zipf_s)
                     : rng.Uniform(alphabets[c]);
    }
    table.AppendRow(codes);
  }
  return table;
}

}  // namespace kanon
