#ifndef KANON_DATA_GENERATORS_UNIFORM_H_
#define KANON_DATA_GENERATORS_UNIFORM_H_

#include <cstdint>

#include "data/table.h"
#include "util/random.h"

/// \file
/// Unstructured categorical table generator: n rows, m attributes, each
/// cell drawn independently from an alphabet of the given cardinality,
/// uniformly or Zipf-skewed. This is the adversarial "no structure"
/// workload: optimal k-anonymizations must pay close to full suppression.

namespace kanon {

/// Parameters for UniformTable.
struct UniformTableOptions {
  uint32_t num_rows = 16;
  uint32_t num_columns = 4;
  /// Alphabet size |Σ_j| for every attribute.
  uint32_t alphabet = 4;
  /// Zipf exponent; 0 = uniform draws.
  double zipf_s = 0.0;
};

/// Generates a table with attribute names "a0", "a1", ... and values
/// "v0".."v{alphabet-1}" per attribute. Deterministic given `rng` state.
Table UniformTable(const UniformTableOptions& options, Rng* rng);

}  // namespace kanon

#endif  // KANON_DATA_GENERATORS_UNIFORM_H_
