#ifndef KANON_DATA_GENERATORS_CLUSTERED_H_
#define KANON_DATA_GENERATORS_CLUSTERED_H_

#include <cstdint>

#include "data/table.h"
#include "util/random.h"

/// \file
/// Planted-cluster generator: rows are noisy copies of a few center
/// vectors. This is the favourable workload for the paper's algorithms —
/// groups of size >= k with small Hamming diameter exist by construction,
/// so cheap k-anonymizations exist and approximation quality is visible.
/// With noise_flips = 0 the exact optimum is known analytically (0 when
/// every cluster has size >= k), which the tests exploit.

namespace kanon {

/// Parameters for ClusteredTable.
struct ClusteredTableOptions {
  uint32_t num_rows = 24;
  uint32_t num_columns = 6;
  uint32_t alphabet = 8;
  /// Number of planted centers; rows are assigned round-robin so every
  /// cluster has floor/ceil(n / clusters) members.
  uint32_t num_clusters = 4;
  /// Exactly this many coordinates of each row are re-drawn (possibly to
  /// the same value) after copying its center.
  uint32_t noise_flips = 1;
};

/// Generates the clustered table. Attribute/value naming matches
/// UniformTable. If `center_of_row` is non-null it receives, per row, the
/// index of the planted center the row was derived from.
Table ClusteredTable(const ClusteredTableOptions& options, Rng* rng,
                     std::vector<uint32_t>* center_of_row = nullptr);

}  // namespace kanon

#endif  // KANON_DATA_GENERATORS_CLUSTERED_H_
