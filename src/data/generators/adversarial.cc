#include "data/generators/adversarial.h"

#include <string>
#include <vector>

#include "util/logging.h"

namespace kanon {

Table OneHotTable(uint32_t n) {
  KANON_CHECK_GT(n, 0u);
  Schema schema;
  for (uint32_t c = 0; c < n; ++c) {
    schema.AddAttribute("c" + std::to_string(c));
  }
  Table table(std::move(schema));
  // Pre-intern "0" then "1" so codes are 0/1 in every column.
  for (ColId c = 0; c < n; ++c) {
    table.mutable_schema().Intern(c, "0");
    table.mutable_schema().Intern(c, "1");
  }
  std::vector<ValueCode> codes(n, 0);
  for (uint32_t r = 0; r < n; ++r) {
    codes[r] = 1;
    table.AppendRow(codes);
    codes[r] = 0;
  }
  return table;
}

Table DecoyClusterTable(const DecoyClusterOptions& options, Rng* rng,
                        std::vector<bool>* is_decoy) {
  KANON_CHECK_GT(options.num_clusters, 0u);
  KANON_CHECK_GT(options.cluster_size, 0u);
  KANON_CHECK_LE(options.probe_columns, options.num_columns);
  KANON_CHECK_GT(options.alphabet, 1u);

  Schema schema;
  for (uint32_t c = 0; c < options.num_columns; ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table table(std::move(schema));
  for (ColId c = 0; c < options.num_columns; ++c) {
    for (uint32_t v = 0; v < options.alphabet; ++v) {
      table.mutable_schema().Intern(c, "v" + std::to_string(v));
    }
  }

  if (is_decoy != nullptr) is_decoy->clear();
  std::vector<ValueCode> center(options.num_columns);
  std::vector<ValueCode> row(options.num_columns);
  for (uint32_t cluster = 0; cluster < options.num_clusters; ++cluster) {
    for (uint32_t c = 0; c < options.num_columns; ++c) {
      center[c] = rng->Uniform(options.alphabet);
    }
    for (uint32_t i = 0; i < options.cluster_size; ++i) {
      table.AppendRow(center);
      if (is_decoy != nullptr) is_decoy->push_back(false);
    }
    for (uint32_t d = 0; d < options.decoys_per_cluster; ++d) {
      row = center;
      // Diverge on every non-probe column (guaranteed different value).
      for (uint32_t c = options.probe_columns; c < options.num_columns;
           ++c) {
        const ValueCode shift = 1 + rng->Uniform(options.alphabet - 1);
        row[c] = (center[c] + shift) % options.alphabet;
      }
      table.AppendRow(row);
      if (is_decoy != nullptr) is_decoy->push_back(true);
    }
  }
  return table;
}

}  // namespace kanon
