#include "data/generators/medical.h"

#include <string>
#include <vector>

#include "util/logging.h"

namespace kanon {

namespace {

const char* const kFirstNames[] = {"john",  "mary",  "harry", "beatrice",
                                   "james", "linda", "robert", "susan",
                                   "david", "karen", "paul",  "nancy"};
const char* const kLastNames[] = {"stone",  "reyser", "ramos",  "smith",
                                  "jones",  "brown",  "garcia", "miller",
                                  "davis",  "wilson", "moore",  "taylor"};
const char* const kAgeBands[] = {"0-20", "21-40", "41-60", "61+"};
const char* const kRaces[] = {"afr-am", "cauc", "hisp", "asian"};
const char* const kProcedures[] = {"x-ray", "mri", "ct-scan", "ultrasound"};

}  // namespace

Table MedicalTable(const MedicalTableOptions& options, Rng* rng) {
  const uint32_t pool = std::min<uint32_t>(
      options.name_pool, static_cast<uint32_t>(std::size(kFirstNames)));
  KANON_CHECK_GT(pool, 0u);
  Schema schema({"first", "last", "age_band", "race", "procedure"});
  Table table(std::move(schema));
  std::vector<std::string> row(5);
  for (uint32_t r = 0; r < options.num_rows; ++r) {
    row[0] = kFirstNames[rng->Uniform(pool)];
    row[1] = kLastNames[rng->Uniform(pool)];
    row[2] = kAgeBands[rng->Uniform(std::size(kAgeBands))];
    row[3] = kRaces[rng->Uniform(std::size(kRaces))];
    row[4] = kProcedures[rng->Uniform(std::size(kProcedures))];
    table.AppendStringRow(row);
  }
  return table;
}

Table PaperIntroTable() {
  Schema schema({"first", "last", "age", "race"});
  Table table(std::move(schema));
  table.AppendStringRow({"harry", "stone", "34", "afr-am"});
  table.AppendStringRow({"john", "reyser", "36", "cauc"});
  table.AppendStringRow({"beatrice", "stone", "47", "afr-am"});
  table.AppendStringRow({"john", "ramos", "22", "hisp"});
  return table;
}

}  // namespace kanon
