#ifndef KANON_DATA_GENERATORS_SYNTHETIC_H_
#define KANON_DATA_GENERATORS_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "data/table.h"

/// \file
/// `kanon_gen`-style synthetic-table generator: the reproducible
/// million-row workload. Unlike UniformTable (one alphabet size for all
/// columns) each column draws from its own alphabet, sizes cycled from a
/// caller-supplied list, with optional Zipf skew. Fully deterministic
/// from the seed — benchmarks regenerate inputs instead of shipping data
/// files, and the `bench/kanon_gen` CLI writes the same tables as CSV
/// for external tools.

namespace kanon {

/// Parameters for SyntheticTable.
struct SyntheticTableOptions {
  uint64_t num_rows = 1024;
  uint32_t num_columns = 8;
  /// Per-column alphabet sizes, cycled when shorter than num_columns
  /// (column c uses alphabet_sizes[c % size()]). Must be non-empty with
  /// every entry >= 1.
  std::vector<uint32_t> alphabet_sizes = {8, 4, 16, 2};
  /// Zipf exponent for cell draws; 0 = uniform.
  double zipf_s = 0.0;
  /// Seed for the internal PCG32 stream.
  uint64_t seed = 1;
};

/// Generates a table with attributes "a0".."a{m-1}" and values "v0".."vN"
/// per column (codes pre-interned, so code i <=> "vi" everywhere).
/// Deterministic: same options, same table.
Table SyntheticTable(const SyntheticTableOptions& options);

}  // namespace kanon

#endif  // KANON_DATA_GENERATORS_SYNTHETIC_H_
