#include "data/generators/clustered.h"

#include <string>
#include <vector>

#include "util/logging.h"

namespace kanon {

Table ClusteredTable(const ClusteredTableOptions& options, Rng* rng,
                     std::vector<uint32_t>* center_of_row) {
  KANON_CHECK_GT(options.alphabet, 0u);
  KANON_CHECK_GT(options.num_clusters, 0u);
  KANON_CHECK_LE(options.noise_flips, options.num_columns);
  Schema schema;
  for (uint32_t c = 0; c < options.num_columns; ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table table(std::move(schema));
  for (ColId c = 0; c < options.num_columns; ++c) {
    for (uint32_t v = 0; v < options.alphabet; ++v) {
      table.mutable_schema().Intern(c, "v" + std::to_string(v));
    }
  }

  std::vector<std::vector<ValueCode>> centers(options.num_clusters);
  for (auto& center : centers) {
    center.resize(options.num_columns);
    for (uint32_t c = 0; c < options.num_columns; ++c) {
      center[c] = rng->Uniform(options.alphabet);
    }
  }

  if (center_of_row != nullptr) center_of_row->clear();
  std::vector<ValueCode> codes(options.num_columns);
  for (uint32_t r = 0; r < options.num_rows; ++r) {
    const uint32_t which = r % options.num_clusters;
    codes = centers[which];
    if (options.noise_flips > 0) {
      const std::vector<uint32_t> cols = rng->SampleWithoutReplacement(
          options.num_columns, options.noise_flips);
      for (const uint32_t c : cols) {
        codes[c] = rng->Uniform(options.alphabet);
      }
    }
    table.AppendRow(codes);
    if (center_of_row != nullptr) center_of_row->push_back(which);
  }
  return table;
}

}  // namespace kanon
