#include "data/generators/uniform.h"

#include <string>
#include <vector>

#include "util/logging.h"

namespace kanon {

Table UniformTable(const UniformTableOptions& options, Rng* rng) {
  KANON_CHECK_GT(options.alphabet, 0u);
  Schema schema;
  for (uint32_t c = 0; c < options.num_columns; ++c) {
    schema.AddAttribute("a" + std::to_string(c));
  }
  Table table(std::move(schema));
  // Pre-intern the full alphabet so codes are stable regardless of draw
  // order (code i <=> "vi" in every column).
  for (ColId c = 0; c < options.num_columns; ++c) {
    for (uint32_t v = 0; v < options.alphabet; ++v) {
      table.mutable_schema().Intern(c, "v" + std::to_string(v));
    }
  }
  std::vector<ValueCode> codes(options.num_columns);
  for (uint32_t r = 0; r < options.num_rows; ++r) {
    for (uint32_t c = 0; c < options.num_columns; ++c) {
      codes[c] = options.zipf_s > 0.0
                     ? rng->Zipf(options.alphabet, options.zipf_s)
                     : rng->Uniform(options.alphabet);
    }
    table.AppendRow(codes);
  }
  return table;
}

}  // namespace kanon
