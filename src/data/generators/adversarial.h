#ifndef KANON_DATA_GENERATORS_ADVERSARIAL_H_
#define KANON_DATA_GENERATORS_ADVERSARIAL_H_

#include <cstdint>

#include "data/table.h"
#include "util/random.h"

/// \file
/// Adversarial instances exposing the analysis's pressure points.
///
/// * One-hot tables: n rows over n binary columns with row i carrying a
///   single 1 at column i. Pairwise Hamming distance is uniformly 2,
///   yet any group of s rows disagrees on s columns — the family that
///   separates the diameter-sum surrogate from the true ANON cost
///   (DESIGN.md "Lemma 4.1 constants") and stresses every algorithm's
///   grouping logic equally.
/// * Decoy-cluster tables: half the rows form genuine tight clusters,
///   the other half form "decoys" that look close to a cluster center
///   on a probe prefix of columns but diverge on the rest; greedy
///   ball growth around decoy centers is systematically misled.

namespace kanon {

/// n rows, n binary columns, row i = e_i. OPT for k | n is k groups of
/// size k costing k^2 columns... exactly n*k stars; any partition costs
/// sum |S_i|^2 >= n*k, so OPT(V) = n*k when k divides n.
Table OneHotTable(uint32_t n);

/// Parameters for DecoyClusterTable.
struct DecoyClusterOptions {
  /// Number of genuine clusters; each has `cluster_size` identical rows.
  uint32_t num_clusters = 3;
  uint32_t cluster_size = 4;
  /// Decoys per cluster: rows equal to the center on the first
  /// `probe_columns` attributes and random elsewhere.
  uint32_t decoys_per_cluster = 2;
  uint32_t num_columns = 12;
  uint32_t probe_columns = 4;
  uint32_t alphabet = 8;
};

/// Generates the decoy instance; if `is_decoy` is non-null it receives
/// one flag per row.
Table DecoyClusterTable(const DecoyClusterOptions& options, Rng* rng,
                        std::vector<bool>* is_decoy = nullptr);

}  // namespace kanon

#endif  // KANON_DATA_GENERATORS_ADVERSARIAL_H_
