#ifndef KANON_DATA_GENERATORS_CENSUS_H_
#define KANON_DATA_GENERATORS_CENSUS_H_

#include <cstdint>

#include "data/table.h"
#include "util/random.h"

/// \file
/// Synthetic census microdata generator.
///
/// Substitute for the UCI "Adult" census extract commonly used in the
/// k-anonymity literature (the real extract is not available offline).
/// The generator reproduces the properties the algorithms are sensitive
/// to: 8 categorical quasi-identifier attributes with realistic
/// cardinalities (2..41) and heavily skewed marginal distributions, plus
/// mild attribute correlation (education <-> occupation, age band <->
/// marital status). Absolute values are fictional.

namespace kanon {

/// Parameters for CensusTable.
struct CensusTableOptions {
  uint32_t num_rows = 200;
  /// Correlation strength in [0,1]: probability that correlated attribute
  /// pairs are drawn jointly rather than independently.
  double correlation = 0.6;
};

/// Generates rows over the schema:
///   age_band, workclass, education, marital, occupation, race, sex,
///   country.
Table CensusTable(const CensusTableOptions& options, Rng* rng);

}  // namespace kanon

#endif  // KANON_DATA_GENERATORS_CENSUS_H_
