#include "data/generators/census.h"

#include <string>
#include <vector>

#include "util/logging.h"

namespace kanon {

namespace {

/// One categorical attribute: value labels plus unnormalized weights.
struct Attribute {
  const char* name;
  std::vector<const char*> labels;
  std::vector<double> weights;
};

/// Draws an index from `weights` proportionally.
uint32_t Weighted(const std::vector<double>& weights, Rng* rng) {
  double total = 0.0;
  for (const double w : weights) total += w;
  double u = rng->UniformDouble() * total;
  for (uint32_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return static_cast<uint32_t>(weights.size() - 1);
}

std::vector<Attribute> CensusAttributes() {
  std::vector<Attribute> attrs;
  attrs.push_back({"age_band",
                   {"0-20", "21-30", "31-40", "41-50", "51-60", "61-70",
                    "71+"},
                   {8, 22, 25, 20, 14, 8, 3}});
  attrs.push_back({"workclass",
                   {"private", "self-emp", "federal", "state", "local",
                    "unemployed"},
                   {70, 10, 4, 5, 6, 5}});
  attrs.push_back({"education",
                   {"none", "primary", "hs-grad", "some-college",
                    "bachelors", "masters", "doctorate"},
                   {2, 10, 32, 22, 22, 9, 3}});
  attrs.push_back({"marital",
                   {"never", "married", "divorced", "separated",
                    "widowed"},
                   {33, 46, 14, 3, 4}});
  attrs.push_back({"occupation",
                   {"clerical", "craft", "exec", "prof", "sales",
                    "service", "transport", "tech", "farming", "military"},
                   {13, 13, 13, 13, 11, 16, 7, 9, 4, 1}});
  attrs.push_back({"race",
                   {"white", "black", "asian", "amer-indian", "other"},
                   {73, 12, 8, 2, 5}});
  attrs.push_back({"sex", {"male", "female"}, {52, 48}});
  attrs.push_back({"country",
                   {"us", "mexico", "philippines", "germany", "canada",
                    "india", "uk", "china", "cuba", "other"},
                   {83, 4, 1.5, 1, 1, 1, 0.8, 0.7, 0.7, 6.3}});
  return attrs;
}

}  // namespace

Table CensusTable(const CensusTableOptions& options, Rng* rng) {
  KANON_CHECK_GE(options.correlation, 0.0);
  KANON_CHECK_LE(options.correlation, 1.0);
  const std::vector<Attribute> attrs = CensusAttributes();
  Schema schema;
  for (const Attribute& a : attrs) schema.AddAttribute(a.name);
  Table table(std::move(schema));
  for (ColId c = 0; c < attrs.size(); ++c) {
    for (const char* label : attrs[c].labels) {
      table.mutable_schema().Intern(c, label);
    }
  }
  // Attribute column indices by role.
  constexpr ColId kAge = 0, kEducation = 2, kMarital = 3, kOccupation = 4;

  std::vector<ValueCode> codes(attrs.size());
  for (uint32_t r = 0; r < options.num_rows; ++r) {
    for (ColId c = 0; c < attrs.size(); ++c) {
      codes[c] = Weighted(attrs[c].weights, rng);
    }
    // Correlations (applied with probability `correlation`): high
    // education pulls occupation toward exec/prof/tech; young age band
    // pulls marital status toward "never".
    if (rng->Bernoulli(options.correlation)) {
      if (codes[kEducation] >= 4) {  // bachelors or above
        const ValueCode professional[] = {2, 3, 7};  // exec, prof, tech
        codes[kOccupation] = professional[rng->Uniform(3)];
      }
    }
    if (rng->Bernoulli(options.correlation)) {
      if (codes[kAge] <= 1) {  // 0-20 or 21-30
        codes[kMarital] = 0;  // never married
      }
    }
    table.AppendRow(codes);
  }
  return table;
}

}  // namespace kanon
