#ifndef KANON_DATA_GENERATORS_MEDICAL_H_
#define KANON_DATA_GENERATORS_MEDICAL_H_

#include <cstdint>

#include "data/table.h"
#include "util/random.h"

/// \file
/// Synthetic hospital-records generator, modeled on the paper's
/// introductory example ("Who had an X-ray at this hospital yesterday?"):
/// first name, last name, age band, race, procedure. Names are drawn from
/// small pools with shared surnames so that textual near-matches (the
/// "* Stone" / "John R*" pattern of the example) genuinely occur.

namespace kanon {

/// Parameters for MedicalTable.
struct MedicalTableOptions {
  uint32_t num_rows = 12;
  /// Size of the first/last name pools; smaller pools create more
  /// coincidental matches and hence cheaper anonymizations.
  uint32_t name_pool = 8;
};

/// Generates rows over schema: first, last, age_band, race, procedure.
Table MedicalTable(const MedicalTableOptions& options, Rng* rng);

/// The literal 4-row relation from Section 1 of the paper (Harry Stone /
/// John Reyser / Beatrice Stone / John Ramos). Used by the quickstart
/// example and the documentation tests.
Table PaperIntroTable();

}  // namespace kanon

#endif  // KANON_DATA_GENERATORS_MEDICAL_H_
