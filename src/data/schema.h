#ifndef KANON_DATA_SCHEMA_H_
#define KANON_DATA_SCHEMA_H_

#include <string>
#include <string_view>
#include <vector>

#include "data/dictionary.h"
#include "data/value.h"

/// \file
/// Relation schema: attribute names plus one dictionary per attribute.

namespace kanon {

/// Schema of a degree-m relation. Owns the per-attribute dictionaries.
class Schema {
 public:
  Schema() = default;

  /// Creates a schema with the given attribute names.
  explicit Schema(std::vector<std::string> attribute_names);

  /// Appends an attribute; returns its column id.
  ColId AddAttribute(std::string_view name);

  /// Degree m of the relation.
  ColId num_attributes() const {
    return static_cast<ColId>(names_.size());
  }

  const std::string& attribute_name(ColId col) const;

  /// Index of the attribute named `name`, or num_attributes() if absent.
  ColId FindAttribute(std::string_view name) const;

  Dictionary& dictionary(ColId col);
  const Dictionary& dictionary(ColId col) const;

  /// Interns `value` into attribute `col`'s dictionary.
  ValueCode Intern(ColId col, std::string_view value);

  /// Decodes `code` via attribute `col`'s dictionary ("*" for suppressed).
  const std::string& Decode(ColId col, ValueCode code) const;

 private:
  std::vector<std::string> names_;
  std::vector<Dictionary> dicts_;
};

}  // namespace kanon

#endif  // KANON_DATA_SCHEMA_H_
