#include "data/schema.h"

#include "util/logging.h"

namespace kanon {

Schema::Schema(std::vector<std::string> attribute_names)
    : names_(std::move(attribute_names)), dicts_(names_.size()) {}

ColId Schema::AddAttribute(std::string_view name) {
  names_.emplace_back(name);
  dicts_.emplace_back();
  return static_cast<ColId>(names_.size() - 1);
}

const std::string& Schema::attribute_name(ColId col) const {
  KANON_CHECK_LT(col, names_.size());
  return names_[col];
}

ColId Schema::FindAttribute(std::string_view name) const {
  for (ColId c = 0; c < names_.size(); ++c) {
    if (names_[c] == name) return c;
  }
  return num_attributes();
}

Dictionary& Schema::dictionary(ColId col) {
  KANON_CHECK_LT(col, dicts_.size());
  return dicts_[col];
}

const Dictionary& Schema::dictionary(ColId col) const {
  KANON_CHECK_LT(col, dicts_.size());
  return dicts_[col];
}

ValueCode Schema::Intern(ColId col, std::string_view value) {
  return dictionary(col).Intern(value);
}

const std::string& Schema::Decode(ColId col, ValueCode code) const {
  return dictionary(col).Decode(code);
}

}  // namespace kanon
