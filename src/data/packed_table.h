#ifndef KANON_DATA_PACKED_TABLE_H_
#define KANON_DATA_PACKED_TABLE_H_

#include <span>
#include <vector>

#include "data/table.h"
#include "data/value.h"

/// \file
/// Columnar mirror of a `Table`.
///
/// `Table` stores rows contiguously (row-major), which is the right
/// layout for the Hamming kernels that compare whole rows. Everything
/// that scans *by attribute* — per-column mode counting, per-column
/// distinct-value statistics, the content fingerprint of the service
/// cache — wants the transpose: one contiguous code array per column, so
/// the inner equality/count loops touch sequential memory and
/// vectorize. `PackedTable` is that mirror: per-column packed code
/// arrays plus per-column distinct-value counts, built in O(nm) from a
/// `Table` and kept in sync row-by-row via `AppendRow` when the caller
/// grows the source table and the mirror together.

namespace kanon {

/// Immutable view of one packed column: the contiguous code array plus
/// the number of distinct codes present in it.
struct ColumnView {
  std::span<const ValueCode> codes;
  size_t distinct = 0;
};

/// Column-major mirror of a Table. Holds copies of the codes (not
/// pointers into the source), so it remains valid independently of the
/// source table's lifetime.
class PackedTable {
 public:
  /// Transposes `table` and counts per-column distinct values. O(nm).
  explicit PackedTable(const Table& table);

  /// An empty mirror with `num_columns` columns (pair with AppendRow).
  explicit PackedTable(ColId num_columns);

  RowId num_rows() const { return static_cast<RowId>(num_rows_); }
  ColId num_columns() const { return static_cast<ColId>(cols_.size()); }

  /// Appends one row of codes (size must equal num_columns), updating
  /// the per-column distinct counts. Callers that append to the source
  /// Table and to its mirror in the same order keep the two in sync.
  void AppendRow(std::span<const ValueCode> codes);

  /// Contiguous code array of column `c` (one entry per row).
  std::span<const ValueCode> column(ColId c) const;

  /// Number of distinct codes present in column `c` (suppressed `*`
  /// counts as one distinct code when present).
  size_t distinct_count(ColId c) const;

  ColumnView view(ColId c) const { return {column(c), distinct_count(c)}; }

  ValueCode at(RowId r, ColId c) const;

  /// Hamming distance between rows a and b computed column-wise; equals
  /// HammingDistance over the source table's rows.
  ColId RowHamming(RowId a, RowId b) const;

 private:
  struct Column {
    std::vector<ValueCode> codes;
    /// Membership bitmap indexed by code (suppressed tracked aside) so
    /// AppendRow maintains `distinct` in O(1) per cell.
    std::vector<bool> seen;
    bool seen_suppressed = false;
    size_t distinct = 0;
  };

  void CountCode(Column* col, ValueCode code);

  size_t num_rows_ = 0;
  std::vector<Column> cols_;
};

}  // namespace kanon

#endif  // KANON_DATA_PACKED_TABLE_H_
