#include "data/packed_table.h"

#include "util/logging.h"

namespace kanon {

PackedTable::PackedTable(ColId num_columns) : cols_(num_columns) {}

PackedTable::PackedTable(const Table& table)
    : cols_(table.num_columns()) {
  const RowId n = table.num_rows();
  const ColId m = table.num_columns();
  for (ColId c = 0; c < m; ++c) cols_[c].codes.reserve(n);
  for (RowId r = 0; r < n; ++r) {
    const std::span<const ValueCode> row = table.row(r);
    for (ColId c = 0; c < m; ++c) {
      cols_[c].codes.push_back(row[c]);
      CountCode(&cols_[c], row[c]);
    }
  }
  num_rows_ = n;
}

void PackedTable::CountCode(Column* col, ValueCode code) {
  if (code == kSuppressedCode) {
    if (!col->seen_suppressed) {
      col->seen_suppressed = true;
      ++col->distinct;
    }
    return;
  }
  if (code >= col->seen.size()) col->seen.resize(code + 1, false);
  if (!col->seen[code]) {
    col->seen[code] = true;
    ++col->distinct;
  }
}

void PackedTable::AppendRow(std::span<const ValueCode> codes) {
  KANON_CHECK_EQ(codes.size(), cols_.size());
  for (ColId c = 0; c < codes.size(); ++c) {
    cols_[c].codes.push_back(codes[c]);
    CountCode(&cols_[c], codes[c]);
  }
  ++num_rows_;
}

std::span<const ValueCode> PackedTable::column(ColId c) const {
  KANON_CHECK_LT(c, cols_.size());
  return cols_[c].codes;
}

size_t PackedTable::distinct_count(ColId c) const {
  KANON_CHECK_LT(c, cols_.size());
  return cols_[c].distinct;
}

ValueCode PackedTable::at(RowId r, ColId c) const {
  KANON_CHECK_LT(c, cols_.size());
  KANON_CHECK_LT(r, num_rows_);
  return cols_[c].codes[r];
}

ColId PackedTable::RowHamming(RowId a, RowId b) const {
  KANON_CHECK_LT(a, num_rows_);
  KANON_CHECK_LT(b, num_rows_);
  ColId d = 0;
  for (const Column& col : cols_) {
    d += static_cast<ColId>(col.codes[a] != col.codes[b]);
  }
  return d;
}

}  // namespace kanon
