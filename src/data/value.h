#ifndef KANON_DATA_VALUE_H_
#define KANON_DATA_VALUE_H_

#include <cstdint>
#include <limits>

/// \file
/// Value representation shared across the library.
///
/// The paper models a relation as vectors over a finite alphabet Σ with a
/// fresh suppression symbol `*` outside Σ. We dictionary-encode attribute
/// values as dense 32-bit codes per attribute and reserve the maximum code
/// as the suppression symbol.

namespace kanon {

/// Dictionary code of one attribute value.
using ValueCode = uint32_t;

/// The `*` symbol of the paper: a code outside every attribute alphabet.
inline constexpr ValueCode kSuppressedCode =
    std::numeric_limits<ValueCode>::max();

/// Row index into a Table.
using RowId = uint32_t;

/// Column (attribute) index into a Table.
using ColId = uint32_t;

}  // namespace kanon

#endif  // KANON_DATA_VALUE_H_
