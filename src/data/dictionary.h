#ifndef KANON_DATA_DICTIONARY_H_
#define KANON_DATA_DICTIONARY_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "data/value.h"

/// \file
/// Per-attribute dictionary: bijection between attribute value strings and
/// dense codes 0..card-1. The anonymization algorithms operate purely on
/// codes; dictionaries are used at the I/O boundary.

namespace kanon {

/// Order-of-insertion dictionary encoding for one attribute.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the code of `value`, interning it if new.
  ValueCode Intern(std::string_view value);

  /// Returns the code of `value`, or kSuppressedCode if absent.
  ValueCode Lookup(std::string_view value) const;

  /// True iff `value` has been interned.
  bool Contains(std::string_view value) const;

  /// Decodes a code. `kSuppressedCode` decodes to "*"; any other
  /// out-of-range code is a fatal error.
  const std::string& Decode(ValueCode code) const;

  /// Number of distinct interned values (the attribute alphabet size |Σ_j|).
  size_t size() const { return values_.size(); }

  /// All interned values in code order.
  const std::vector<std::string>& values() const { return values_; }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, ValueCode> index_;
};

}  // namespace kanon

#endif  // KANON_DATA_DICTIONARY_H_
