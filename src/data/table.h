#ifndef KANON_DATA_TABLE_H_
#define KANON_DATA_TABLE_H_

#include <span>
#include <string>
#include <vector>

#include "data/schema.h"
#include "data/value.h"

/// \file
/// `Table` is the library's relation type: the set V ⊆ Σ^m of the paper,
/// stored row-major as dictionary codes. Duplicate rows are allowed
/// (multiset semantics, as required by the k-anonymity definition).
///
/// A table may additionally carry per-row integer weights (a *weighted
/// instance*): row r then stands for `row_weight(r)` identical tuples of
/// the underlying relation. Coreset sampling produces such instances so
/// solvers can run on a representative subsample whose weighted cost
/// approximates the full table's. An unweighted table reports weight 1
/// for every row and stores nothing.

namespace kanon {

/// A degree-m relation of n coded rows. Copyable; rows are appended via
/// AppendRow/AppendStringRow and never mutated in place (anonymized copies
/// are produced by Suppressor::Apply).
class Table {
 public:
  /// An empty table with `schema`.
  explicit Table(Schema schema);

  Table(const Table&) = default;
  Table& operator=(const Table&) = default;
  Table(Table&&) = default;
  Table& operator=(Table&&) = default;

  RowId num_rows() const { return static_cast<RowId>(num_rows_); }
  ColId num_columns() const { return schema_.num_attributes(); }

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  /// Appends a row of codes; size must equal num_columns(). Returns the
  /// new row's id.
  RowId AppendRow(std::span<const ValueCode> codes);

  /// Interns strings through the schema dictionaries and appends.
  RowId AppendStringRow(const std::vector<std::string>& values);

  /// Cell accessors.
  ValueCode at(RowId row, ColId col) const;
  void set(RowId row, ColId col, ValueCode code);

  /// Contiguous view of one row's m codes.
  std::span<const ValueCode> row(RowId r) const;

  /// Decoded row, with "*" for suppressed cells.
  std::vector<std::string> DecodeRow(RowId r) const;

  /// Pretty-prints up to `max_rows` rows with a header (for examples and
  /// error messages).
  std::string ToString(RowId max_rows = 32) const;

  /// True iff rows a and b are entry-for-entry identical.
  bool RowsEqual(RowId a, RowId b) const;

  /// Total number of suppressed (`*`) cells — the objective value of the
  /// paper's optimization problem when called on an anonymized table.
  size_t CountSuppressedCells() const;

  /// Projection onto a subset of columns (quasi-identifier selection):
  /// returns a new table containing `columns` in the given order, with
  /// copies of their dictionaries. Duplicate column ids are allowed.
  Table Project(const std::vector<ColId>& columns) const;

  /// Row selection: returns a new table containing `rows` in the given
  /// order, sharing this table's schema (dictionaries copied). Duplicate
  /// row ids are allowed (multiset semantics). Weights propagate: if this
  /// table is weighted, each selected row keeps its weight.
  Table SelectRows(const std::vector<RowId>& rows) const;

  /// True iff this table carries explicit per-row weights.
  bool is_weighted() const { return !weights_.empty(); }

  /// Multiplicity of row r: its explicit weight, or 1 when unweighted.
  uint32_t row_weight(RowId r) const {
    return weights_.empty() ? 1u : weights_[r];
  }

  /// Installs per-row weights; `weights` must have num_rows() entries,
  /// all >= 1. Passing an empty vector clears back to unweighted.
  void SetRowWeights(std::vector<uint32_t> weights);

  /// Sum of row weights (== num_rows() when unweighted): the number of
  /// tuples of the underlying relation this instance represents.
  size_t total_weight() const;

 private:
  Schema schema_;
  size_t num_rows_ = 0;
  std::vector<ValueCode> cells_;  // row-major, num_rows_ * m
  std::vector<uint32_t> weights_;  // empty, or one weight >= 1 per row
};

}  // namespace kanon

#endif  // KANON_DATA_TABLE_H_
