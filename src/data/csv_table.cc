#include "data/csv_table.h"

#include <sstream>

#include "util/csv.h"

namespace kanon {

std::optional<Table> TableFromCsv(std::string_view text,
                                  std::string* error) {
  std::vector<CsvRow> rows;
  std::string parse_error;
  if (!ParseCsv(text, &rows, &parse_error)) {
    if (error) *error = "CSV parse error: " + parse_error;
    return std::nullopt;
  }
  if (rows.empty()) {
    if (error) *error = "missing header row";
    return std::nullopt;
  }
  Schema schema(rows[0]);
  Table table(std::move(schema));
  const size_t m = rows[0].size();
  std::vector<ValueCode> codes(m);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != m) {
      if (error) {
        std::ostringstream os;
        os << "row " << r << " has " << rows[r].size()
           << " fields, expected " << m;
        *error = os.str();
      }
      return std::nullopt;
    }
    for (size_t c = 0; c < m; ++c) {
      codes[c] = rows[r][c] == "*"
                     ? kSuppressedCode
                     : table.mutable_schema().Intern(
                           static_cast<ColId>(c), rows[r][c]);
    }
    table.AppendRow(codes);
  }
  return table;
}

std::string TableToCsv(const Table& table) {
  std::vector<CsvRow> rows;
  rows.reserve(table.num_rows() + 1);
  CsvRow header(table.num_columns());
  for (ColId c = 0; c < table.num_columns(); ++c) {
    header[c] = table.schema().attribute_name(c);
  }
  rows.push_back(std::move(header));
  for (RowId r = 0; r < table.num_rows(); ++r) {
    rows.push_back(table.DecodeRow(r));
  }
  return WriteCsv(rows);
}

std::optional<Table> LoadTableCsv(const std::string& path,
                                  std::string* error) {
  std::string contents;
  if (!ReadFileToString(path, &contents)) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  return TableFromCsv(contents, error);
}

bool SaveTableCsv(const Table& table, const std::string& path) {
  return WriteStringToFile(path, TableToCsv(table));
}

}  // namespace kanon
