#include "data/csv_table.h"

#include <sstream>

#include "util/csv.h"

namespace kanon {

StatusOr<Table> ParseTableCsv(std::string_view text) {
  std::vector<CsvRow> rows;
  std::string parse_error;
  if (!ParseCsv(text, &rows, &parse_error)) {
    return Status::ParseError("CSV parse error: " + parse_error);
  }
  if (rows.empty()) {
    return Status::ParseError("missing header row");
  }
  Schema schema(rows[0]);
  Table table(std::move(schema));
  const size_t m = rows[0].size();
  std::vector<ValueCode> codes(m);
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != m) {
      std::ostringstream os;
      os << "row " << r << " has " << rows[r].size()
         << " fields, expected " << m;
      return Status::ParseError(os.str());
    }
    for (size_t c = 0; c < m; ++c) {
      codes[c] = rows[r][c] == "*"
                     ? kSuppressedCode
                     : table.mutable_schema().Intern(
                           static_cast<ColId>(c), rows[r][c]);
    }
    table.AppendRow(codes);
  }
  return table;
}

StatusOr<Table> ReadTableCsv(const std::string& path) {
  std::string contents;
  if (!ReadFileToString(path, &contents)) {
    return Status::NotFound("cannot open " + path);
  }
  return ParseTableCsv(contents);
}

Status WriteTableCsv(const Table& table, const std::string& path) {
  if (!WriteStringToFile(path, TableToCsv(table))) {
    return Status::Internal("cannot write " + path);
  }
  return Status::Ok();
}

std::string TableToCsv(const Table& table) {
  std::vector<CsvRow> rows;
  rows.reserve(table.num_rows() + 1);
  CsvRow header(table.num_columns());
  for (ColId c = 0; c < table.num_columns(); ++c) {
    header[c] = table.schema().attribute_name(c);
  }
  rows.push_back(std::move(header));
  for (RowId r = 0; r < table.num_rows(); ++r) {
    rows.push_back(table.DecodeRow(r));
  }
  return WriteCsv(rows);
}

}  // namespace kanon
