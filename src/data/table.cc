#include "data/table.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace kanon {

Table::Table(Schema schema) : schema_(std::move(schema)) {}

RowId Table::AppendRow(std::span<const ValueCode> codes) {
  KANON_CHECK_EQ(codes.size(), static_cast<size_t>(num_columns()));
  cells_.insert(cells_.end(), codes.begin(), codes.end());
  // Keep explicit weights in sync: a freshly appended row stands for one
  // tuple until SetRowWeights says otherwise.
  if (!weights_.empty()) weights_.push_back(1);
  return static_cast<RowId>(num_rows_++);
}

RowId Table::AppendStringRow(const std::vector<std::string>& values) {
  KANON_CHECK_EQ(values.size(), static_cast<size_t>(num_columns()));
  std::vector<ValueCode> codes(values.size());
  for (ColId c = 0; c < values.size(); ++c) {
    codes[c] = schema_.Intern(c, values[c]);
  }
  return AppendRow(codes);
}

ValueCode Table::at(RowId row, ColId col) const {
  KANON_CHECK_LT(row, num_rows_);
  KANON_CHECK_LT(col, num_columns());
  return cells_[static_cast<size_t>(row) * num_columns() + col];
}

void Table::set(RowId row, ColId col, ValueCode code) {
  KANON_CHECK_LT(row, num_rows_);
  KANON_CHECK_LT(col, num_columns());
  cells_[static_cast<size_t>(row) * num_columns() + col] = code;
}

std::span<const ValueCode> Table::row(RowId r) const {
  KANON_CHECK_LT(r, num_rows_);
  return {cells_.data() + static_cast<size_t>(r) * num_columns(),
          num_columns()};
}

std::vector<std::string> Table::DecodeRow(RowId r) const {
  std::vector<std::string> out(num_columns());
  for (ColId c = 0; c < num_columns(); ++c) {
    out[c] = schema_.Decode(c, at(r, c));
  }
  return out;
}

std::string Table::ToString(RowId max_rows) const {
  const ColId m = num_columns();
  std::vector<size_t> widths(m);
  for (ColId c = 0; c < m; ++c) {
    widths[c] = schema_.attribute_name(c).size();
  }
  const RowId shown = std::min(num_rows(), max_rows);
  for (RowId r = 0; r < shown; ++r) {
    for (ColId c = 0; c < m; ++c) {
      widths[c] = std::max(widths[c], schema_.Decode(c, at(r, c)).size());
    }
  }
  std::ostringstream os;
  for (ColId c = 0; c < m; ++c) {
    if (c > 0) os << "  ";
    os << PadRight(schema_.attribute_name(c), widths[c]);
  }
  os << "\n";
  for (RowId r = 0; r < shown; ++r) {
    for (ColId c = 0; c < m; ++c) {
      if (c > 0) os << "  ";
      os << PadRight(schema_.Decode(c, at(r, c)), widths[c]);
    }
    os << "\n";
  }
  if (shown < num_rows()) {
    os << "... (" << (num_rows() - shown) << " more rows)\n";
  }
  return os.str();
}

bool Table::RowsEqual(RowId a, RowId b) const {
  const auto ra = row(a);
  const auto rb = row(b);
  return std::equal(ra.begin(), ra.end(), rb.begin());
}

Table Table::Project(const std::vector<ColId>& columns) const {
  Schema schema;
  for (const ColId c : columns) {
    KANON_CHECK_LT(c, num_columns());
    schema.AddAttribute(schema_.attribute_name(c));
  }
  Table out(std::move(schema));
  for (size_t j = 0; j < columns.size(); ++j) {
    // Copy the source dictionary so codes keep their meaning.
    Dictionary& dict = out.mutable_schema().dictionary(
        static_cast<ColId>(j));
    for (const std::string& value :
         schema_.dictionary(columns[j]).values()) {
      dict.Intern(value);
    }
  }
  std::vector<ValueCode> codes(columns.size());
  for (RowId r = 0; r < num_rows(); ++r) {
    for (size_t j = 0; j < columns.size(); ++j) {
      codes[j] = at(r, columns[j]);
    }
    out.AppendRow(codes);
  }
  return out;
}

Table Table::SelectRows(const std::vector<RowId>& rows) const {
  Table out(schema_);
  for (const RowId r : rows) {
    KANON_CHECK_LT(r, num_rows());
    out.AppendRow(row(r));
  }
  if (is_weighted()) {
    std::vector<uint32_t> weights;
    weights.reserve(rows.size());
    for (const RowId r : rows) weights.push_back(weights_[r]);
    out.SetRowWeights(std::move(weights));
  }
  return out;
}

void Table::SetRowWeights(std::vector<uint32_t> weights) {
  if (weights.empty()) {
    weights_.clear();
    return;
  }
  KANON_CHECK_EQ(weights.size(), num_rows_)
      << "SetRowWeights needs one weight per row";
  for (const uint32_t w : weights) {
    KANON_CHECK_GT(w, 0u) << "row weights must be >= 1";
  }
  weights_ = std::move(weights);
}

size_t Table::total_weight() const {
  if (weights_.empty()) return num_rows_;
  size_t total = 0;
  for (const uint32_t w : weights_) total += w;
  return total;
}

size_t Table::CountSuppressedCells() const {
  size_t count = 0;
  for (const ValueCode code : cells_) {
    if (code == kSuppressedCode) ++count;
  }
  return count;
}

}  // namespace kanon
