#ifndef KANON_DATA_CSV_TABLE_H_
#define KANON_DATA_CSV_TABLE_H_

#include <optional>
#include <string>
#include <string_view>

#include "data/table.h"

/// \file
/// Table <-> CSV conversion. The first CSV record is the header (attribute
/// names); each further record is one tuple. Suppressed cells round-trip
/// as the literal "*" (matching the paper's presentation), so an
/// anonymized table can be exported, inspected and re-imported.

namespace kanon {

/// Parses CSV text into a table. Returns std::nullopt and sets `error` on
/// malformed CSV, missing header, or ragged rows. A cell equal to "*" is
/// decoded as kSuppressedCode rather than interned.
std::optional<Table> TableFromCsv(std::string_view text,
                                  std::string* error);

/// Serializes a table (header + rows) to CSV text.
std::string TableToCsv(const Table& table);

/// File convenience wrappers.
std::optional<Table> LoadTableCsv(const std::string& path,
                                  std::string* error);
bool SaveTableCsv(const Table& table, const std::string& path);

}  // namespace kanon

#endif  // KANON_DATA_CSV_TABLE_H_
