#ifndef KANON_DATA_CSV_TABLE_H_
#define KANON_DATA_CSV_TABLE_H_

#include <string>
#include <string_view>

#include "data/table.h"
#include "util/status.h"

/// \file
/// Table <-> CSV conversion. The first CSV record is the header (attribute
/// names); each further record is one tuple. Suppressed cells round-trip
/// as the literal "*" (matching the paper's presentation), so an
/// anonymized table can be exported, inspected and re-imported.
///
/// The Status-returning functions are the library boundary: malformed
/// input is reported as kParseError / kNotFound instead of aborting, so
/// callers (CLI tools, services) can surface the message and exit
/// cleanly.

namespace kanon {

/// Parses CSV text into a table. Fails with kParseError on malformed
/// CSV, a missing header, or ragged rows. A cell equal to "*" is decoded
/// as kSuppressedCode rather than interned.
StatusOr<Table> ParseTableCsv(std::string_view text);

/// Reads and parses a CSV file; kNotFound if it cannot be opened.
StatusOr<Table> ReadTableCsv(const std::string& path);

/// Serializes and writes a table; kInternal on I/O failure.
Status WriteTableCsv(const Table& table, const std::string& path);

/// Serializes a table (header + rows) to CSV text.
std::string TableToCsv(const Table& table);

}  // namespace kanon

#endif  // KANON_DATA_CSV_TABLE_H_
