#include "data/dictionary.h"

#include "util/logging.h"

namespace kanon {

namespace {
const std::string kStarString = "*";
}  // namespace

ValueCode Dictionary::Intern(std::string_view value) {
  const auto it = index_.find(std::string(value));
  if (it != index_.end()) return it->second;
  const ValueCode code = static_cast<ValueCode>(values_.size());
  KANON_CHECK_NE(code, kSuppressedCode);  // alphabet must not exhaust codes
  values_.emplace_back(value);
  index_.emplace(values_.back(), code);
  return code;
}

ValueCode Dictionary::Lookup(std::string_view value) const {
  const auto it = index_.find(std::string(value));
  return it == index_.end() ? kSuppressedCode : it->second;
}

bool Dictionary::Contains(std::string_view value) const {
  return index_.count(std::string(value)) > 0;
}

const std::string& Dictionary::Decode(ValueCode code) const {
  if (code == kSuppressedCode) return kStarString;
  KANON_CHECK_LT(code, values_.size());
  return values_[code];
}

}  // namespace kanon
