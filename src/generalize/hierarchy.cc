#include "generalize/hierarchy.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "util/logging.h"
#include "util/string_util.h"

namespace kanon {

Hierarchy::Hierarchy(std::vector<std::vector<std::string>> levels)
    : levels_(std::move(levels)) {
  KANON_CHECK_GE(levels_.size(), 1u);
  for (const auto& level : levels_) {
    KANON_CHECK_EQ(level.size(), levels_[0].size());
  }
  CheckRefinement();
}

void Hierarchy::CheckRefinement() const {
  // If two codes share a label at level l, they must share labels at
  // all levels above (labels partition values ever more coarsely).
  const size_t n = levels_[0].size();
  for (size_t l = 0; l + 1 < levels_.size(); ++l) {
    std::unordered_map<std::string, std::string> lifted;
    for (size_t code = 0; code < n; ++code) {
      const std::string& here = levels_[l][code];
      const std::string& above = levels_[l + 1][code];
      const auto it = lifted.find(here);
      if (it == lifted.end()) {
        lifted.emplace(here, above);
      } else {
        KANON_CHECK(it->second == above)
            << "hierarchy not refining at level " << l << " label '"
            << here << "'";
      }
    }
  }
}

const std::string& Hierarchy::Label(ValueCode code, size_t level) const {
  KANON_CHECK_LT(level, levels_.size());
  KANON_CHECK_LT(code, levels_[level].size());
  return levels_[level][code];
}

Hierarchy Hierarchy::Flat(const Dictionary& dict) {
  std::vector<std::vector<std::string>> levels(2);
  levels[0] = dict.values();
  levels[1].assign(dict.size(), "*");
  return Hierarchy(std::move(levels));
}

Hierarchy Hierarchy::Intervals(const Dictionary& dict,
                               const std::vector<uint32_t>& widths) {
  for (size_t i = 0; i < widths.size(); ++i) {
    KANON_CHECK_GT(widths[i], 0u);
    if (i > 0) {
      KANON_CHECK_GT(widths[i], widths[i - 1]);
    }
  }
  std::vector<long long> parsed(dict.size());
  for (size_t code = 0; code < dict.size(); ++code) {
    KANON_CHECK(ParseInt(dict.values()[code], &parsed[code]))
        << "non-numeric value '" << dict.values()[code]
        << "' in interval hierarchy";
  }
  std::vector<std::vector<std::string>> levels;
  levels.push_back(dict.values());
  for (const uint32_t width : widths) {
    std::vector<std::string> level(dict.size());
    for (size_t code = 0; code < dict.size(); ++code) {
      // Floor-divide toward -infinity so negatives bucket correctly.
      long long lo = parsed[code] / width * width;
      if (parsed[code] < 0 && parsed[code] % width != 0) lo -= width;
      std::ostringstream os;
      os << "[" << lo << "-" << lo + width - 1 << "]";
      level[code] = os.str();
    }
    levels.push_back(std::move(level));
  }
  levels.emplace_back(dict.size(), "*");
  return Hierarchy(std::move(levels));
}

Hierarchy Hierarchy::Prefix(const Dictionary& dict,
                            const std::vector<uint32_t>& prefix_lengths) {
  for (size_t i = 0; i < prefix_lengths.size(); ++i) {
    KANON_CHECK_GT(prefix_lengths[i], 0u);
    if (i > 0) {
      KANON_CHECK_LT(prefix_lengths[i], prefix_lengths[i - 1]);
    }
  }
  std::vector<std::vector<std::string>> levels;
  levels.push_back(dict.values());
  for (const uint32_t len : prefix_lengths) {
    std::vector<std::string> level(dict.size());
    for (size_t code = 0; code < dict.size(); ++code) {
      const std::string& value = dict.values()[code];
      level[code] = value.substr(0, len) + "*";
    }
    levels.push_back(std::move(level));
  }
  levels.emplace_back(dict.size(), "*");
  return Hierarchy(std::move(levels));
}

Hierarchy Hierarchy::Taxonomy(
    const Dictionary& dict,
    const std::vector<std::map<std::string, std::string>>& parents) {
  std::vector<std::vector<std::string>> levels;
  levels.push_back(dict.values());
  std::vector<std::string> current = dict.values();
  for (const auto& parent_map : parents) {
    std::vector<std::string> next(current.size());
    for (size_t code = 0; code < current.size(); ++code) {
      const auto it = parent_map.find(current[code]);
      KANON_CHECK(it != parent_map.end())
          << "taxonomy missing parent for '" << current[code] << "'";
      next[code] = it->second;
    }
    levels.push_back(next);
    current = std::move(next);
  }
  levels.emplace_back(dict.size(), "*");
  return Hierarchy(std::move(levels));
}

size_t VectorHeight(const GeneralizationVector& v) {
  size_t h = 0;
  for (const size_t level : v) h += level;
  return h;
}

double Precision(const GeneralizationVector& v,
                 const std::vector<Hierarchy>& hierarchies) {
  KANON_CHECK_EQ(v.size(), hierarchies.size());
  if (v.empty()) return 1.0;
  double loss = 0.0;
  for (size_t j = 0; j < v.size(); ++j) {
    const size_t max_level = hierarchies[j].max_level();
    KANON_CHECK_LE(v[j], max_level);
    if (max_level > 0) {
      loss += static_cast<double>(v[j]) / static_cast<double>(max_level);
    }
  }
  return 1.0 - loss / static_cast<double>(v.size());
}

}  // namespace kanon
