#ifndef KANON_GENERALIZE_HIERARCHY_H_
#define KANON_GENERALIZE_HIERARCHY_H_

#include <map>
#include <string>
#include <vector>

#include "data/dictionary.h"
#include "data/value.h"

/// \file
/// Domain generalization hierarchies (DGHs).
///
/// The paper's general model (Section 1) releases data by "suppression
/// or generalization": the intro example publishes age "34" as "0-40"
/// and last name "reyser" as "r*". Sections 2-4 analyze the suppression
/// special case; this module implements the general machinery in the
/// Samarati/Sweeney style the paper builds on — one value hierarchy per
/// attribute, level 0 = the original values, the top level = "*" —
/// enabling the full-domain generalization algorithms in
/// generalize/samarati.h and generalize/optimal_lattice.h.

namespace kanon {

/// One attribute's generalization hierarchy: for each level l in
/// [0, num_levels), a total map from base value codes to level-l labels.
/// Level 0 is the identity; the last level maps everything to "*".
/// Invariant (checked at construction): levels refine monotonically —
/// if two codes share a label at level l they share one at every level
/// above l.
class Hierarchy {
 public:
  /// Number of levels, >= 1. A 1-level hierarchy is "identity only"
  /// (the attribute cannot be generalized, only fully suppressed if a
  /// top level is added).
  size_t num_levels() const { return levels_.size(); }

  /// Maximum level index (num_levels() - 1).
  size_t max_level() const { return levels_.size() - 1; }

  /// Label of `code` at `level`. Dies on out-of-range code/level.
  const std::string& Label(ValueCode code, size_t level) const;

  /// --- Factories -------------------------------------------------

  /// Two levels: the value itself, then "*". The pure-suppression DGH;
  /// with these hierarchies the lattice algorithms degrade exactly to
  /// attribute suppression.
  static Hierarchy Flat(const Dictionary& dict);

  /// Numeric interval hierarchy: every dictionary value must parse as
  /// an integer. `widths` lists strictly increasing bucket widths, one
  /// per intermediate level; e.g. {10, 20} produces levels
  /// {value, "[30-39]", "[20-39]", "*"}. Buckets align at multiples of
  /// the width.
  static Hierarchy Intervals(const Dictionary& dict,
                             const std::vector<uint32_t>& widths);

  /// String prefix hierarchy: `prefix_lengths` lists strictly
  /// decreasing retained-prefix lengths for the intermediate levels;
  /// e.g. {3, 1} produces {value, "rey*", "r*", "*"}. A value shorter
  /// than the retained length keeps its full text plus "*".
  static Hierarchy Prefix(const Dictionary& dict,
                          const std::vector<uint32_t>& prefix_lengths);

  /// Explicit taxonomy: `parents` maps every value string to its
  /// level-1 category label; deeper levels can be stacked by passing
  /// further maps (each mapping the previous level's labels onward).
  /// A final "*" level is appended automatically.
  static Hierarchy Taxonomy(
      const Dictionary& dict,
      const std::vector<std::map<std::string, std::string>>& parents);

 private:
  explicit Hierarchy(std::vector<std::vector<std::string>> levels);

  void CheckRefinement() const;

  // levels_[l][code] = label of base value `code` at level l.
  std::vector<std::vector<std::string>> levels_;
};

/// A full-domain generalization: one level per attribute.
using GeneralizationVector = std::vector<size_t>;

/// Sum of levels — the lattice "height" Samarati's algorithm minimizes.
size_t VectorHeight(const GeneralizationVector& v);

/// Samarati's precision metric Prec in [0, 1]: 1 - mean over attributes
/// of level_j / max_level_j (attributes with max_level 0 contribute 0
/// loss). 1.0 = untouched data, 0.0 = everything at "*".
double Precision(const GeneralizationVector& v,
                 const std::vector<Hierarchy>& hierarchies);

}  // namespace kanon

#endif  // KANON_GENERALIZE_HIERARCHY_H_
