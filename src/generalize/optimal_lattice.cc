#include "generalize/optimal_lattice.h"

#include <limits>
#include <sstream>

#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

namespace {

double Objective(const Table& table, const GeneralizationCheck& check,
                 const GeneralizationVector& v,
                 const std::vector<Hierarchy>& hierarchies,
                 LatticeObjective objective) {
  switch (objective) {
    case LatticeObjective::kPrecision:
      return 1.0 - Precision(v, hierarchies);
    case LatticeObjective::kDiscernibility: {
      double dm = 0.0;
      for (const Group& g : check.groups.groups) {
        dm += static_cast<double>(g.size()) *
              static_cast<double>(g.size());
      }
      dm += static_cast<double>(table.num_rows()) *
            static_cast<double>(check.outliers.size());
      return dm;
    }
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace

LatticeResult OptimalLatticeAnonymize(
    const Table& table, const std::vector<Hierarchy>& hierarchies,
    size_t k, const OptimalLatticeOptions& options) {
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(table.num_rows()), k);
  KANON_CHECK_EQ(hierarchies.size(),
                 static_cast<size_t>(table.num_columns()));

  uint64_t lattice_size = 1;
  for (const Hierarchy& h : hierarchies) {
    lattice_size *= static_cast<uint64_t>(h.num_levels());
    KANON_CHECK_LE(lattice_size, options.max_lattice_size)
        << "lattice too large for exhaustive search";
  }

  WallTimer timer;
  LatticeResult result;
  double best_objective = std::numeric_limits<double>::infinity();
  bool found = false;

  // Odometer enumeration of the full lattice.
  GeneralizationVector v(table.num_columns(), 0);
  for (;;) {
    ++result.vectors_checked;
    const GeneralizationCheck check = CheckGeneralization(
        table, hierarchies, v, k, options.max_suppressed);
    if (check.feasible) {
      const double objective =
          Objective(table, check, v, hierarchies, options.objective);
      if (!found || objective < best_objective) {
        found = true;
        best_objective = objective;
        result.levels = v;
        result.suppressed_rows = check.outliers;
      }
    }
    // Advance the odometer.
    ColId c = 0;
    while (c < table.num_columns()) {
      if (v[c] < hierarchies[c].max_level()) {
        ++v[c];
        break;
      }
      v[c] = 0;
      ++c;
    }
    if (c == table.num_columns()) break;
  }
  KANON_CHECK(found);  // the all-top vector is always feasible

  result.precision = Precision(result.levels, hierarchies);
  result.height = VectorHeight(result.levels);
  result.seconds = timer.Seconds();
  std::ostringstream notes;
  notes << "lattice=" << lattice_size << " objective=" << best_objective;
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
