#ifndef KANON_GENERALIZE_MINIMAL_VECTORS_H_
#define KANON_GENERALIZE_MINIMAL_VECTORS_H_

#include <cstddef>
#include <vector>

#include "data/table.h"
#include "generalize/apply.h"
#include "generalize/hierarchy.h"

/// \file
/// The full *solution space* of full-domain generalization: since
/// feasibility is upward monotone in the lattice (coarsening only
/// merges groups), the feasible region is an up-set and is completely
/// described by its antichain of minimal elements. This is the
/// Incognito/OLA-style view: Samarati reports one minimal-height
/// vector, the exhaustive search one loss-optimal vector; the antichain
/// is every Pareto-minimal policy a data publisher could pick.
///
/// The search walks the lattice bottom-up by height with up-set
/// pruning: any vector dominating a known-feasible vector is skipped
/// without evaluation, which on real schemas prunes most of the lattice
/// (measured by `vectors_checked` vs `lattice_size`).

namespace kanon {

/// Output of the antichain search.
struct MinimalVectorsResult {
  /// All minimal feasible vectors (pairwise incomparable).
  std::vector<GeneralizationVector> minimal;
  /// Feasibility checks actually executed.
  size_t vectors_checked = 0;
  /// Total lattice size, for the pruning ratio.
  size_t lattice_size = 0;
  double seconds = 0.0;
};

/// Computes the antichain of minimal k-feasible vectors (with the
/// outlier-suppression budget of CheckGeneralization). Dies if the
/// lattice exceeds `max_lattice_size`.
MinimalVectorsResult MinimalFeasibleVectors(
    const Table& table, const std::vector<Hierarchy>& hierarchies,
    size_t k, size_t max_suppressed, size_t max_lattice_size = 4'000'000);

/// True iff a <= b componentwise (lattice order).
bool DominatedBy(const GeneralizationVector& a,
                 const GeneralizationVector& b);

}  // namespace kanon

#endif  // KANON_GENERALIZE_MINIMAL_VECTORS_H_
