#ifndef KANON_GENERALIZE_OPTIMAL_LATTICE_H_
#define KANON_GENERALIZE_OPTIMAL_LATTICE_H_

#include <cstdint>

#include "generalize/samarati.h"

/// \file
/// Exhaustive full-domain lattice search: evaluates every
/// generalization vector and returns the feasible one minimizing a
/// chosen information-loss objective. The ARX/OLA-style "optimal
/// full-domain" comparator to Samarati's height heuristic — exponential
/// in the number of attributes in the worst case (product of level
/// counts), fine for the <= 4^10-ish lattices of real schemas.

namespace kanon {

/// Objective minimized by the exhaustive search.
enum class LatticeObjective {
  /// Maximize Samarati precision (minimize 1 - Prec).
  kPrecision,
  /// Minimize the discernibility metric sum |G|^2 over generalized
  /// groups, + n * |outliers| for withheld rows (the standard DM
  /// penalty).
  kDiscernibility,
};

/// Configuration for OptimalLatticeAnonymize.
struct OptimalLatticeOptions {
  size_t max_suppressed = 0;
  LatticeObjective objective = LatticeObjective::kPrecision;
  /// Safety cap on lattice size (product of per-attribute level
  /// counts); dies above it.
  uint64_t max_lattice_size = 4'000'000;
};

/// Evaluates the entire lattice; returns the best feasible vector.
/// Always succeeds (the all-top vector is feasible). `notes` records
/// the lattice size and objective value.
LatticeResult OptimalLatticeAnonymize(
    const Table& table, const std::vector<Hierarchy>& hierarchies,
    size_t k, const OptimalLatticeOptions& options);

}  // namespace kanon

#endif  // KANON_GENERALIZE_OPTIMAL_LATTICE_H_
