#include "generalize/minimal_vectors.h"

#include <algorithm>

#include "generalize/samarati.h"
#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

bool DominatedBy(const GeneralizationVector& a,
                 const GeneralizationVector& b) {
  KANON_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
  }
  return true;
}

MinimalVectorsResult MinimalFeasibleVectors(
    const Table& table, const std::vector<Hierarchy>& hierarchies,
    size_t k, size_t max_suppressed, size_t max_lattice_size) {
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(table.num_rows()), k);
  KANON_CHECK_EQ(hierarchies.size(),
                 static_cast<size_t>(table.num_columns()));

  WallTimer timer;
  MinimalVectorsResult result;
  result.lattice_size = 1;
  size_t max_height = 0;
  for (const Hierarchy& h : hierarchies) {
    result.lattice_size *= h.num_levels();
    max_height += h.max_level();
    KANON_CHECK_LE(result.lattice_size, max_lattice_size)
        << "lattice too large";
  }

  // Bottom-up by height. A vector that dominates (is >=) any already
  // found minimal feasible vector cannot be minimal and — by
  // monotonicity — is known-feasible, so it is skipped unevaluated.
  for (size_t height = 0; height <= max_height; ++height) {
    for (const GeneralizationVector& v :
         VectorsAtHeight(hierarchies, height)) {
      bool dominated = false;
      for (const GeneralizationVector& min_v : result.minimal) {
        if (DominatedBy(min_v, v)) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      ++result.vectors_checked;
      if (CheckGeneralization(table, hierarchies, v, k, max_suppressed)
              .feasible) {
        result.minimal.push_back(v);
      }
    }
  }

  // Sanity: the reported set is an antichain.
  for (size_t i = 0; i < result.minimal.size(); ++i) {
    for (size_t j = 0; j < result.minimal.size(); ++j) {
      if (i != j) {
        KANON_CHECK(!DominatedBy(result.minimal[i], result.minimal[j]));
      }
    }
  }
  result.seconds = timer.Seconds();
  return result;
}

}  // namespace kanon
