#ifndef KANON_GENERALIZE_SAMARATI_H_
#define KANON_GENERALIZE_SAMARATI_H_

#include <string>
#include <vector>

#include "data/table.h"
#include "generalize/apply.h"
#include "generalize/hierarchy.h"

/// \file
/// Samarati's full-domain generalization algorithm (the [10] of the
/// paper's references, "Generalizing Data to Provide Anonymity when
/// Disclosing Information"): binary search on lattice height for the
/// minimum-height generalization vector that k-anonymizes the relation
/// while suppressing at most `max_suppressed` outlier tuples.
///
/// Correctness rests on height-monotonicity: if some vector at height h
/// is feasible then some vector at every height h' > h is feasible
/// (raise any coordinate — coarsening merges groups, so outliers never
/// increase past the budget... more precisely, the all-top vector is
/// always feasible and feasibility is monotone along lattice edges), so
/// the feasible heights form an up-closed set and binary search applies.

namespace kanon {

/// Result of a lattice-based generalization run.
struct LatticeResult {
  GeneralizationVector levels;
  /// Withheld outlier rows (<= the budget).
  std::vector<RowId> suppressed_rows;
  /// Samarati precision of `levels` in [0, 1].
  double precision = 0.0;
  /// Lattice height of `levels`.
  size_t height = 0;
  /// Vectors whose feasibility was actually evaluated.
  size_t vectors_checked = 0;
  double seconds = 0.0;
  std::string notes;
};

/// Configuration for the Samarati search.
struct SamaratiOptions {
  /// Outlier-suppression budget (absolute row count).
  size_t max_suppressed = 0;
};

/// Runs Samarati's binary search. Among the feasible vectors at the
/// minimal feasible height, returns the one with the best precision
/// (ties: lexicographically smallest). Requires n >= k.
LatticeResult SamaratiAnonymize(const Table& table,
                                const std::vector<Hierarchy>& hierarchies,
                                size_t k, const SamaratiOptions& options);

/// Enumerates every vector of the lattice (product of per-attribute
/// level counts) and returns all vectors at exactly `height`.
std::vector<GeneralizationVector> VectorsAtHeight(
    const std::vector<Hierarchy>& hierarchies, size_t height);

}  // namespace kanon

#endif  // KANON_GENERALIZE_SAMARATI_H_
