#include "generalize/samarati.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/timer.h"

namespace kanon {

namespace {

/// Recursively enumerates vectors with the given remaining height.
void Enumerate(const std::vector<Hierarchy>& hierarchies, size_t col,
               size_t remaining, GeneralizationVector* current,
               std::vector<GeneralizationVector>* out) {
  if (col == hierarchies.size()) {
    if (remaining == 0) out->push_back(*current);
    return;
  }
  const size_t max_level = hierarchies[col].max_level();
  for (size_t level = 0; level <= std::min(max_level, remaining);
       ++level) {
    (*current)[col] = level;
    Enumerate(hierarchies, col + 1, remaining - level, current, out);
  }
  (*current)[col] = 0;
}

}  // namespace

std::vector<GeneralizationVector> VectorsAtHeight(
    const std::vector<Hierarchy>& hierarchies, size_t height) {
  std::vector<GeneralizationVector> out;
  GeneralizationVector current(hierarchies.size(), 0);
  Enumerate(hierarchies, 0, height, &current, &out);
  return out;
}

LatticeResult SamaratiAnonymize(const Table& table,
                                const std::vector<Hierarchy>& hierarchies,
                                size_t k,
                                const SamaratiOptions& options) {
  KANON_CHECK_GE(k, 1u);
  KANON_CHECK_GE(static_cast<size_t>(table.num_rows()), k);
  KANON_CHECK_EQ(hierarchies.size(),
                 static_cast<size_t>(table.num_columns()));

  WallTimer timer;
  size_t max_height = 0;
  for (const Hierarchy& h : hierarchies) max_height += h.max_level();

  LatticeResult result;

  // Feasibility at a height: any vector at that height passes the
  // check. Records the best (max precision) feasible vector found.
  auto feasible_at = [&](size_t height, GeneralizationVector* best,
                         std::vector<RowId>* outliers) {
    bool found = false;
    double best_precision = -1.0;
    for (const GeneralizationVector& v :
         VectorsAtHeight(hierarchies, height)) {
      ++result.vectors_checked;
      const GeneralizationCheck check = CheckGeneralization(
          table, hierarchies, v, k, options.max_suppressed);
      if (!check.feasible) continue;
      const double precision = Precision(v, hierarchies);
      if (!found || precision > best_precision) {
        found = true;
        best_precision = precision;
        *best = v;
        *outliers = check.outliers;
      }
    }
    return found;
  };

  // The top of the lattice is always feasible (every tuple becomes
  // (*,...,*), one group of n >= k rows, no outliers), so the binary
  // search is well-founded.
  size_t lo = 0, hi = max_height;
  GeneralizationVector best(table.num_columns(), 0);
  std::vector<RowId> best_outliers;
  {
    GeneralizationVector top(table.num_columns());
    for (ColId c = 0; c < table.num_columns(); ++c) {
      top[c] = hierarchies[c].max_level();
    }
    best = top;
  }
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    GeneralizationVector candidate;
    std::vector<RowId> outliers;
    if (feasible_at(mid, &candidate, &outliers)) {
      hi = mid;
      best = candidate;
      best_outliers = outliers;
    } else {
      lo = mid + 1;
    }
  }
  // If the loop never found a feasible mid below max_height, evaluate
  // the final height to populate the outlier set consistently.
  if (VectorHeight(best) != lo) {
    GeneralizationVector candidate;
    std::vector<RowId> outliers;
    KANON_CHECK(feasible_at(lo, &candidate, &outliers));
    best = candidate;
    best_outliers = outliers;
  }

  result.levels = best;
  result.suppressed_rows = best_outliers;
  result.precision = Precision(best, hierarchies);
  result.height = VectorHeight(best);
  result.seconds = timer.Seconds();
  std::ostringstream notes;
  notes << "max_height=" << max_height
        << " vectors_checked=" << result.vectors_checked;
  result.notes = notes.str();
  return result;
}

}  // namespace kanon
