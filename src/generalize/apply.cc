#include "generalize/apply.h"

#include <algorithm>
#include <map>

#include "util/logging.h"
#include "util/string_util.h"

namespace kanon {

Table ApplyGeneralization(const Table& table,
                          const std::vector<Hierarchy>& hierarchies,
                          const GeneralizationVector& levels,
                          const std::vector<RowId>& suppressed_rows) {
  const ColId m = table.num_columns();
  KANON_CHECK_EQ(hierarchies.size(), static_cast<size_t>(m));
  KANON_CHECK_EQ(levels.size(), static_cast<size_t>(m));
  std::vector<bool> suppressed(table.num_rows(), false);
  for (const RowId r : suppressed_rows) {
    KANON_CHECK_LT(r, table.num_rows());
    suppressed[r] = true;
  }

  Schema schema;
  for (ColId c = 0; c < m; ++c) {
    schema.AddAttribute(table.schema().attribute_name(c));
  }
  Table out(std::move(schema));
  std::vector<std::string> row(m);
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (ColId c = 0; c < m; ++c) {
      row[c] = suppressed[r]
                   ? "*"
                   : hierarchies[c].Label(table.at(r, c), levels[c]);
    }
    out.AppendStringRow(row);
  }
  return out;
}

GeneralizationCheck CheckGeneralization(
    const Table& table, const std::vector<Hierarchy>& hierarchies,
    const GeneralizationVector& levels, size_t k, size_t max_suppressed) {
  const ColId m = table.num_columns();
  KANON_CHECK_EQ(hierarchies.size(), static_cast<size_t>(m));
  KANON_CHECK_EQ(levels.size(), static_cast<size_t>(m));
  KANON_CHECK_GE(k, 1u);

  // Bucket rows by their generalized label tuple.
  std::map<std::vector<std::string>, Group> buckets;
  std::vector<std::string> key(m);
  for (RowId r = 0; r < table.num_rows(); ++r) {
    for (ColId c = 0; c < m; ++c) {
      key[c] = hierarchies[c].Label(table.at(r, c), levels[c]);
    }
    buckets[key].push_back(r);
  }

  GeneralizationCheck check;
  for (auto& [unused, group] : buckets) {
    if (group.size() >= k) {
      check.groups.groups.push_back(std::move(group));
    } else {
      // Undersized: these rows are withheld from the release
      // (Samarati's MaxSup semantics — suppression means removal).
      check.outliers.insert(check.outliers.end(), group.begin(),
                            group.end());
    }
  }
  std::sort(check.outliers.begin(), check.outliers.end());
  check.feasible = check.outliers.size() <= max_suppressed;
  return check;
}

std::vector<Hierarchy> DefaultHierarchies(const Table& table) {
  std::vector<Hierarchy> hierarchies;
  hierarchies.reserve(table.num_columns());
  for (ColId c = 0; c < table.num_columns(); ++c) {
    const Dictionary& dict = table.schema().dictionary(c);
    bool numeric = dict.size() > 0;
    for (const std::string& value : dict.values()) {
      long long unused = 0;
      if (!ParseInt(value, &unused)) {
        numeric = false;
        break;
      }
    }
    hierarchies.push_back(numeric ? Hierarchy::Intervals(dict, {10, 20})
                                  : Hierarchy::Flat(dict));
  }
  return hierarchies;
}

}  // namespace kanon
