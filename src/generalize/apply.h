#ifndef KANON_GENERALIZE_APPLY_H_
#define KANON_GENERALIZE_APPLY_H_

#include <cstddef>
#include <vector>

#include "core/partition.h"
#include "data/table.h"
#include "generalize/hierarchy.h"

/// \file
/// Applying a full-domain generalization to a relation and checking the
/// resulting k-anonymity (with the standard outlier-suppression budget:
/// rows whose generalized tuple occurs fewer than k times may be fully
/// suppressed, up to `max_suppressed` of them).

namespace kanon {

/// Materializes the generalized relation: same attribute names, values
/// replaced by their level labels. Rows listed in `suppressed_rows`
/// (may be empty) come out as all-* rows.
Table ApplyGeneralization(const Table& table,
                          const std::vector<Hierarchy>& hierarchies,
                          const GeneralizationVector& levels,
                          const std::vector<RowId>& suppressed_rows = {});

/// Result of a feasibility check.
struct GeneralizationCheck {
  /// True iff, after suppressing `outliers`, every remaining
  /// generalized tuple occurs >= k times and |outliers| <=
  /// max_suppressed. (All-suppressed rows count as mutually identical,
  /// so they never violate k-anonymity as long as there are 0 or >= k
  /// of them — the check accounts for that via the budget.)
  bool feasible = false;
  /// Rows that would be suppressed (members of undersized groups).
  std::vector<RowId> outliers;
  /// Groups of rows identical under the generalization (outliers
  /// removed).
  Partition groups;
};

/// Checks whether generalizing `table` by `levels` is k-anonymous after
/// suppressing at most `max_suppressed` outlier rows.
GeneralizationCheck CheckGeneralization(
    const Table& table, const std::vector<Hierarchy>& hierarchies,
    const GeneralizationVector& levels, size_t k, size_t max_suppressed);

/// Builds the default hierarchy set for a table: Intervals for
/// attributes whose every value parses as an integer (widths 10, 20),
/// Flat otherwise. A pragmatic default for examples and experiments.
std::vector<Hierarchy> DefaultHierarchies(const Table& table);

}  // namespace kanon

#endif  // KANON_GENERALIZE_APPLY_H_
