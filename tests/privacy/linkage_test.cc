#include "privacy/linkage.h"

#include "algo/registry.h"
#include "core/anonymity.h"
#include "data/generators/census.h"
#include "data/generators/medical.h"
#include "generalize/apply.h"
#include "generalize/samarati.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

TEST(LinkageAttackTest, RawReleaseIdentifiesDistinctRows) {
  const Table t = PaperIntroTable();
  // Publishing the table unmodified: every row is unique on all columns.
  const AttackSummary summary =
      LinkageAttack(t, t, {0, 1, 2, 3});
  EXPECT_EQ(summary.unique_reidentifications, 4u);
  EXPECT_DOUBLE_EQ(summary.reidentification_rate, 1.0);
  EXPECT_EQ(summary.min_candidates, 1u);
}

TEST(LinkageAttackTest, KAnonymousReleaseGuaranteesKCandidates) {
  const Table t = PaperIntroTable();
  auto algo = MakeAnonymizer("exact_dp");
  const auto result = algo->Run(t, 2);
  const Table published = result.MakeSuppressor(t).Apply(t);
  ASSERT_TRUE(IsKAnonymous(published, 2));
  const AttackSummary summary =
      LinkageAttack(t, published, {0, 1, 2, 3});
  // Every victim matches at least its own k-group.
  EXPECT_GE(summary.min_candidates, 2u);
  EXPECT_EQ(summary.unique_reidentifications, 0u);
}

TEST(LinkageAttackTest, PartialKnowledgeWeakensAttack) {
  Rng rng(1);
  const Table t = CensusTable({.num_rows = 50}, &rng);
  // Fewer known attributes -> candidate sets can only grow.
  const AttackSummary all = LinkageAttack(t, t, {0, 1, 2, 3, 4, 5, 6, 7});
  const AttackSummary some = LinkageAttack(t, t, {0, 5, 6});
  EXPECT_GE(some.mean_candidates, all.mean_candidates);
  EXPECT_LE(some.unique_reidentifications,
            all.unique_reidentifications);
}

TEST(LinkageAttackTest, EmptyKnowledgeMatchesEverything) {
  Rng rng(2);
  const Table t = CensusTable({.num_rows = 20}, &rng);
  const AttackSummary summary = LinkageAttack(t, t, {});
  EXPECT_DOUBLE_EQ(summary.mean_candidates, 20.0);
  EXPECT_EQ(summary.unique_reidentifications, 0u);
}

// Property: for any registry algorithm and any k, the linkage attack on
// the published table never uniquely identifies anyone when the
// adversary knows every attribute (the paper's privacy guarantee).
class GuaranteePropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(GuaranteePropertyTest, MinCandidatesAtLeastK) {
  const size_t k = GetParam();
  Rng rng(3);
  const Table t = CensusTable({.num_rows = 40}, &rng);
  std::vector<ColId> all_columns;
  for (ColId c = 0; c < t.num_columns(); ++c) all_columns.push_back(c);
  for (const std::string name :
       {"ball_cover", "mondrian", "cluster_greedy"}) {
    auto algo = MakeAnonymizer(name);
    const auto result = algo->Run(t, k);
    const Table published = result.MakeSuppressor(t).Apply(t);
    const AttackSummary summary =
        LinkageAttack(t, published, all_columns);
    EXPECT_GE(summary.min_candidates, k) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, GuaranteePropertyTest,
                         ::testing::Values(2, 3, 5));

TEST(LinkageAttackGeneralizedTest, RawVsGeneralized) {
  Rng rng(4);
  const Table t = MedicalTable({.num_rows = 24, .name_pool = 4}, &rng);
  const std::vector<Hierarchy> hs = DefaultHierarchies(t);
  std::vector<ColId> all_columns;
  for (ColId c = 0; c < t.num_columns(); ++c) all_columns.push_back(c);

  // Identity release.
  const GeneralizationVector identity(t.num_columns(), 0);
  const AttackSummary raw =
      LinkageAttackGeneralized(t, hs, identity, {}, all_columns);

  // Samarati k=3 release.
  const LatticeResult lattice = SamaratiAnonymize(t, hs, 3, {});
  const AttackSummary anonymized = LinkageAttackGeneralized(
      t, hs, lattice.levels, lattice.suppressed_rows, all_columns);

  EXPECT_GE(anonymized.mean_candidates, raw.mean_candidates);
  EXPECT_LE(anonymized.unique_reidentifications,
            raw.unique_reidentifications);
  // Released victims match their >= k group; withheld victims may match
  // anything but never exactly one record by chance here.
  EXPECT_EQ(anonymized.unique_reidentifications, 0u);
}

TEST(LinkageAttackGeneralizedTest, WithheldRowsNotInRelease) {
  const Table t = PaperIntroTable();
  const std::vector<Hierarchy> hs = {
      Hierarchy::Flat(t.schema().dictionary(0)),
      Hierarchy::Flat(t.schema().dictionary(1)),
      Hierarchy::Flat(t.schema().dictionary(2)),
      Hierarchy::Flat(t.schema().dictionary(3))};
  // Identity levels, rows 0 and 2 withheld: victims 0/2 match nothing
  // (their values are unique), victims 1/3 match their own rows.
  const AttackSummary summary = LinkageAttackGeneralized(
      t, hs, {0, 0, 0, 0}, {0, 2}, {0, 1, 2, 3});
  EXPECT_EQ(summary.min_candidates, 0u);
  EXPECT_EQ(summary.unique_reidentifications, 2u);
}

TEST(AttackSummaryTest, ToStringMentionsRate) {
  AttackSummary s;
  s.unique_reidentifications = 3;
  s.reidentification_rate = 0.25;
  EXPECT_NE(s.ToString().find("unique=3"), std::string::npos);
}

}  // namespace
}  // namespace kanon
