#include "privacy/diversity.h"

#include "algo/registry.h"
#include "core/cost.h"
#include "data/generators/census.h"
#include "gtest/gtest.h"
#include "util/random.h"

namespace kanon {
namespace {

/// Table with an explicit sensitive last column.
Table Patients(const std::vector<std::vector<std::string>>& rows) {
  Schema schema({"age", "zip", "disease"});
  Table t(std::move(schema));
  for (const auto& row : rows) t.AppendStringRow(row);
  return t;
}

constexpr ColId kDisease = 2;

TEST(GroupDiversityTest, CountsDistinctSensitiveValues) {
  const Table t = Patients({{"30", "111", "flu"},
                            {"30", "111", "flu"},
                            {"30", "111", "cancer"},
                            {"40", "222", "asthma"}});
  EXPECT_EQ(GroupDiversity(t, {0, 1}, kDisease), 1u);
  EXPECT_EQ(GroupDiversity(t, {0, 1, 2}, kDisease), 2u);
  EXPECT_EQ(GroupDiversity(t, {0, 2, 3}, kDisease), 3u);
}

TEST(DistinctDiversityTest, MinimumOverGroups) {
  const Table t = Patients({{"30", "111", "flu"},
                            {"30", "111", "flu"},
                            {"40", "222", "cancer"},
                            {"40", "222", "asthma"}});
  Partition p;
  p.groups = {{0, 1}, {2, 3}};
  EXPECT_EQ(DistinctDiversity(t, p, kDisease), 1u);  // group 0 homogeneous
  EXPECT_FALSE(IsLDiverse(t, p, kDisease, 2));
  Partition merged;
  merged.groups = {{0, 1, 2, 3}};
  EXPECT_TRUE(IsLDiverse(t, merged, kDisease, 3));
}

TEST(HomogeneityExposureTest, FractionOfExposedRows) {
  const Table t = Patients({{"30", "111", "flu"},
                            {"30", "111", "flu"},
                            {"40", "222", "cancer"},
                            {"40", "222", "asthma"}});
  Partition p;
  p.groups = {{0, 1}, {2, 3}};
  // Group {0,1} is homogeneous: 2 of 4 rows exposed.
  EXPECT_DOUBLE_EQ(HomogeneityExposure(t, p, kDisease), 0.5);
  Partition merged;
  merged.groups = {{0, 1, 2, 3}};
  EXPECT_DOUBLE_EQ(HomogeneityExposure(t, merged, kDisease), 0.0);
}

TEST(MergeForDiversityTest, FixesHomogeneousGroup) {
  const Table t = Patients({{"30", "111", "flu"},
                            {"30", "111", "flu"},
                            {"40", "222", "cancer"},
                            {"40", "222", "asthma"}});
  Partition p;
  p.groups = {{0, 1}, {2, 3}};
  ASSERT_TRUE(MergeForDiversity(t, kDisease, 2, &p));
  EXPECT_TRUE(IsLDiverse(t, p, kDisease, 2));
  EXPECT_TRUE(IsValidPartition(p, 4, 2, 4));
}

TEST(MergeForDiversityTest, AlreadyDiverseUntouched) {
  const Table t = Patients({{"30", "111", "flu"},
                            {"30", "111", "cancer"},
                            {"40", "222", "asthma"},
                            {"40", "222", "flu"}});
  Partition p;
  p.groups = {{0, 1}, {2, 3}};
  const std::string before = p.ToString();
  ASSERT_TRUE(MergeForDiversity(t, kDisease, 2, &p));
  EXPECT_EQ(p.ToString(), before);
}

TEST(MergeForDiversityTest, ImpossibleTargetReturnsFalse) {
  const Table t = Patients({{"30", "111", "flu"},
                            {"30", "112", "flu"},
                            {"40", "222", "flu"},
                            {"40", "223", "flu"}});
  Partition p;
  p.groups = {{0, 1}, {2, 3}};
  EXPECT_FALSE(MergeForDiversity(t, kDisease, 2, &p));
  // Everything collapsed into a single (still insufficient) group.
  EXPECT_EQ(p.num_groups(), 1u);
}

TEST(MergeForDiversityTest, PrefersCheapPartnerOnTies) {
  // Groups: A={0,1} homogeneous flu; partners B={2,3} and C={4,5} both
  // offer {cancer, asthma} (equal diversity gain 2), but B is identical
  // to A on the QI columns while C is far away -> the tie-break must
  // pick the cheaper merge (B), leaving C intact and diverse.
  const Table t = Patients({{"30", "111", "flu"},
                            {"30", "111", "flu"},
                            {"30", "111", "cancer"},
                            {"30", "111", "asthma"},
                            {"99", "999", "cancer"},
                            {"99", "999", "asthma"}});
  Partition p;
  p.groups = {{0, 1}, {2, 3}, {4, 5}};
  ASSERT_TRUE(MergeForDiversity(t, kDisease, 2, &p));
  EXPECT_TRUE(IsLDiverse(t, p, kDisease, 2));
  // B merged into A (cost 0 on QI columns); C untouched.
  bool c_intact = false;
  for (const Group& g : p.groups) {
    Group sorted = g;
    std::sort(sorted.begin(), sorted.end());
    if (sorted == Group{4, 5}) c_intact = true;
  }
  EXPECT_TRUE(c_intact);
}

TEST(MergeForDiversityTest, UpgradesRealAnonymization) {
  Rng rng(5);
  const Table t = CensusTable({.num_rows = 60}, &rng);
  // Treat "occupation" as the sensitive attribute.
  const ColId sensitive = t.schema().FindAttribute("occupation");
  auto algo = MakeAnonymizer("ball_cover+local_search");
  auto result = algo->Run(t, 3);
  const size_t cost_before = PartitionCost(t, result.partition);
  ASSERT_TRUE(MergeForDiversity(t, sensitive, 2, &result.partition));
  EXPECT_TRUE(IsLDiverse(t, result.partition, sensitive, 2));
  // Still a valid 3-anonymous partition (merging only grows groups).
  EXPECT_TRUE(IsValidPartition(result.partition, t.num_rows(), 3,
                               t.num_rows()));
  // Diversity costs utility: cost can only grow or stay.
  EXPECT_GE(PartitionCost(t, result.partition), cost_before);
}

}  // namespace
}  // namespace kanon
