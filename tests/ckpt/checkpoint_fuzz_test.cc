#include "ckpt/checkpoint.h"

#include <unistd.h>

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

/// \file
/// Adversarial decoding drills for the checkpoint codec and store. The
/// trust model (ckpt/checkpoint.h) says a snapshot read back after a
/// crash is hostile input: every strict prefix, every single-bit flip
/// and arbitrary garbage must come back as a *typed* kDataLoss /
/// kParseError — never a crash, never an OOM-sized allocation, and
/// never a silently-restored wrong state.

namespace kanon {
namespace {

SolverSnapshot MakeSnapshot() {
  CheckpointWriter payload;
  payload.PutU64(41);
  payload.PutDouble(0.75);
  Partition partition;
  partition.groups = {{0, 2, 4}, {1, 3, 5}};
  payload.PutPartition(partition);

  SolverSnapshot snapshot;
  snapshot.solver = "branch_bound";
  snapshot.table_fp = 0x1234abcd5678ef90ull;
  snapshot.k = 3;
  snapshot.seq = 7;
  snapshot.payload = payload.TakeBytes();
  return snapshot;
}

bool IsTypedDecodeError(const Status& status) {
  return status.code() == StatusCode::kDataLoss ||
         status.code() == StatusCode::kParseError;
}

TEST(CheckpointCodec, RoundTripsEveryField) {
  const SolverSnapshot snapshot = MakeSnapshot();
  const std::string encoded = EncodeSnapshot(snapshot);

  const StatusOr<SolverSnapshot> decoded = DecodeSnapshot(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->solver, snapshot.solver);
  EXPECT_EQ(decoded->table_fp, snapshot.table_fp);
  EXPECT_EQ(decoded->k, snapshot.k);
  EXPECT_EQ(decoded->seq, snapshot.seq);
  EXPECT_EQ(decoded->payload, snapshot.payload);

  // The payload sub-encoding reads back through the same reader.
  CheckpointReader reader(decoded->payload);
  EXPECT_EQ(reader.GetU64(), 41u);
  EXPECT_DOUBLE_EQ(reader.GetDouble(), 0.75);
  const Partition partition = reader.GetPartition();
  EXPECT_FALSE(reader.failed());
  EXPECT_TRUE(reader.AtEnd());
  ASSERT_EQ(partition.groups.size(), 2u);
  EXPECT_EQ(partition.groups[0], (Group{0, 2, 4}));
  EXPECT_EQ(partition.groups[1], (Group{1, 3, 5}));
}

TEST(CheckpointCodec, DoubleRoundTripsExactBitPatterns) {
  for (const double value : {0.0, -0.0, 1.0, -273.15, 1e-300}) {
    CheckpointWriter writer;
    writer.PutDouble(value);
    CheckpointReader reader(writer.bytes());
    const double back = reader.GetDouble();
    uint64_t want = 0, got = 0;
    std::memcpy(&want, &value, sizeof(want));
    std::memcpy(&got, &back, sizeof(got));
    EXPECT_EQ(got, want);
  }
}

TEST(CheckpointFuzz, EveryStrictPrefixIsATypedError) {
  const std::string encoded = EncodeSnapshot(MakeSnapshot());
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    const StatusOr<SolverSnapshot> decoded =
        DecodeSnapshot(encoded.substr(0, cut));
    ASSERT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_TRUE(IsTypedDecodeError(decoded.status()))
        << "prefix " << cut << ": " << decoded.status().ToString();
  }
}

TEST(CheckpointFuzz, EverySingleBitFlipIsATypedError) {
  const std::string encoded = EncodeSnapshot(MakeSnapshot());
  for (size_t byte = 0; byte < encoded.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = encoded;
      flipped[byte] = static_cast<char>(flipped[byte] ^ (1 << bit));
      const StatusOr<SolverSnapshot> decoded = DecodeSnapshot(flipped);
      ASSERT_FALSE(decoded.ok())
          << "flip at byte " << byte << " bit " << bit << " decoded";
      EXPECT_TRUE(IsTypedDecodeError(decoded.status()))
          << decoded.status().ToString();
    }
  }
}

TEST(CheckpointFuzz, TrailingGarbageIsATypedError) {
  const std::string encoded = EncodeSnapshot(MakeSnapshot());
  const StatusOr<SolverSnapshot> decoded = DecodeSnapshot(encoded + "x");
  ASSERT_FALSE(decoded.ok());
  EXPECT_TRUE(IsTypedDecodeError(decoded.status()));
}

TEST(CheckpointFuzz, RandomGarbageIsATypedError) {
  Rng rng(0xf0220u);
  for (int round = 0; round < 200; ++round) {
    std::string garbage(rng.Uniform(200), '\0');
    for (char& c : garbage) c = static_cast<char>(rng.Uniform(256));
    // Half the rounds keep a valid magic so decoding reaches the
    // deeper length/checksum/body validation layers.
    if (round % 2 == 0 && garbage.size() >= 4) {
      garbage.replace(0, 4, "KCKP");
    }
    const StatusOr<SolverSnapshot> decoded = DecodeSnapshot(garbage);
    ASSERT_FALSE(decoded.ok()) << "garbage round " << round << " decoded";
    EXPECT_TRUE(IsTypedDecodeError(decoded.status()))
        << decoded.status().ToString();
  }
}

TEST(CheckpointFuzz, HostileGroupCountCannotDriveAllocation) {
  // A partition header claiming 2^60 groups in a 16-byte buffer must be
  // rejected by the remaining-bytes cap, not trusted into a reserve().
  CheckpointWriter writer;
  writer.PutU64(uint64_t{1} << 60);
  writer.PutU64(3);  // pretend first group length
  CheckpointReader reader(writer.bytes());
  const Partition partition = reader.GetPartition();
  EXPECT_TRUE(reader.failed());
  EXPECT_TRUE(partition.groups.empty());
}

TEST(CheckpointStoreTest, SaveLoadRemoveClearList) {
  CheckpointStore store(::testing::TempDir() + "kanon_ckpt_store_" +
                        std::to_string(::getpid()));
  ASSERT_TRUE(store.Clear().ok());

  const SolverSnapshot snapshot = MakeSnapshot();
  ASSERT_TRUE(store.Save(7, snapshot).ok());
  ASSERT_TRUE(store.Save(3, snapshot).ok());
  EXPECT_EQ(store.List(), (std::vector<uint64_t>{3, 7}));

  const StatusOr<SolverSnapshot> loaded = store.Load(7);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->solver, snapshot.solver);
  EXPECT_EQ(loaded->seq, snapshot.seq);
  EXPECT_EQ(loaded->payload, snapshot.payload);

  // Saves replace: a later snapshot with a higher seq wins.
  SolverSnapshot next = snapshot;
  next.seq = 8;
  ASSERT_TRUE(store.Save(7, next).ok());
  EXPECT_EQ(store.Load(7)->seq, 8u);

  EXPECT_TRUE(store.Remove(7).ok());
  EXPECT_TRUE(store.Remove(7).ok());  // idempotent
  EXPECT_EQ(store.Load(7).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.List(), (std::vector<uint64_t>{3}));

  ASSERT_TRUE(store.Clear().ok());
  EXPECT_TRUE(store.List().empty());
  ::rmdir(store.dir().c_str());
}

TEST(CheckpointStoreTest, CorruptFileOnDiskIsATypedRefusal) {
  CheckpointStore store(::testing::TempDir() + "kanon_ckpt_corrupt_" +
                        std::to_string(::getpid()));
  ASSERT_TRUE(store.Clear().ok());
  ASSERT_TRUE(store.Save(1, MakeSnapshot()).ok());

  // Truncate the file behind the store's back — the torn-write shape.
  std::ifstream in(store.PathFor(1), std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(store.PathFor(1),
                    std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();

  const StatusOr<SolverSnapshot> loaded = store.Load(1);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(IsTypedDecodeError(loaded.status()))
      << loaded.status().ToString();
  ASSERT_TRUE(store.Clear().ok());
  ::rmdir(store.dir().c_str());
}

}  // namespace
}  // namespace kanon
